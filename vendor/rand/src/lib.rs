//! Offline, API-compatible subset of the `rand` crate (0.8 API surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! the narrow slice of `rand` it actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`];
//! * [`rngs::SmallRng`] — here xoshiro256++ seeded via SplitMix64, the
//!   same construction rand 0.8 uses on 64-bit targets.
//!
//! Streams are deterministic per seed but are **not** bit-compatible with
//! upstream `rand`; nothing in the workspace depends on upstream streams.

pub mod rngs;

pub mod uniform {
    //! Range-to-sample conversion backing [`crate::Rng::gen_range`].

    use crate::RngCore;

    /// A range that can produce a uniformly distributed value of `T`.
    pub trait SampleRange<T> {
        /// Draw one value from the range. Panics on an empty range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    #[inline]
    pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + (self.end - self.start) * unit_f64(rng);
            // Guard against rounding up to the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (a, b) = (*self.start(), *self.end());
            assert!(a <= b, "cannot sample empty range");
            a + (b - a) * ((rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64))
        }
    }

    impl SampleRange<f32> for core::ops::Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + (self.end - self.start) * unit_f64(rng) as f32;
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    /// Uniform `u64` in `[0, n)` by Lemire's multiply-shift with rejection.
    #[inline]
    pub(crate) fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = rng.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo < n {
                let thresh = n.wrapping_neg() % n;
                if lo < thresh {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    let off = below(rng, width);
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "cannot sample empty range");
                    let width = (b as i128 - a as i128) as u128 + 1;
                    if width > u64::MAX as u128 {
                        // Only reachable for 128-bit-wide u64/i64 inclusive
                        // ranges; fall back to plain next_u64.
                        return (a as i128).wrapping_add(rng.next_u64() as i128) as $t;
                    }
                    let off = below(rng, width as u64);
                    (a as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods; blanket-implemented for every
/// [`RngCore`], mirroring rand 0.8.
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        uniform::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministic RNG constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (as rand 0.8 does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}
