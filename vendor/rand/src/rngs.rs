//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic RNG: xoshiro256++ (Blackman & Vigna).
///
/// Matches the role of `rand::rngs::SmallRng` on 64-bit targets. The
/// stream is deterministic per seed but not bit-compatible with upstream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: u32 = rng.gen_range(2..=10);
            assert!((2..=10).contains(&n));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts={counts:?}");
        }
    }
}
