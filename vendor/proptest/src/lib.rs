//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its test suites use: the [`proptest!`] macro
//! (with `#![proptest_config(..)]` support), range/tuple strategies,
//! [`collection::vec`], [`sample::select`], `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and seed; the
//!   run is reproducible because seeds derive deterministically from the
//!   test name, so re-running the test reproduces the same failure.
//! * Rejections via `prop_assume!` skip the case rather than resampling.

use std::hash::{Hash, Hasher};

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; a subset of upstream's fields.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Derive a per-case RNG deterministically from the test name and case
/// index, so failures reproduce run over run without persistence files.
pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    TestRng::seed_from_u64(h.finish())
}

/// A generator of values of type `Value`.
///
/// Upstream strategies also carry shrinking machinery; this shim only
/// generates.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies choosing among explicit alternatives.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy picking one element of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Namespace mirroring upstream's `prop::` re-exports in the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {}",
                ::core::file!(), ::core::line!(), ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {}",
                ::core::file!(), ::core::line!(), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "{} == {}: {:?} vs {:?}",
            ::core::stringify!($a), ::core::stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "{} != {}: both {:?}",
            ::core::stringify!($a),
            ::core::stringify!($b),
            left
        );
    }};
}

/// Skip the current case unless `cond` holds (counts as a pass; upstream
/// resamples instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Define `#[test]` functions over generated inputs.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     /// doc
///     #[test]
///     fn my_test(x in 0.0f64..1.0, n in 1usize..10) { prop_assert!(x < n as f64 + 1.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::rng_for_case(::core::stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(msg) = outcome {
                    ::core::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1, config.cases, ::core::stringify!($name), msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
