//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion its benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input` with [`BenchmarkId`],
//! `sample_size`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs one
//! warm-up iteration plus `sample_size` timed iterations and prints the
//! mean and minimum wall-clock time — enough to compare runs by eye and
//! to keep `cargo bench` working end to end.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `mcb8/256`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Trait unifying the `&str` and [`BenchmarkId`] forms of bench names.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    samples: usize,
    /// Timing results of the most recent `iter` call, one per sample.
    last_times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also forces lazy init
        self.last_times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.last_times.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        last_times: Vec::new(),
    };
    f(&mut bencher);
    if bencher.last_times.is_empty() {
        println!("{name:<50} (no measurement: bencher.iter was not called)");
        return;
    }
    let total: Duration = bencher.last_times.iter().sum();
    let mean = total / bencher.last_times.len() as u32;
    let min = bencher.last_times.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<50} mean {:>12} min {:>12} ({} samples)",
        format_duration(mean),
        format_duration(min),
        bencher.last_times.len()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, |b| f(b));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $( $group(); )+
        }
    };
}
