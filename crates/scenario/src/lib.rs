//! # dfrs-scenario
//!
//! The unified experiment API over the DFRS simulator: a [`Scenario`] is
//! one simulatable workload (cluster + jobs + engine config), built
//! fluently by [`ScenarioBuilder`] from any workload source the paper
//! uses — scaled/unscaled Lublin, Downey, HPC2N-like weeks, an SWF file,
//! or a crafted job list. A [`Campaign`] runs `scenarios × scheduler
//! specs` across threads with deterministic results and a streaming
//! per-cell observer.
//!
//! The three layers (see DESIGN.md §1):
//!
//! 1. **registry** ([`dfrs_sched::SchedulerRegistry`]) — string-keyed
//!    scheduler factories, `"dynmcb8-per:t=300"`;
//! 2. **scenario** ([`ScenarioBuilder`] → [`Scenario::run`]) — one
//!    workload, one scheduler, one [`SimOutcome`](dfrs_sim::SimOutcome);
//! 3. **campaign** ([`Campaign`] → [`CampaignResult`]) — the full
//!    matrix, replacing the former `run_matrix`/`run_matrix_with` pair.
//!
//! ```
//! use dfrs_scenario::{Campaign, ScenarioBuilder};
//!
//! let scenarios = vec![ScenarioBuilder::new()
//!     .label("demo")
//!     .lublin(40)
//!     .load(0.7)
//!     .seed(11)
//!     .build()
//!     .unwrap()];
//! let result = Campaign::new(&scenarios, ["easy", "dynmcb8-asap-per:t=300"])
//!     .unwrap()
//!     .threads(2)
//!     .run();
//! assert_eq!(result.cells[0].len(), 2);
//! assert!(result.cells[0][0].max_stretch >= 1.0);
//! ```

pub mod campaign;
pub mod scenario;

pub use campaign::{
    degradation_row, degradation_stats, Campaign, CampaignResult, CellResult, CellUpdate,
};
pub use scenario::{FailureModel, Scenario, ScenarioBuilder, ScenarioError, WorkloadSource};
