//! The generic parallel runner over `scenarios × scheduler specs`,
//! replacing the former `run_matrix`/`run_matrix_with` pair.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dfrs_core::stretch::degradation_factor;
use dfrs_core::OnlineStats;
use dfrs_sched::{Algorithm, SchedulerRegistry, SchedulerSpec, SpecError};
use dfrs_sim::{SimConfig, SimOutcome};

use crate::scenario::Scenario;

/// Compact result of one `(scenario, spec)` cell (drops per-job records
/// so 900-instance matrices stay cheap). The merger of the former
/// `RunSummary` and `CustomRun` structs.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The spec that produced this.
    pub spec: SchedulerSpec,
    /// The scheduler's display name (e.g. `DynMCB8-per 600`).
    pub name: String,
    /// Maximum bounded stretch.
    pub max_stretch: f64,
    /// Mean bounded stretch.
    pub mean_stretch: f64,
    /// Last completion time.
    pub makespan: f64,
    /// Pause occurrences.
    pub preemption_count: u64,
    /// Move occurrences.
    pub migration_count: u64,
    /// GB moved by pauses/resumes.
    pub preemption_gb: f64,
    /// GB moved by migrations.
    pub migration_gb: f64,
    /// Failure-induced job kills (restart policy).
    pub restart_count: u64,
    /// Virtual time discarded by those kills (seconds).
    pub lost_virtual_seconds: f64,
    /// Integral of out-of-service nodes (node-seconds); zero on a
    /// static cluster.
    pub down_node_seconds: f64,
    /// Jobs simulated.
    pub n_jobs: usize,
    /// Total scheduler wall-clock seconds (non-deterministic).
    pub sched_wall_total: f64,
    /// Worst single scheduler invocation in seconds (non-deterministic).
    pub sched_wall_max: f64,
    /// Wall-clock seconds this cell's simulation took end to end
    /// (non-deterministic; excluded from fingerprints like the other
    /// wall-clock fields). Zero when the cell was built from an outcome
    /// outside a campaign run.
    pub wall_secs: f64,
}

impl CellResult {
    /// Reduce a full outcome to a cell.
    pub fn from_outcome(spec: SchedulerSpec, o: &SimOutcome) -> Self {
        CellResult {
            spec,
            name: o.algorithm.clone(),
            max_stretch: o.max_stretch,
            mean_stretch: o.mean_stretch,
            makespan: o.makespan,
            preemption_count: o.preemption_count,
            migration_count: o.migration_count,
            preemption_gb: o.preemption_gb,
            migration_gb: o.migration_gb,
            restart_count: o.restart_count,
            lost_virtual_seconds: o.lost_virtual_seconds,
            down_node_seconds: o.down_node_seconds,
            // Streamed outcomes carry no records; the online counter is
            // the same number on the materialized path.
            n_jobs: o.jobs_completed as usize,
            sched_wall_total: o.sched_wall_total,
            sched_wall_max: o.sched_wall_max,
            wall_secs: 0.0,
        }
    }

    /// Total GB through storage (pauses + migrations).
    pub fn moved_gb(&self) -> f64 {
        self.preemption_gb + self.migration_gb
    }

    /// GB/s through storage due to preemptions (Table II).
    pub fn preemption_bandwidth_gbs(&self) -> f64 {
        if self.makespan > 0.0 {
            self.preemption_gb / self.makespan
        } else {
            0.0
        }
    }

    /// GB/s through storage due to migrations (Table II).
    pub fn migration_bandwidth_gbs(&self) -> f64 {
        if self.makespan > 0.0 {
            self.migration_gb / self.makespan
        } else {
            0.0
        }
    }

    /// Preemptions per simulated hour (Table II).
    pub fn preemptions_per_hour(&self) -> f64 {
        if self.makespan > 0.0 {
            self.preemption_count as f64 * 3600.0 / self.makespan
        } else {
            0.0
        }
    }

    /// Migrations per simulated hour (Table II).
    pub fn migrations_per_hour(&self) -> f64 {
        if self.makespan > 0.0 {
            self.migration_count as f64 * 3600.0 / self.makespan
        } else {
            0.0
        }
    }

    /// Preemptions per job (Table II).
    pub fn preemptions_per_job(&self) -> f64 {
        if self.n_jobs > 0 {
            self.preemption_count as f64 / self.n_jobs as f64
        } else {
            0.0
        }
    }

    /// Migrations per job (Table II).
    pub fn migrations_per_job(&self) -> f64 {
        if self.n_jobs > 0 {
            self.migration_count as f64 / self.n_jobs as f64
        } else {
            0.0
        }
    }

    /// Every deterministic field rendered to bytes (floats via
    /// `to_bits`); the wall-clock fields are excluded because they
    /// measure real compute time. Two runs of the same campaign —
    /// whatever the thread count — must produce equal fingerprints.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|{}|max={:016x} mean={:016x} mk={:016x} pre={} migr={} pre_gb={:016x} \
             migr_gb={:016x} rst={} lost={:016x} down={:016x} jobs={}",
            self.spec,
            self.name,
            self.max_stretch.to_bits(),
            self.mean_stretch.to_bits(),
            self.makespan.to_bits(),
            self.preemption_count,
            self.migration_count,
            self.preemption_gb.to_bits(),
            self.migration_gb.to_bits(),
            self.restart_count,
            self.lost_virtual_seconds.to_bits(),
            self.down_node_seconds.to_bits(),
            self.n_jobs,
        )
    }

    /// Mean fraction of the cluster out of service over the makespan
    /// (0 on a static cluster) — the cell-level analogue of
    /// [`dfrs_sim::SimOutcome::mean_unavailability`].
    pub fn mean_unavailability(&self, nodes: u32) -> f64 {
        if self.makespan > 0.0 && nodes > 0 {
            self.down_node_seconds / (self.makespan * nodes as f64)
        } else {
            0.0
        }
    }
}

/// Streamed to the campaign observer as each cell completes.
#[derive(Debug, Clone, Copy)]
pub struct CellUpdate<'c> {
    /// Scenario index (row).
    pub scenario: usize,
    /// Spec index (column).
    pub spec: usize,
    /// Cells completed so far, this one included.
    pub done: usize,
    /// Total cells in the campaign.
    pub total: usize,
    /// The completed cell.
    pub result: &'c CellResult,
}

/// The full matrix: `cells[scenario][spec]`, aligned with the input
/// orders whatever the thread count.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Specs (columns), in input order.
    pub specs: Vec<SchedulerSpec>,
    /// `cells[scenario][spec]`.
    pub cells: Vec<Vec<CellResult>>,
}

impl CampaignResult {
    /// Per-algorithm degradation statistics over all scenarios.
    pub fn degradation_stats(&self) -> Vec<OnlineStats> {
        degradation_stats(&self.cells, self.specs.len())
    }

    /// Deterministic bytes for the whole matrix (see
    /// [`CellResult::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        for row in &self.cells {
            for cell in row {
                s.push_str(&cell.fingerprint());
                s.push('\n');
            }
        }
        s
    }
}

type Observer<'a> = Box<dyn Fn(CellUpdate<'_>) + Sync + 'a>;

/// One generic parallel runner over `scenarios × specs`.
///
/// Results are deterministic: the matrix a campaign returns is
/// byte-identical (modulo wall-clock bookkeeping) whether it ran on one
/// thread or many, because each cell simulates independently and lands
/// at its `(scenario, spec)` index.
///
/// ```
/// use dfrs_scenario::{Campaign, ScenarioBuilder};
/// use dfrs_sched::Algorithm;
///
/// let scenarios = vec![ScenarioBuilder::new()
///     .lublin(25)
///     .load(0.5)
///     .seed(3)
///     .build()
///     .unwrap()];
/// let result = Campaign::over(&scenarios, &[Algorithm::Fcfs, Algorithm::GreedyPmtn])
///     .penalty(300.0)
///     .run();
/// assert_eq!(result.cells[0][0].name, "FCFS");
/// ```
pub struct Campaign<'a> {
    scenarios: &'a [Scenario],
    specs: Vec<SchedulerSpec>,
    registry: SchedulerRegistry,
    threads: usize,
    penalty: Option<f64>,
    failure_policy: Option<dfrs_sim::FailurePolicy>,
    migration: Option<dfrs_sim::MigrationMode>,
    config: Option<SimConfig>,
    observer: Option<Observer<'a>>,
}

impl<'a> Campaign<'a> {
    /// A campaign over spec strings, parsed against the built-in
    /// registry.
    pub fn new<I>(scenarios: &'a [Scenario], specs: I) -> Result<Self, SpecError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        Self::with_registry(scenarios, SchedulerRegistry::builtin(), specs)
    }

    /// A campaign over spec strings parsed against — and built through —
    /// an explicit (possibly user-extended) registry.
    pub fn with_registry<I>(
        scenarios: &'a [Scenario],
        registry: SchedulerRegistry,
        specs: I,
    ) -> Result<Self, SpecError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let specs = specs
            .into_iter()
            .map(|s| registry.parse(s.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_parts(scenarios, registry, specs))
    }

    /// A campaign over already-parsed specs (built-in registry).
    pub fn from_specs(scenarios: &'a [Scenario], specs: Vec<SchedulerSpec>) -> Self {
        Self::from_parts(scenarios, SchedulerRegistry::builtin(), specs)
    }

    /// A campaign over the paper's fixed algorithm sets
    /// ([`Algorithm::ALL`], [`Algorithm::PREEMPTING`]).
    pub fn over(scenarios: &'a [Scenario], algorithms: &[Algorithm]) -> Self {
        Self::from_specs(scenarios, algorithms.iter().map(Algorithm::spec).collect())
    }

    fn from_parts(
        scenarios: &'a [Scenario],
        registry: SchedulerRegistry,
        specs: Vec<SchedulerSpec>,
    ) -> Self {
        Campaign {
            scenarios,
            specs,
            registry,
            threads: 1,
            penalty: None,
            failure_policy: None,
            migration: None,
            config: None,
            observer: None,
        }
    }

    /// Worker threads (default 1; values are clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override every scenario's rescheduling penalty for this campaign
    /// (the former `run_matrix` penalty argument).
    pub fn penalty(mut self, penalty: f64) -> Self {
        self.penalty = Some(penalty);
        self
    }

    /// Override every scenario's failure policy for this campaign (the
    /// scenarios' availability traces are untouched — only what a
    /// failure does to its victims changes).
    pub fn failure_policy(mut self, policy: dfrs_sim::FailurePolicy) -> Self {
        self.failure_policy = Some(policy);
        self
    }

    /// Override every scenario's migration mechanism for this campaign.
    pub fn migration(mut self, mode: dfrs_sim::MigrationMode) -> Self {
        self.migration = Some(mode);
        self
    }

    /// [`migration`](Self::migration) taking an optional mode — CLI
    /// plumbing where `None` means "keep each scenario's config".
    pub fn migration_opt(mut self, mode: Option<dfrs_sim::MigrationMode>) -> Self {
        self.migration = mode.or(self.migration);
        self
    }

    /// Override every scenario's engine config wholesale. Applied
    /// before [`penalty`](Self::penalty).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Observe each completed cell (progress reporting, early CSV
    /// export). Called serially — never concurrently — but in
    /// completion order, which under threads is nondeterministic; the
    /// returned matrix is index-aligned regardless.
    pub fn on_cell(mut self, observer: impl Fn(CellUpdate<'_>) + Sync + 'a) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// The specs (columns) this campaign will run.
    pub fn specs(&self) -> &[SchedulerSpec] {
        &self.specs
    }

    /// Run the full matrix.
    ///
    /// # Panics
    ///
    /// Panics if a spec fails to build — constructors validate specs,
    /// so a failure here means the registry changed between parse and
    /// run (e.g. [`from_specs`](Self::from_specs) with a spec the
    /// built-in registry does not know).
    pub fn run(&self) -> CampaignResult {
        let n_scen = self.scenarios.len();
        let n_spec = self.specs.len();
        let n_units = n_scen * n_spec;
        let order = self.unit_order();
        // Resolve each scenario's effective config once, up front. A
        // cell used to clone the whole SimConfig — availability trace
        // included — per (scenario, spec) pair; now the `n_spec` cells
        // of a row share one borrowed copy.
        let configs: Vec<SimConfig> = self
            .scenarios
            .iter()
            .map(|s| self.effective_config(s))
            .collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let results: Mutex<Vec<Vec<Option<CellResult>>>> =
            Mutex::new(vec![vec![None; n_spec]; n_scen]);
        let observer_lock: Mutex<()> = Mutex::new(());

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n_units.max(1)) {
                scope.spawn(|| loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= n_units {
                        break;
                    }
                    let unit = order[slot];
                    let (i, a) = (unit / n_spec, unit % n_spec);
                    let cell = self.run_cell(&self.scenarios[i], &self.specs[a], &configs[i]);
                    // Keep the results mutex free of user code: clone
                    // for the observer, store, then notify under the
                    // observer's own lock so a slow callback (file
                    // I/O, printing) never stalls the other workers.
                    let observed = self.observer.as_ref().map(|_| cell.clone());
                    results.lock().expect("no poisoned runs")[i][a] = Some(cell);
                    if let (Some(observer), Some(result)) = (&self.observer, observed) {
                        let _serial = observer_lock.lock().expect("no poisoned observers");
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        observer(CellUpdate {
                            scenario: i,
                            spec: a,
                            done: finished,
                            total: n_units,
                            result: &result,
                        });
                    }
                });
            }
        });

        CampaignResult {
            specs: self.specs.clone(),
            cells: results
                .into_inner()
                .expect("scope joined")
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|c| c.expect("all units executed"))
                        .collect()
                })
                .collect(),
        }
    }

    /// Cost-aware dispatch order over unit indices: most expensive
    /// estimated cells first (spec cost hint × scenario size), ties by
    /// unit index. Purely a scheduling decision — every cell still
    /// lands at its `(scenario, spec)` slot, so the result matrix (and
    /// its fingerprint) is unchanged by the order. Running the likely
    /// stragglers first keeps the parallel tail short: a `DynMCB8`
    /// cell dispatched last would otherwise hold the whole campaign
    /// open while every other worker idles.
    fn unit_order(&self) -> Vec<usize> {
        let n_spec = self.specs.len();
        let mut order: Vec<usize> = (0..self.scenarios.len() * n_spec).collect();
        let cost = |unit: usize| {
            let scenario = &self.scenarios[unit / n_spec];
            let spec = &self.specs[unit % n_spec];
            spec.cost_hint() as u64 * scenario.jobs.len().max(1) as u64
        };
        order.sort_by_key(|&u| (std::cmp::Reverse(cost(u)), u));
        order
    }

    /// The config a given scenario's cells run under: the campaign-wide
    /// override (or the scenario's own config), with the per-knob
    /// overrides applied on top.
    fn effective_config(&self, scenario: &Scenario) -> SimConfig {
        let mut config = self
            .config
            .clone()
            .unwrap_or_else(|| scenario.config.clone());
        if let Some(p) = self.penalty {
            config.penalty = p;
        }
        if let Some(fp) = self.failure_policy {
            config.failure_policy = fp;
        }
        if let Some(m) = self.migration {
            config.migration_mode = m;
        }
        config
    }

    fn run_cell(
        &self,
        scenario: &Scenario,
        spec: &SchedulerSpec,
        config: &SimConfig,
    ) -> CellResult {
        let started = std::time::Instant::now();
        let mut scheduler = self
            .registry
            .build(spec)
            .unwrap_or_else(|e| panic!("spec {spec} failed to build: {e}"));
        // Cells borrow the jobs through the source adapter and drop
        // records at the sink: a campaign only keeps aggregates, so the
        // per-job vector was allocated just to be thrown away.
        let outcome = dfrs_sim::simulate_stream(
            scenario.cluster,
            &mut scenario.stream(),
            &mut dfrs_sim::DiscardRecords,
            scheduler.as_mut(),
            config,
        )
        .unwrap_or_else(|e| panic!("cell {spec} on {} failed: {e}", scenario.label));
        let mut cell = CellResult::from_outcome(spec.clone(), &outcome);
        cell.wall_secs = started.elapsed().as_secs_f64();
        cell
    }
}

/// Per-scenario degradation factors: each spec's max stretch over the
/// best max stretch on that scenario (Section V).
pub fn degradation_row(row: &[CellResult]) -> Vec<f64> {
    let best = row
        .iter()
        .map(|s| s.max_stretch)
        .fold(f64::INFINITY, f64::min);
    row.iter()
        .map(|s| degradation_factor(s.max_stretch, best))
        .collect()
}

/// Aggregate degradation statistics per spec over a result matrix.
pub fn degradation_stats(results: &[Vec<CellResult>], n_specs: usize) -> Vec<OnlineStats> {
    let mut stats = vec![OnlineStats::new(); n_specs];
    for row in results {
        debug_assert_eq!(row.len(), n_specs);
        for (a, d) in degradation_row(row).into_iter().enumerate() {
            stats[a].push(d);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use std::sync::atomic::AtomicUsize;

    fn scenarios(seeds: u64, jobs: usize, load: f64, seed0: u64) -> Vec<Scenario> {
        (0..seeds)
            .map(|s| {
                ScenarioBuilder::new()
                    .lublin(jobs)
                    .load(load)
                    .seed(seed0 + s)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn matrix_shape_and_alignment() {
        let scens = scenarios(2, 25, 0.5, 11);
        let algos = [Algorithm::Fcfs, Algorithm::Easy, Algorithm::GreedyPmtn];
        let result = Campaign::over(&scens, &algos).threads(4).run();
        assert_eq!(result.cells.len(), 2);
        for row in &result.cells {
            assert_eq!(row.len(), 3);
            for (cell, a) in row.iter().zip(algos.iter()) {
                assert_eq!(cell.name, a.name());
                assert_eq!(cell.spec, a.spec());
                assert_eq!(cell.n_jobs, 25);
            }
        }
    }

    #[test]
    fn degradation_row_has_a_unit_entry() {
        let scens = scenarios(2, 25, 0.5, 11);
        let result = Campaign::over(&scens, &Algorithm::ALL[..3])
            .threads(2)
            .run();
        for row in &result.cells {
            let degs = degradation_row(row);
            assert!(degs.iter().any(|&d| (d - 1.0).abs() < 1e-12), "{degs:?}");
            assert!(degs.iter().all(|&d| d >= 1.0));
        }
    }

    #[test]
    fn observer_streams_every_cell() {
        let scens = scenarios(1, 20, 0.4, 5);
        let seen = AtomicUsize::new(0);
        let result = Campaign::new(&scens, ["fcfs", "greedy-pmtn", "dynmcb8-per:t=300"])
            .unwrap()
            .threads(3)
            .on_cell(|u| {
                assert!(u.done <= u.total);
                assert_eq!(u.total, 3);
                assert!(u.result.max_stretch >= 1.0);
                seen.fetch_add(1, Ordering::Relaxed);
            })
            .run();
        assert_eq!(seen.load(Ordering::Relaxed), 3);
        assert_eq!(result.cells[0].len(), 3);
        assert_eq!(result.cells[0][2].name, "DynMCB8-per 300");
    }

    #[test]
    fn penalty_override_applies() {
        let scens = scenarios(1, 25, 0.8, 7);
        let free = Campaign::over(&scens, &[Algorithm::DynMcb8]).run();
        let taxed = Campaign::over(&scens, &[Algorithm::DynMcb8])
            .penalty(300.0)
            .run();
        assert!(
            taxed.cells[0][0].max_stretch >= free.cells[0][0].max_stretch,
            "penalty cannot help DynMCB8"
        );
    }

    #[test]
    fn custom_registry_specs_run() {
        let mut reg = SchedulerRegistry::builtin();
        reg.register_fn("never-heard-of-it", "custom", &[], |_| {
            Ok(Box::new(dfrs_sched::GreedyPmtn::new()))
        });
        let scens = scenarios(1, 15, 0.4, 3);
        let result = Campaign::with_registry(&scens, reg, ["never-heard-of-it"])
            .unwrap()
            .run();
        assert_eq!(result.cells[0][0].name, "Greedy-pmtn");
    }

    #[test]
    fn unknown_spec_fails_at_construction() {
        let scens = scenarios(1, 10, 0.4, 3);
        assert!(Campaign::new(&scens, ["not-a-scheduler"]).is_err());
    }

    #[test]
    fn cost_aware_order_dispatches_expensive_cells_first() {
        let scens = scenarios(1, 15, 0.4, 3);
        // fcfs (cheapest) listed first; dynmcb8 (most expensive) last.
        let campaign = Campaign::new(&scens, ["fcfs", "greedy-pmtn", "dynmcb8"]).unwrap();
        let order = campaign.unit_order();
        assert_eq!(order, vec![2, 1, 0], "descending cost, ties by index");
        // A single worker therefore *completes* cells in cost order.
        let completion_order = Mutex::new(Vec::new());
        campaign
            .on_cell(|u| completion_order.lock().unwrap().push(u.spec))
            .run();
        assert_eq!(*completion_order.lock().unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn cost_aware_order_preserves_matrix_alignment_and_fingerprint() {
        let scens = scenarios(2, 20, 0.5, 9);
        let specs = ["dynmcb8-per:t=300", "fcfs", "greedy-pmtn"];
        let serial = Campaign::new(&scens, specs).unwrap().threads(1).run();
        let parallel = Campaign::new(&scens, specs).unwrap().threads(4).run();
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
        for row in &serial.cells {
            assert_eq!(row[1].name, "FCFS", "cells stay index-aligned");
        }
    }

    #[test]
    fn cells_record_wall_times() {
        let scens = scenarios(1, 15, 0.4, 3);
        let result = Campaign::new(&scens, ["greedy-pmtn"]).unwrap().run();
        assert!(result.cells[0][0].wall_secs > 0.0);
        // Wall time never leaks into the deterministic fingerprint.
        assert!(!result.cells[0][0]
            .fingerprint()
            .contains(&format!("{:016x}", result.cells[0][0].wall_secs.to_bits())));
    }
}
