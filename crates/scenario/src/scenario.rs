//! One simulatable workload and the fluent builder that materializes it
//! from any of the paper's workload sources.

use std::fmt;

use dfrs_core::ids::NodeId;
use dfrs_core::{ClusterSpec, CoreError, JobSpec};
use dfrs_sched::{SchedulerRegistry, SchedulerSpec, SpecError};
use dfrs_sim::{
    simulate, simulate_stream, FailurePolicy, MigrationMode, NodeEvent, RecordSink, Scheduler,
    SimConfig, SimError, SimOutcome, SliceSource,
};
use dfrs_workload::{Annotator, DowneyModel, Hpc2nLikeGenerator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seed salt separating failure-trace randomness from workload
/// generation: the same builder seed yields the same jobs whether or
/// not a failure model is attached.
const FAILURE_SEED_SALT: u64 = 0xFA11_0E5B_94D0_49BB;

/// Seed salt separating GPU-demand annotation from workload generation
/// and failure-trace randomness: attaching a GPU fraction never changes
/// which jobs are generated or when nodes fail.
const GPU_SEED_SALT: u64 = 0x6B0_D3A1_57E2_C4F7;

/// How the platform misbehaves: the scenario-level description that
/// materializes into the engine's [`NodeEvent`] availability trace.
///
/// Deterministic: the events are a pure function of
/// `(model, cluster, jobs, seed)` — two builds with equal state yield
/// byte-identical traces, independent of the workload source's own
/// randomness.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FailureModel {
    /// The paper's static cluster: nodes are eternal.
    #[default]
    None,
    /// Independent per-node exponential failure/repair churn: each node
    /// alternates an up-time drawn from `Exp(mean = mtbf_secs)` with a
    /// down-time drawn from `Exp(mean = mttr_secs)`. Failures are
    /// generated up to `horizon_secs` (default: 1.5 × the trace's last
    /// submission + its longest runtime, so churn covers the whole
    /// plausible execution); every failure's repair is emitted even
    /// past the horizon — an outage is never permanent.
    Exp {
        /// Mean time between failures per node (seconds).
        mtbf_secs: f64,
        /// Mean time to repair per node (seconds).
        mttr_secs: f64,
        /// Explicit churn horizon override (seconds).
        horizon_secs: Option<f64>,
    },
    /// An explicit availability trace, verbatim (replays of recorded
    /// outages, crafted tests). Every outage must end: a trace whose
    /// last event for some node is a failure is rejected at build time,
    /// because a permanently shrunken cluster can hang a simulation (a
    /// job wider than the survivors retries forever). Append a far-
    /// future repair to model an outage that outlives the workload.
    Trace {
        /// The events, in any order; the engine orders them by time.
        events: Vec<NodeEvent>,
    },
}

impl FailureModel {
    /// Convenience constructor for the exponential model with the
    /// default horizon.
    pub fn exp(mtbf_secs: f64, mttr_secs: f64) -> Self {
        FailureModel::Exp {
            mtbf_secs,
            mttr_secs,
            horizon_secs: None,
        }
    }

    /// Materialize the model into an engine availability trace for
    /// `cluster` and `jobs`, deterministically from `seed`.
    fn events(
        &self,
        cluster: &ClusterSpec,
        jobs: &[JobSpec],
        seed: u64,
    ) -> Result<Vec<NodeEvent>, ScenarioError> {
        match self {
            FailureModel::None => Ok(Vec::new()),
            FailureModel::Trace { events } => {
                for ev in events {
                    if ev.node.index() >= cluster.nodes as usize {
                        return Err(ScenarioError::InvalidFailureModel(format!(
                            "availability trace references {} but the cluster has {} nodes",
                            ev.node, cluster.nodes
                        )));
                    }
                    if !(ev.time.is_finite() && ev.time >= 0.0) {
                        return Err(ScenarioError::InvalidFailureModel(format!(
                            "availability trace has invalid event time {}",
                            ev.time
                        )));
                    }
                }
                let mut sorted = events.clone();
                sorted.sort_by(|a, b| a.time.total_cmp(&b.time));
                // Reject permanent outages: the last transition of
                // every touched node must be a repair, else a job wider
                // than the survivors would retry (or deadlock) forever.
                let mut last_up: std::collections::BTreeMap<u32, bool> =
                    std::collections::BTreeMap::new();
                for ev in &sorted {
                    last_up.insert(ev.node.0, ev.up);
                }
                if let Some((node, _)) = last_up.iter().find(|(_, &up)| !up) {
                    return Err(ScenarioError::InvalidFailureModel(format!(
                        "availability trace leaves node {node} down forever (its last event \
                         is a failure); append a repair — outages must end"
                    )));
                }
                Ok(sorted)
            }
            FailureModel::Exp {
                mtbf_secs,
                mttr_secs,
                horizon_secs,
            } => {
                for (what, v) in [("mtbf_secs", *mtbf_secs), ("mttr_secs", *mttr_secs)] {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(ScenarioError::InvalidFailureModel(format!(
                            "{what} must be positive and finite, got {v}"
                        )));
                    }
                }
                let horizon = match horizon_secs {
                    Some(h) if !(h.is_finite() && *h > 0.0) => {
                        return Err(ScenarioError::InvalidFailureModel(format!(
                            "horizon_secs must be positive and finite, got {h}"
                        )));
                    }
                    Some(h) => *h,
                    None => default_horizon(jobs),
                };
                let mut rng = SmallRng::seed_from_u64(seed ^ FAILURE_SEED_SALT);
                let exp_draw = |rng: &mut SmallRng, mean: f64| -> f64 {
                    // Inverse-CDF sampling; `1 - u` keeps ln's argument
                    // in (0, 1].
                    let u: f64 = rng.gen_range(0.0..1.0);
                    -mean * (1.0 - u).ln()
                };
                let mut events = Vec::new();
                for node in 0..cluster.nodes {
                    // One sequential stream: per-node draws are a fixed
                    // prefix of the stream given the node order, so the
                    // trace is deterministic in (seed, cluster size).
                    let mut t = exp_draw(&mut rng, *mtbf_secs);
                    while t < horizon {
                        events.push(NodeEvent {
                            time: t,
                            node: NodeId(node),
                            up: false,
                        });
                        t += exp_draw(&mut rng, *mttr_secs);
                        // The matching repair is always emitted, even
                        // past the horizon: outages end.
                        events.push(NodeEvent {
                            time: t,
                            node: NodeId(node),
                            up: true,
                        });
                        t += exp_draw(&mut rng, *mtbf_secs);
                    }
                }
                events.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.node.0.cmp(&b.node.0)));
                Ok(events)
            }
        }
    }
}

/// Default churn horizon: generous cover of the execution window
/// implied by the jobs themselves (1.5 × last submission + longest
/// dedicated runtime). Zero when there are no jobs.
fn default_horizon(jobs: &[JobSpec]) -> f64 {
    let last_submit = jobs.iter().map(|j| j.submit_time).fold(0.0, f64::max);
    let longest = jobs.iter().map(|j| j.oracle_runtime()).fold(0.0, f64::max);
    1.5 * (last_submit + longest)
}

/// Where a scenario's jobs come from.
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// The Lublin-Feitelson model (the paper's synthetic family).
    Lublin {
        /// Jobs to generate.
        jobs: usize,
    },
    /// The Downey model (cross-model robustness checks).
    Downey {
        /// Jobs to generate.
        jobs: usize,
    },
    /// The synthetic HPC2N-like generator, one trace per week.
    Hpc2nLike {
        /// Weeks to synthesize.
        weeks: u32,
        /// Weekly job volume (the real trace averages ≈ 1,100).
        jobs_per_week: f64,
    },
    /// SWF text processed by the paper's HPC2N rules, one trace per
    /// week.
    SwfText {
        /// Raw Standard-Workload-Format content.
        text: String,
    },
    /// An explicit job list (crafted tests, replays).
    Jobs {
        /// Jobs, sorted by submission with dense ids.
        jobs: Vec<JobSpec>,
    },
}

/// Why a [`ScenarioBuilder`] could not produce a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// No workload source was set.
    MissingSource,
    /// The source yielded no traces at all (e.g. zero HPC2N weeks, an
    /// SWF file with no schedulable jobs).
    NoTraces,
    /// [`ScenarioBuilder::build`] on a source that yields several
    /// traces (use [`ScenarioBuilder::build_all`]).
    MultipleTraces {
        /// Traces the source produced.
        count: usize,
    },
    /// Target offered load must be positive and finite.
    InvalidLoad(f64),
    /// GPU-annotated job fraction must lie in `[0, 1]`.
    InvalidGpuFraction(f64),
    /// The failure model is malformed (non-positive MTBF/MTTR, a trace
    /// referencing nodes outside the cluster, …).
    InvalidFailureModel(String),
    /// Workload generation, annotation, or SWF parsing failed.
    Workload(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::MissingSource => {
                write!(
                    f,
                    "no workload source set (lublin/downey/hpc2n_like/swf_text/jobs)"
                )
            }
            ScenarioError::NoTraces => write!(f, "workload source produced no traces"),
            ScenarioError::MultipleTraces { count } => write!(
                f,
                "source produced {count} traces; use build_all() for multi-trace sources"
            ),
            ScenarioError::InvalidLoad(l) => write!(f, "invalid offered load {l}"),
            ScenarioError::InvalidGpuFraction(g) => {
                write!(f, "invalid GPU job fraction {g} (must be in [0, 1])")
            }
            ScenarioError::InvalidFailureModel(e) => write!(f, "invalid failure model: {e}"),
            ScenarioError::Workload(e) => write!(f, "workload construction failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<CoreError> for ScenarioError {
    fn from(e: CoreError) -> Self {
        ScenarioError::Workload(e.to_string())
    }
}

/// One simulatable workload: cluster, jobs, and engine config, plus the
/// identity metadata the experiment tables use.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable identity, e.g. `scaled-s3-load0.5`.
    pub label: String,
    /// Target offered load, when the workload was load-scaled.
    pub load: Option<f64>,
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Jobs, sorted by submission with dense ids.
    pub jobs: Vec<JobSpec>,
    /// Engine configuration for runs of this scenario.
    pub config: SimConfig,
}

impl Scenario {
    /// Run one scheduler spec (parsed against the built-in registry)
    /// over this scenario.
    ///
    /// ```
    /// use dfrs_scenario::ScenarioBuilder;
    ///
    /// let out = ScenarioBuilder::new()
    ///     .lublin(30)
    ///     .load(0.5)
    ///     .seed(7)
    ///     .build()
    ///     .unwrap()
    ///     .run("greedy-pmtn")
    ///     .unwrap();
    /// assert_eq!(out.records.len(), 30);
    /// ```
    pub fn run(&self, spec: &str) -> Result<SimOutcome, SpecError> {
        let registry = SchedulerRegistry::builtin();
        let spec = registry.parse(spec)?;
        self.run_spec(&registry, &spec)
    }

    /// Run a parsed spec built through an explicit registry (use this
    /// for user-registered schedulers).
    pub fn run_spec(
        &self,
        registry: &SchedulerRegistry,
        spec: &SchedulerSpec,
    ) -> Result<SimOutcome, SpecError> {
        let mut sched = registry.build(spec)?;
        Ok(self.run_scheduler(sched.as_mut()))
    }

    /// Run an already-constructed scheduler.
    pub fn run_scheduler(&self, scheduler: &mut dyn Scheduler) -> SimOutcome {
        simulate(self.cluster, &self.jobs, scheduler, &self.config)
    }

    /// The scenario's workload as a pull-based submission feed — the
    /// adapter campaign cells and the serve daemon's replay mode borrow
    /// instead of cloning the job vector. Each pull clones one
    /// [`JobSpec`]; the vector itself is never copied.
    pub fn stream(&self) -> SliceSource<'_> {
        SliceSource::new(&self.jobs)
    }

    /// Run an already-constructed scheduler over the streamed workload,
    /// pushing each completed job's record into `sink` instead of
    /// materializing them. Aggregates are bit-identical to
    /// [`run_scheduler`](Self::run_scheduler); the returned outcome's
    /// `records` vector is empty.
    ///
    /// # Errors
    /// Returns [`SimError`] when the engine cannot make progress
    /// (deadlock, event cap) — the conditions
    /// [`run_scheduler`](Self::run_scheduler) panics on.
    pub fn run_streamed(
        &self,
        scheduler: &mut dyn Scheduler,
        sink: &mut dyn RecordSink,
    ) -> Result<SimOutcome, SimError> {
        simulate_stream(
            self.cluster,
            &mut self.stream(),
            sink,
            scheduler,
            &self.config,
        )
    }

    /// This scenario with a different engine config.
    pub fn with_config(&self, config: SimConfig) -> Scenario {
        Scenario {
            config,
            ..self.clone()
        }
    }

    /// This scenario with its arrival gaps rescaled to `load` (the
    /// paper's scaled family). Cheaper than rebuilding from the source
    /// when fanning one base trace out over a load grid; the job mix is
    /// untouched, only the spacing changes.
    pub fn scaled_to(&self, load: f64) -> Result<Scenario, ScenarioError> {
        if !(load > 0.0 && load.is_finite()) {
            return Err(ScenarioError::InvalidLoad(load));
        }
        let scaled = self.trace().scale_to_load(load)?;
        Ok(Scenario {
            label: self.label.clone(),
            load: Some(load),
            cluster: self.cluster,
            jobs: scaled.jobs().to_vec(),
            config: self.config.clone(),
        })
    }

    /// The jobs as a [`Trace`] (workload characterization helpers).
    pub fn trace(&self) -> Trace {
        Trace::new(self.cluster, self.jobs.clone()).expect("scenario jobs form a valid trace")
    }
}

/// Fluent construction of [`Scenario`]s: pick a workload source, then
/// optionally a cluster, a target load, a seed, and engine knobs.
///
/// `build()` materializes the workload deterministically from the seed;
/// the same builder state always yields byte-identical scenarios.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    label: Option<String>,
    cluster: Option<ClusterSpec>,
    source: Option<WorkloadSource>,
    load: Option<f64>,
    seed: u64,
    config: SimConfig,
    failures: FailureModel,
    gpu_frac: Option<f64>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// A builder with no source, seed 1, and the default [`SimConfig`]
    /// (no penalty).
    pub fn new() -> Self {
        ScenarioBuilder {
            label: None,
            cluster: None,
            source: None,
            load: None,
            seed: 1,
            config: SimConfig::default(),
            failures: FailureModel::None,
            gpu_frac: None,
        }
    }

    /// Human-readable label (defaults to a description of the source).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The cluster to simulate on. Defaults to the source's natural
    /// cluster: [`ClusterSpec::synthetic`] for the models,
    /// [`ClusterSpec::hpc2n`] for the HPC2N sources.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Source: `jobs` Lublin-model jobs.
    pub fn lublin(mut self, jobs: usize) -> Self {
        self.source = Some(WorkloadSource::Lublin { jobs });
        self
    }

    /// Source: `jobs` Downey-model jobs.
    pub fn downey(mut self, jobs: usize) -> Self {
        self.source = Some(WorkloadSource::Downey { jobs });
        self
    }

    /// Source: `weeks` HPC2N-like one-week traces (multi-trace; use
    /// [`build_all`](Self::build_all)).
    pub fn hpc2n_like(mut self, weeks: u32, jobs_per_week: f64) -> Self {
        self.source = Some(WorkloadSource::Hpc2nLike {
            weeks,
            jobs_per_week,
        });
        self
    }

    /// Source: SWF text through the paper's HPC2N preprocessing, split
    /// into one-week traces (multi-trace; use
    /// [`build_all`](Self::build_all)).
    pub fn swf_text(mut self, text: impl Into<String>) -> Self {
        self.source = Some(WorkloadSource::SwfText { text: text.into() });
        self
    }

    /// Source: an explicit job list.
    pub fn jobs(mut self, jobs: Vec<JobSpec>) -> Self {
        self.source = Some(WorkloadSource::Jobs { jobs });
        self
    }

    /// Any [`WorkloadSource`] value directly.
    pub fn source(mut self, source: WorkloadSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Rescale arrival gaps to this offered load (the paper's scaled
    /// family). Applies to every trace the source yields.
    pub fn load(mut self, load: f64) -> Self {
        self.load = Some(load);
        self
    }

    /// RNG seed for workload generation (default 1). The seed fully
    /// determines the jobs; two builds with equal state are identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Full engine configuration (replaces previous config calls).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Rescheduling penalty in seconds (Section IV-A; the paper uses
    /// 0 or 300).
    pub fn penalty(mut self, penalty: f64) -> Self {
        self.config.penalty = penalty;
        self
    }

    /// Migration mechanism for running jobs (the paper's pessimistic
    /// stop-and-copy, or live migration for what-if studies). Previously
    /// reachable only by constructing a raw [`SimConfig`].
    pub fn migration(mut self, mode: MigrationMode) -> Self {
        self.config.migration_mode = mode;
        self
    }

    /// Platform failure/repair dynamics (default: none — the paper's
    /// static cluster). The model materializes deterministically at
    /// [`build`](Self::build) time into the engine's availability
    /// trace, seeded independently of workload generation: attaching a
    /// failure model never changes the jobs.
    pub fn failures(mut self, model: FailureModel) -> Self {
        self.failures = model;
        self
    }

    /// What a node failure does to the jobs it strikes (default:
    /// [`FailurePolicy::Restart`], the paper-pessimistic choice).
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.config.failure_policy = policy;
        self
    }

    /// Annotate this fraction of jobs (in `[0, 1]`) with a GPU demand
    /// drawn uniformly from `[0.05, 1]` per task, deterministically
    /// from the seed (salted independently of workload generation and
    /// failure churn — the jobs, their CPU/memory demands, and the
    /// availability trace are byte-identical with or without this
    /// call). The default (and `0.0`) leaves every job GPU-free, which
    /// is the paper's two-resource workload exactly.
    pub fn gpu_frac(mut self, frac: f64) -> Self {
        self.gpu_frac = Some(frac);
        self
    }

    /// Run full invariant validation after every plan (tests).
    pub fn validate(mut self, validate: bool) -> Self {
        self.config.validate = validate;
        self
    }

    /// Materialize a single scenario. Errors if no source was set, if
    /// the source yields more than one trace (HPC2N weeks, SWF files —
    /// use [`build_all`](Self::build_all)), or if generation fails.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let mut all = self.build_all()?;
        match all.len() {
            0 => Err(ScenarioError::NoTraces),
            1 => Ok(all.pop().expect("len checked")),
            count => Err(ScenarioError::MultipleTraces { count }),
        }
    }

    /// Materialize every scenario the source yields (single-trace
    /// sources yield exactly one; week-split sources yield one per
    /// week, labeled `{label}-week{i}`).
    pub fn build_all(self) -> Result<Vec<Scenario>, ScenarioError> {
        if let Some(load) = self.load {
            if !(load > 0.0 && load.is_finite()) {
                return Err(ScenarioError::InvalidLoad(load));
            }
        }
        if let Some(frac) = self.gpu_frac {
            if !((0.0..=1.0).contains(&frac) && frac.is_finite()) {
                return Err(ScenarioError::InvalidGpuFraction(frac));
            }
        }
        let source = self.source.as_ref().ok_or(ScenarioError::MissingSource)?;
        let (traces, base_label) = self.materialize(source)?;
        let multi = traces.len() > 1;
        let mut out = Vec::with_capacity(traces.len());
        for (i, trace) in traces.into_iter().enumerate() {
            let trace = match self.load {
                Some(load) => trace.scale_to_load(load)?,
                None => trace,
            };
            let label = match (&self.label, multi) {
                (Some(l), false) => l.clone(),
                (Some(l), true) => format!("{l}-week{i}"),
                (None, false) => base_label.clone(),
                (None, true) => format!("{base_label}-week{i}"),
            };
            let mut config = self.config.clone();
            // Materialized against the *scaled* jobs: the default
            // horizon tracks the actual submission window. Per-week
            // traces draw distinct churn via the week-offset seed.
            config.node_events = self.failures.events(
                &trace.cluster,
                trace.jobs(),
                self.seed.wrapping_add(i as u64),
            )?;
            let mut jobs = trace.jobs().to_vec();
            if let Some(frac) = self.gpu_frac {
                if frac > 0.0 {
                    let mut rng =
                        SmallRng::seed_from_u64(self.seed.wrapping_add(i as u64) ^ GPU_SEED_SALT);
                    for j in jobs.iter_mut() {
                        if rng.gen_range(0.0..1.0) < frac {
                            let g = rng.gen_range(0.05..=1.0);
                            *j = j.with_gpu(g).expect("drawn GPU demand is in (0, 1]");
                        }
                    }
                }
            }
            out.push(Scenario {
                label,
                load: self.load,
                cluster: trace.cluster,
                jobs,
                config,
            });
        }
        Ok(out)
    }

    fn materialize(&self, source: &WorkloadSource) -> Result<(Vec<Trace>, String), ScenarioError> {
        Ok(match source {
            WorkloadSource::Lublin { jobs } => {
                let cluster = self.cluster.unwrap_or_else(ClusterSpec::synthetic);
                let model = LublinModel::for_cluster(&cluster);
                let mut rng = SmallRng::seed_from_u64(self.seed);
                let raws = model.generate(*jobs, &mut rng);
                let specs = Annotator::new(cluster).annotate(&raws, &mut rng)?;
                (
                    vec![Trace::new(cluster, specs)?],
                    format!("lublin-s{}", self.seed),
                )
            }
            WorkloadSource::Downey { jobs } => {
                let cluster = self.cluster.unwrap_or_else(ClusterSpec::synthetic);
                let model = DowneyModel::for_cluster(&cluster);
                let mut rng = SmallRng::seed_from_u64(self.seed);
                let raws = model.generate(*jobs, &mut rng);
                let specs = Annotator::new(cluster).annotate(&raws, &mut rng)?;
                (
                    vec![Trace::new(cluster, specs)?],
                    format!("downey-s{}", self.seed),
                )
            }
            WorkloadSource::Hpc2nLike {
                weeks,
                jobs_per_week,
            } => {
                let mut rng = SmallRng::seed_from_u64(self.seed);
                let gen = Hpc2nLikeGenerator {
                    jobs_per_week: *jobs_per_week,
                    ..Hpc2nLikeGenerator::default()
                };
                (gen.generate_weeks(*weeks, &mut rng), "hpc2n".to_string())
            }
            WorkloadSource::SwfText { text } => {
                let (_, records) = dfrs_workload::parse_swf(text)?;
                let cluster = self.cluster.unwrap_or_else(ClusterSpec::hpc2n);
                let trace = dfrs_workload::hpc2n_preprocess(&records, cluster);
                (trace.split_weeks(), "hpc2n-swf".to_string())
            }
            WorkloadSource::Jobs { jobs } => {
                let cluster = self.cluster.unwrap_or_else(ClusterSpec::synthetic);
                (vec![Trace::new(cluster, jobs.clone())?], "jobs".to_string())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::ids::JobId;

    #[test]
    fn lublin_build_is_deterministic() {
        let mk = || {
            ScenarioBuilder::new()
                .lublin(40)
                .load(0.6)
                .seed(9)
                .build()
                .unwrap()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.label, "lublin-s9");
        assert_eq!(a.load, Some(0.6));
        let measured = a.trace().offered_load();
        assert!((measured - 0.6).abs() < 1e-6, "{measured}");
    }

    #[test]
    fn multi_trace_sources_require_build_all() {
        let b = ScenarioBuilder::new().hpc2n_like(3, 120.0).seed(4);
        assert!(matches!(
            b.clone().build(),
            Err(ScenarioError::MultipleTraces { count: 3 })
        ));
        let all = b.build_all().unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].label, "hpc2n-week0");
        assert_eq!(all[0].cluster.nodes, 120);
    }

    #[test]
    fn crafted_jobs_and_run() {
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let jobs = vec![
            JobSpec::new(JobId(0), 0.0, 2, 0.25, 0.1, 600.0).unwrap(),
            JobSpec::new(JobId(1), 0.0, 2, 0.25, 0.1, 600.0).unwrap(),
        ];
        let s = ScenarioBuilder::new()
            .label("crafted")
            .cluster(cluster)
            .jobs(jobs)
            .build()
            .unwrap();
        let out = s.run("greedy-pmtn").unwrap();
        assert_eq!(out.max_stretch, 1.0);
        assert!(s.run("no-such-sched").is_err());
    }

    #[test]
    fn builder_errors() {
        assert!(matches!(
            ScenarioBuilder::new().build(),
            Err(ScenarioError::MissingSource)
        ));
        assert!(matches!(
            ScenarioBuilder::new().lublin(10).load(-1.0).build(),
            Err(ScenarioError::InvalidLoad(_))
        ));
    }

    #[test]
    fn penalty_flows_into_config() {
        let s = ScenarioBuilder::new()
            .lublin(10)
            .penalty(300.0)
            .validate(true)
            .build()
            .unwrap();
        assert_eq!(s.config.penalty, 300.0);
        assert!(s.config.validate);
    }

    #[test]
    fn failure_model_is_deterministic_and_leaves_jobs_alone() {
        let mk = |failures: FailureModel| {
            ScenarioBuilder::new()
                .lublin(30)
                .load(0.5)
                .seed(9)
                .failures(failures)
                .build()
                .unwrap()
        };
        let plain = mk(FailureModel::None);
        let churn_a = mk(FailureModel::exp(50_000.0, 4_000.0));
        let churn_b = mk(FailureModel::exp(50_000.0, 4_000.0));
        assert_eq!(plain.jobs, churn_a.jobs, "failures never change the jobs");
        assert!(plain.config.node_events.is_empty());
        assert!(!churn_a.config.node_events.is_empty());
        assert_eq!(churn_a.config.node_events, churn_b.config.node_events);
        // Events are time-ordered and every failure has a repair.
        let evs = &churn_a.config.node_events;
        assert!(evs.windows(2).all(|w| w[0].time <= w[1].time));
        let downs = evs.iter().filter(|e| !e.up).count();
        let ups = evs.iter().filter(|e| e.up).count();
        assert_eq!(downs, ups, "outages always end");
    }

    #[test]
    fn explicit_availability_traces_are_validated() {
        let jobs = vec![JobSpec::new(JobId(0), 0.0, 1, 0.25, 0.1, 100.0).unwrap()];
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let bad_node = ScenarioBuilder::new()
            .cluster(cluster)
            .jobs(jobs.clone())
            .failures(FailureModel::Trace {
                events: vec![dfrs_sim::NodeEvent {
                    time: 1.0,
                    node: dfrs_core::ids::NodeId(7),
                    up: false,
                }],
            })
            .build();
        assert!(matches!(
            bad_node,
            Err(ScenarioError::InvalidFailureModel(_))
        ));
        assert!(matches!(
            ScenarioBuilder::new()
                .lublin(5)
                .failures(FailureModel::exp(-1.0, 10.0))
                .build(),
            Err(ScenarioError::InvalidFailureModel(_))
        ));
        // Permanent outages are rejected: the last event for node 0 is
        // a failure, which could hang a too-wide workload forever.
        let permanent = ScenarioBuilder::new()
            .cluster(cluster)
            .jobs(jobs)
            .failures(FailureModel::Trace {
                events: vec![
                    dfrs_sim::NodeEvent {
                        time: 1.0,
                        node: dfrs_core::ids::NodeId(0),
                        up: false,
                    },
                    dfrs_sim::NodeEvent {
                        time: 2.0,
                        node: dfrs_core::ids::NodeId(0),
                        up: true,
                    },
                    dfrs_sim::NodeEvent {
                        time: 3.0,
                        node: dfrs_core::ids::NodeId(0),
                        up: false,
                    },
                ],
            })
            .build();
        match permanent {
            Err(ScenarioError::InvalidFailureModel(msg)) => {
                assert!(msg.contains("down forever"), "{msg}")
            }
            other => panic!("expected permanent-outage rejection, got {other:?}"),
        }
    }

    #[test]
    fn failure_policy_and_migration_flow_into_config() {
        let s = ScenarioBuilder::new()
            .lublin(10)
            .failure_policy(dfrs_sim::FailurePolicy::PausePreserve)
            .migration(dfrs_sim::MigrationMode::Live { freeze_secs: 60.0 })
            .build()
            .unwrap();
        assert_eq!(
            s.config.failure_policy,
            dfrs_sim::FailurePolicy::PausePreserve
        );
        assert_eq!(
            s.config.migration_mode,
            dfrs_sim::MigrationMode::Live { freeze_secs: 60.0 }
        );
    }

    #[test]
    fn churn_scenario_runs_end_to_end() {
        let out = ScenarioBuilder::new()
            .lublin(25)
            .load(0.6)
            .seed(4)
            .failures(FailureModel::exp(30_000.0, 2_000.0))
            .validate(true)
            .build()
            .unwrap()
            .run("greedy-pmtn")
            .unwrap();
        assert_eq!(out.records.len(), 25);
        assert!(out.down_node_seconds > 0.0, "churn actually happened");
    }

    #[test]
    fn gpu_frac_is_deterministic_and_leaves_cpu_mem_alone() {
        let mk = |frac: Option<f64>| {
            let b = ScenarioBuilder::new().lublin(40).load(0.5).seed(9);
            match frac {
                Some(f) => b.gpu_frac(f),
                None => b,
            }
            .build()
            .unwrap()
        };
        let plain = mk(None);
        let zero = mk(Some(0.0));
        let gpu_a = mk(Some(0.5));
        let gpu_b = mk(Some(0.5));
        assert_eq!(plain.jobs, zero.jobs, "frac 0 is the identity");
        assert_eq!(gpu_a.jobs, gpu_b.jobs, "annotation is deterministic");
        let annotated = gpu_a.jobs.iter().filter(|j| j.gpu_need > 0.0).count();
        assert!(
            annotated > 0 && annotated < gpu_a.jobs.len(),
            "a strict subset carries GPU demand, got {annotated}/40"
        );
        for (p, g) in plain.jobs.iter().zip(gpu_a.jobs.iter()) {
            assert_eq!(p.id, g.id);
            assert_eq!(p.submit_time, g.submit_time);
            assert_eq!(p.cpu_need, g.cpu_need);
            assert_eq!(p.mem_req, g.mem_req);
            assert!(g.gpu_need >= 0.0 && g.gpu_need <= 1.0);
        }
        assert!(matches!(
            ScenarioBuilder::new().lublin(5).gpu_frac(1.5).build(),
            Err(ScenarioError::InvalidGpuFraction(_))
        ));
    }

    #[test]
    fn gpu_scenario_runs_under_drf() {
        let out = ScenarioBuilder::new()
            .lublin(20)
            .load(0.6)
            .seed(3)
            .gpu_frac(0.4)
            .validate(true)
            .build()
            .unwrap()
            .run("dynmcb8-drf")
            .unwrap();
        assert_eq!(out.records.len(), 20);
    }

    #[test]
    fn swf_text_round_trip() {
        let swf = "1 0 0 3600 4 -1 209715 4 -1 -1 1 1 1 -1 1 -1 -1 -1\n\
                   2 700000 0 60 1 -1 -1 1 -1 -1 1 1 1 -1 1 -1 -1 -1\n";
        let all = ScenarioBuilder::new().swf_text(swf).build_all().unwrap();
        assert_eq!(all.len(), 2, "two weeks, one job each");
        assert_eq!(all[1].label, "hpc2n-swf-week1");
    }
}
