//! **Extension beyond the paper** (its Conclusion sketches it as future
//! work): *"a strategy for reducing the yield of long running jobs as a
//! way to improve fairness and further decrease maximum stretch …
//! inspired by thread scheduling in operating systems kernels."*
//!
//! [`DynMcb8FairPer`] is `DYNMCB8-PER` with a **long-job damping** pass
//! replacing the plain average-yield improvement:
//!
//! 1. the usual eviction loop + yield binary search produce a uniform
//!    feasible yield `Y` and placements;
//! 2. jobs whose virtual time exceeds `vt_threshold` get their yield
//!    *reduced* to `max(floor, Y · (threshold / vt)^alpha)` — reductions
//!    are always feasible;
//! 3. the freed CPU is redistributed by the average-yield improvement
//!    restricted to the *young* jobs first, then offered to everyone.
//!
//! With `alpha = 0` this degenerates exactly to `DYNMCB8-PER`. The
//! default `threshold = 3600 s`, `alpha = 0.5` mirrors multi-level
//! feedback queues: a job that has run 4 hours cedes half its share.

use dfrs_core::approx;
use dfrs_core::constants::{DEFAULT_PERIOD_SECS, MIN_STRETCH_PER_YIELD};
use dfrs_core::ids::{JobId, NodeId};
use dfrs_sim::{Plan, SchedEvent, Scheduler, SimState};

use crate::common::AllocSet;
use crate::dynmcb8::{packed_allocation, PackerChoice, RepackScratch};

/// Periodic repacker with long-job yield damping (see module docs).
#[derive(Debug)]
pub struct DynMcb8FairPer {
    period: f64,
    /// Virtual time (seconds) beyond which a job is considered
    /// long-running.
    pub vt_threshold: f64,
    /// Damping strength; 0 disables damping.
    pub alpha: f64,
    packer: PackerChoice,
    scratch: RepackScratch,
}

impl DynMcb8FairPer {
    /// Paper-default period with the default damping (τ = 1 h, α = ½).
    pub fn new() -> Self {
        Self::with_params(DEFAULT_PERIOD_SECS, 3_600.0, 0.5)
    }

    /// Fully parameterized constructor.
    pub fn with_params(period: f64, vt_threshold: f64, alpha: f64) -> Self {
        assert!(period > 0.0 && vt_threshold > 0.0 && alpha >= 0.0);
        DynMcb8FairPer {
            period,
            vt_threshold,
            alpha,
            packer: PackerChoice::Mcb8,
            scratch: RepackScratch::default(),
        }
    }

    /// Enable or disable cross-event warm starting (on by default;
    /// results are bit-identical either way — disabling exists for the
    /// warm-vs-cold benchmarks, see [`crate::DynMcb8::warm`]).
    pub fn warm(mut self, enabled: bool) -> Self {
        self.scratch.memo.set_enabled(enabled);
        self
    }

    /// The damped yield of a job with virtual time `vt`, given base `y`.
    fn damped(&self, y: f64, vt: f64) -> f64 {
        if self.alpha == 0.0 || vt <= self.vt_threshold {
            return y;
        }
        (y * (self.vt_threshold / vt).powf(self.alpha))
            .max(MIN_STRETCH_PER_YIELD)
            .min(y)
    }

    fn repack(&mut self, state: &SimState) -> Plan {
        let packed = packed_allocation(state, self.packer.packer(), &mut self.scratch);
        let nodes = state.cluster.nodes().len();

        // Base yields: uniform Y, damped for long-running jobs.
        let mut yields: Vec<f64> = packed
            .placements
            .iter()
            .map(|(id, _)| self.damped(packed.yield_, state.job(*id).virtual_time))
            .collect();

        // Redistribute: improvement restricted to young jobs first.
        let mut set_young = AllocSet::new(nodes);
        let mut young_idx = Vec::new();
        for (i, (id, placement)) in packed.placements.iter().enumerate() {
            if state.job(*id).virtual_time <= self.vt_threshold {
                let spec = &state.job(*id).spec;
                set_young.push(*id, spec.cpu_need, spec.gpu_need, placement.clone());
                young_idx.push(i);
            }
        }
        if !set_young.is_empty() {
            // Feasible head-room for young jobs: account the damped
            // allocation of long jobs as background load by lowering the
            // improvement's starting point appropriately. We approximate
            // by running the improvement on the *full* set with the
            // damped yields as the floor; AllocSet starts from a uniform
            // base, so use the smallest damped yield as base and then
            // re-damp long jobs afterwards (reductions stay feasible).
            let mut set_all = AllocSet::new(nodes);
            for (id, placement) in &packed.placements {
                let spec = &state.job(*id).spec;
                set_all.push(*id, spec.cpu_need, spec.gpu_need, placement.clone());
            }
            let improved = set_all.optimized_yields(packed.yield_);
            for (i, (_, y)) in improved.iter().enumerate() {
                let vt = state.job(packed.placements[i].0).virtual_time;
                yields[i] = self.damped(*y, vt).max(yields[i].min(*y));
            }
        }

        // Final GPU feasibility pass: the damped base path above never
        // ran through `AllocSet`'s clamp, so clamp the assembled
        // assignments here (a no-op on GPU-free workloads, and on
        // yields the improvement path already clamped).
        let mut assignments: Vec<(JobId, f64, Vec<NodeId>)> = packed
            .placements
            .into_iter()
            .zip(yields)
            .map(|((id, placement), yld)| (id, yld, placement))
            .collect();
        crate::common::gpu_clamp_assignments(
            nodes,
            |id| state.job(id).spec.gpu_need,
            &mut assignments,
        );
        let mut plan = Plan::noop();
        for id in &packed.evicted_running {
            plan = plan.pause(*id);
        }
        for (id, yld, placement) in assignments {
            debug_assert!(yld > 0.0 && yld <= 1.0 + approx::EPS);
            plan = plan.run(id, placement, yld.min(1.0));
        }
        plan
    }
}

impl Default for DynMcb8FairPer {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for DynMcb8FairPer {
    fn name(&self) -> String {
        format!(
            "DynMCB8-fair-per {} (τ={}, α={})",
            self.period, self.vt_threshold, self.alpha
        )
    }
    fn period(&self) -> Option<f64> {
        Some(self.period)
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.scratch.observe_epoch(state.change_epoch());
        match ev {
            SchedEvent::Tick => self.repack(state),
            // Periodic semantics: victims wait for the next tick; only
            // the warm memo is flushed (see `DynMcb8Per`).
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => {
                self.scratch.on_node_set_change();
                Plan::noop()
            }
            _ => Plan::noop(),
        }
    }
    fn repack_stats(&self) -> Option<dfrs_sim::RepackStats> {
        Some(self.scratch.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::ids::JobId;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{simulate, SimConfig};

    fn cfg() -> SimConfig {
        SimConfig {
            validate: true,
            ..SimConfig::default()
        }
    }

    fn job(id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64) -> JobSpec {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).unwrap()
    }

    #[test]
    fn damping_formula() {
        let s = DynMcb8FairPer::with_params(600.0, 100.0, 0.5);
        assert_eq!(s.damped(1.0, 50.0), 1.0, "young jobs undamped");
        assert!(
            (s.damped(1.0, 400.0) - 0.5).abs() < 1e-12,
            "(100/400)^0.5 = 0.5"
        );
        assert!(s.damped(1.0, 1e12) >= MIN_STRETCH_PER_YIELD, "floored");
        let off = DynMcb8FairPer::with_params(600.0, 100.0, 0.0);
        assert_eq!(off.damped(0.7, 1e9), 0.7, "alpha 0 disables damping");
    }

    #[test]
    fn simulates_cleanly_and_all_jobs_finish() {
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let jobs = vec![
            job(0, 0.0, 1, 1.0, 0.3, 20_000.0),
            job(1, 100.0, 1, 1.0, 0.3, 8_000.0),
            job(2, 7_000.0, 1, 1.0, 0.3, 400.0),
        ];
        let out = simulate(cluster, &jobs, &mut DynMcb8FairPer::new(), &cfg());
        assert_eq!(out.records.len(), 3);
        assert!(out.max_stretch >= 1.0);
    }

    #[test]
    fn damping_favors_the_late_short_job() {
        // One node; a long job has been running for hours when a short
        // job arrives: under fairness damping the short job should see a
        // better stretch than under the plain periodic repacker.
        let cluster = ClusterSpec::new(1, 4, 8.0).unwrap();
        let jobs = vec![
            job(0, 0.0, 1, 1.0, 0.3, 40_000.0),
            job(1, 20_000.0, 1, 1.0, 0.3, 1_000.0),
        ];
        let fair = simulate(
            cluster,
            &jobs,
            &mut DynMcb8FairPer::with_params(600.0, 1_800.0, 1.0),
            &cfg(),
        );
        let plain = simulate(
            cluster,
            &jobs,
            &mut crate::dynmcb8::DynMcb8Per::with_period(600.0),
            &cfg(),
        );
        let s_fair = fair.records[1].stretch;
        let s_plain = plain.records[1].stretch;
        assert!(
            s_fair < s_plain + 1e-9,
            "short job: fair {s_fair} vs plain {s_plain}"
        );
    }

    #[test]
    fn zero_alpha_matches_plain_periodic() {
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| job(i, i as f64 * 500.0, 1 + i % 2, 1.0, 0.3, 2_000.0))
            .collect();
        let a = simulate(
            cluster,
            &jobs,
            &mut DynMcb8FairPer::with_params(600.0, 3_600.0, 0.0),
            &cfg(),
        );
        let b = simulate(
            cluster,
            &jobs,
            &mut crate::dynmcb8::DynMcb8Per::with_period(600.0),
            &cfg(),
        );
        for (ra, rb) in a.records.iter().zip(b.records.iter()) {
            assert!((ra.completion - rb.completion).abs() < 1e-6);
        }
    }
}
