//! Multi-resource DFRS with DRF fairness: `DYNMCB8-DRF` and
//! `DYNMCB8-DRF-PER-T`.
//!
//! The paper's DYNMCB8 family maximizes the minimum **yield** — the
//! right objective when CPU is the only fluid resource. With a second
//! fluid dimension (GPU) a uniform yield over-rewards jobs whose
//! dominant demand is small: a job needing `(cpu 0.1, gpu 0.9)` and one
//! needing `(cpu 0.9, gpu 0.1)` at the same yield consume very
//! different fractions of their bottleneck resource. These schedulers
//! instead maximize the minimum **dominant share** `d_i · y_i`
//! (Ghodsi et al.'s Dominant Resource Fairness, NSDI 2011), where
//! `d_i = max(cpu_i, gpu_i)` is job *i*'s dominant fluid demand — so
//! each job's yield is set by a common share target rather than being
//! the target itself. Memory stays rigid, exactly as in the paper.
//!
//! The search ([`dfrs_packing::max_min_dominant_share`]) bisects the
//! share target over the dimension-generic MCB packer; with every
//! `gpu_need` at zero the dominant share *is* the CPU fraction and the
//! objective degenerates to the paper's max-min yield.
//!
//! When not even the yield-floor profile packs (memory or rigid
//! over-subscription), candidates are evicted under the **DRF
//! preemption ordering**: the job with the largest total dominant-share
//! demand `d_i · tasks_i` goes first (ties to the lower paper priority
//! key) — the biggest bottleneck consumer yields capacity, mirroring
//! how DRF charges each job by its dominant resource.
//!
//! * [`DynMcb8Drf`] repacks at every submission, completion, and
//!   platform event (the `DYNMCB8` cadence);
//! * [`DynMcb8DrfPer`] repacks every `T` seconds (the `DYNMCB8-PER`
//!   cadence; arrivals and failure victims wait for the next tick).

use dfrs_core::constants::{DEFAULT_PERIOD_SECS, MIN_STRETCH_PER_YIELD, YIELD_SEARCH_ACCURACY};
use dfrs_core::ids::{JobId, NodeId};
use dfrs_packing::{max_min_dominant_share, DrfJob, DrfSearchScratch};
use dfrs_sim::{Plan, RepackStats, SchedEvent, Scheduler, SimState};

/// Reusable buffers for the DRF repack pipeline, plus the clean-epoch
/// skip shared with the classic family. The DRF search runs cold (no
/// warm-start memo yet): its per-job yields make result replay a
/// different, larger state than the uniform-yield memo covers.
#[derive(Debug, Default)]
struct DrfRepackScratch {
    search: DrfSearchScratch,
    djobs: Vec<DrfJob>,
    candidates: Vec<JobId>,
    /// Available-node slice of the last repack (bin `b` → `avail[b]`;
    /// identity with every node up — see `dynmcb8::packed_allocation`).
    avail: Vec<NodeId>,
    /// Searches run (for [`RepackStats`]; every one is cold).
    searches: u64,
    /// Epoch of the last eviction-free repack (see
    /// `dynmcb8::RepackScratch::last_clean_epoch` for the argument).
    last_clean_epoch: Option<u64>,
    /// New-run detection, as in `dynmcb8::RepackScratch`.
    last_seen_epoch: u64,
}

impl DrfRepackScratch {
    fn observe_epoch(&mut self, epoch: u64) {
        if epoch < self.last_seen_epoch {
            self.last_clean_epoch = None;
        }
        self.last_seen_epoch = self.last_seen_epoch.max(epoch);
    }

    fn stats(&self) -> RepackStats {
        RepackStats {
            searches: self.searches,
            search_hits: 0,
            packs: self.search.packs,
            packs_saved: 0,
        }
    }
}

/// The DRF repack pipeline: eviction loop + dominant-share bisection,
/// then a plan with **per-job** yields (no uniform-yield improvement
/// pass — the search already assigns each job the yield its dominant
/// demand warrants, and a CPU-only improvement step would skew the GPU
/// shares it just balanced).
fn drf_repack_all(state: &SimState, scratch: &mut DrfRepackScratch) -> Plan {
    let epoch = state.change_epoch();
    if scratch.last_clean_epoch == Some(epoch) {
        return Plan::noop();
    }
    crate::common::available_nodes_into(state, &mut scratch.avail);
    let nodes = scratch.avail.len();
    let candidates = &mut scratch.candidates;
    candidates.clear();
    if nodes > 0 {
        candidates.extend(state.jobs_in_system().map(|j| j.spec.id));
    }
    let in_system = state.jobs_in_system().count();

    let alloc = loop {
        let djobs = &mut scratch.djobs;
        djobs.clear();
        djobs.extend(candidates.iter().map(|&id| {
            let s = &state.job(id).spec;
            DrfJob {
                job: id,
                tasks: s.tasks,
                cpu_need: s.cpu_need,
                mem_req: s.mem_req,
                gpu_need: s.gpu_need,
            }
        }));
        scratch.searches += 1;
        match max_min_dominant_share(
            djobs,
            nodes.max(1),
            YIELD_SEARCH_ACCURACY,
            MIN_STRETCH_PER_YIELD,
            &mut scratch.search,
        ) {
            Some(alloc) => break alloc,
            None => {
                // DRF preemption ordering: drop the candidate with the
                // largest total dominant-share demand (ties to the
                // lower paper priority key) and retry. An empty set
                // packs trivially, so this terminates.
                let victim = candidates
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        let d = |id: JobId| {
                            let s = &state.job(id).spec;
                            s.dominant_fluid_need() * s.tasks as f64
                        };
                        d(a).total_cmp(&d(b)).then_with(|| {
                            // max_by keeps the *later* of equal
                            // elements; compare reversed so the lower
                            // priority key wins the tie.
                            state
                                .job(b)
                                .priority_key(state.now)
                                .cmp(&state.job(a).priority_key(state.now))
                        })
                    })
                    .expect("an empty candidate set packs trivially");
                candidates.retain(|&c| c != victim);
            }
        }
    };

    let clean = alloc.allocations.len() == in_system;
    scratch.last_clean_epoch = clean.then_some(epoch);

    let mut plan = Plan::noop();
    for j in state.running_jobs() {
        // `candidates` is ascending (see `packed_allocation`), so
        // membership is a binary search.
        if candidates.binary_search(&j.spec.id).is_err() {
            plan = plan.pause(j.spec.id);
        }
    }
    let avail = &scratch.avail;
    for (id, yld, bins) in alloc.allocations {
        let placement: Vec<NodeId> = bins.into_iter().map(|b| avail[b as usize]).collect();
        plan = plan.run(id, placement, yld);
    }
    plan
}

/// `DYNMCB8-DRF`: dominant-share repack at every submission,
/// completion, and platform event.
#[derive(Debug, Default)]
pub struct DynMcb8Drf {
    scratch: DrfRepackScratch,
}

impl DynMcb8Drf {
    /// Fresh instance.
    pub fn new() -> Self {
        DynMcb8Drf::default()
    }
}

impl Scheduler for DynMcb8Drf {
    fn name(&self) -> String {
        "DynMCB8-drf".into()
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.scratch.observe_epoch(state.change_epoch());
        match ev {
            SchedEvent::Submit(_)
            | SchedEvent::Complete(_)
            | SchedEvent::NodeDown(_)
            | SchedEvent::NodeUp(_) => drf_repack_all(state, &mut self.scratch),
            _ => Plan::noop(),
        }
    }
    fn repack_stats(&self) -> Option<RepackStats> {
        Some(self.scratch.stats())
    }
}

/// `DYNMCB8-DRF-PER-T`: dominant-share repack every `T` seconds;
/// arrivals and failure victims wait for the next tick.
#[derive(Debug)]
pub struct DynMcb8DrfPer {
    period: f64,
    scratch: DrfRepackScratch,
}

impl DynMcb8DrfPer {
    /// The family default, T = 600 s.
    pub fn new() -> Self {
        Self::with_period(DEFAULT_PERIOD_SECS)
    }

    /// Custom period.
    pub fn with_period(period: f64) -> Self {
        assert!(period > 0.0);
        DynMcb8DrfPer {
            period,
            scratch: DrfRepackScratch::default(),
        }
    }
}

impl Default for DynMcb8DrfPer {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for DynMcb8DrfPer {
    fn name(&self) -> String {
        format!("DynMCB8-drf-per {}", self.period)
    }
    fn period(&self) -> Option<f64> {
        Some(self.period)
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.scratch.observe_epoch(state.change_epoch());
        match ev {
            SchedEvent::Tick => drf_repack_all(state, &mut self.scratch),
            // Periodic semantics: victims wait for the next tick. The
            // clean-epoch memo is already stale (the epoch bumped).
            _ => Plan::noop(),
        }
    }
    fn repack_stats(&self) -> Option<RepackStats> {
        Some(self.scratch.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{simulate, SimConfig};

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(2, 4, 8.0).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            validate: true,
            ..SimConfig::default()
        }
    }

    fn job(id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64) -> JobSpec {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).unwrap()
    }

    fn gpu_job(id: u32, submit: f64, cpu: f64, mem: f64, gpu: f64, rt: f64) -> JobSpec {
        job(id, submit, 1, cpu, mem, rt).with_gpu(gpu).unwrap()
    }

    #[test]
    fn runs_everything_when_feasible() {
        let jobs = vec![
            job(0, 0.0, 2, 0.5, 0.4, 100.0),
            job(1, 10.0, 1, 0.5, 0.4, 50.0),
        ];
        let out = simulate(cluster(), &jobs, &mut DynMcb8Drf::new(), &cfg());
        assert_eq!(out.max_stretch, 1.0, "underloaded cluster → no slowdown");
    }

    #[test]
    fn cpu_only_overload_degenerates_to_equal_yields() {
        // Four 1-task CPU-bound jobs, 2 nodes: with no GPU demand the
        // dominant share is the CPU fraction → uniform yield ~0.5,
        // exactly the classic DYNMCB8 outcome.
        let jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 0.0, 1, 1.0, 0.3, 100.0)).collect();
        let out = simulate(cluster(), &jobs, &mut DynMcb8Drf::new(), &cfg());
        for r in &out.records {
            assert!(
                (r.completion - 200.0).abs() < 5.0,
                "completion {} (share accuracy band)",
                r.completion
            );
        }
    }

    #[test]
    fn gpu_contention_is_shared_by_dominant_demand() {
        // Two GPU-saturating jobs forced onto one node by memory: each
        // has dominant demand 1.0 (GPU), so the equalized share gives
        // each yield ~0.5 even though CPU alone would fit both.
        let one_node = ClusterSpec::new(1, 4, 8.0).unwrap();
        let jobs = vec![
            gpu_job(0, 0.0, 0.2, 0.3, 1.0, 100.0),
            gpu_job(1, 0.0, 0.2, 0.3, 1.0, 100.0),
        ];
        let out = simulate(one_node, &jobs, &mut DynMcb8Drf::new(), &cfg());
        for r in &out.records {
            assert!(
                (r.completion - 200.0).abs() < 5.0,
                "GPU-bound pair should each progress at ~0.5, completion {}",
                r.completion
            );
        }
    }

    #[test]
    fn mixed_dominance_beats_uniform_yield() {
        // A GPU-heavy and a CPU-heavy job on one node: their dominant
        // dimensions differ, so both can run near full speed — DRF
        // finds yields ≳0.9 where a uniform-yield search would stop at
        // the first dimension hitting 1.0 combined.
        let one_node = ClusterSpec::new(1, 4, 8.0).unwrap();
        let jobs = vec![
            gpu_job(0, 0.0, 0.1, 0.3, 0.9, 90.0),
            gpu_job(1, 0.0, 0.9, 0.3, 0.1, 90.0),
        ];
        let out = simulate(one_node, &jobs, &mut DynMcb8Drf::new(), &cfg());
        for r in &out.records {
            assert!(
                r.completion < 105.0,
                "complementary jobs should barely slow down, completion {}",
                r.completion
            );
        }
    }

    #[test]
    fn evicts_largest_dominant_consumer_on_memory_pressure() {
        // Job 0 fills both nodes' memory; job 1 arrives and memory no
        // longer packs. Job 0 has the larger total dominant demand
        // (2 tasks × 0.25 vs 1 × 0.25) → it is evicted, job 1 runs.
        let jobs = vec![
            job(0, 0.0, 2, 0.25, 1.0, 100.0),
            job(1, 10.0, 1, 0.25, 0.5, 20.0),
        ];
        let out = simulate(cluster(), &jobs, &mut DynMcb8Drf::new(), &cfg());
        assert!((out.records[1].first_start.unwrap() - 10.0).abs() < 1e-9);
        assert!(out.preemption_count >= 1);
        assert!((out.records[0].completion - 120.0).abs() < 1.0);
    }

    #[test]
    fn per_variant_waits_for_ticks() {
        let jobs = vec![job(0, 10.0, 1, 0.5, 0.2, 50.0)];
        let out = simulate(
            cluster(),
            &jobs,
            &mut DynMcb8DrfPer::with_period(600.0),
            &cfg(),
        );
        assert!((out.records[0].first_start.unwrap() - 600.0).abs() < 1e-9);
        assert!((out.records[0].completion - 650.0).abs() < 1e-6);
    }

    #[test]
    fn survives_node_failure_and_repacks() {
        let jobs = vec![
            job(0, 0.0, 1, 1.0, 0.3, 100.0),
            job(1, 0.0, 1, 1.0, 0.3, 100.0),
        ];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![dfrs_sim::NodeEvent {
                time: 10.0,
                node: NodeId(1),
                up: false,
            }],
            ..SimConfig::default()
        };
        let out = simulate(cluster(), &jobs, &mut DynMcb8Drf::new(), &cfg);
        assert_eq!(out.restart_count, 1, "exactly one job was on node 1");
        assert_eq!(out.records.len(), 2);
        assert!(out.records.iter().all(|r| r.completion > 100.0 - 1e-9));
    }

    #[test]
    fn names_include_period() {
        assert_eq!(DynMcb8Drf::new().name(), "DynMCB8-drf");
        assert_eq!(DynMcb8DrfPer::new().name(), "DynMCB8-drf-per 600");
    }
}
