//! Machinery shared by all the algorithms: node-availability views
//! (which nodes are in service, which are free for whole-node
//! placement), scratch node state for incremental placement, the greedy
//! task placer, and the yield optimization pipeline (equal-share base +
//! the paper's average-yield improvement heuristic).

use dfrs_core::approx;
use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::yield_math;
use dfrs_sim::SimState;

/// Ids of the in-service, completely idle nodes, ascending — the
/// whole-node free list the batch schedulers (FCFS, EASY, conservative
/// backfilling) draw placements from. Down nodes are never free: they
/// host nothing *and* accept nothing until repaired.
pub fn free_nodes(state: &SimState) -> Vec<NodeId> {
    state
        .cluster
        .nodes()
        .iter()
        .enumerate()
        .filter(|&(i, n)| n.is_idle() && state.cluster.is_up(NodeId(i as u32)))
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

/// Ids of the in-service nodes, ascending — the bin list the
/// vector-packing schedulers slice the cluster down to before calling
/// `dfrs_packing` (bin `b` of a packing over `avail.len()` bins maps
/// back to physical node `avail[b]`). Reuses `buf` so per-event callers
/// pay no allocation.
pub fn available_nodes_into(state: &SimState, buf: &mut Vec<NodeId>) {
    buf.clear();
    buf.extend(state.cluster.available_nodes());
}

/// Jobs waiting to be (re)placed, ascending id (= submission) order —
/// the queue the batch schedulers rebuild after a platform event.
/// Covers `Pending` (killed under [`dfrs_sim::FailurePolicy::Restart`],
/// or never started) and `Paused` (victims of the preserve policy;
/// batch schedulers never pause on their own, so with no failures this
/// is exactly the pending set).
pub fn waiting_jobs(state: &SimState) -> Vec<JobId> {
    state
        .jobs_in_system()
        .filter(|j| {
            matches!(
                j.status,
                dfrs_sim::JobStatus::Pending | dfrs_sim::JobStatus::Paused
            )
        })
        .map(|j| j.spec.id)
        .collect()
}

/// Mutable copy of per-node free memory and CPU load that schedulers use
/// to evaluate placements before committing them to a plan.
#[derive(Debug, Clone)]
pub struct NodeScratch {
    /// Free memory per node.
    pub mem_free: Vec<f64>,
    /// CPU load (sum of needs) per node.
    pub cpu_load: Vec<f64>,
}

impl NodeScratch {
    /// Snapshot the current cluster state. Out-of-service nodes are
    /// poisoned (no free memory, infinite load) so the greedy placer
    /// can never select them; with every node up the snapshot is
    /// unchanged from the static-cluster behavior.
    pub fn from_state(state: &SimState) -> Self {
        NodeScratch {
            mem_free: state
                .cluster
                .nodes()
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    if state.cluster.is_up(NodeId(i as u32)) {
                        n.mem_free()
                    } else {
                        f64::NEG_INFINITY
                    }
                })
                .collect(),
            cpu_load: state
                .cluster
                .nodes()
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    if state.cluster.is_up(NodeId(i as u32)) {
                        n.cpu_load
                    } else {
                        f64::INFINITY
                    }
                })
                .collect(),
        }
    }

    /// An empty cluster of `n` nodes.
    pub fn empty(n: usize) -> Self {
        NodeScratch {
            mem_free: vec![1.0; n],
            cpu_load: vec![0.0; n],
        }
    }

    /// Account one task added to `node`.
    pub fn add_task(&mut self, node: NodeId, cpu_need: f64, mem_req: f64) {
        self.mem_free[node.index()] -= mem_req;
        self.cpu_load[node.index()] += cpu_need;
    }

    /// Account one task removed from `node`.
    pub fn remove_task(&mut self, node: NodeId, cpu_need: f64, mem_req: f64) {
        self.mem_free[node.index()] += mem_req;
        self.cpu_load[node.index()] -= cpu_need;
    }

    /// Remove every task of a running job (by its current placement).
    pub fn remove_job(&mut self, placement: &[NodeId], cpu_need: f64, mem_req: f64) {
        for &n in placement {
            self.remove_task(n, cpu_need, mem_req);
        }
    }

    /// The GREEDY placement rule (Section III-A): for each task in turn,
    /// pick the node with the lowest CPU load among nodes with enough
    /// free memory. Returns `None` (leaving `self` unchanged) when some
    /// task cannot be placed.
    pub fn greedy_place(&mut self, tasks: u32, cpu_need: f64, mem_req: f64) -> Option<Vec<NodeId>> {
        let mut placement = Vec::with_capacity(tasks as usize);
        for _ in 0..tasks {
            let mut best: Option<usize> = None;
            for i in 0..self.mem_free.len() {
                if !approx::ge(self.mem_free[i], mem_req) {
                    continue;
                }
                match best {
                    Some(b) if self.cpu_load[b] <= self.cpu_load[i] => {}
                    _ => best = Some(i),
                }
            }
            match best {
                Some(i) => {
                    let node = NodeId(i as u32);
                    self.add_task(node, cpu_need, mem_req);
                    placement.push(node);
                }
                None => {
                    // Roll back partial placement.
                    for &n in &placement {
                        self.remove_task(n, cpu_need, mem_req);
                    }
                    return None;
                }
            }
        }
        Some(placement)
    }
}

/// A complete prospective allocation: the set of jobs that will be
/// running after this event, with their placements. Produces the per-job
/// yields via the paper's two-step rule.
#[derive(Debug, Clone, Default)]
pub struct AllocSet {
    jobs: Vec<AllocJob>,
    n_nodes: usize,
}

#[derive(Debug, Clone)]
struct AllocJob {
    id: JobId,
    cpu_need: f64,
    gpu_need: f64,
    placement: Vec<NodeId>,
}

impl AllocSet {
    /// Empty set. `n_nodes` is the cluster size the caller works over,
    /// but the per-node buffers are sized by the highest node actually
    /// pushed: they are only ever indexed at placement nodes and folded
    /// with identities (zero load, zero demand) elsewhere, so the
    /// tighter bound is outcome-identical — and a mostly-idle huge
    /// cluster doesn't pay cluster-sized zeroing per allocation set.
    pub fn new(n_nodes: usize) -> Self {
        let _ = n_nodes;
        AllocSet {
            jobs: Vec::new(),
            n_nodes: 0,
        }
    }

    /// Add a job with its (planned or current) placement. `gpu_need`
    /// is the job's fluid GPU demand (0 for the paper's CPU+memory
    /// workloads); it never steers the yield optimization — the yield
    /// family stays GPU-oblivious in its objective — but it feeds the
    /// final feasibility clamp (see [`gpu_clamp`](Self::optimized_yields)).
    pub fn push(&mut self, id: JobId, cpu_need: f64, gpu_need: f64, placement: Vec<NodeId>) {
        debug_assert!(!placement.is_empty());
        for n in &placement {
            self.n_nodes = self.n_nodes.max(n.index() + 1);
        }
        self.jobs.push(AllocJob {
            id,
            cpu_need,
            gpu_need,
            placement,
        });
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs were added.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Per-node CPU load of this allocation.
    fn cpu_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.n_nodes];
        for j in &self.jobs {
            for &n in &j.placement {
                loads[n.index()] += j.cpu_need;
            }
        }
        loads
    }

    /// The equal-share yield `1 / max(1, Λ)` for this allocation — the
    /// maximized minimum yield for a fixed mapping (Section III-A).
    pub fn equal_share_yield(&self) -> f64 {
        let max_load = self.cpu_loads().iter().copied().fold(0.0, f64::max);
        yield_math::equal_share_yield(max_load)
    }

    /// The average-yield improvement heuristic (Section III-A), starting
    /// every job at `base` yield: repeatedly select the job with the
    /// lowest total CPU need among jobs whose yield can still grow (yield
    /// < 1 and CPU slack on every hosting node) and raise its yield as
    /// far as the tightest node allows. Returns `(job, yield)` pairs in
    /// insertion order.
    pub fn optimized_yields(&self, base: f64) -> Vec<(JobId, f64)> {
        debug_assert!(base > 0.0 && base <= 1.0 + approx::EPS);
        let base = base.min(1.0);
        let n = self.jobs.len();
        // At full yield the selection loop below skips every job on its
        // first test (`yields[i] >= 1 - EPS`), so with no GPU demand the
        // answer is `base` for everyone — return it without building the
        // per-node allocation table. Bit-identical to the general path.
        if base >= 1.0 - approx::EPS && !self.jobs.iter().any(|j| j.gpu_need > 0.0) {
            return self.jobs.iter().map(|j| (j.id, base)).collect();
        }
        let mut yields = vec![base; n];
        // Allocated CPU per node under the base yield.
        let mut alloc = vec![0.0; self.n_nodes];
        for j in &self.jobs {
            for &node in &j.placement {
                alloc[node.index()] += j.cpu_need * base;
            }
        }
        // Tasks-per-node count for each job (to bound its yield increase).
        let mut frozen = vec![false; n];
        loop {
            // Lowest total CPU need among improvable jobs, ties by id.
            let mut pick: Option<usize> = None;
            for (i, j) in self.jobs.iter().enumerate() {
                if frozen[i] || yields[i] >= 1.0 - approx::EPS {
                    continue;
                }
                let has_slack = j
                    .placement
                    .iter()
                    .all(|&node| approx::pos(1.0 - alloc[node.index()]));
                if !has_slack {
                    continue;
                }
                let better = match pick {
                    None => true,
                    Some(p) => {
                        let (tp, ti) = (
                            self.jobs[p].cpu_need * self.jobs[p].placement.len() as f64,
                            j.cpu_need * j.placement.len() as f64,
                        );
                        ti < tp - approx::EPS || (approx::eq(ti, tp) && j.id < self.jobs[p].id)
                    }
                };
                if better {
                    pick = Some(i);
                }
            }
            let Some(i) = pick else { break };
            let job = &self.jobs[i];
            // Tightest increase over hosting nodes: slack / (need × count
            // of this job's tasks on that node). Placements are short, so
            // unique nodes are found by scanning (no per-step map); the
            // running minimum is order-independent.
            let mut delta = 1.0 - yields[i];
            for (k, &node) in job.placement.iter().enumerate() {
                if job.placement[..k].contains(&node) {
                    continue; // already counted
                }
                let count = job.placement[k..].iter().filter(|&&n| n == node).count() as u32;
                let slack = 1.0 - alloc[node.index()];
                delta = delta.min(yield_math::max_yield_increase(
                    slack,
                    job.cpu_need * count as f64,
                ));
            }
            if delta <= approx::EPS {
                frozen[i] = true;
                continue;
            }
            for &node in &job.placement {
                alloc[node.index()] += job.cpu_need * delta;
            }
            yields[i] += delta;
            if yields[i] > 1.0 {
                yields[i] = 1.0;
            }
        }
        // GPU feasibility clamp: the optimization above is deliberately
        // GPU-oblivious (the paper's objective is CPU-only), so on a
        // GPU-annotated workload it can promise more fluid GPU than a
        // node has. Scale each GPU consumer down by the worst
        // oversubscription among its hosting nodes — sufficient in one
        // pass, since every consumer on an oversubscribed node shrinks
        // by at least that node's factor. With no GPU demand this is a
        // guarded no-op, keeping GPU-free runs bit-identical.
        if self.jobs.iter().any(|j| j.gpu_need > 0.0) {
            let mut gpu = vec![0.0; self.n_nodes];
            for (j, y) in self.jobs.iter().zip(&yields) {
                for &node in &j.placement {
                    gpu[node.index()] += j.gpu_need * y;
                }
            }
            for (j, y) in self.jobs.iter().zip(yields.iter_mut()) {
                if j.gpu_need <= 0.0 {
                    continue;
                }
                let mut factor = 1.0f64;
                for &node in &j.placement {
                    let load = gpu[node.index()];
                    if load > 1.0 {
                        factor = factor.min(load.recip());
                    }
                }
                *y *= factor;
            }
        }
        self.jobs
            .iter()
            .zip(yields)
            .map(|(j, y)| (j.id, y))
            .collect()
    }

    /// Convenience: equal-share base followed by the improvement pass.
    pub fn greedy_yields(&self) -> Vec<(JobId, f64)> {
        self.optimized_yields(self.equal_share_yield())
    }
}

/// Build an [`AllocSet`] from the currently running jobs (used by the
/// greedy algorithms after membership changes have been decided).
pub fn alloc_set_of_running(state: &SimState) -> AllocSet {
    let mut set = AllocSet::new(state.cluster.nodes().len());
    for j in state.running_jobs() {
        set.push(
            j.spec.id,
            j.spec.cpu_need,
            j.spec.gpu_need,
            state.placement(j.spec.id).to_vec(),
        );
    }
    set
}

/// The GPU feasibility clamp of [`AllocSet::optimized_yields`] for the
/// `(job, yield, placement)` assignment shape the stretch scheduler
/// works in: scale each GPU consumer's yield down by the worst
/// oversubscription among its hosting nodes. A guarded no-op on
/// GPU-free workloads (bit-identical runs).
pub fn gpu_clamp_assignments(
    n_nodes: usize,
    gpu_of: impl Fn(JobId) -> f64,
    assignments: &mut [(JobId, f64, Vec<NodeId>)],
) {
    if !assignments.iter().any(|(id, _, _)| gpu_of(*id) > 0.0) {
        return;
    }
    let mut gpu = vec![0.0; n_nodes];
    for (id, yld, placement) in assignments.iter() {
        for &node in placement {
            gpu[node.index()] += gpu_of(*id) * yld;
        }
    }
    for (id, yld, placement) in assignments.iter_mut() {
        if gpu_of(*id) <= 0.0 {
            continue;
        }
        let mut factor = 1.0f64;
        for &node in placement.iter() {
            let load = gpu[node.index()];
            if load > 1.0 {
                factor = factor.min(load.recip());
            }
        }
        *yld *= factor;
    }
}

/// Jobs in the system ordered by **increasing** priority (pause
/// candidates first). Reverse for resume order. Only jobs currently in
/// the system are considered (every caller filters on a status subset
/// of pending/running/paused anyway).
pub fn by_increasing_priority<'a>(
    state: &'a SimState,
    filter: impl Fn(&dfrs_sim::JobState) -> bool + 'a,
) -> Vec<JobId> {
    by_increasing_priority_exp(state, filter, 2.0)
}

/// [`by_increasing_priority`] with a custom virtual-time exponent in the
/// priority function (the paper's power-of-two ablation).
pub fn by_increasing_priority_exp<'a>(
    state: &'a SimState,
    filter: impl Fn(&dfrs_sim::JobState) -> bool + 'a,
    exponent: f64,
) -> Vec<JobId> {
    let mut jobs: Vec<_> = state
        .jobs_in_system()
        .filter(|j| filter(j))
        .map(|j| {
            (
                dfrs_core::priority::PriorityKey::with_exponent(
                    state.now,
                    j.spec.submit_time,
                    j.virtual_time,
                    j.spec.id,
                    exponent,
                ),
                j.spec.id,
            )
        })
        .collect();
    jobs.sort_by_key(|&(key, _)| key);
    jobs.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch3() -> NodeScratch {
        NodeScratch::empty(3)
    }

    #[test]
    fn greedy_place_prefers_least_loaded_node() {
        let mut s = scratch3();
        s.cpu_load = vec![0.5, 0.1, 0.9];
        let p = s.greedy_place(1, 1.0, 0.2).unwrap();
        assert_eq!(p, vec![NodeId(1)]);
        assert!((s.cpu_load[1] - 1.1).abs() < 1e-12);
    }

    #[test]
    fn greedy_place_respects_memory() {
        let mut s = scratch3();
        s.mem_free = vec![0.1, 0.5, 0.1];
        let p = s.greedy_place(1, 1.0, 0.3).unwrap();
        assert_eq!(p, vec![NodeId(1)]);
    }

    #[test]
    fn greedy_place_spreads_tasks_by_load() {
        let mut s = scratch3();
        let p = s.greedy_place(3, 1.0, 0.2).unwrap();
        // Each placement raises the load, so tasks round-robin.
        let mut nodes: Vec<u32> = p.iter().map(|n| n.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn greedy_place_rolls_back_on_failure() {
        let mut s = scratch3();
        s.mem_free = vec![0.3, 0.3, 0.3];
        let before = s.clone();
        // 4 tasks of 0.3 memory: only 3 fit (one per node).
        assert!(s.greedy_place(4, 0.5, 0.3).is_none());
        assert_eq!(s.mem_free, before.mem_free);
        assert_eq!(s.cpu_load, before.cpu_load);
    }

    #[test]
    fn greedy_place_stacks_tasks_when_memory_allows() {
        let mut s = NodeScratch::empty(1);
        let p = s.greedy_place(3, 1.0, 0.25).unwrap();
        assert_eq!(p, vec![NodeId(0); 3]);
        assert!((s.cpu_load[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn equal_share_yield_of_allocation() {
        let mut set = AllocSet::new(2);
        set.push(JobId(0), 1.0, 0.0, vec![NodeId(0)]);
        set.push(JobId(1), 1.0, 0.0, vec![NodeId(0)]);
        set.push(JobId(2), 0.5, 0.0, vec![NodeId(1)]);
        assert!((set.equal_share_yield() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn improvement_raises_unconstrained_jobs_to_full_yield() {
        // Node 0 overloaded (2 × need 1.0), node 1 has one small job: the
        // small job must end at yield 1.0, the others stay at 0.5.
        let mut set = AllocSet::new(2);
        set.push(JobId(0), 1.0, 0.0, vec![NodeId(0)]);
        set.push(JobId(1), 1.0, 0.0, vec![NodeId(0)]);
        set.push(JobId(2), 0.5, 0.0, vec![NodeId(1)]);
        let yields = set.greedy_yields();
        assert!((yields[0].1 - 0.5).abs() < 1e-9);
        assert!((yields[1].1 - 0.5).abs() < 1e-9);
        assert!((yields[2].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_picks_lowest_total_need_first() {
        // One node, two jobs (needs 0.6 and 0.3) at base yield 1/0.9=...
        // loads: 0.9 → base yield 1.0 (under-loaded). Nothing to improve.
        // Make it overloaded: needs 1.0 and 0.5 → base 1/1.5. Slack after
        // base: 0. No improvement possible.
        // Use two nodes: job A (need 1.0) on node 0; jobs B,C (need 0.4,
        // 0.2) on node 1. Base = 1/1.0 = 1.0... loads: n0=1.0, n1=0.6 →
        // base 1.0, everyone full. Overload n0: A,D both need 1.0.
        let mut set = AllocSet::new(2);
        set.push(JobId(0), 1.0, 0.0, vec![NodeId(0)]); // A
        set.push(JobId(1), 1.0, 0.0, vec![NodeId(0)]); // D
        set.push(JobId(2), 0.4, 0.0, vec![NodeId(1)]); // B
        set.push(JobId(3), 0.2, 0.0, vec![NodeId(1)]); // C
        let yields = set.greedy_yields();
        // Base = 0.5. Node 1 slack = 1 − 0.3 = 0.7. C (total need 0.2)
        // picked first → raised to 1.0 (consumes 0.1); B raised with
        // remaining slack 0.6 → Δ = 0.6/0.4 = 1.5 → capped at 1.0.
        assert!((yields[2].1 - 1.0).abs() < 1e-9, "B {}", yields[2].1);
        assert!((yields[3].1 - 1.0).abs() < 1e-9, "C {}", yields[3].1);
        assert!((yields[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn improvement_handles_partial_slack() {
        // One node: jobs with needs 1.0 + 0.5 → base yield 1/1.5 = 2/3.
        // alloc = 1.0 exactly; no slack; yields stay at base.
        let mut set = AllocSet::new(1);
        set.push(JobId(0), 1.0, 0.0, vec![NodeId(0)]);
        set.push(JobId(1), 0.5, 0.0, vec![NodeId(0)]);
        let yields = set.greedy_yields();
        assert!((yields[0].1 - 2.0 / 3.0).abs() < 1e-9);
        assert!((yields[1].1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_task_job_bounded_by_tightest_node() {
        // Job 0 has tasks on both nodes; node 1 is crowded by job 1.
        // Base = 1/1.5. Job 0 (total need 1.0 over 2 tasks of 0.5)...
        // loads: n0 = 0.5, n1 = 0.5 + 1.0 = 1.5 → base = 2/3.
        // Slack n0 = 1 − 1/3 = 2/3; slack n1 = 0. Nothing improvable on
        // n1 → job 0 frozen by n1, job 1 frozen by n1.
        let mut set = AllocSet::new(2);
        set.push(JobId(0), 0.5, 0.0, vec![NodeId(0), NodeId(1)]);
        set.push(JobId(1), 1.0, 0.0, vec![NodeId(1)]);
        let yields = set.greedy_yields();
        assert!((yields[0].1 - 2.0 / 3.0).abs() < 1e-9);
        assert!((yields[1].1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_tasks_same_node_count_double() {
        // Job 0 has both tasks on node 0 (need 0.4 each), job 1 need 1.0
        // also on node 0: load = 1.8, base = 1/1.8. Slack = 0. Frozen.
        let mut set = AllocSet::new(1);
        set.push(JobId(0), 0.4, 0.0, vec![NodeId(0), NodeId(0)]);
        set.push(JobId(1), 1.0, 0.0, vec![NodeId(0)]);
        let yields = set.greedy_yields();
        for (_, y) in yields {
            assert!((y - 1.0 / 1.8).abs() < 1e-9);
        }
    }

    #[test]
    fn gpu_clamp_scales_consumers_to_capacity() {
        // Two GPU-1.0 jobs on one node would allocate 2.0 GPUs at
        // yield 1.0 → each ends at 0.5; the GPU-free job is untouched.
        let mut set = AllocSet::new(1);
        set.push(JobId(0), 0.2, 1.0, vec![NodeId(0)]);
        set.push(JobId(1), 0.2, 1.0, vec![NodeId(0)]);
        set.push(JobId(2), 0.2, 0.0, vec![NodeId(0)]);
        let yields = set.greedy_yields();
        assert!((yields[0].1 - 0.5).abs() < 1e-9, "{}", yields[0].1);
        assert!((yields[1].1 - 0.5).abs() < 1e-9, "{}", yields[1].1);
        assert!((yields[2].1 - 1.0).abs() < 1e-9, "{}", yields[2].1);
    }

    #[test]
    fn gpu_clamp_assignments_uses_worst_hosting_node() {
        let gpu = |id: JobId| if id.0 == 2 { 0.0 } else { 0.8 };
        let mut a = vec![
            (JobId(0), 1.0, vec![NodeId(0), NodeId(1)]),
            (JobId(1), 1.0, vec![NodeId(1)]),
            (JobId(2), 1.0, vec![NodeId(0)]),
        ];
        gpu_clamp_assignments(2, gpu, &mut a);
        // Node 1's load is 1.6 → jobs 0 and 1 scale by 1/1.6; node 0
        // (0.8) is fine and the GPU-free job keeps its full yield.
        assert!((a[0].1 - 1.0 / 1.6).abs() < 1e-9, "{}", a[0].1);
        assert!((a[1].1 - 1.0 / 1.6).abs() < 1e-9, "{}", a[1].1);
        assert_eq!(a[2].1, 1.0);
    }

    #[test]
    fn empty_alloc_set_is_trivial() {
        let set = AllocSet::new(4);
        assert!(set.is_empty());
        assert_eq!(set.equal_share_yield(), 1.0);
        assert!(set.greedy_yields().is_empty());
    }
}
