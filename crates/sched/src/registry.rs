//! The paper's nine algorithms as a closed enum — now a thin
//! compatibility shim over the open [`crate::SchedulerRegistry`].
//!
//! New code should prefer [`SchedulerSpec`] strings (`"dynmcb8-per:t=300"`)
//! and the registry; `Algorithm` remains for the experiment harnesses
//! that iterate the paper's fixed Table I/II sets and for its stable
//! paper-table display names.

use std::str::FromStr;

use dfrs_core::constants::DEFAULT_PERIOD_SECS;
use dfrs_sim::Scheduler;

use crate::spec::{SchedulerRegistry, SchedulerSpec, SpecError};

/// The nine algorithms of the paper's evaluation, in the order of
/// Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// First-Come-First-Serve (batch baseline).
    Fcfs,
    /// EASY backfilling with perfect estimates (batch baseline).
    Easy,
    /// GREEDY.
    Greedy,
    /// GREEDY-PMTN.
    GreedyPmtn,
    /// GREEDY-PMTN-MIGR.
    GreedyPmtnMigr,
    /// DYNMCB8 (every event).
    DynMcb8,
    /// DYNMCB8-PER-600.
    DynMcb8Per,
    /// DYNMCB8-ASAP-PER-600.
    DynMcb8AsapPer,
    /// DYNMCB8-STRETCH-PER-600.
    DynMcb8StretchPer,
}

impl Algorithm {
    /// All nine, Table I order.
    pub const ALL: [Algorithm; 9] = [
        Algorithm::Fcfs,
        Algorithm::Easy,
        Algorithm::Greedy,
        Algorithm::GreedyPmtn,
        Algorithm::GreedyPmtnMigr,
        Algorithm::DynMcb8,
        Algorithm::DynMcb8Per,
        Algorithm::DynMcb8AsapPer,
        Algorithm::DynMcb8StretchPer,
    ];

    /// The six algorithms of Table II (those that preempt or migrate).
    pub const PREEMPTING: [Algorithm; 6] = [
        Algorithm::GreedyPmtn,
        Algorithm::GreedyPmtnMigr,
        Algorithm::DynMcb8,
        Algorithm::DynMcb8Per,
        Algorithm::DynMcb8AsapPer,
        Algorithm::DynMcb8StretchPer,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Fcfs => "FCFS",
            Algorithm::Easy => "EASY",
            Algorithm::Greedy => "Greedy",
            Algorithm::GreedyPmtn => "Greedy-pmtn",
            Algorithm::GreedyPmtnMigr => "Greedy-pmtn-migr",
            Algorithm::DynMcb8 => "DynMCB8",
            Algorithm::DynMcb8Per => "DynMCB8-per 600",
            Algorithm::DynMcb8AsapPer => "DynMCB8-asap-per 600",
            Algorithm::DynMcb8StretchPer => "DynMCB8-stretch-per 600",
        }
    }

    /// The [`SchedulerRegistry`] key this algorithm builds through.
    pub fn key(&self) -> &'static str {
        match self {
            Algorithm::Fcfs => "fcfs",
            Algorithm::Easy => "easy",
            Algorithm::Greedy => "greedy",
            Algorithm::GreedyPmtn => "greedy-pmtn",
            Algorithm::GreedyPmtnMigr => "greedy-pmtn-migr",
            Algorithm::DynMcb8 => "dynmcb8",
            Algorithm::DynMcb8Per => "dynmcb8-per",
            Algorithm::DynMcb8AsapPer => "dynmcb8-asap-per",
            Algorithm::DynMcb8StretchPer => "dynmcb8-stretch-per",
        }
    }

    /// This algorithm as a registry spec with the paper's default
    /// parameters (bare key; periodic variants default to T = 600).
    pub fn spec(&self) -> SchedulerSpec {
        SchedulerSpec::new(self.key())
    }

    /// Whether this variant takes a scheduling period.
    pub fn is_periodic(&self) -> bool {
        matches!(
            self,
            Algorithm::DynMcb8Per | Algorithm::DynMcb8AsapPer | Algorithm::DynMcb8StretchPer
        )
    }

    /// Parse a (case-insensitive) name as printed by [`Algorithm::name`],
    /// with or without the period suffix. Compatibility wrapper around
    /// the [`FromStr`] impl, which carries a real [`SpecError`].
    pub fn parse(s: &str) -> Option<Algorithm> {
        Algorithm::from_str(s).ok()
    }

    /// Whether this is one of the two batch baselines.
    pub fn is_batch(&self) -> bool {
        matches!(self, Algorithm::Fcfs | Algorithm::Easy)
    }

    /// Build a fresh scheduler with the paper's default parameters.
    pub fn build(&self) -> Box<dyn Scheduler> {
        self.build_with_period(DEFAULT_PERIOD_SECS)
    }

    /// Build with a custom period for the periodic variants (the paper
    /// also probed T = 60 and T = 3600). Non-periodic algorithms ignore
    /// the period, as before.
    pub fn build_with_period(&self, period: f64) -> Box<dyn Scheduler> {
        let spec = if self.is_periodic() {
            self.spec().with("t", period)
        } else {
            self.spec()
        };
        SchedulerRegistry::builtin()
            .build(&spec)
            .expect("built-in specs always build")
    }
}

impl FromStr for Algorithm {
    type Err = SpecError;

    /// Resolve any spelling the registry accepts for the nine paper
    /// algorithms: canonical keys, paper-table names with spaces
    /// (`"DynMCB8-per 600"`), and legacy period suffixes
    /// (`"dynmcb8-per-600"`). Spec parameters are accepted but not
    /// retained — `Algorithm` is the paper's fixed configuration; use
    /// [`SchedulerSpec`] to honor parameters.
    fn from_str(s: &str) -> Result<Algorithm, SpecError> {
        let spec = SchedulerRegistry::builtin().parse(s)?;
        Algorithm::ALL
            .into_iter()
            .find(|a| a.key() == spec.key())
            .ok_or_else(|| SpecError::UnknownKey {
                key: spec.key().to_string(),
                known: Algorithm::ALL.iter().map(|a| a.key().to_string()).collect(),
            })
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_nine_distinct_algorithms() {
        let names: std::collections::HashSet<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 9);
        let keys: std::collections::HashSet<_> = Algorithm::ALL.iter().map(|a| a.key()).collect();
        assert_eq!(keys.len(), 9);
    }

    #[test]
    fn parse_round_trips_names() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::parse(a.name()), Some(a), "{}", a.name());
            assert_eq!(a.name().parse::<Algorithm>(), Ok(a), "{}", a.name());
            assert_eq!(a.key().parse::<Algorithm>(), Ok(a), "{}", a.key());
        }
        assert_eq!(
            Algorithm::parse("dynmcb8-asap-per"),
            Some(Algorithm::DynMcb8AsapPer)
        );
        assert_eq!(Algorithm::parse("nonsense"), None);
        assert!(matches!(
            "nonsense".parse::<Algorithm>(),
            Err(SpecError::UnknownKey { .. })
        ));
        // Registry keys outside the nine resolve as specs but not as
        // paper algorithms.
        assert!("conservative-bf".parse::<Algorithm>().is_err());
    }

    #[test]
    fn build_produces_matching_names() {
        for a in Algorithm::ALL {
            assert_eq!(a.build().name(), a.name());
        }
    }

    #[test]
    fn specs_resolve_through_the_builtin_registry() {
        let reg = SchedulerRegistry::builtin();
        for a in Algorithm::ALL {
            assert!(reg.contains(a.key()), "{}", a.key());
            assert_eq!(reg.build(&a.spec()).unwrap().name(), a.name());
        }
    }

    #[test]
    fn batch_flag() {
        assert!(Algorithm::Fcfs.is_batch());
        assert!(Algorithm::Easy.is_batch());
        assert!(!Algorithm::DynMcb8.is_batch());
        for a in Algorithm::PREEMPTING {
            assert!(!a.is_batch());
        }
    }

    #[test]
    fn custom_period_shows_in_name() {
        let s = Algorithm::DynMcb8Per.build_with_period(60.0);
        assert_eq!(s.name(), "DynMCB8-per 60");
    }
}
