//! Enumeration of all nine algorithms for experiment harnesses.

use dfrs_core::constants::DEFAULT_PERIOD_SECS;
use dfrs_sim::Scheduler;

use crate::batch::{Easy, Fcfs};
use crate::dynmcb8::{DynMcb8, DynMcb8AsapPer, DynMcb8Per};
use crate::greedy::{Greedy, GreedyPmtn, GreedyPmtnMigr};
use crate::stretch_per::DynMcb8StretchPer;

/// The nine algorithms of the paper's evaluation, in the order of
/// Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// First-Come-First-Serve (batch baseline).
    Fcfs,
    /// EASY backfilling with perfect estimates (batch baseline).
    Easy,
    /// GREEDY.
    Greedy,
    /// GREEDY-PMTN.
    GreedyPmtn,
    /// GREEDY-PMTN-MIGR.
    GreedyPmtnMigr,
    /// DYNMCB8 (every event).
    DynMcb8,
    /// DYNMCB8-PER-600.
    DynMcb8Per,
    /// DYNMCB8-ASAP-PER-600.
    DynMcb8AsapPer,
    /// DYNMCB8-STRETCH-PER-600.
    DynMcb8StretchPer,
}

impl Algorithm {
    /// All nine, Table I order.
    pub const ALL: [Algorithm; 9] = [
        Algorithm::Fcfs,
        Algorithm::Easy,
        Algorithm::Greedy,
        Algorithm::GreedyPmtn,
        Algorithm::GreedyPmtnMigr,
        Algorithm::DynMcb8,
        Algorithm::DynMcb8Per,
        Algorithm::DynMcb8AsapPer,
        Algorithm::DynMcb8StretchPer,
    ];

    /// The six algorithms of Table II (those that preempt or migrate).
    pub const PREEMPTING: [Algorithm; 6] = [
        Algorithm::GreedyPmtn,
        Algorithm::GreedyPmtnMigr,
        Algorithm::DynMcb8,
        Algorithm::DynMcb8Per,
        Algorithm::DynMcb8AsapPer,
        Algorithm::DynMcb8StretchPer,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Fcfs => "FCFS",
            Algorithm::Easy => "EASY",
            Algorithm::Greedy => "Greedy",
            Algorithm::GreedyPmtn => "Greedy-pmtn",
            Algorithm::GreedyPmtnMigr => "Greedy-pmtn-migr",
            Algorithm::DynMcb8 => "DynMCB8",
            Algorithm::DynMcb8Per => "DynMCB8-per 600",
            Algorithm::DynMcb8AsapPer => "DynMCB8-asap-per 600",
            Algorithm::DynMcb8StretchPer => "DynMCB8-stretch-per 600",
        }
    }

    /// Parse a (case-insensitive) name as printed by [`Algorithm::name`],
    /// with or without the period suffix.
    pub fn parse(s: &str) -> Option<Algorithm> {
        let k = s.trim().to_ascii_lowercase().replace([' ', '_'], "-");
        Some(match k.as_str() {
            "fcfs" => Algorithm::Fcfs,
            "easy" => Algorithm::Easy,
            "greedy" => Algorithm::Greedy,
            "greedy-pmtn" => Algorithm::GreedyPmtn,
            "greedy-pmtn-migr" => Algorithm::GreedyPmtnMigr,
            "dynmcb8" => Algorithm::DynMcb8,
            "dynmcb8-per" | "dynmcb8-per-600" => Algorithm::DynMcb8Per,
            "dynmcb8-asap-per" | "dynmcb8-asap-per-600" => Algorithm::DynMcb8AsapPer,
            "dynmcb8-stretch-per" | "dynmcb8-stretch-per-600" => Algorithm::DynMcb8StretchPer,
            _ => return None,
        })
    }

    /// Whether this is one of the two batch baselines.
    pub fn is_batch(&self) -> bool {
        matches!(self, Algorithm::Fcfs | Algorithm::Easy)
    }

    /// Build a fresh scheduler with the paper's default parameters.
    pub fn build(&self) -> Box<dyn Scheduler> {
        self.build_with_period(DEFAULT_PERIOD_SECS)
    }

    /// Build with a custom period for the periodic variants (the paper
    /// also probed T = 60 and T = 3600).
    pub fn build_with_period(&self, period: f64) -> Box<dyn Scheduler> {
        match self {
            Algorithm::Fcfs => Box::new(Fcfs::new()),
            Algorithm::Easy => Box::new(Easy::new()),
            Algorithm::Greedy => Box::new(Greedy::new()),
            Algorithm::GreedyPmtn => Box::new(GreedyPmtn::new()),
            Algorithm::GreedyPmtnMigr => Box::new(GreedyPmtnMigr::new()),
            Algorithm::DynMcb8 => Box::new(DynMcb8::new()),
            Algorithm::DynMcb8Per => Box::new(DynMcb8Per::with_period(period)),
            Algorithm::DynMcb8AsapPer => Box::new(DynMcb8AsapPer::with_period(period)),
            Algorithm::DynMcb8StretchPer => Box::new(DynMcb8StretchPer::with_period(period)),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_nine_distinct_algorithms() {
        let names: std::collections::HashSet<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn parse_round_trips_names() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::parse(a.name()), Some(a), "{}", a.name());
        }
        assert_eq!(
            Algorithm::parse("dynmcb8-asap-per"),
            Some(Algorithm::DynMcb8AsapPer)
        );
        assert_eq!(Algorithm::parse("nonsense"), None);
    }

    #[test]
    fn build_produces_matching_names() {
        for a in Algorithm::ALL {
            assert_eq!(a.build().name(), a.name());
        }
    }

    #[test]
    fn batch_flag() {
        assert!(Algorithm::Fcfs.is_batch());
        assert!(Algorithm::Easy.is_batch());
        assert!(!Algorithm::DynMcb8.is_batch());
        for a in Algorithm::PREEMPTING {
            assert!(!a.is_batch());
        }
    }

    #[test]
    fn custom_period_shows_in_name() {
        let s = Algorithm::DynMcb8Per.build_with_period(60.0);
        assert_eq!(s.name(), "DynMCB8-per 60");
    }
}
