//! The greedy DFRS algorithms (Section III-A): `GREEDY`, `GREEDY-PMTN`,
//! and `GREEDY-PMTN-MIGR`.
//!
//! All three place tasks one at a time on the least CPU-loaded node with
//! sufficient free memory, then give every running job the equal-share
//! yield `1/max(1, Λ)` improved by the average-yield heuristic. They
//! differ in what happens when an arriving job does not fit:
//!
//! * **GREEDY** postpones it with bounded exponential backoff
//!   (`min(2¹², 2^count)` seconds) — which can starve jobs;
//! * **GREEDY-PMTN** forces admission by pausing running jobs, chosen by
//!   increasing priority, with a second pass that un-marks (in decreasing
//!   priority) any candidate that can stay; paused jobs are resumed at
//!   later events in decreasing priority order;
//! * **GREEDY-PMTN-MIGR** additionally lets the jobs paused *at this
//!   event* be re-placed immediately on different nodes — a migration.

use std::collections::{HashMap, HashSet};

use dfrs_core::constants::BACKOFF_CAP_SECS;
use dfrs_core::ids::{JobId, NodeId};
use dfrs_sim::{JobStatus, Plan, SchedEvent, Scheduler, SimState};

use crate::common::{by_increasing_priority_exp, AllocSet, NodeScratch};

/// Behaviour switches distinguishing the three variants.
#[derive(Debug, Clone, Copy)]
struct GreedyFlags {
    /// Force admission by pausing lower-priority jobs.
    pmtn: bool,
    /// Allow same-event re-placement of paused jobs (migration).
    migr: bool,
    /// Virtual-time exponent of the priority function (paper: 2; the
    /// exponent-1 variant exists for the ablation of Section III-A).
    priority_exponent: f64,
}

/// Shared implementation.
#[derive(Debug)]
struct GreedyCore {
    flags: GreedyFlags,
    backoff: HashMap<JobId, u32>,
    /// Jobs with an outstanding backoff timer. Kept so the node-event
    /// rescue pass never arms a second concurrent timer chain for a job
    /// that already has one (each chain would re-arm itself via
    /// `on_arrival`, multiplying scheduler rounds under heavy churn).
    armed: HashSet<JobId>,
}

impl GreedyCore {
    fn new(flags: GreedyFlags) -> Self {
        GreedyCore {
            flags,
            backoff: HashMap::new(),
            armed: HashSet::new(),
        }
    }

    /// Emit the final plan: pauses, then runs for **every** job that will
    /// be running (members with planned placements; survivors with their
    /// current ones), with yields recomputed by the paper's two-step
    /// rule.
    fn emit(
        &self,
        state: &SimState,
        paused: Vec<JobId>,
        new_runs: Vec<(JobId, Vec<NodeId>)>,
    ) -> Plan {
        let mut set = AllocSet::new(state.cluster.nodes().len());
        let mut placements: HashMap<JobId, Vec<NodeId>> = HashMap::new();
        for j in state.running_jobs() {
            if paused.contains(&j.spec.id) {
                continue;
            }
            // A running job being re-placed this event (migr) is covered
            // by new_runs below.
            if new_runs.iter().any(|(id, _)| *id == j.spec.id) {
                continue;
            }
            let placement = state.placement(j.spec.id).to_vec();
            set.push(
                j.spec.id,
                j.spec.cpu_need,
                j.spec.gpu_need,
                placement.clone(),
            );
            placements.insert(j.spec.id, placement);
        }
        for (id, placement) in new_runs {
            let spec = &state.job(id).spec;
            set.push(id, spec.cpu_need, spec.gpu_need, placement.clone());
            placements.insert(id, placement);
        }
        let mut plan = Plan::noop();
        for id in paused {
            plan = plan.pause(id);
        }
        for (id, yld) in set.greedy_yields() {
            plan = plan.run(id, placements.remove(&id).expect("placement recorded"), yld);
        }
        plan
    }

    /// Resume paused jobs in decreasing priority order onto `scratch`,
    /// appending to `runs`. `eligible` filters which paused jobs may come
    /// back (PMTN excludes those paused at this very event).
    fn resume_paused(
        &self,
        state: &SimState,
        scratch: &mut NodeScratch,
        runs: &mut Vec<(JobId, Vec<NodeId>)>,
        eligible: impl Fn(JobId) -> bool,
    ) {
        let order = by_increasing_priority_exp(
            state,
            |j| j.status == JobStatus::Paused,
            self.flags.priority_exponent,
        );
        for id in order.into_iter().rev() {
            if !eligible(id) {
                continue;
            }
            let spec = &state.job(id).spec;
            if let Some(p) = scratch.greedy_place(spec.tasks, spec.cpu_need, spec.mem_req) {
                runs.push((id, p));
            }
        }
    }

    fn on_arrival(&mut self, id: JobId, state: &SimState) -> Plan {
        // Fresh submit, or this job's timer just fired (consumed): no
        // outstanding timer either way.
        self.armed.remove(&id);
        let spec = state.job(id).spec;
        let mut scratch = NodeScratch::from_state(state);

        if let Some(placement) = scratch.greedy_place(spec.tasks, spec.cpu_need, spec.mem_req) {
            let mut runs = vec![(id, placement)];
            if self.flags.pmtn {
                self.resume_paused(state, &mut scratch, &mut runs, |_| true);
            }
            return self.emit(state, Vec::new(), runs);
        }

        if !self.flags.pmtn {
            // Postpone with bounded exponential backoff.
            return Plan::noop().timer(id, self.next_backoff(id, state.now));
        }

        // Forced admission. Mark running jobs by increasing priority
        // until the newcomer would fit if all marked were paused.
        let order = by_increasing_priority_exp(
            state,
            |j| j.status == JobStatus::Running,
            self.flags.priority_exponent,
        );
        let mut marked: Vec<JobId> = Vec::new();
        let mut fits = false;
        for cand in order {
            let cs = &state.job(cand).spec;
            scratch.remove_job(state.placement(cand), cs.cpu_need, cs.mem_req);
            marked.push(cand);
            if scratch
                .clone()
                .greedy_place(spec.tasks, spec.cpu_need, spec.mem_req)
                .is_some()
            {
                fits = true;
                break;
            }
        }
        if !fits {
            // Even pausing every running job leaves no room — possible
            // only while failures keep too few nodes in service (the
            // trace validated against the full cluster). Wait out the
            // outage with the same bounded backoff GREEDY uses; the
            // timer redelivers the arrival and forced admission retries.
            assert!(
                state.cluster.down_nodes() > 0,
                "job {id} cannot start even on an empty cluster (tasks={} nodes={})",
                spec.tasks,
                state.cluster.nodes().len()
            );
            return Plan::noop().timer(id, self.next_backoff(id, state.now));
        }

        // Unmark pass, in decreasing priority: keep a candidate running
        // if the newcomer still fits without pausing it.
        let mut still_marked: Vec<JobId> = Vec::new();
        for &cand in marked.iter().rev() {
            let cs = &state.job(cand).spec;
            let placement = state.placement(cand);
            // Tentatively leave it running.
            for &n in placement {
                scratch.add_task(n, cs.cpu_need, cs.mem_req);
            }
            if scratch
                .clone()
                .greedy_place(spec.tasks, spec.cpu_need, spec.mem_req)
                .is_none()
            {
                // Must pause after all.
                scratch.remove_job(placement, cs.cpu_need, cs.mem_req);
                still_marked.push(cand);
            }
        }

        let placement = scratch
            .greedy_place(spec.tasks, spec.cpu_need, spec.mem_req)
            .expect("mark phase guarantees room");
        let mut runs = vec![(id, placement)];

        let mut paused = still_marked;
        if self.flags.migr {
            // Re-place the just-paused jobs immediately where possible:
            // emitted as Run entries on running jobs = migration.
            let mut kept: Vec<JobId> = Vec::new();
            let order: Vec<JobId> = {
                // Decreasing priority among the marked jobs.
                let mut v = by_increasing_priority_exp(
                    state,
                    |j| paused.contains(&j.spec.id),
                    self.flags.priority_exponent,
                );
                v.reverse();
                v
            };
            for cand in order {
                let cs = &state.job(cand).spec;
                if let Some(p) = scratch.greedy_place(cs.tasks, cs.cpu_need, cs.mem_req) {
                    runs.push((cand, p));
                } else {
                    kept.push(cand);
                }
            }
            paused = kept;
        }
        // Previously-paused jobs may also return now that the cluster was
        // reshuffled (both variants).
        let freshly_paused: Vec<JobId> = paused.clone();
        let mut resumes = Vec::new();
        self.resume_paused(state, &mut scratch, &mut resumes, |j| {
            !freshly_paused.contains(&j)
        });
        runs.extend(resumes);

        self.emit(state, paused, runs)
    }

    fn on_completion(&mut self, state: &SimState) -> Plan {
        let mut scratch = NodeScratch::from_state(state);
        let mut runs = Vec::new();
        // Unconditional (not PMTN-gated): plain GREEDY never pauses on
        // its own, so without failures this resumes nothing and
        // behavior is unchanged — but victims of the preserve failure
        // policy must be resumable by every variant.
        self.resume_paused(state, &mut scratch, &mut runs, |_| true);
        // Even without resumes, freed capacity changes the equal-share
        // yield and the improvement slack.
        self.emit(state, Vec::new(), runs)
    }

    /// The bounded exponential backoff instant for `id` (attempt count
    /// bumped, job marked as holding a timer).
    fn next_backoff(&mut self, id: JobId, now: f64) -> f64 {
        let count = self.backoff.entry(id).or_insert(0);
        *count += 1;
        self.armed.insert(id);
        now + (2.0f64).powi(*count as i32).min(BACKOFF_CAP_SECS)
    }

    /// Platform event (failure or repair): the engine already evicted
    /// the victims — `Pending` with zero progress under the restart
    /// policy, `Paused` under preserve. Try to (re)start every pending
    /// job greedily (highest priority first; a killed job's zero
    /// virtual time makes its priority infinite, so victims go first),
    /// resume paused jobs where room remains, and give any job that
    /// does not fit a backoff timer so it is never stranded — its timer
    /// redelivers the arrival, where the PMTN variants may force
    /// admission.
    fn on_node_event(&mut self, state: &SimState) -> Plan {
        let mut scratch = NodeScratch::from_state(state);
        let mut runs: Vec<(JobId, Vec<NodeId>)> = Vec::new();
        let mut timers: Vec<(JobId, f64)> = Vec::new();
        let order = by_increasing_priority_exp(
            state,
            |j| j.status == JobStatus::Pending,
            self.flags.priority_exponent,
        );
        for id in order.into_iter().rev() {
            let spec = &state.job(id).spec;
            match scratch.greedy_place(spec.tasks, spec.cpu_need, spec.mem_req) {
                Some(p) => {
                    // Starting cancels any outstanding timer in the
                    // engine; mirror that here.
                    self.armed.remove(&id);
                    runs.push((id, p));
                }
                // One live timer chain per job: a backlogged arrival
                // already holds one and will retry on its own.
                None if !self.armed.contains(&id) => {
                    timers.push((id, self.next_backoff(id, state.now)));
                }
                None => {}
            }
        }
        // Unconditional for the same reason as in `on_completion`.
        self.resume_paused(state, &mut scratch, &mut runs, |_| true);
        let mut plan = self.emit(state, Vec::new(), runs);
        plan.timers.extend(timers);
        plan
    }

    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(id) | SchedEvent::Timer(id) => self.on_arrival(id, state),
            SchedEvent::Complete(_) => self.on_completion(state),
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => self.on_node_event(state),
            SchedEvent::Tick => Plan::noop(),
            SchedEvent::Withdraw(id) => {
                // The job leaves this scheduler's jurisdiction: drop its
                // timer bookkeeping so a stale chain can never re-arm.
                self.armed.remove(&id);
                self.backoff.remove(&id);
                Plan::noop()
            }
        }
    }
}

/// `GREEDY` (Section III-A): no preemption, bounded exponential backoff.
#[derive(Debug)]
pub struct Greedy(GreedyCore);

impl Greedy {
    /// Fresh instance.
    pub fn new() -> Self {
        Greedy(GreedyCore::new(GreedyFlags {
            pmtn: false,
            migr: false,
            priority_exponent: 2.0,
        }))
    }
}

impl Default for Greedy {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Greedy {
    fn name(&self) -> String {
        "Greedy".into()
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.0.on_event(ev, state)
    }
}

/// `GREEDY-PMTN`: forced admission via priority-ordered pausing.
#[derive(Debug)]
pub struct GreedyPmtn(GreedyCore);

impl GreedyPmtn {
    /// Fresh instance.
    pub fn new() -> Self {
        GreedyPmtn(GreedyCore::new(GreedyFlags {
            pmtn: true,
            migr: false,
            priority_exponent: 2.0,
        }))
    }

    /// Ablation constructor: custom virtual-time exponent in the
    /// pause/resume priority (the paper reports exponent 1 is markedly
    /// worse than the default 2).
    pub fn with_priority_exponent(exponent: f64) -> Self {
        assert!(exponent > 0.0);
        GreedyPmtn(GreedyCore::new(GreedyFlags {
            pmtn: true,
            migr: false,
            priority_exponent: exponent,
        }))
    }
}

impl Default for GreedyPmtn {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for GreedyPmtn {
    fn name(&self) -> String {
        "Greedy-pmtn".into()
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.0.on_event(ev, state)
    }
}

/// `GREEDY-PMTN-MIGR`: forced admission plus same-event re-placement.
#[derive(Debug)]
pub struct GreedyPmtnMigr(GreedyCore);

impl GreedyPmtnMigr {
    /// Fresh instance.
    pub fn new() -> Self {
        GreedyPmtnMigr(GreedyCore::new(GreedyFlags {
            pmtn: true,
            migr: true,
            priority_exponent: 2.0,
        }))
    }
}

impl Default for GreedyPmtnMigr {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for GreedyPmtnMigr {
    fn name(&self) -> String {
        "Greedy-pmtn-migr".into()
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.0.on_event(ev, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{simulate, SimConfig};

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(2, 4, 8.0).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            validate: true,
            ..SimConfig::default()
        }
    }

    fn job(id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64) -> JobSpec {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).unwrap()
    }

    #[test]
    fn greedy_time_shares_cpu_heavy_jobs() {
        // Two 1-task CPU-bound jobs with small memory on a 2-node cluster:
        // each gets its own node at yield 1.0.
        let jobs = vec![
            job(0, 0.0, 1, 1.0, 0.1, 100.0),
            job(1, 0.0, 1, 1.0, 0.1, 100.0),
        ];
        let out = simulate(cluster(), &jobs, &mut Greedy::new(), &cfg());
        assert_eq!(out.max_stretch, 1.0);
        assert!((out.records[0].completion - 100.0).abs() < 1e-6);
    }

    #[test]
    fn greedy_overcommits_cpu_when_memory_allows() {
        // Three 2-task CPU-bound jobs, memory 0.3 each: 6 tasks over 2
        // nodes → 3 per node, load 3 → yield 1/3 → 300 s completions.
        let jobs: Vec<JobSpec> = (0..3).map(|i| job(i, 0.0, 2, 1.0, 0.3, 100.0)).collect();
        let out = simulate(cluster(), &jobs, &mut Greedy::new(), &cfg());
        for r in &out.records {
            assert!(
                (r.completion - 300.0).abs() < 1e-6,
                "completion {}",
                r.completion
            );
        }
        assert!((out.max_stretch - 3.0).abs() < 1e-6);
    }

    #[test]
    fn greedy_postpones_on_memory_pressure_with_backoff() {
        // Job 0 hogs all memory of both nodes for 100 s; job 1 arrives at
        // t=1 and cannot fit → backoff retries at 1+2, +4, ..., until
        // after t=100; it must start eventually and complete.
        let jobs = vec![
            job(0, 0.0, 2, 0.25, 1.0, 100.0),
            job(1, 1.0, 1, 0.25, 0.5, 10.0),
        ];
        let out = simulate(cluster(), &jobs, &mut Greedy::new(), &cfg());
        let r1 = &out.records[1];
        assert!(
            r1.first_start.unwrap() > 100.0,
            "started at {:?}",
            r1.first_start
        );
        // Backoff: retries at t=3, 7, 15, 31, 63, 127 → starts at 127.
        assert!((r1.first_start.unwrap() - 127.0).abs() < 1e-6);
        assert_eq!(out.preemption_count, 0);
    }

    #[test]
    fn greedy_pmtn_forces_admission_by_pausing() {
        // Same memory-pressure scenario: PMTN pauses job 0 (the only
        // candidate) to start job 1 immediately at t=1.
        let jobs = vec![
            job(0, 0.0, 2, 0.25, 1.0, 100.0),
            job(1, 1.0, 1, 0.25, 0.5, 10.0),
        ];
        let out = simulate(cluster(), &jobs, &mut GreedyPmtn::new(), &cfg());
        let r1 = &out.records[1];
        assert!((r1.first_start.unwrap() - 1.0).abs() < 1e-9);
        assert!((r1.completion - 11.0).abs() < 1e-6);
        assert_eq!(out.preemption_count, 1, "job 0 paused once");
        // Job 0: ran 1 s, paused 1..11, resumed → completes at 110.
        assert!((out.records[0].completion - 110.0).abs() < 1e-6);
    }

    #[test]
    fn greedy_pmtn_unmark_pass_keeps_high_priority_jobs() {
        // Node memory: two running jobs each hold 0.6 on separate nodes.
        // A newcomer needs 0.4 on one node: pausing ONE suffices; the
        // unmark pass must keep the other running.
        let jobs = vec![
            job(0, 0.0, 1, 0.25, 0.6, 50.0),
            job(1, 5.0, 1, 0.25, 0.6, 50.0),
            job(2, 10.0, 2, 0.25, 0.7, 20.0), // needs 0.7 on both nodes
        ];
        let out = simulate(cluster(), &jobs, &mut GreedyPmtn::new(), &cfg());
        // Both 0 and 1 must be marked (job 2 needs 0.7 free on both
        // nodes), so expect 2 preemptions... unmark can keep neither.
        assert_eq!(out.preemption_count, 2);
        assert!((out.records[2].first_start.unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_pmtn_resumes_in_priority_order_after_completion() {
        let jobs = vec![
            job(0, 0.0, 2, 0.25, 1.0, 100.0),
            job(1, 1.0, 1, 0.25, 0.5, 10.0),
        ];
        let out = simulate(cluster(), &jobs, &mut GreedyPmtn::new(), &cfg());
        // Job 0 resumes when job 1 completes at t=11; its remaining 99 s
        // finish at t=110.
        assert!((out.records[0].completion - 110.0).abs() < 1e-6);
    }

    #[test]
    fn greedy_pmtn_migr_replaces_paused_jobs_same_event() {
        // Job 0: 1 task, 0.8 memory on node A. Job 1: 1 task, 0.8 memory
        // (goes to node B). Job 2 arrives needing 2 tasks × 0.6: both
        // nodes must free memory; one paused job can come back on the
        // other node? 0.6+0.8 > 1 → no. Instead: job 0 (0.3 mem on A),
        // job 1 (0.3 on B), job 2 needs 2 × 0.8 → pause both; after
        // placing job 2 (0.8 each node), 0.2 free per node → neither
        // fits back. Make them 0.15: they fit back → migrations.
        let jobs = vec![
            job(0, 0.0, 1, 0.25, 0.15, 100.0),
            job(1, 1.0, 1, 0.25, 0.15, 100.0),
            job(2, 10.0, 2, 0.25, 0.8, 20.0),
        ];
        let out = simulate(cluster(), &jobs, &mut GreedyPmtnMigr::new(), &cfg());
        // With 0.15+0.8 < 1: nothing needs pausing at all (greedy fit).
        // Check no preemptions and everyone runs immediately.
        assert_eq!(out.preemption_count + out.migration_count, 0);

        // Now with memory that forces the reshuffle:
        let jobs = vec![
            job(0, 0.0, 1, 0.25, 0.55, 100.0),
            job(1, 1.0, 1, 0.25, 0.55, 100.0),
            job(2, 10.0, 2, 0.25, 0.45, 20.0),
        ];
        // Greedy would spread 0/1 across nodes; job 2 needs 0.45 on each
        // → 0.55+0.45 = 1.0 exactly fits! Choose 0.5 to break that.
        let _ = jobs;
        let jobs = vec![
            job(0, 0.0, 1, 0.25, 0.55, 100.0),
            job(1, 1.0, 1, 0.25, 0.55, 100.0),
            job(2, 10.0, 2, 0.25, 0.5, 20.0),
        ];
        let out = simulate(cluster(), &jobs, &mut GreedyPmtnMigr::new(), &cfg());
        // One of jobs 0/1 is paused (lower priority = job 1, same vt but
        // later submission... job 1 has less virtual time: priorities:
        // both finite; job 0 vt=10, job 1 vt=9 → priority 0 = 30/100,
        // priority 1 = 30/81 → job 0 has LOWER priority → job 0 marked
        // first. After job 2 placed (0.5+0.5), 0.45 free on job 0's old
        // node... 1 − 0.5 − 0.55(job1? no job1 is on other node).
        // Node A: job2 task (0.5) → 0.5 free ≥ 0.55? No. Node B: job 1
        // (0.55) + job2 task (0.5) = 1.05 > 1 → job 2's tasks: one per
        // node; B had 0.55 used, 0.5 doesn't fit → both of job 2's tasks
        // can't be placed without pausing BOTH 0 and 1? A after pausing 0:
        // free 1.0 ≥ 0.5 ✓; B: 0.55+0.5 > 1 ✗ → must pause job 1 too.
        // Then unmark (decreasing priority: job 1 first): restore job 1:
        // can job 2 still fit? A: 0.5 ✓, B: 0.55+0.5 > 1... place both
        // tasks on A? 0.5+0.5 = 1.0 ✓ memory! Yes → job 1 stays.
        // Then job 0 restore: A full (1.0), B has 0.45 free < 0.55 → job
        // 0 stays marked. MIGR: re-place job 0: B free 0.45 < 0.55 → no.
        // So: 1 preemption (job 0), 0 migrations.
        assert_eq!(out.preemption_count, 1);
        assert!((out.records[2].first_start.unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn killed_job_restarts_on_surviving_node() {
        // Job 0 runs alone; greedy places its single task on node 0.
        // Node 0 fails at t=10: the job loses 10 s of progress and the
        // rescue pass restarts it immediately on node 1.
        let jobs = vec![job(0, 0.0, 1, 0.5, 0.3, 100.0)];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![
                dfrs_sim::NodeEvent {
                    time: 10.0,
                    node: NodeId(0),
                    up: false,
                },
                dfrs_sim::NodeEvent {
                    time: 5_000.0,
                    node: NodeId(0),
                    up: true,
                },
            ],
            ..SimConfig::default()
        };
        for sched in [
            &mut Greedy::new() as &mut dyn dfrs_sim::Scheduler,
            &mut GreedyPmtn::new(),
            &mut GreedyPmtnMigr::new(),
        ] {
            let out = simulate(cluster(), &jobs, sched, &cfg);
            assert_eq!(out.restart_count, 1);
            assert!((out.lost_virtual_seconds - 10.0).abs() < 1e-6);
            assert!(
                (out.records[0].completion - 110.0).abs() < 1e-6,
                "restart from scratch at t=10: {}",
                out.records[0].completion
            );
        }
    }

    #[test]
    fn preserve_policy_resumes_with_progress_kept() {
        // Same failure, but under PausePreserve the job keeps its 10 s
        // of virtual time and resumes on node 1: completes at 100.
        let jobs = vec![job(0, 0.0, 1, 0.5, 0.3, 100.0)];
        let cfg = SimConfig {
            validate: true,
            failure_policy: dfrs_sim::FailurePolicy::PausePreserve,
            node_events: vec![dfrs_sim::NodeEvent {
                time: 10.0,
                node: NodeId(0),
                up: false,
            }],
            ..SimConfig::default()
        };
        let out = simulate(cluster(), &jobs, &mut Greedy::new(), &cfg);
        assert_eq!(out.restart_count, 0);
        assert_eq!(out.lost_virtual_seconds, 0.0);
        assert_eq!(out.preemption_count, 1, "failure pause is a preemption");
        assert!((out.records[0].completion - 100.0).abs() < 1e-6);
    }

    #[test]
    fn preserve_policy_charges_penalty_on_failure_resume() {
        let jobs = vec![job(0, 0.0, 1, 0.5, 0.3, 100.0)];
        let cfg = SimConfig {
            validate: true,
            penalty: 300.0,
            failure_policy: dfrs_sim::FailurePolicy::PausePreserve,
            node_events: vec![dfrs_sim::NodeEvent {
                time: 10.0,
                node: NodeId(0),
                up: false,
            }],
            ..SimConfig::default()
        };
        let out = simulate(cluster(), &jobs, &mut GreedyPmtn::new(), &cfg);
        // Resumes at t=10 on node 1 but progress is frozen until t=310,
        // then 90 s remain.
        assert!((out.records[0].completion - 400.0).abs() < 1e-6);
    }

    #[test]
    fn wide_job_waits_out_an_outage_with_backoff() {
        // A 2-task job needs both nodes; one is down from t=0 until
        // t=400. Forced admission cannot help (too few nodes), so the
        // job retries on backoff timers and starts after the repair.
        let jobs = vec![job(0, 1.0, 2, 0.5, 0.8, 50.0)];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![
                dfrs_sim::NodeEvent {
                    time: 0.0,
                    node: NodeId(1),
                    up: false,
                },
                dfrs_sim::NodeEvent {
                    time: 400.0,
                    node: NodeId(1),
                    up: true,
                },
            ],
            ..SimConfig::default()
        };
        for sched in [
            &mut Greedy::new() as &mut dyn dfrs_sim::Scheduler,
            &mut GreedyPmtn::new(),
        ] {
            let out = simulate(cluster(), &jobs, sched, &cfg);
            let start = out.records[0].first_start.unwrap();
            assert!(
                (start - 400.0).abs() < 1e-6,
                "rescued at the repair, got {start}"
            );
            assert!((out.records[0].completion - 450.0).abs() < 1e-6);
        }
    }

    #[test]
    fn variants_report_distinct_names() {
        assert_eq!(Greedy::new().name(), "Greedy");
        assert_eq!(GreedyPmtn::new().name(), "Greedy-pmtn");
        assert_eq!(GreedyPmtnMigr::new().name(), "Greedy-pmtn-migr");
    }

    #[test]
    fn completion_rebalances_yields_upward() {
        // Jobs 0 and 1 share a node's CPU (load 2 → yield 0.5); when job
        // 1 (shorter) finishes, job 0's yield returns to 1.0.
        // Job 0: 100 vt; job 1: 50 vt. Shared from t=0: both at 0.5.
        // Job 1 completes at t=100 (vt 50). Job 0 has vt 50, then full
        // speed → completes at t=150.
        let tight = ClusterSpec::new(1, 4, 8.0).unwrap();
        let jobs = vec![
            job(0, 0.0, 1, 1.0, 0.3, 100.0),
            job(1, 0.0, 1, 1.0, 0.3, 50.0),
        ];
        let out = simulate(tight, &jobs, &mut Greedy::new(), &cfg());
        assert!((out.records[1].completion - 100.0).abs() < 1e-6);
        assert!((out.records[0].completion - 150.0).abs() < 1e-6);
    }

    #[test]
    fn sequential_tasks_fill_multicore_node() {
        // Four sequential tasks (need 0.25) on one node: load 1.0 → all
        // at yield 1.0 simultaneously.
        let tight = ClusterSpec::new(1, 4, 8.0).unwrap();
        let jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 0.0, 1, 0.25, 0.2, 100.0)).collect();
        let out = simulate(tight, &jobs, &mut Greedy::new(), &cfg());
        assert_eq!(out.max_stretch, 1.0);
    }
}
