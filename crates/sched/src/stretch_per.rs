//! `DYNMCB8-STRETCH-PER` (Section III-B): the periodic variant that
//! minimizes the **estimated maximum stretch** instead of maximizing the
//! minimum yield.
//!
//! At each tick, each job's estimated stretch is its flow time over its
//! virtual time; assuming yields hold for the next period `T`, a binary
//! search finds the smallest achievable bound on the next tick's
//! estimates (clamping computed yields into `[0.01, 1]`), with MCB8
//! deciding feasibility. Instead of the average-yield heuristic, leftover
//! CPU goes to the jobs whose estimated stretch improves the most per
//! unit of CPU consumed — the paper names (but does not detail) an
//! average-estimated-stretch improvement pass; this marginal-benefit
//! greedy is our reading, documented in DESIGN.md.

use dfrs_core::approx;
use dfrs_core::constants::DEFAULT_PERIOD_SECS;
use dfrs_core::ids::{JobId, NodeId};
use dfrs_packing::{min_max_estimated_stretch_warm, Mcb8, RepackMemo, SearchScratch, StretchJob};
use dfrs_sim::{Plan, RepackStats, SchedEvent, Scheduler, SimState};

/// The scheduler. Period defaults to the paper's 600 s.
#[derive(Debug)]
pub struct DynMcb8StretchPer {
    period: f64,
    // Buffers reused across events (never observable in results).
    search: SearchScratch,
    /// Cross-tick warm-start state. Whole stretch searches never recur
    /// (flow and virtual times drift), but the clamp-saturated probe
    /// instances near the bracket's lax end depend only on the job set
    /// and replay across ticks (`dfrs_packing::memo`).
    memo: RepackMemo,
    /// Highest change epoch seen; a decrease means this instance was
    /// reused for a fresh simulation and the memo is dropped.
    last_seen_epoch: u64,
    sjobs: Vec<StretchJob>,
    candidates: Vec<JobId>,
    /// Available-node slice of the last repack (bin `b` → `avail[b]`;
    /// identity with every node up).
    avail: Vec<NodeId>,
}

impl DynMcb8StretchPer {
    /// T = 600 s.
    pub fn new() -> Self {
        Self::with_period(DEFAULT_PERIOD_SECS)
    }

    /// Custom period.
    pub fn with_period(period: f64) -> Self {
        assert!(period > 0.0);
        DynMcb8StretchPer {
            period,
            search: SearchScratch::new(),
            memo: RepackMemo::new(),
            last_seen_epoch: 0,
            sjobs: Vec::new(),
            candidates: Vec::new(),
            avail: Vec::new(),
        }
    }

    /// Enable or disable cross-tick warm starting (on by default;
    /// results are bit-identical either way — disabling exists for the
    /// warm-vs-cold benchmarks).
    pub fn warm(mut self, enabled: bool) -> Self {
        self.memo.set_enabled(enabled);
        self
    }

    fn observe_epoch(&mut self, epoch: u64) {
        if epoch < self.last_seen_epoch {
            self.memo.clear();
        }
        self.last_seen_epoch = self.last_seen_epoch.max(epoch);
    }

    fn repack(&mut self, state: &SimState) -> Plan {
        // Pack over the available-node slice: `avail.len()` anonymous
        // bins, bin `b` on physical node `avail[b]` (identity with
        // every node up; see `dynmcb8::packed_allocation`).
        crate::common::available_nodes_into(state, &mut self.avail);
        // Fold the available-node-set identity into every memo
        // fingerprint (see `dynmcb8::packed_allocation`): entries from
        // other memberships never answer, returning identities resume.
        self.memo.set_caps_identity(RepackMemo::caps_identity(
            self.avail.iter().map(|n| n.index() as u64),
        ));
        let nodes = self.avail.len();
        let candidates = &mut self.candidates;
        candidates.clear();
        if nodes > 0 {
            candidates.extend(state.jobs_in_system().map(|j| j.spec.id));
        }

        loop {
            let sjobs = &mut self.sjobs;
            sjobs.clear();
            sjobs.extend(candidates.iter().map(|&id| {
                let j = state.job(id);
                StretchJob {
                    job: id,
                    tasks: j.spec.tasks,
                    cpu_need: j.spec.cpu_need,
                    mem_req: j.spec.mem_req,
                    flow_time: (state.now - j.spec.submit_time).max(0.0),
                    virtual_time: j.virtual_time,
                }
            }));
            match min_max_estimated_stretch_warm(
                sjobs,
                nodes.max(1),
                self.period,
                &Mcb8,
                0.01,
                &mut self.search,
                &mut self.memo,
            ) {
                Some(alloc) => {
                    let avail = &self.avail;
                    let mut assignments: Vec<(JobId, f64, Vec<NodeId>)> = alloc
                        .assignments
                        .into_iter()
                        .map(|(id, y, bins)| {
                            (
                                id,
                                y,
                                bins.into_iter()
                                    .map(|b| avail[b as usize])
                                    .collect::<Vec<_>>(),
                            )
                        })
                        .collect();
                    improve_average_stretch(
                        self.period,
                        state,
                        &mut assignments,
                        state.cluster.nodes().len(),
                    );
                    // Stretch optimization is GPU-oblivious like the
                    // yield family's; clamp GPU consumers to capacity
                    // (guarded no-op on GPU-free workloads).
                    crate::common::gpu_clamp_assignments(
                        state.cluster.nodes().len(),
                        |id| state.job(id).spec.gpu_need,
                        &mut assignments,
                    );
                    let mut plan = Plan::noop();
                    for j in state.running_jobs() {
                        // `candidates` is ascending; binary search.
                        if candidates.binary_search(&j.spec.id).is_err() {
                            plan = plan.pause(j.spec.id);
                        }
                    }
                    for (id, yld, placement) in assignments {
                        plan = plan.run(id, placement, yld);
                    }
                    return plan;
                }
                None => {
                    let victim = candidates
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            state
                                .job(a)
                                .priority_key(state.now)
                                .cmp(&state.job(b).priority_key(state.now))
                        })
                        .expect("a lone job always packs");
                    candidates.retain(|&c| c != victim);
                }
            }
        }
    }
}

/// Spend leftover CPU on the jobs with the best marginal reduction of
/// estimated stretch per unit of CPU.
fn improve_average_stretch(
    period: f64,
    state: &SimState,
    assignments: &mut [(JobId, f64, Vec<NodeId>)],
    nodes: usize,
) {
    let t = period;
    let mut alloc = vec![0.0; nodes];
    for (id, yld, placement) in assignments.iter() {
        let need = state.job(*id).spec.cpu_need;
        for n in placement {
            alloc[n.index()] += need * yld;
        }
    }
    let mut frozen = vec![false; assignments.len()];
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, (id, yld, placement)) in assignments.iter().enumerate() {
            if frozen[i] || *yld >= 1.0 - approx::EPS {
                continue;
            }
            let j = state.job(*id);
            if !placement
                .iter()
                .all(|&n| approx::pos(1.0 - alloc[n.index()]))
            {
                continue;
            }
            let flow = (state.now - j.spec.submit_time).max(0.0);
            let denom = j.virtual_time + yld * t;
            // −dŜ/dy per unit of total CPU consumed.
            let benefit =
                ((flow + t) * t / (denom * denom)) / (j.spec.cpu_need * j.spec.tasks as f64);
            if best.is_none_or(|(_, b)| benefit > b) {
                best = Some((i, benefit));
            }
        }
        let Some((i, _)) = best else { break };
        let (id, yld, placement) = &assignments[i];
        let need = state.job(*id).spec.cpu_need;
        // Unique hosting nodes by scanning (placements are short); the
        // running minimum is order-independent.
        let mut delta = 1.0 - yld;
        for (k, &n) in placement.iter().enumerate() {
            if placement[..k].contains(&n) {
                continue; // already counted
            }
            let count = placement[k..].iter().filter(|&&m| m == n).count() as u32;
            delta = delta.min((1.0 - alloc[n.index()]) / (need * count as f64));
        }
        if delta <= approx::EPS {
            frozen[i] = true;
            continue;
        }
        for k in 0..assignments[i].2.len() {
            let n = assignments[i].2[k];
            alloc[n.index()] += need * delta;
        }
        assignments[i].1 = (assignments[i].1 + delta).min(1.0);
    }
}

impl Default for DynMcb8StretchPer {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for DynMcb8StretchPer {
    fn name(&self) -> String {
        format!("DynMCB8-stretch-per {}", self.period)
    }
    fn period(&self) -> Option<f64> {
        Some(self.period)
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.observe_epoch(state.change_epoch());
        match ev {
            SchedEvent::Tick => self.repack(state),
            // Periodic semantics: victims wait for the next tick. The
            // memo is left alone — its entries are keyed by the
            // available-node-set identity (set at each repack), so the
            // vanished membership's entries simply stop matching.
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => Plan::noop(),
            _ => Plan::noop(),
        }
    }
    fn repack_stats(&self) -> Option<RepackStats> {
        Some(crate::dynmcb8::memo_stats(&self.memo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{simulate, SimConfig};

    fn cfg() -> SimConfig {
        SimConfig {
            validate: true,
            ..SimConfig::default()
        }
    }

    fn job(id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64) -> JobSpec {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).unwrap()
    }

    #[test]
    fn starts_jobs_at_ticks() {
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let jobs = vec![job(0, 10.0, 1, 0.5, 0.2, 50.0)];
        let out = simulate(
            cluster,
            &jobs,
            &mut DynMcb8StretchPer::with_period(600.0),
            &cfg(),
        );
        assert!((out.records[0].first_start.unwrap() - 600.0).abs() < 1e-9);
        assert!((out.records[0].completion - 650.0).abs() < 1e-6);
    }

    #[test]
    fn favors_the_job_with_worse_estimated_stretch() {
        // One node, two CPU-bound jobs. Job 0 submitted much earlier (big
        // flow time, no progress) — at the first tick it must get a
        // higher yield than the fresh job 1.
        let cluster = ClusterSpec::new(1, 4, 8.0).unwrap();
        let jobs = vec![
            job(0, 0.0, 1, 1.0, 0.3, 300.0),
            job(1, 590.0, 1, 1.0, 0.3, 300.0),
        ];
        let out = simulate(
            cluster,
            &jobs,
            &mut DynMcb8StretchPer::with_period(600.0),
            &cfg(),
        );
        // Both in system at tick 600. Job 0 flow=600, job 1 flow=10; both
        // vt=0. Estimated stretch at next tick: (flow+T)/(yT). To equalize,
        // y0/y1 = (600+600)/(10+600) ≈ 1.97 → job 0 gets ~2/3 of the CPU
        // → it should finish first despite equal runtimes.
        assert!(
            out.records[0].completion < out.records[1].completion,
            "job 0 {} vs job 1 {}",
            out.records[0].completion,
            out.records[1].completion
        );
    }

    #[test]
    fn improvement_pass_uses_leftover_cpu() {
        // One job alone on a 2-node cluster: whatever the search picks,
        // the improvement pass must push it to yield 1 → completes in
        // runtime seconds after its tick start.
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let jobs = vec![job(0, 0.0, 2, 1.0, 0.5, 100.0)];
        let out = simulate(
            cluster,
            &jobs,
            &mut DynMcb8StretchPer::with_period(600.0),
            &cfg(),
        );
        assert!((out.records[0].completion - 700.0).abs() < 1e-6);
    }

    #[test]
    fn name_includes_period() {
        assert_eq!(DynMcb8StretchPer::new().name(), "DynMCB8-stretch-per 600");
    }
}
