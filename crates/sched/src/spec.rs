//! String-keyed scheduler specs and the extensible factory registry.
//!
//! The paper's evaluation is a closed set of nine algorithms; the
//! registry opens that set. A scheduler is named by a [`SchedulerSpec`]
//! — a kebab-case key plus typed `name=value` parameters — and built by
//! a [`SchedulerRegistry`] that maps keys to factories:
//!
//! ```
//! use dfrs_sched::{SchedulerRegistry, SchedulerSpec};
//!
//! let reg = SchedulerRegistry::builtin();
//! let spec: SchedulerSpec = "dynmcb8-per:T=300".parse().unwrap();
//! let sched = reg.build(&spec).unwrap();
//! assert_eq!(sched.name(), "DynMCB8-per 300");
//! ```
//!
//! User code registers its own factories instead of editing an enum:
//!
//! ```
//! use dfrs_sched::{GreedyPmtn, SchedulerRegistry};
//!
//! let mut reg = SchedulerRegistry::builtin();
//! reg.register_fn("greedy-linear", "GREEDY-PMTN with flow/vt priority", &[], |_| {
//!     Ok(Box::new(GreedyPmtn::with_priority_exponent(1.0)))
//! });
//! assert!(reg.build_str("greedy-linear").is_ok());
//! ```
//!
//! ## Spec grammar
//!
//! `key[:name=value[,name=value]*]`. Keys are case-insensitive; spaces
//! and underscores normalize to hyphens, so the paper-table names
//! (`"DynMCB8-per 600"`) and the legacy `"dynmcb8-per-600"` suffix form
//! parse to `dynmcb8-per:t=600`. Parameter names are case-insensitive
//! (`T=300` and `t=300` are the same spec); values are kept verbatim.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use dfrs_core::constants::DEFAULT_PERIOD_SECS;
use dfrs_sim::Scheduler;

use crate::batch::{Easy, Fcfs};
use crate::conservative::ConservativeBf;
use crate::drf::{DynMcb8Drf, DynMcb8DrfPer};
use crate::dynmcb8::{DynMcb8, DynMcb8AsapPer, DynMcb8Per, PackerChoice};
use crate::fairness::DynMcb8FairPer;
use crate::greedy::{Greedy, GreedyPmtn, GreedyPmtnMigr};
use crate::stretch_per::DynMcb8StretchPer;

/// Why a spec failed to parse, resolve, or build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Empty (or all-whitespace) spec string.
    Empty,
    /// The key is not registered. Carries the registry's keys so the
    /// message can point at the nearest valid spelling.
    UnknownKey {
        /// The normalized key that failed to resolve.
        key: String,
        /// All keys the registry knows, sorted.
        known: Vec<String>,
    },
    /// Malformed parameter list (missing `=`, empty name, …).
    Syntax {
        /// The offending fragment.
        fragment: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A parameter the factory does not accept.
    UnknownParam {
        /// The spec key.
        key: String,
        /// The rejected parameter name.
        param: String,
        /// Parameters the factory accepts.
        allowed: Vec<String>,
    },
    /// A parameter value that failed to parse or validate.
    InvalidParam {
        /// The spec key.
        key: String,
        /// The parameter name.
        param: String,
        /// The rejected value.
        value: String,
        /// What a valid value looks like.
        expected: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty scheduler spec"),
            SpecError::UnknownKey { key, known } => {
                write!(f, "unknown scheduler {key:?}; known: {}", known.join(", "))?;
                if let Some(near) = nearest(key, known) {
                    write!(f, " (did you mean {near:?}?)")?;
                }
                Ok(())
            }
            SpecError::Syntax { fragment, detail } => {
                write!(f, "bad spec fragment {fragment:?}: {detail}")
            }
            SpecError::UnknownParam {
                key,
                param,
                allowed,
            } => {
                if allowed.is_empty() {
                    write!(f, "scheduler {key:?} takes no parameters, got {param:?}")
                } else {
                    write!(
                        f,
                        "scheduler {key:?} has no parameter {param:?}; allowed: {}",
                        allowed.join(", ")
                    )
                }
            }
            SpecError::InvalidParam {
                key,
                param,
                value,
                expected,
            } => write!(
                f,
                "invalid value {value:?} for {key}:{param} (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// The registry key with the smallest edit distance to `key`, if any is
/// close enough to plausibly be a typo.
fn nearest<'a>(key: &str, known: &'a [String]) -> Option<&'a str> {
    known
        .iter()
        .map(|k| (edit_distance(key, k), k.as_str()))
        .filter(|(d, k)| *d <= 2.max(k.len() / 3))
        .min_by_key(|(d, _)| *d)
        .map(|(_, k)| k)
}

/// Classic O(nm) Levenshtein distance (specs are short).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Typed parameter bag of a [`SchedulerSpec`]: ordered `name → value`
/// pairs with accessors that produce [`SpecError`]s on bad values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SpecParams {
    map: BTreeMap<String, String>,
    key: String,
}

impl SpecParams {
    /// Raw value of `name`, if set.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// `name` as a float, or `default` when absent.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, SpecError> {
        match self.map.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| SpecError::InvalidParam {
                key: self.key.clone(),
                param: name.to_string(),
                value: v.clone(),
                expected: "a number".into(),
            }),
        }
    }

    /// `name` as a strictly positive float, or `default` when absent.
    pub fn positive_f64_or(&self, name: &str, default: f64) -> Result<f64, SpecError> {
        let v = self.f64_or(name, default)?;
        if v > 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(SpecError::InvalidParam {
                key: self.key.clone(),
                param: name.to_string(),
                value: format!("{v}"),
                expected: "a positive number".into(),
            })
        }
    }

    /// Parameter names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Whether no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A parsed scheduler name: registry key plus parameters.
///
/// `Display` renders the canonical form (`key` or `key:a=1,b=2` with
/// sorted parameter names), and [`FromStr`] parses it back — specs
/// round-trip through their string form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchedulerSpec {
    key: String,
    params: SpecParams,
}

impl SchedulerSpec {
    /// A spec with no parameters. The key is normalized (lowercase,
    /// `_`/space → `-`) but not validated against any registry.
    pub fn new(key: &str) -> Self {
        let key = normalize_key(key);
        SchedulerSpec {
            params: SpecParams {
                map: BTreeMap::new(),
                key: key.clone(),
            },
            key,
        }
    }

    /// Add (or replace) a parameter; names normalize to lowercase.
    ///
    /// # Panics
    ///
    /// Panics if the name or value is empty or contains the grammar's
    /// reserved characters (`:`, `,`, `=`) — such a spec could not
    /// round-trip through its `Display` form.
    pub fn with(mut self, name: &str, value: impl ToString) -> Self {
        let name = name.trim().to_ascii_lowercase();
        let value = value.to_string().trim().to_string();
        for (what, s) in [("parameter name", &name), ("parameter value", &value)] {
            assert!(
                !s.is_empty() && !s.contains([':', ',', '=']),
                "invalid {what} {s:?}: must be non-empty and free of ':', ',', '='"
            );
        }
        self.params.map.insert(name, value);
        self
    }

    /// The registry key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The parameters.
    pub fn params(&self) -> &SpecParams {
        &self.params
    }

    /// A coarse relative cost estimate of simulating one scenario under
    /// this spec — a **scheduling hint only** (higher = more expensive),
    /// used by `Campaign` to dispatch the expensive cells first so a
    /// straggler never serializes the tail of a parallel run. Never
    /// affects any simulation result. The weights mirror measured
    /// laptop-sweep ratios: the search-driven `DynMCB8*` family costs
    /// 10–70× the list-based baselines, with the stretch variant the
    /// single most expensive and the event-driven repacker next.
    pub fn cost_hint(&self) -> u32 {
        match self.key.as_str() {
            // Sharding reduces the superlinear inner work but adds
            // coordination; bill it as the inner plus a small overhead.
            "sharded" => self
                .params
                .get("inner")
                .and_then(|i| i.parse::<SchedulerSpec>().ok())
                .map_or(40, |i| i.cost_hint().saturating_add(5)),
            "dynmcb8-stretch-per" => 70,
            "dynmcb8" => 50,
            k if k.starts_with("dynmcb8") => 35,
            "greedy-pmtn" | "greedy-pmtn-migr" => 10,
            "greedy" => 6,
            "easy" | "conservative-bf" => 2,
            "fcfs" => 1,
            // Unknown (user-registered) specs: assume mid-weight so they
            // are neither serialized last nor allowed to straggle.
            _ => 20,
        }
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The sharded family renders in its own grammar
        // (`sharded:<inner>:shards=N`) because the inner spec may
        // itself contain the reserved `:`/`=`/`,` characters.
        if self.key == "sharded" {
            if let (Some(inner), Some(shards)) =
                (self.params.get("inner"), self.params.get("shards"))
            {
                return write!(f, "sharded:{inner}:shards={shards}");
            }
        }
        f.write_str(&self.key)?;
        for (i, (name, value)) in self.params.map.iter().enumerate() {
            f.write_str(if i == 0 { ":" } else { "," })?;
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

impl FromStr for SchedulerSpec {
    type Err = SpecError;

    /// Parse against the [built-in registry](SchedulerRegistry::builtin).
    /// For user-extended registries use [`SchedulerRegistry::parse`].
    fn from_str(s: &str) -> Result<Self, SpecError> {
        SchedulerRegistry::builtin().parse(s)
    }
}

fn normalize_key(key: &str) -> String {
    key.trim().to_ascii_lowercase().replace([' ', '_'], "-")
}

/// Syntactic split of `key[:params]` without registry validation.
fn split_spec(s: &str) -> Result<(String, Vec<(String, String)>), SpecError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(SpecError::Empty);
    }
    let (key_part, param_part) = match s.split_once(':') {
        Some((k, p)) => (k, Some(p)),
        None => (s, None),
    };
    let key = normalize_key(key_part);
    if key.is_empty() {
        return Err(SpecError::Empty);
    }
    let mut params = Vec::new();
    if let Some(p) = param_part {
        for frag in p.split(',') {
            let frag = frag.trim();
            let (name, value) = frag.split_once('=').ok_or_else(|| SpecError::Syntax {
                fragment: frag.to_string(),
                detail: "expected name=value".into(),
            })?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name.is_empty() || value.is_empty() {
                return Err(SpecError::Syntax {
                    fragment: frag.to_string(),
                    detail: "empty parameter name or value".into(),
                });
            }
            params.push((name, value));
        }
    }
    Ok((key, params))
}

type BuildFn = dyn Fn(&SpecParams) -> Result<Box<dyn Scheduler>, SpecError> + Send + Sync;

/// One registered scheduler family: a key, a summary line, the
/// parameter names it accepts, and the factory closure.
#[derive(Clone)]
pub struct SchedulerFactory {
    key: String,
    summary: String,
    params: Vec<String>,
    build: Arc<BuildFn>,
}

impl SchedulerFactory {
    /// Create a factory. `params` lists every parameter name the build
    /// closure reads (lowercase); anything else in a spec is rejected
    /// before the closure runs.
    pub fn new(
        key: &str,
        summary: &str,
        params: &[&str],
        build: impl Fn(&SpecParams) -> Result<Box<dyn Scheduler>, SpecError> + Send + Sync + 'static,
    ) -> Self {
        SchedulerFactory {
            key: normalize_key(key),
            summary: summary.to_string(),
            params: params.iter().map(|p| p.to_ascii_lowercase()).collect(),
            build: Arc::new(build),
        }
    }

    /// The registry key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// One-line description for `--help`-style listings.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Accepted parameter names.
    pub fn param_names(&self) -> &[String] {
        &self.params
    }
}

impl fmt::Debug for SchedulerFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulerFactory")
            .field("key", &self.key)
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

/// String-keyed scheduler factories: the open counterpart of the
/// closed [`crate::Algorithm`] enum (which is now a thin shim over the
/// built-in entries here).
#[derive(Debug, Clone, Default)]
pub struct SchedulerRegistry {
    factories: BTreeMap<String, SchedulerFactory>,
}

impl SchedulerRegistry {
    /// An empty registry (no keys).
    pub fn empty() -> Self {
        SchedulerRegistry::default()
    }

    /// The built-in registry: the paper's nine algorithms plus the
    /// repository's extensions (`conservative-bf`, `dynmcb8-fair-per`).
    /// Construction is cheap; call it on demand.
    pub fn builtin() -> Self {
        let mut reg = SchedulerRegistry::empty();
        reg.register_fn("fcfs", "First-Come-First-Serve batch baseline", &[], |_| {
            Ok(Box::new(Fcfs::new()))
        });
        reg.register_fn(
            "easy",
            "EASY backfilling with perfect estimates (batch baseline)",
            &[],
            |_| Ok(Box::new(Easy::new())),
        );
        reg.register_fn(
            "conservative-bf",
            "Conservative backfilling with perfect estimates (extension)",
            &[],
            |_| Ok(Box::new(ConservativeBf::new())),
        );
        reg.register_fn(
            "greedy",
            "GREEDY: fractional CPU, backoff postponing",
            &[],
            |_| Ok(Box::new(Greedy::new())),
        );
        reg.register_fn(
            "greedy-pmtn",
            "GREEDY-PMTN: greedy with priority-based pausing (exponent: priority denominator power, default 2)",
            &["exponent"],
            |p| {
                let e = p.positive_f64_or("exponent", 2.0)?;
                Ok(if e == 2.0 {
                    Box::new(GreedyPmtn::new())
                } else {
                    Box::new(GreedyPmtn::with_priority_exponent(e))
                })
            },
        );
        reg.register_fn(
            "greedy-pmtn-migr",
            "GREEDY-PMTN-MIGR: greedy with pausing and same-event re-placement",
            &[],
            |_| Ok(Box::new(GreedyPmtnMigr::new())),
        );
        reg.register_fn(
            "dynmcb8",
            "DYNMCB8: MCB8 repack at every event (packer: mcb8|first-fit|best-fit)",
            &["packer"],
            |p| Ok(Box::new(DynMcb8::with_packer(parse_packer(p, "dynmcb8")?))),
        );
        reg.register_fn(
            "dynmcb8-per",
            "DYNMCB8-PER: periodic MCB8 repack (t: period seconds, default 600)",
            &["t", "packer"],
            |p| {
                let t = p.positive_f64_or("t", DEFAULT_PERIOD_SECS)?;
                Ok(Box::new(DynMcb8Per::with_packer(
                    t,
                    parse_packer(p, "dynmcb8-per")?,
                )))
            },
        );
        reg.register_fn(
            "dynmcb8-asap-per",
            "DYNMCB8-ASAP-PER: periodic repack plus greedy admission (t: period seconds, default 600)",
            &["t", "packer"],
            |p| {
                let t = p.positive_f64_or("t", DEFAULT_PERIOD_SECS)?;
                Ok(Box::new(DynMcb8AsapPer::with_packer(
                    t,
                    parse_packer(p, "dynmcb8-asap-per")?,
                )))
            },
        );
        reg.register_fn(
            "dynmcb8-stretch-per",
            "DYNMCB8-STRETCH-PER: periodic repack minimizing estimated stretch (t: period seconds, default 600)",
            &["t"],
            |p| {
                let t = p.positive_f64_or("t", DEFAULT_PERIOD_SECS)?;
                Ok(Box::new(DynMcb8StretchPer::with_period(t)))
            },
        );
        reg.register_fn(
            "dynmcb8-drf",
            "DYNMCB8-DRF: event-driven repack maximizing the minimum dominant share (DRF, extension)",
            &[],
            |_| Ok(Box::new(DynMcb8Drf::new())),
        );
        reg.register_fn(
            "dynmcb8-drf-per",
            "DYNMCB8-DRF-PER: periodic dominant-share repack (t: period seconds, default 600)",
            &["t"],
            |p| {
                let t = p.positive_f64_or("t", DEFAULT_PERIOD_SECS)?;
                Ok(Box::new(DynMcb8DrfPer::with_period(t)))
            },
        );
        reg.register_fn(
            "sharded",
            "Sharded coordinator: sharded:<inner-spec>:shards=N partitions the cluster and runs one inner instance per shard (defaults: dynmcb8-per, 2 shards)",
            &["inner", "shards"],
            // `build` resolves sharded specs against the calling
            // registry before consulting factories; this fallback (hit
            // only when the factory is invoked directly) resolves the
            // inner spec against the built-ins.
            |p| {
                let mut spec = SchedulerSpec::new("sharded");
                if let Some(v) = p.get("inner") {
                    spec.params.map.insert("inner".into(), v.to_string());
                }
                if let Some(v) = p.get("shards") {
                    spec.params.map.insert("shards".into(), v.to_string());
                }
                SchedulerRegistry::builtin().build_sharded(&spec)
            },
        );
        reg.register_fn(
            "dynmcb8-fair-per",
            "DYNMCB8-FAIR-PER: periodic repack with long-job yield damping (t, vt-threshold, alpha)",
            &["t", "vt-threshold", "alpha"],
            |p| {
                let t = p.positive_f64_or("t", DEFAULT_PERIOD_SECS)?;
                let vt = p.positive_f64_or("vt-threshold", 1_800.0)?;
                let alpha = p.positive_f64_or("alpha", 1.0)?;
                Ok(Box::new(DynMcb8FairPer::with_params(t, vt, alpha)))
            },
        );
        reg
    }

    /// Register (or replace) a factory. Returns `&mut self` so
    /// registrations chain.
    pub fn register(&mut self, factory: SchedulerFactory) -> &mut Self {
        self.factories.insert(factory.key.clone(), factory);
        self
    }

    /// Shorthand for [`register`](Self::register) with an inline closure.
    pub fn register_fn(
        &mut self,
        key: &str,
        summary: &str,
        params: &[&str],
        build: impl Fn(&SpecParams) -> Result<Box<dyn Scheduler>, SpecError> + Send + Sync + 'static,
    ) -> &mut Self {
        self.register(SchedulerFactory::new(key, summary, params, build))
    }

    /// All registered keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// The factory registered under `key`, if any.
    pub fn factory(&self, key: &str) -> Option<&SchedulerFactory> {
        self.factories.get(&normalize_key(key))
    }

    /// Whether `key` is registered.
    pub fn contains(&self, key: &str) -> bool {
        self.factory(key).is_some()
    }

    /// Parse a spec string against this registry: resolve the key
    /// (including the legacy `key-600` period-suffix form), validate
    /// every parameter name, and return the canonical spec.
    pub fn parse(&self, s: &str) -> Result<SchedulerSpec, SpecError> {
        // `sharded:<inner>:shards=N` has its own grammar: the inner
        // spec may itself contain `:`/`=`/`,`, so it cannot go through
        // the ordinary name=value parameter parser.
        if let Some(rest) = s
            .trim()
            .split_once(':')
            .and_then(|(head, rest)| (normalize_key(head) == "sharded").then_some(rest))
        {
            return self.parse_sharded(s, rest);
        }
        let (mut key, mut pairs) = split_spec(s)?;
        if !self.factories.contains_key(&key) {
            // Legacy suffix form: "dynmcb8-per-600" → dynmcb8-per:t=600,
            // accepted when the base key exists and takes a `t` param.
            if let Some((base, num)) = key.rsplit_once('-') {
                if num.parse::<f64>().is_ok()
                    && self
                        .factories
                        .get(base)
                        .is_some_and(|f| f.params.iter().any(|p| p == "t"))
                {
                    pairs.insert(0, ("t".to_string(), num.to_string()));
                    key = base.to_string();
                }
            }
        }
        let factory = self
            .factories
            .get(&key)
            .ok_or_else(|| SpecError::UnknownKey {
                key: key.clone(),
                known: self.keys(),
            })?;
        let mut spec = SchedulerSpec::new(&key);
        for (name, value) in pairs {
            if !factory.params.contains(&name) {
                return Err(SpecError::UnknownParam {
                    key: key.clone(),
                    param: name,
                    allowed: factory.params.clone(),
                });
            }
            spec = spec.with(&name, value);
        }
        Ok(spec)
    }

    /// Parse the tail of `sharded:<inner-spec>:shards=N` (`full` is the
    /// whole spec string, for error messages).
    fn parse_sharded(&self, full: &str, rest: &str) -> Result<SchedulerSpec, SpecError> {
        let (inner_str, shards_str) =
            rest.rsplit_once(":shards=")
                .ok_or_else(|| SpecError::Syntax {
                    fragment: full.trim().to_string(),
                    detail: "expected sharded:<inner-spec>:shards=N".into(),
                })?;
        let shards: u32 = shards_str
            .trim()
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| SpecError::InvalidParam {
                key: "sharded".into(),
                param: "shards".into(),
                value: shards_str.trim().to_string(),
                expected: "an integer >= 1".into(),
            })?;
        let inner = self.parse(inner_str)?;
        if inner.key() == "sharded" {
            return Err(SpecError::Syntax {
                fragment: full.trim().to_string(),
                detail: "nested sharded specs are not supported".into(),
            });
        }
        let mut spec = SchedulerSpec::new("sharded");
        spec.params.map.insert("inner".into(), inner.to_string());
        spec.params.map.insert("shards".into(), shards.to_string());
        Ok(spec)
    }

    /// Build the sharded coordinator for a parsed `sharded` spec,
    /// resolving the inner spec against **this** registry (so
    /// user-registered inner keys work). `shards=1` returns the bare
    /// inner scheduler — single-shard operation is byte-identical to
    /// the unsharded algorithm by construction, not by testing.
    fn build_sharded(&self, spec: &SchedulerSpec) -> Result<Box<dyn Scheduler>, SpecError> {
        let inner = spec.params.get("inner").unwrap_or("dynmcb8-per");
        let shards: u32 = spec
            .params
            .get("shards")
            .unwrap_or("2")
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| SpecError::InvalidParam {
                key: "sharded".into(),
                param: "shards".into(),
                value: spec.params.get("shards").unwrap_or("").to_string(),
                expected: "an integer >= 1".into(),
            })?;
        if shards == 1 {
            return self.build_str(inner);
        }
        let inners = (0..shards)
            .map(|_| self.build_str(inner))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Box::new(crate::sharded::Sharded::new(inners)))
    }

    /// Build a scheduler from a parsed spec.
    pub fn build(&self, spec: &SchedulerSpec) -> Result<Box<dyn Scheduler>, SpecError> {
        if spec.key == "sharded" {
            return self.build_sharded(spec);
        }
        let factory = self
            .factories
            .get(&spec.key)
            .ok_or_else(|| SpecError::UnknownKey {
                key: spec.key.clone(),
                known: self.keys(),
            })?;
        for name in spec.params.names() {
            if !factory.params.iter().any(|p| p == name) {
                return Err(SpecError::UnknownParam {
                    key: spec.key.clone(),
                    param: name.to_string(),
                    allowed: factory.params.clone(),
                });
            }
        }
        (factory.build)(&spec.params)
    }

    /// Parse and build in one step.
    pub fn build_str(&self, s: &str) -> Result<Box<dyn Scheduler>, SpecError> {
        self.build(&self.parse(s)?)
    }
}

fn parse_packer(p: &SpecParams, key: &str) -> Result<PackerChoice, SpecError> {
    match p.get("packer") {
        None | Some("mcb8") => Ok(PackerChoice::Mcb8),
        Some("first-fit") | Some("ff") | Some("ffd") => Ok(PackerChoice::FirstFit),
        Some("best-fit") | Some("bf") | Some("bfd") => Ok(PackerChoice::BestFit),
        Some(other) => Err(SpecError::InvalidParam {
            key: key.to_string(),
            param: "packer".into(),
            value: other.to_string(),
            expected: "mcb8 | first-fit | best-fit".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_key_and_params() {
        let spec: SchedulerSpec = "dynmcb8-per:T=300".parse().unwrap();
        assert_eq!(spec.key(), "dynmcb8-per");
        assert_eq!(spec.params().get("t"), Some("300"));
        assert_eq!(spec.to_string(), "dynmcb8-per:t=300");
        let bare: SchedulerSpec = "fcfs".parse().unwrap();
        assert!(bare.params().is_empty());
        assert_eq!(bare.to_string(), "fcfs");
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "fcfs",
            "greedy-pmtn:exponent=1.5",
            "dynmcb8-asap-per:packer=first-fit,t=60",
            "dynmcb8-fair-per:alpha=0.5,t=600,vt-threshold=1800",
        ] {
            let spec: SchedulerSpec = s.parse().unwrap();
            let again: SchedulerSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, again, "{s}");
        }
    }

    #[test]
    fn unknown_key_lists_known_keys_and_suggests() {
        let err = "dynmbc8".parse::<SchedulerSpec>().unwrap_err();
        match &err {
            SpecError::UnknownKey { known, .. } => {
                assert!(known.iter().any(|k| k == "dynmcb8"));
                assert!(known.iter().any(|k| k == "fcfs"));
            }
            other => panic!("wrong error {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("known:"), "{msg}");
        assert!(msg.contains("did you mean \"dynmcb8\""), "{msg}");
    }

    #[test]
    fn unknown_and_invalid_params_are_rejected() {
        assert!(matches!(
            "fcfs:t=600".parse::<SchedulerSpec>(),
            Err(SpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            "dynmcb8-per:t=banana"
                .parse::<SchedulerSpec>()
                .map(|s| SchedulerRegistry::builtin().build(&s)),
            Ok(Err(SpecError::InvalidParam { .. }))
        ));
        assert!(matches!(
            "dynmcb8-per:t=-5"
                .parse::<SchedulerSpec>()
                .map(|s| SchedulerRegistry::builtin().build(&s)),
            Ok(Err(SpecError::InvalidParam { .. }))
        ));
        assert!(matches!(
            "dynmcb8-per:oops".parse::<SchedulerSpec>(),
            Err(SpecError::Syntax { .. })
        ));
        assert!(matches!("".parse::<SchedulerSpec>(), Err(SpecError::Empty)));
    }

    #[test]
    fn legacy_suffix_and_paper_names_parse() {
        let a: SchedulerSpec = "dynmcb8-per-600".parse().unwrap();
        assert_eq!(a.to_string(), "dynmcb8-per:t=600");
        let b: SchedulerSpec = "DynMCB8-asap-per 600".parse().unwrap();
        assert_eq!(b.to_string(), "dynmcb8-asap-per:t=600");
        // A numeric suffix on a key that takes no period is NOT a period.
        assert!(matches!(
            "fcfs-600".parse::<SchedulerSpec>(),
            Err(SpecError::UnknownKey { .. })
        ));
    }

    #[test]
    fn builds_respect_params() {
        let reg = SchedulerRegistry::builtin();
        assert_eq!(
            reg.build_str("dynmcb8-per:T=60").unwrap().name(),
            "DynMCB8-per 60"
        );
        assert_eq!(reg.build_str("greedy-pmtn").unwrap().name(), "Greedy-pmtn");
        assert!(reg.build_str("dynmcb8:packer=best-fit").is_ok());
        assert!(reg.build_str("dynmcb8:packer=quantum").is_err());
    }

    #[test]
    fn user_registration_extends_and_replaces() {
        let mut reg = SchedulerRegistry::builtin();
        assert!(!reg.contains("my-sched"));
        reg.register_fn("my-sched", "custom", &["t"], |p| {
            let t = p.positive_f64_or("t", 120.0)?;
            Ok(Box::new(DynMcb8Per::with_period(t)))
        });
        assert!(reg.contains("my-sched"));
        assert_eq!(
            reg.build_str("my-sched:t=42").unwrap().name(),
            "DynMCB8-per 42"
        );
        // The legacy suffix rewrite applies to user keys that take `t`.
        assert_eq!(
            reg.parse("my-sched-300").unwrap().to_string(),
            "my-sched:t=300"
        );
    }

    #[test]
    fn sharded_specs_parse_build_and_round_trip() {
        let reg = SchedulerRegistry::builtin();
        let spec = reg.parse("sharded:dynmcb8-per:t=300:shards=4").unwrap();
        assert_eq!(spec.key(), "sharded");
        assert_eq!(spec.params().get("inner"), Some("dynmcb8-per:t=300"));
        assert_eq!(spec.params().get("shards"), Some("4"));
        assert_eq!(spec.to_string(), "sharded:dynmcb8-per:t=300:shards=4");
        let again = reg.parse(&spec.to_string()).unwrap();
        assert_eq!(spec, again);
        // Inner normalization applies (paper-name inner).
        let spec = reg.parse("sharded:DynMCB8-per 600:shards=2").unwrap();
        assert_eq!(spec.to_string(), "sharded:dynmcb8-per:t=600:shards=2");
        // shards=1 builds the *bare* inner (passthrough by construction).
        let one = reg.build_str("sharded:greedy:shards=1").unwrap();
        assert_eq!(one.name(), "Greedy");
        let four = reg.build_str("sharded:greedy:shards=4").unwrap();
        assert_eq!(four.name(), "Sharded[4] Greedy");
    }

    #[test]
    fn sharded_spec_errors_are_typed() {
        let reg = SchedulerRegistry::builtin();
        // Missing shards suffix.
        assert!(matches!(
            reg.parse("sharded:greedy"),
            Err(SpecError::Syntax { .. })
        ));
        // Bad shard counts.
        for s in ["sharded:greedy:shards=0", "sharded:greedy:shards=two"] {
            assert!(matches!(
                reg.parse(s),
                Err(SpecError::InvalidParam { param, .. }) if param == "shards"
            ));
        }
        // Unknown inner key propagates the inner error.
        assert!(matches!(
            reg.parse("sharded:nope:shards=2"),
            Err(SpecError::UnknownKey { .. })
        ));
        // Nesting is rejected.
        assert!(matches!(
            reg.parse("sharded:sharded:greedy:shards=2:shards=2"),
            Err(SpecError::Syntax { .. })
        ));
        // The sharded period follows the inner scheduler.
        let s = reg.build_str("sharded:dynmcb8-per:t=120:shards=2").unwrap();
        assert_eq!(s.period(), Some(120.0));
        // cost_hint bills inner + coordination.
        let spec = reg
            .parse("sharded:dynmcb8-stretch-per:shards=2")
            .unwrap_or_else(|_| {
                reg.parse("sharded:dynmcb8-stretch-per:t=600:shards=2")
                    .unwrap()
            });
        assert_eq!(spec.cost_hint(), 75);
    }

    #[test]
    fn edit_distance_sanity() {
        assert_eq!(edit_distance("fcfs", "fcfs"), 0);
        assert_eq!(edit_distance("fcfs", "fcf"), 1);
        assert_eq!(edit_distance("greedy", "greedy-pmtn"), 5);
    }
}
