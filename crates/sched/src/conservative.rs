//! **Extension beyond the paper**: conservative backfilling, the classic
//! counterpart to EASY (Feitelson et al., "Theory and practice in
//! parallel job scheduling"). Every queued job — not just the head —
//! holds a reservation, and a job may only jump ahead if it delays *no*
//! earlier reservation. Useful as a third batch baseline when studying
//! how much of DFRS's advantage comes from fractional sharing vs from
//! queue policy.
//!
//! Like EASY here, it is clairvoyant (perfect runtime estimates).

use std::collections::VecDeque;

use dfrs_core::ids::{JobId, NodeId};
use dfrs_sim::{JobStatus, Plan, SchedEvent, Scheduler, SimState};

use crate::common::{free_nodes, waiting_jobs};

/// Piecewise-constant future free-node profile: `points[i] = (t_i,
/// free_i)` means `free_i` nodes are free on `[t_i, t_{i+1})`; the last
/// segment extends forever.
#[derive(Debug, Clone)]
struct Profile {
    points: Vec<(f64, u32)>,
}

impl Profile {
    /// Profile starting at `now` with `free_now` nodes, gaining
    /// `releases` (time, nodes) later. Release times before `now` are
    /// clamped to `now`.
    fn new(now: f64, free_now: u32, releases: &[(f64, u32)]) -> Self {
        let mut points = vec![(now, free_now)];
        let mut rel: Vec<(f64, u32)> = releases.iter().map(|&(t, n)| (t.max(now), n)).collect();
        rel.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, n) in rel {
            let last = *points.last().expect("nonempty");
            if (t - last.0).abs() < 1e-9 {
                points.last_mut().expect("nonempty").1 += n;
            } else {
                points.push((t, last.1 + n));
            }
        }
        Profile { points }
    }

    /// Free nodes at time `t`.
    fn free_at(&self, t: f64) -> u32 {
        let mut free = 0;
        for &(pt, pf) in &self.points {
            if pt <= t + 1e-9 {
                free = pf;
            } else {
                break;
            }
        }
        free
    }

    /// Earliest start `s ≥` profile origin such that at least `need`
    /// nodes are free throughout `[s, s + duration)`, or `None` when no
    /// start works — possible only while failures keep the in-service
    /// node count below `need` (the final segment otherwise always has
    /// enough capacity).
    fn find_slot(&self, need: u32, duration: f64) -> Option<f64> {
        let candidates: Vec<f64> = self.points.iter().map(|&(t, _)| t).collect();
        'outer: for &s in &candidates {
            if self.free_at(s) < need {
                continue;
            }
            let end = s + duration;
            for &(t, f) in &self.points {
                if t > s + 1e-9 && t < end - 1e-9 && f < need {
                    continue 'outer;
                }
            }
            return Some(s);
        }
        None
    }

    /// Subtract `need` nodes over `[start, start + duration)`.
    fn reserve(&mut self, start: f64, duration: f64, need: u32) {
        let end = start + duration;
        let split = |points: &mut Vec<(f64, u32)>, at: f64| {
            if points.iter().any(|&(t, _)| (t - at).abs() < 1e-9) {
                return;
            }
            if let Some(i) = points.iter().rposition(|&(t, _)| t < at) {
                let f = points[i].1;
                points.insert(i + 1, (at, f));
            }
        };
        split(&mut self.points, start);
        split(&mut self.points, end);
        for p in &mut self.points {
            if p.0 + 1e-9 >= start && p.0 < end - 1e-9 {
                debug_assert!(p.1 >= need, "profile underflow");
                p.1 -= need;
            }
        }
    }
}

/// Conservative backfilling over whole nodes with perfect estimates.
#[derive(Debug, Default)]
pub struct ConservativeBf {
    queue: VecDeque<JobId>,
}

impl ConservativeBf {
    /// Fresh instance.
    pub fn new() -> Self {
        ConservativeBf::default()
    }

    fn schedule(&mut self, state: &SimState) -> Plan {
        let mut free = free_nodes(state);
        let releases: Vec<(f64, u32)> = state
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Running)
            .map(|j| (state.now + j.remaining(), j.spec.tasks))
            .collect();
        let mut profile = Profile::new(state.now, free.len() as u32, &releases);

        let mut plan = Plan::noop();
        let mut started: Vec<JobId> = Vec::new();
        for &id in self.queue.iter() {
            let spec = &state.job(id).spec;
            // While failures keep the in-service count below this job's
            // width, it holds no reservation (nothing to reserve
            // against); it is reconsidered at the next event — at the
            // latest the repair's NodeUp.
            let Some(start) = profile.find_slot(spec.tasks, spec.oracle_runtime()) else {
                debug_assert!(
                    state.cluster.down_nodes() > 0,
                    "slot must exist on a full cluster"
                );
                continue;
            };
            profile.reserve(start, spec.oracle_runtime(), spec.tasks);
            if (start - state.now).abs() < 1e-9 {
                let placement: Vec<NodeId> = free.drain(..spec.tasks as usize).collect();
                plan = plan.run(id, placement, 1.0);
                started.push(id);
            }
        }
        self.queue.retain(|j| !started.contains(j));
        plan
    }
}

impl Scheduler for ConservativeBf {
    fn name(&self) -> String {
        "Conservative-BF".into()
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(id) => {
                self.queue.push_back(id);
                self.schedule(state)
            }
            SchedEvent::Complete(_) => self.schedule(state),
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => {
                // Killed jobs are Pending again: rebuild the queue in
                // submission order and rebuild every reservation against
                // the surviving nodes.
                self.queue = waiting_jobs(state).into();
                self.schedule(state)
            }
            SchedEvent::Withdraw(id) => {
                // Rebalanced to another shard: purge, or the stale entry
                // would hold a phantom reservation in every later pass.
                self.queue.retain(|&q| q != id);
                Plan::noop()
            }
            _ => Plan::noop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{simulate, SimConfig};

    fn cluster(n: u32) -> ClusterSpec {
        ClusterSpec::new(n, 4, 8.0).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            validate: true,
            ..SimConfig::default()
        }
    }

    fn job(id: u32, submit: f64, tasks: u32, rt: f64) -> JobSpec {
        JobSpec::new(JobId(id), submit, tasks, 1.0, 0.2, rt).unwrap()
    }

    #[test]
    fn profile_find_slot_and_reserve() {
        // 2 free now, 2 more at t=100.
        let mut p = Profile::new(0.0, 2, &[(100.0, 2)]);
        assert_eq!(p.find_slot(2, 50.0), Some(0.0));
        assert_eq!(p.find_slot(4, 10.0), Some(100.0));
        assert_eq!(p.find_slot(5, 10.0), None, "wider than the cluster");
        p.reserve(0.0, 50.0, 2);
        assert_eq!(p.free_at(10.0), 0);
        assert_eq!(p.find_slot(1, 10.0), Some(50.0));
        p.reserve(100.0, 25.0, 4);
        assert_eq!(p.free_at(110.0), 0);
        assert_eq!(p.free_at(130.0), 4);
    }

    #[test]
    fn profile_respects_gaps() {
        // 4 free now, but a reservation blocks [50, 100): a 60 s 4-node
        // job cannot start at 0 or 50; earliest is 100.
        let mut p = Profile::new(0.0, 4, &[]);
        p.reserve(50.0, 50.0, 4);
        assert_eq!(p.find_slot(4, 60.0), Some(100.0));
        // A 40 s job fits before the blocked window.
        assert_eq!(p.find_slot(4, 40.0), Some(0.0));
    }

    #[test]
    fn backfills_like_easy_when_safe() {
        let jobs = vec![
            job(0, 0.0, 2, 100.0),
            job(1, 1.0, 4, 50.0),
            job(2, 2.0, 1, 10.0),
        ];
        let out = simulate(cluster(4), &jobs, &mut ConservativeBf::new(), &cfg());
        assert!((out.records[2].first_start.unwrap() - 2.0).abs() < 1e-6);
        assert!((out.records[1].first_start.unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn never_delays_any_reservation() {
        // Queue: A (head, needs 4 at t=100), B (needs 2 at t=150 after A),
        // C (1 node, 60 s): EASY would run C now only respecting A; the
        // conservative rule must also respect B's reservation — here C
        // finishing at 62 < 100 disturbs nobody, so it still backfills.
        let jobs = vec![
            job(0, 0.0, 2, 100.0),
            job(1, 1.0, 4, 50.0),
            job(2, 2.0, 2, 200.0),
            job(3, 3.0, 1, 60.0),
        ];
        let out = simulate(cluster(4), &jobs, &mut ConservativeBf::new(), &cfg());
        // Reservations: job1 at 100 (all 4), job2 at 150. Job 3 (60 s,
        // 1 node) finishing at 63 < 100: safe to start now.
        assert!((out.records[3].first_start.unwrap() - 3.0).abs() < 1e-6);
        assert!((out.records[1].first_start.unwrap() - 100.0).abs() < 1e-6);
        assert!((out.records[2].first_start.unwrap() - 150.0).abs() < 1e-6);
    }

    #[test]
    fn long_backfill_blocked_when_it_would_delay_later_reservation() {
        // Head needs all 4 nodes at t=100; a later 2-node job reserves
        // t=150. A 2-node 300 s candidate would push the later
        // reservation → it must wait; EASY (head-only) would also block
        // it here via the shadow, so contrast with a case where EASY
        // lets it through: candidate finishes after head's shadow but
        // uses extra nodes... with all 4 consumed at shadow there are no
        // extra nodes, so both refuse. Verify the conservative refusal.
        let jobs = vec![
            job(0, 0.0, 2, 100.0),
            job(1, 1.0, 4, 50.0),
            job(2, 2.0, 2, 300.0),
        ];
        let out = simulate(cluster(4), &jobs, &mut ConservativeBf::new(), &cfg());
        assert!(out.records[2].first_start.unwrap() >= 150.0 - 1e-6);
    }

    #[test]
    fn killed_jobs_are_requeued_and_rerun_after_repair() {
        // A 4-node job is killed when node 2 fails; while the node is
        // down a 1-node job still runs; the wide job reruns after the
        // repair with its progress discarded.
        let jobs = vec![job(0, 0.0, 4, 100.0), job(1, 10.0, 1, 20.0)];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![
                dfrs_sim::NodeEvent {
                    time: 30.0,
                    node: NodeId(2),
                    up: false,
                },
                dfrs_sim::NodeEvent {
                    time: 200.0,
                    node: NodeId(2),
                    up: true,
                },
            ],
            ..SimConfig::default()
        };
        let out = simulate(cluster(4), &jobs, &mut ConservativeBf::new(), &cfg);
        assert_eq!(out.restart_count, 1);
        assert!((out.lost_virtual_seconds - 30.0).abs() < 1e-6);
        // Job 1 runs on a surviving node right after the failure freed
        // them (it had been queued behind the 4-node job).
        assert!(out.records[1].completion < 200.0);
        assert!((out.records[0].completion - 300.0).abs() < 1e-6);
    }

    #[test]
    fn all_jobs_complete_under_churn() {
        let jobs: Vec<JobSpec> = (0..14)
            .map(|i| job(i, (i as f64) * 7.0, 1 + i % 4, 20.0 + (i as f64) * 11.0))
            .collect();
        let out = simulate(cluster(4), &jobs, &mut ConservativeBf::new(), &cfg());
        assert_eq!(out.records.len(), 14);
        assert_eq!(out.preemption_count, 0);
        for r in &out.records {
            assert!(r.stretch >= 1.0);
        }
    }
}
