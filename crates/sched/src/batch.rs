//! Batch-scheduling baselines (Section IV-B): `FCFS` and `EASY`.
//!
//! Both allocate **integral** nodes — one task per node, exclusive access,
//! yield 1.0 — exactly as production batch schedulers do, and never
//! preempt or migrate. `EASY` adds aggressive backfilling: the head of
//! the queue receives a reservation at the earliest time enough nodes
//! will be free, and later jobs may jump ahead if they do not interfere
//! with that reservation. Per the paper's conservative methodology, EASY
//! is given **perfect runtime estimates** (the clairvoyant
//! `oracle_runtime` accessor) while the DFRS algorithms get nothing.
//!
//! Under platform dynamics a failure kills the struck jobs (the engine
//! resubmits them under the default [`dfrs_sim::FailurePolicy`]); both
//! schedulers rebuild their queue from the waiting set
//! ([`crate::common::waiting_jobs`]: pending, plus paused victims of
//! the preserve policy) in submission order — killed jobs rejoin ahead
//! of later arrivals, exactly where a resubmission with the original
//! timestamp would sit — and reschedule. Free lists come from
//! [`crate::common::free_nodes`], which never offers an out-of-service
//! node.

use std::collections::VecDeque;

use dfrs_core::ids::{JobId, NodeId};
use dfrs_sim::{JobStatus, Plan, SchedEvent, Scheduler, SimState};

use crate::common::{free_nodes, waiting_jobs};

/// First-Come-First-Serve: strict FIFO dispatch onto whole nodes.
#[derive(Debug, Default)]
pub struct Fcfs {
    queue: VecDeque<JobId>,
}

impl Fcfs {
    /// Fresh instance.
    pub fn new() -> Self {
        Fcfs::default()
    }

    fn dispatch(&mut self, state: &SimState) -> Plan {
        let mut free = free_nodes(state);
        let mut plan = Plan::noop();
        while let Some(&head) = self.queue.front() {
            let tasks = state.job(head).spec.tasks as usize;
            if tasks > free.len() {
                break; // strict FIFO: nothing may overtake the head
            }
            let placement: Vec<NodeId> = free.drain(..tasks).collect();
            plan = plan.run(head, placement, 1.0);
            self.queue.pop_front();
        }
        plan
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> String {
        "FCFS".into()
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(id) => {
                self.queue.push_back(id);
                self.dispatch(state)
            }
            SchedEvent::Complete(_) => self.dispatch(state),
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => {
                // Killed jobs are Pending again: rebuild the queue from
                // the pending set (id = submission order, so victims
                // rejoin at their original rank) and redispatch.
                self.queue = waiting_jobs(state).into();
                self.dispatch(state)
            }
            SchedEvent::Withdraw(id) => {
                // Rebalanced to another shard: purge, or the stale entry
                // would head-block the queue forever.
                self.queue.retain(|&q| q != id);
                Plan::noop()
            }
            _ => Plan::noop(),
        }
    }
}

/// EASY backfilling with perfect runtime estimates.
#[derive(Debug, Default)]
pub struct Easy {
    queue: VecDeque<JobId>,
}

impl Easy {
    /// Fresh instance.
    pub fn new() -> Self {
        Easy::default()
    }

    /// One full scheduling pass: start queue heads while they fit, then
    /// backfill behind the head's reservation.
    fn schedule(&mut self, state: &SimState) -> Plan {
        let mut free = free_nodes(state);
        let mut plan = Plan::noop();
        // (completion_time, nodes_released) of jobs that will be running
        // after this plan; seeded with currently running jobs.
        let mut releases: Vec<(f64, u32)> = state
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Running)
            .map(|j| {
                // Batch jobs run at yield 1: remaining vt = remaining wall.
                (state.now + j.remaining(), j.spec.tasks)
            })
            .collect();

        // Start heads while they fit.
        while let Some(&head) = self.queue.front() {
            let spec = &state.job(head).spec;
            if spec.tasks as usize > free.len() {
                break;
            }
            let placement: Vec<NodeId> = free.drain(..spec.tasks as usize).collect();
            releases.push((state.now + spec.oracle_runtime(), spec.tasks));
            plan = plan.run(head, placement, 1.0);
            self.queue.pop_front();
        }

        if self.queue.is_empty() {
            return plan;
        }

        // Reservation for the head: earliest time `head.tasks` nodes are
        // simultaneously free, assuming perfect estimates.
        let head_tasks = state.job(*self.queue.front().expect("nonempty")).spec.tasks;
        releases.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cum = free.len() as u32;
        let mut shadow = f64::INFINITY;
        let mut extra = 0u32;
        for &(t, n) in &releases {
            cum += n;
            if cum >= head_tasks {
                shadow = t;
                extra = cum - head_tasks;
                break;
            }
        }
        // An infinite shadow means the head cannot run on the nodes
        // currently in service; that is only legitimate while part of
        // the cluster is down (the head waits for a repair, and EASY's
        // aggressive rule lets everything that fits backfill meanwhile).
        debug_assert!(
            shadow.is_finite() || state.cluster.down_nodes() > 0,
            "head can never run: tasks > cluster?"
        );
        // Nodes free *now* beyond those the reservation will consume are
        // also usable indefinitely; `extra` counts surplus at shadow time.
        let mut extra = extra.min(free.len() as u32);

        // Backfill pass: jobs behind the head, in order.
        let mut started: Vec<JobId> = Vec::new();
        for &cand in self.queue.iter().skip(1) {
            let spec = &state.job(cand).spec;
            let tasks = spec.tasks as usize;
            if tasks > free.len() {
                continue;
            }
            let finishes_before_shadow = state.now + spec.oracle_runtime() <= shadow;
            let fits_extra = spec.tasks <= extra;
            if finishes_before_shadow || fits_extra {
                let placement: Vec<NodeId> = free.drain(..tasks).collect();
                plan = plan.run(cand, placement, 1.0);
                started.push(cand);
                if !finishes_before_shadow {
                    extra -= spec.tasks;
                }
            }
        }
        self.queue.retain(|j| !started.contains(j));
        plan
    }
}

impl Scheduler for Easy {
    fn name(&self) -> String {
        "EASY".into()
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(id) => {
                self.queue.push_back(id);
                self.schedule(state)
            }
            SchedEvent::Complete(_) => self.schedule(state),
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => {
                // Requeue killed jobs (see `Fcfs`), rebuild the head's
                // reservation against the surviving nodes, reschedule.
                self.queue = waiting_jobs(state).into();
                self.schedule(state)
            }
            SchedEvent::Withdraw(id) => {
                // Rebalanced to another shard: purge the stale entry.
                self.queue.retain(|&q| q != id);
                Plan::noop()
            }
            _ => Plan::noop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{simulate, SimConfig};

    fn cluster(n: u32) -> ClusterSpec {
        ClusterSpec::new(n, 4, 8.0).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            validate: true,
            ..SimConfig::default()
        }
    }

    fn job(id: u32, submit: f64, tasks: u32, rt: f64) -> JobSpec {
        JobSpec::new(JobId(id), submit, tasks, 1.0, 0.2, rt).unwrap()
    }

    #[test]
    fn fcfs_runs_in_order() {
        let jobs = vec![job(0, 0.0, 2, 100.0), job(1, 10.0, 2, 50.0)];
        let out = simulate(cluster(2), &jobs, &mut Fcfs::new(), &cfg());
        assert!((out.records[0].completion - 100.0).abs() < 1e-6);
        // Job 1 waits for both nodes: starts 100, ends 150.
        assert!((out.records[1].completion - 150.0).abs() < 1e-6);
    }

    #[test]
    fn fcfs_head_blocks_smaller_jobs() {
        // Head needs 4 nodes (busy until 100); a 1-node job behind it
        // must wait even though 2 nodes are free — the FCFS weakness EASY
        // fixes.
        let jobs = vec![
            job(0, 0.0, 2, 100.0), // occupies 2 of 4 nodes
            job(1, 1.0, 4, 50.0),  // head of queue, needs all 4
            job(2, 2.0, 1, 10.0),  // small job stuck behind
        ];
        let out = simulate(cluster(4), &jobs, &mut Fcfs::new(), &cfg());
        assert!((out.records[1].first_start.unwrap() - 100.0).abs() < 1e-6);
        assert!(
            out.records[2].first_start.unwrap() >= 150.0 - 1e-6,
            "FCFS must not let job 2 overtake: {:?}",
            out.records[2].first_start
        );
    }

    #[test]
    fn easy_backfills_short_jobs() {
        // Same scenario: EASY backfills job 2 (10 s ≤ shadow 100) onto a
        // free node immediately.
        let jobs = vec![
            job(0, 0.0, 2, 100.0),
            job(1, 1.0, 4, 50.0),
            job(2, 2.0, 1, 10.0),
        ];
        let out = simulate(cluster(4), &jobs, &mut Easy::new(), &cfg());
        assert!((out.records[2].first_start.unwrap() - 2.0).abs() < 1e-6);
        // Head still starts exactly at its reservation.
        assert!((out.records[1].first_start.unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn easy_backfill_never_delays_reservation() {
        // Job 2 runs 200 s — longer than the shadow (100): backfilling it
        // onto the 2 free nodes would delay the head, so EASY must not.
        let jobs = vec![
            job(0, 0.0, 2, 100.0),
            job(1, 1.0, 4, 50.0),
            job(2, 2.0, 1, 200.0),
        ];
        let out = simulate(cluster(4), &jobs, &mut Easy::new(), &cfg());
        assert!((out.records[1].first_start.unwrap() - 100.0).abs() < 1e-6);
        assert!(out.records[2].first_start.unwrap() >= 100.0 - 1e-6);
    }

    #[test]
    fn easy_uses_extra_nodes_for_long_backfill() {
        // Head needs 3 of 4 nodes at shadow: one node is extra, so a long
        // 1-node job may backfill onto it without delaying the head.
        let jobs = vec![
            job(0, 0.0, 2, 100.0), // nodes 0-1 until t=100
            job(1, 1.0, 3, 50.0),  // head: reservation at t=100, extra=1
            job(2, 2.0, 1, 500.0), // long, 1 node → fits the extra node
        ];
        let out = simulate(cluster(4), &jobs, &mut Easy::new(), &cfg());
        assert!((out.records[2].first_start.unwrap() - 2.0).abs() < 1e-6);
        assert!((out.records[1].first_start.unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn batch_never_preempts() {
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| job(i, i as f64, 1 + i % 3, 30.0 + i as f64))
            .collect();
        for sched in [&mut Fcfs::new() as &mut dyn Scheduler, &mut Easy::new()] {
            let out = simulate(cluster(3), &jobs, sched, &cfg());
            assert_eq!(out.preemption_count, 0);
            assert_eq!(out.migration_count, 0);
            assert_eq!(out.preemption_gb, 0.0);
        }
    }

    #[test]
    fn easy_equals_fcfs_without_backfill_opportunities() {
        // Single-node jobs of equal length leave no backfill gaps.
        let jobs: Vec<JobSpec> = (0..5).map(|i| job(i, 0.0, 1, 100.0)).collect();
        let f = simulate(cluster(2), &jobs, &mut Fcfs::new(), &cfg());
        let e = simulate(cluster(2), &jobs, &mut Easy::new(), &cfg());
        assert_eq!(f.max_stretch, e.max_stretch);
    }

    #[test]
    fn fcfs_restarts_killed_job_after_repair() {
        // Job 0 spans both nodes; node 1 fails at t=50 (progress lost)
        // and is repaired at t=80. The job needs 2 nodes, so it waits
        // for the repair and reruns from scratch: completes at 180.
        let jobs = vec![job(0, 0.0, 2, 100.0)];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![
                dfrs_sim::NodeEvent {
                    time: 50.0,
                    node: NodeId(1),
                    up: false,
                },
                dfrs_sim::NodeEvent {
                    time: 80.0,
                    node: NodeId(1),
                    up: true,
                },
            ],
            ..SimConfig::default()
        };
        let out = simulate(cluster(2), &jobs, &mut Fcfs::new(), &cfg);
        assert_eq!(out.restart_count, 1);
        assert_eq!(out.records[0].restarts, 1);
        assert!((out.lost_virtual_seconds - 50.0).abs() < 1e-6);
        assert!((out.records[0].completion - 180.0).abs() < 1e-6);
        // 30 s of one node down.
        assert!((out.down_node_seconds - 30.0).abs() < 1e-6);
    }

    #[test]
    fn fcfs_killed_head_keeps_its_rank() {
        // Job 0 (1 node) killed at t=10 must restart before job 1 gets
        // the freed node back, because resubmission keeps the original
        // submit order.
        let jobs = vec![job(0, 0.0, 2, 100.0), job(1, 5.0, 2, 100.0)];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![
                dfrs_sim::NodeEvent {
                    time: 10.0,
                    node: NodeId(0),
                    up: false,
                },
                dfrs_sim::NodeEvent {
                    time: 20.0,
                    node: NodeId(0),
                    up: true,
                },
            ],
            ..SimConfig::default()
        };
        let out = simulate(cluster(2), &jobs, &mut Fcfs::new(), &cfg);
        // Job 0 restarts at the repair (t=20) and job 1 still runs after
        // it: strict FIFO survives the failure.
        assert!((out.records[0].completion - 120.0).abs() < 1e-6);
        assert!((out.records[1].completion - 220.0).abs() < 1e-6);
    }

    #[test]
    fn easy_reschedules_around_a_down_node() {
        // 4 nodes; a 4-node head is blocked while one node is down, but
        // 1-node jobs keep backfilling onto the survivors.
        let jobs = vec![
            job(0, 0.0, 4, 100.0),
            job(1, 5.0, 1, 10.0),
            job(2, 6.0, 1, 10.0),
        ];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![
                dfrs_sim::NodeEvent {
                    time: 1.0,
                    node: NodeId(3),
                    up: false,
                },
                dfrs_sim::NodeEvent {
                    time: 500.0,
                    node: NodeId(3),
                    up: true,
                },
            ],
            ..SimConfig::default()
        };
        let out = simulate(cluster(4), &jobs, &mut Easy::new(), &cfg);
        assert_eq!(out.restart_count, 1, "head killed by the failure");
        // The short jobs run on surviving nodes long before the repair.
        assert!(out.records[1].completion < 100.0);
        assert!(out.records[2].completion < 100.0);
        // The wide head needs all four nodes: restarts at the repair.
        assert!((out.records[0].completion - 600.0).abs() < 1e-6);
    }

    #[test]
    fn integral_allocation_wastes_fractional_capacity() {
        // The motivating pathology: jobs that *could* share nodes (low
        // CPU need, low memory) still serialize under batch scheduling.
        let jobs = vec![
            JobSpec::new(JobId(0), 0.0, 2, 0.25, 0.1, 100.0).unwrap(),
            JobSpec::new(JobId(1), 0.0, 2, 0.25, 0.1, 100.0).unwrap(),
        ];
        let out = simulate(cluster(2), &jobs, &mut Fcfs::new(), &cfg());
        // Batch: job 1 waits for job 0's nodes → stretch 2.
        assert!((out.records[1].completion - 200.0).abs() < 1e-6);
        assert!((out.max_stretch - 2.0).abs() < 1e-6);
    }
}
