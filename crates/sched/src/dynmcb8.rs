//! The vector-packing DFRS algorithms (Section III-B): `DYNMCB8`,
//! `DYNMCB8-PER`, and `DYNMCB8-ASAP-PER`.
//!
//! All three compute *global* allocations with the MCB8 heuristic wrapped
//! in a binary search that maximizes the minimum yield (accuracy 0.01).
//! If no allocation exists at any yield — i.e. memory alone cannot be
//! packed — the lowest-priority job is removed from consideration (and
//! paused if running) and the search retries. The resulting uniform yield
//! is then improved by the average-yield heuristic.
//!
//! * `DYNMCB8` repacks at **every** submission and completion:
//!   near-optimal minimum yield, but aggressive preemption/migration.
//! * `DYNMCB8-PER-T` repacks every `T` seconds (600 in the paper);
//!   arrivals wait in the queue until the next tick.
//! * `DYNMCB8-ASAP-PER-T` additionally admits arrivals immediately when
//!   they fit greedily under memory constraints, letting short jobs run
//!   (and possibly finish) between ticks.

use dfrs_core::constants::{DEFAULT_PERIOD_SECS, MIN_STRETCH_PER_YIELD, YIELD_SEARCH_ACCURACY};
use dfrs_core::ids::{JobId, NodeId};
use dfrs_packing::{
    max_min_yield_warm, BestFitDecreasing, FirstFitDecreasing, JobLoad, Mcb8, RepackMemo,
    SearchScratch, VectorPacker,
};
use dfrs_sim::{Plan, RepackStats, SchedEvent, Scheduler, SimState};

use crate::common::{AllocSet, NodeScratch};

/// Which vector-packing heuristic the DYNMCB8 family uses inside the
/// yield binary search. The paper uses MCB8 everywhere; the alternatives
/// exist for the packer ablation (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackerChoice {
    /// Leinberger et al.'s balance-aware heuristic (the paper's choice).
    #[default]
    Mcb8,
    /// First-fit decreasing baseline.
    FirstFit,
    /// Best-fit decreasing baseline.
    BestFit,
}

impl PackerChoice {
    /// The packer instance (all are zero-sized).
    pub fn packer(&self) -> &'static dyn VectorPacker {
        match self {
            PackerChoice::Mcb8 => &Mcb8,
            PackerChoice::FirstFit => &FirstFitDecreasing,
            PackerChoice::BestFit => &BestFitDecreasing,
        }
    }

    /// Short tag for names/reports.
    pub fn tag(&self) -> &'static str {
        match self {
            PackerChoice::Mcb8 => "mcb8",
            PackerChoice::FirstFit => "ffd",
            PackerChoice::BestFit => "bfd",
        }
    }
}

/// Raw result of the eviction loop + yield binary search: the uniform
/// yield, each surviving job's task placement, and the running jobs that
/// had to be evicted to make the packing feasible.
#[derive(Debug, Clone)]
pub(crate) struct PackedAllocation {
    /// The maximized minimum yield of the packing.
    pub yield_: f64,
    /// `(job, node per task)` for every surviving candidate.
    pub placements: Vec<(JobId, Vec<NodeId>)>,
    /// Currently running jobs excluded from the packing (to be paused).
    pub evicted_running: Vec<JobId>,
}

/// Reusable buffers for [`packed_allocation`], plus the change-epoch
/// memo behind the dirty-state repack skip: one per scheduler instance,
/// reused across every event of a simulation run.
#[derive(Debug, Default)]
pub(crate) struct RepackScratch {
    search: SearchScratch,
    /// Cross-event warm-start state: identical `(job set, nodes)`
    /// searches — including the infeasible verdicts of the eviction
    /// loop — replay their stored result with zero packs
    /// (`dfrs_packing::memo` has the exactness argument).
    pub(crate) memo: RepackMemo,
    loads: Vec<JobLoad>,
    candidates: Vec<JobId>,
    /// The available-node slice of the last repack: packing runs over
    /// `avail.len()` anonymous bins and bin `b` maps to physical node
    /// `avail[b]`. With no failures this is the identity.
    avail: Vec<NodeId>,
    /// [`ClusterState::membership_epoch`] the `avail` slice and its
    /// platform identity were computed at. While unchanged, both are
    /// still exact (the slice is a pure function of the membership), so
    /// per-event repacks skip the cluster-sized rebuild and rehash —
    /// the dominant per-event cost on very large clusters.
    avail_membership: Option<u64>,
    /// `RepackMemo::caps_identity` of `avail`, cached alongside it.
    avail_identity: u64,
    /// [`SimState::change_epoch`] recorded at the last *eviction-free*
    /// repack decision. A clean repack is a pure function of the
    /// candidate set and the cluster size — not of time — so while the
    /// epoch is unchanged (no submissions, completions, placement or
    /// yield changes since; see `SimState::change_epoch`), replaying it
    /// would re-derive the exact allocation already in force and apply
    /// as a physical no-op. Repacks that evicted are never memoized:
    /// victim selection reads time-dependent priority keys.
    last_clean_epoch: Option<u64>,
    /// Highest epoch ever observed by this scheduler instance. Epochs
    /// are monotone within one simulation and restart at ~0 for a new
    /// one, so an observed decrease proves the instance is being reused
    /// across `simulate` runs and the memo must be dropped (an epoch
    /// from another run says nothing about this run's state).
    last_seen_epoch: u64,
}

impl RepackScratch {
    /// Record `epoch` from the current event; on a new-run detection
    /// (epoch went backwards) the clean-repack memo is invalidated.
    /// Schedulers call this on **every** event so detection happens
    /// before the first tick of a reused instance.
    pub(crate) fn observe_epoch(&mut self, epoch: u64) {
        if epoch < self.last_seen_epoch {
            self.last_clean_epoch = None;
            // The warm-start memo is keyed by complete inputs, so stale
            // entries could never answer wrongly — dropping them on a
            // new-run detection is hygiene (a fresh trace shares no job
            // sets with the old one, so the entries are dead weight).
            self.memo.clear();
            // The new run's cluster may share a membership counter with
            // the old one's; the cached available-node slice must not
            // answer for it.
            self.avail_membership = None;
        }
        self.last_seen_epoch = self.last_seen_epoch.max(epoch);
    }

    /// The warm-start accounting in the engine's vocabulary.
    pub(crate) fn stats(&self) -> RepackStats {
        memo_stats(&self.memo)
    }

    /// The node set changed (a failure or repair). The clean-repack
    /// epoch memo is stale by construction — the epoch bumped — but is
    /// dropped here explicitly for clarity. The warm-start memo is
    /// **not** flushed: every entry carries the platform identity of
    /// the available-node set it was recorded against (see
    /// [`RepackMemo::set_caps_identity`], folded into each fingerprint
    /// by [`packed_allocation`]), so entries from other memberships can
    /// never answer — and when an identity returns (a repaired node
    /// restores a previous set) its entries resume answering instead of
    /// having been thrown away. Correctness no longer depends on this
    /// hook being called at all.
    pub(crate) fn on_node_set_change(&mut self) {
        self.last_clean_epoch = None;
    }
}

/// Map `dfrs_packing`'s memo counters into the engine-facing
/// [`RepackStats`] (probe hits fold into `packs_saved`, where they
/// already count).
pub(crate) fn memo_stats(memo: &RepackMemo) -> RepackStats {
    let s = memo.stats();
    RepackStats {
        searches: s.searches,
        search_hits: s.search_hits,
        packs: s.packs,
        packs_saved: s.packs_saved,
    }
}

/// Eviction loop + yield binary search over all jobs in the system
/// (Section III-B): when memory alone cannot be packed, the
/// lowest-priority job is dropped from consideration and the search
/// retries.
///
/// Packing runs over the **available-node slice**: `avail.len()`
/// anonymous bins, bin `b` landing on physical node `avail[b]`. With
/// every node up the slice is the identity, so failure-free packings
/// are byte-identical to the static-cluster ones; a packing is a pure
/// function of `(loads, bin count)` either way, which is what keeps the
/// warm memo's replays exact across the mapping.
pub(crate) fn packed_allocation(
    state: &SimState,
    packer: &'static dyn VectorPacker,
    scratch: &mut RepackScratch,
) -> PackedAllocation {
    // The slice and its identity are pure functions of the node
    // membership: recompute them only when it changed (both are
    // cluster-sized, and most events change no membership).
    let membership = state.cluster.membership_epoch();
    if scratch.avail_membership != Some(membership) {
        crate::common::available_nodes_into(state, &mut scratch.avail);
        // Key the warm memo by the *identity* of the available-node set,
        // not just its size: two memberships of equal size are different
        // platforms, and an entry recorded under one must not answer
        // under the other (same-count churn keeps `nodes` — and thus
        // the rest of the fingerprint — unchanged).
        scratch.avail_identity =
            RepackMemo::caps_identity(scratch.avail.iter().map(|n| n.index() as u64));
        scratch.avail_membership = Some(membership);
    }
    scratch.memo.set_caps_identity(scratch.avail_identity);
    let avail = &scratch.avail;
    let nodes = avail.len();
    let candidates = &mut scratch.candidates;
    candidates.clear();
    // With no node in service nothing can be packed (possible only
    // transiently under heavy churn): every candidate would be evicted
    // one by one, so skip straight to the empty allocation.
    if nodes > 0 {
        candidates.extend(state.jobs_in_system().map(|j| j.spec.id));
    }

    loop {
        let loads = &mut scratch.loads;
        loads.clear();
        loads.extend(candidates.iter().map(|&id| {
            let s = &state.job(id).spec;
            JobLoad {
                job: id,
                tasks: s.tasks,
                cpu_need: s.cpu_need,
                mem_req: s.mem_req,
            }
        }));
        match max_min_yield_warm(
            loads,
            nodes.max(1),
            packer,
            YIELD_SEARCH_ACCURACY,
            MIN_STRETCH_PER_YIELD,
            &mut scratch.search,
            &mut scratch.memo,
        ) {
            Some(alloc) => {
                let placements: Vec<(JobId, Vec<NodeId>)> = alloc
                    .placements
                    .into_iter()
                    .map(|(id, bins)| (id, bins.into_iter().map(|b| avail[b as usize]).collect()))
                    .collect();
                // `candidates` is ascending (built from `jobs_in_system`,
                // pruned with `retain`), so membership is a binary search —
                // the linear scan made this loop O(running × candidates).
                let evicted_running = state
                    .running_jobs()
                    .map(|j| j.spec.id)
                    .filter(|id| candidates.binary_search(id).is_err())
                    .collect();
                return PackedAllocation {
                    yield_: alloc.yield_,
                    placements,
                    evicted_running,
                };
            }
            None => {
                // Evict the lowest-priority candidate and retry. On the
                // full cluster a lone job always packs (traces are
                // validated against it), so this cannot drain the
                // candidate set; under failures it can — and the empty
                // set then packs trivially, pausing everything until
                // capacity returns.
                let victim = candidates
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        state
                            .job(a)
                            .priority_key(state.now)
                            .cmp(&state.job(b).priority_key(state.now))
                    })
                    .expect("an empty candidate set packs trivially");
                candidates.retain(|&c| c != victim);
            }
        }
    }
}

/// The full paper pipeline: packing, average-yield improvement, plan —
/// skipped entirely (noop) when nothing observable changed since the
/// last eviction-free repack (see [`RepackScratch::last_clean_epoch`]).
pub(crate) fn repack_all(
    state: &SimState,
    packer: &'static dyn VectorPacker,
    scratch: &mut RepackScratch,
) -> Plan {
    let epoch = state.change_epoch();
    if scratch.last_clean_epoch == Some(epoch) {
        return Plan::noop();
    }
    let in_system = state.jobs_in_system().count();
    let packed = packed_allocation(state, packer, scratch);
    // Clean = every in-system job was packed (no candidate dropped, no
    // running job evicted) — the only case whose outcome is
    // time-independent and therefore memoizable.
    let clean = packed.placements.len() == in_system;
    scratch.last_clean_epoch = clean.then_some(epoch);
    // At full yield with no GPU demand the improvement pass is the
    // identity (see `AllocSet::optimized_yields`' fast path), so skip
    // building the `AllocSet` — and its per-job placement clones — on
    // the underloaded hot path. Bit-identical to the general path.
    let base = packed.yield_.min(1.0);
    let full_speed = base >= 1.0 - dfrs_core::approx::EPS
        && packed
            .placements
            .iter()
            .all(|(id, _)| state.job(*id).spec.gpu_need <= 0.0);
    let yields: Vec<(JobId, f64)> = if full_speed {
        packed
            .placements
            .iter()
            .map(|(id, _)| (*id, base))
            .collect()
    } else {
        let mut set = AllocSet::new(state.cluster.nodes().len());
        for (id, placement) in &packed.placements {
            let spec = &state.job(*id).spec;
            set.push(*id, spec.cpu_need, spec.gpu_need, placement.clone());
        }
        set.optimized_yields(packed.yield_)
    };
    let mut plan = Plan::noop();
    for id in &packed.evicted_running {
        plan = plan.pause(*id);
    }
    for ((id, placement), (yid, yld)) in packed.placements.into_iter().zip(yields) {
        debug_assert_eq!(id, yid);
        plan = plan.run(id, placement, yld);
    }
    plan
}

/// `DYNMCB8`: global repack at every submission and completion.
#[derive(Debug, Default)]
pub struct DynMcb8 {
    packer: PackerChoice,
    scratch: RepackScratch,
}

impl DynMcb8 {
    /// Fresh instance with the paper's MCB8 packer.
    pub fn new() -> Self {
        DynMcb8::default()
    }

    /// Ablation constructor: swap the packing heuristic.
    pub fn with_packer(packer: PackerChoice) -> Self {
        DynMcb8 {
            packer,
            scratch: RepackScratch::default(),
        }
    }

    /// Enable or disable cross-event warm starting (on by default;
    /// results are bit-identical either way — disabling exists for the
    /// warm-vs-cold benchmarks).
    pub fn warm(mut self, enabled: bool) -> Self {
        self.scratch.memo.set_enabled(enabled);
        self
    }
}

impl Scheduler for DynMcb8 {
    fn name(&self) -> String {
        match self.packer {
            PackerChoice::Mcb8 => "DynMCB8".into(),
            p => format!("DynMCB8[{}]", p.tag()),
        }
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.scratch.observe_epoch(state.change_epoch());
        match ev {
            SchedEvent::Submit(_) | SchedEvent::Complete(_) => {
                repack_all(state, self.packer.packer(), &mut self.scratch)
            }
            // The event-driven variant treats a platform change like any
            // other membership change: flush the warm memo (the node
            // set it was recorded against is gone) and repack globally
            // — killed jobs re-enter, paused victims may resume.
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => {
                self.scratch.on_node_set_change();
                repack_all(state, self.packer.packer(), &mut self.scratch)
            }
            _ => Plan::noop(),
        }
    }
    fn repack_stats(&self) -> Option<RepackStats> {
        Some(self.scratch.stats())
    }
}

/// `DYNMCB8-PER-T`: global repack every `T` seconds; arrivals queue until
/// the next tick.
#[derive(Debug)]
pub struct DynMcb8Per {
    period: f64,
    packer: PackerChoice,
    scratch: RepackScratch,
}

impl DynMcb8Per {
    /// The paper's default, T = 600 s.
    pub fn new() -> Self {
        Self::with_period(DEFAULT_PERIOD_SECS)
    }

    /// Custom period (the paper also probed 60 s and 3600 s).
    pub fn with_period(period: f64) -> Self {
        Self::with_packer(period, PackerChoice::Mcb8)
    }

    /// Ablation constructor: swap the packing heuristic.
    pub fn with_packer(period: f64, packer: PackerChoice) -> Self {
        assert!(period > 0.0);
        DynMcb8Per {
            period,
            packer,
            scratch: RepackScratch::default(),
        }
    }

    /// Enable or disable cross-event warm starting (see
    /// [`DynMcb8::warm`]).
    pub fn warm(mut self, enabled: bool) -> Self {
        self.scratch.memo.set_enabled(enabled);
        self
    }
}

impl Default for DynMcb8Per {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for DynMcb8Per {
    fn name(&self) -> String {
        match self.packer {
            PackerChoice::Mcb8 => format!("DynMCB8-per {}", self.period),
            p => format!("DynMCB8-per {}[{}]", self.period, p.tag()),
        }
    }
    fn period(&self) -> Option<f64> {
        Some(self.period)
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.scratch.observe_epoch(state.change_epoch());
        match ev {
            SchedEvent::Tick => repack_all(state, self.packer.packer(), &mut self.scratch),
            // Periodic semantics: victims of a failure wait in the
            // queue like fresh arrivals until the next tick; only the
            // warm memo is flushed (its node set is gone).
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => {
                self.scratch.on_node_set_change();
                Plan::noop()
            }
            _ => Plan::noop(),
        }
    }
    fn repack_stats(&self) -> Option<RepackStats> {
        Some(self.scratch.stats())
    }
}

/// `DYNMCB8-ASAP-PER-T`: periodic repack plus immediate greedy admission
/// of arrivals that fit under memory constraints.
#[derive(Debug)]
pub struct DynMcb8AsapPer {
    period: f64,
    packer: PackerChoice,
    scratch: RepackScratch,
}

impl DynMcb8AsapPer {
    /// The paper's default, T = 600 s.
    pub fn new() -> Self {
        Self::with_period(DEFAULT_PERIOD_SECS)
    }

    /// Custom period.
    pub fn with_period(period: f64) -> Self {
        Self::with_packer(period, PackerChoice::Mcb8)
    }

    /// Ablation constructor: swap the packing heuristic.
    pub fn with_packer(period: f64, packer: PackerChoice) -> Self {
        assert!(period > 0.0);
        DynMcb8AsapPer {
            period,
            packer,
            scratch: RepackScratch::default(),
        }
    }

    /// Enable or disable cross-event warm starting (see
    /// [`DynMcb8::warm`]).
    pub fn warm(mut self, enabled: bool) -> Self {
        self.scratch.memo.set_enabled(enabled);
        self
    }
}

impl Default for DynMcb8AsapPer {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for DynMcb8AsapPer {
    fn name(&self) -> String {
        match self.packer {
            PackerChoice::Mcb8 => format!("DynMCB8-asap-per {}", self.period),
            p => format!("DynMCB8-asap-per {}[{}]", self.period, p.tag()),
        }
    }
    fn period(&self) -> Option<f64> {
        Some(self.period)
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.scratch.observe_epoch(state.change_epoch());
        match ev {
            SchedEvent::Tick => repack_all(state, self.packer.packer(), &mut self.scratch),
            SchedEvent::Submit(id) => asap_admit(state, &[id]),
            // ASAP semantics apply to re-arrivals too: flush the warm
            // memo, then greedily admit every waiting job — pending
            // (killed under the restart policy, or backlogged) *and*
            // paused (preserve-policy victims, which re-enter as
            // resumes) — that fits the surviving nodes; anything that
            // does not fit queues for the next tick as usual.
            SchedEvent::NodeDown(_) | SchedEvent::NodeUp(_) => {
                self.scratch.on_node_set_change();
                asap_admit(state, &crate::common::waiting_jobs(state))
            }
            _ => Plan::noop(),
        }
    }
    fn repack_stats(&self) -> Option<RepackStats> {
        Some(self.scratch.stats())
    }
}

/// The ASAP greedy-admission pass: place each of `arrivals` (pending
/// or paused jobs, in the given order) on the least-loaded feasible
/// in-service nodes without touching anyone's placement, then
/// rebalance yields over running + admitted (a paused admittee becomes
/// a resume). Jobs that do not fit are left queued for the next tick.
/// A noop when nothing fits.
fn asap_admit(state: &SimState, arrivals: &[JobId]) -> Plan {
    let mut scratch = NodeScratch::from_state(state);
    let mut admitted: Vec<(JobId, Vec<NodeId>)> = Vec::new();
    for &id in arrivals {
        let spec = state.job(id).spec;
        if let Some(placement) = scratch.greedy_place(spec.tasks, spec.cpu_need, spec.mem_req) {
            admitted.push((id, placement));
        }
    }
    if admitted.is_empty() {
        return Plan::noop(); // wait for the next tick
    }
    let mut set = AllocSet::new(state.cluster.nodes().len());
    let mut placements = std::collections::HashMap::new();
    for j in state.running_jobs() {
        let placement = state.placement(j.spec.id).to_vec();
        set.push(
            j.spec.id,
            j.spec.cpu_need,
            j.spec.gpu_need,
            placement.clone(),
        );
        placements.insert(j.spec.id, placement);
    }
    for (id, placement) in admitted {
        let spec = &state.job(id).spec;
        set.push(id, spec.cpu_need, spec.gpu_need, placement.clone());
        placements.insert(id, placement);
    }
    let mut plan = Plan::noop();
    for (jid, yld) in set.greedy_yields() {
        plan = plan.run(jid, placements.remove(&jid).expect("recorded"), yld);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{simulate, SimConfig};

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(2, 4, 8.0).unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            validate: true,
            ..SimConfig::default()
        }
    }

    fn job(id: u32, submit: f64, tasks: u32, cpu: f64, mem: f64, rt: f64) -> JobSpec {
        JobSpec::new(JobId(id), submit, tasks, cpu, mem, rt).unwrap()
    }

    #[test]
    fn dynmcb8_runs_everything_when_feasible() {
        let jobs = vec![
            job(0, 0.0, 2, 0.5, 0.4, 100.0),
            job(1, 10.0, 1, 0.5, 0.4, 50.0),
        ];
        let out = simulate(cluster(), &jobs, &mut DynMcb8::new(), &cfg());
        assert_eq!(out.max_stretch, 1.0, "underloaded cluster → no slowdown");
    }

    #[test]
    fn dynmcb8_shares_cpu_on_overload() {
        // Four 1-task CPU-bound jobs, 2 nodes: loads 2 and 2 → yield ~0.5.
        let jobs: Vec<JobSpec> = (0..4).map(|i| job(i, 0.0, 1, 1.0, 0.3, 100.0)).collect();
        let out = simulate(cluster(), &jobs, &mut DynMcb8::new(), &cfg());
        for r in &out.records {
            assert!(
                (r.completion - 200.0).abs() < 5.0,
                "completion {} (yield accuracy band)",
                r.completion
            );
        }
    }

    #[test]
    fn dynmcb8_evicts_lowest_priority_on_memory_pressure() {
        // Job 0 fills both nodes' memory; job 1 arrives → one must give
        // way. Job 1 (never run) has infinite priority; job 0 has run →
        // finite → job 0 is evicted.
        let jobs = vec![
            job(0, 0.0, 2, 0.25, 1.0, 100.0),
            job(1, 10.0, 1, 0.25, 0.5, 20.0),
        ];
        let out = simulate(cluster(), &jobs, &mut DynMcb8::new(), &cfg());
        assert!((out.records[1].first_start.unwrap() - 10.0).abs() < 1e-9);
        assert!(out.preemption_count >= 1);
        // Job 0 resumes after job 1 completes (event-driven repack).
        assert!((out.records[0].completion - 120.0).abs() < 1.0);
    }

    #[test]
    fn per_variant_waits_for_ticks() {
        let jobs = vec![job(0, 10.0, 1, 0.5, 0.2, 50.0)];
        let out = simulate(
            cluster(),
            &jobs,
            &mut DynMcb8Per::with_period(600.0),
            &cfg(),
        );
        assert!((out.records[0].first_start.unwrap() - 600.0).abs() < 1e-9);
        assert!((out.records[0].completion - 650.0).abs() < 1e-6);
    }

    #[test]
    fn asap_variant_starts_immediately_when_feasible() {
        let jobs = vec![job(0, 10.0, 1, 0.5, 0.2, 50.0)];
        let out = simulate(
            cluster(),
            &jobs,
            &mut DynMcb8AsapPer::with_period(600.0),
            &cfg(),
        );
        assert!((out.records[0].first_start.unwrap() - 10.0).abs() < 1e-9);
        assert!((out.records[0].completion - 60.0).abs() < 1e-6);
    }

    #[test]
    fn asap_variant_queues_when_memory_blocked() {
        // Job 0 holds all memory until t=700; job 1 (t=10) can't start
        // greedily and must wait for the tick *after* job 0 completes:
        // ticks at 600 (blocked: job 0 still running), 1200 → starts 1200.
        let jobs = vec![
            job(0, 0.0, 2, 0.25, 1.0, 700.0),
            job(1, 10.0, 1, 0.25, 0.5, 20.0),
        ];
        let out = simulate(
            cluster(),
            &jobs,
            &mut DynMcb8AsapPer::with_period(600.0),
            &cfg(),
        );
        let start1 = out.records[1].first_start.unwrap();
        // At the t=600 tick the packer CAN fix this by evicting... the
        // eviction loop only evicts when *memory packing fails*; with job
        // 0 and job 1 both in the system memory indeed cannot fit → the
        // lowest-priority (job 0, already run) is paused and job 1 runs.
        assert!(
            (start1 - 600.0).abs() < 1e-9,
            "asap tick repack should force job 1 in at t=600, got {start1}"
        );
        assert!(out.preemption_count >= 1);
    }

    #[test]
    fn periodic_repack_raises_yields_after_completion_at_tick() {
        // Two CPU-bound jobs on one node (yield 0.5 each). Job 1 finishes
        // at t=100 (vt 50); job 0 keeps yield 0.5 until the t=600 tick.
        let one_node = ClusterSpec::new(1, 4, 8.0).unwrap();
        let jobs = vec![
            job(0, 0.0, 1, 1.0, 0.3, 400.0),
            job(1, 0.0, 1, 1.0, 0.3, 50.0),
        ];
        let out = simulate(one_node, &jobs, &mut DynMcb8Per::with_period(600.0), &cfg());
        // Both start at tick 600 (PER queues arrivals!): both at 0.5.
        // Job 1 completes at 600 + 100 = 700 (vt 50). Job 0 continues at
        // 0.5 until tick 1200 (vt = 50 + 250 = 300), then yield 1 →
        // completes at 1300.
        assert!((out.records[1].completion - 700.0).abs() < 5.0);
        assert!((out.records[0].completion - 1300.0).abs() < 10.0);
    }

    #[test]
    fn event_driven_repacks_onto_survivors_after_failure() {
        // Two CPU-bound single-task jobs, one per node. Node 1 fails at
        // t=10: its job is killed, the NodeDown repack packs both onto
        // the surviving node (memory allows), and everything completes.
        let jobs = vec![
            job(0, 0.0, 1, 1.0, 0.3, 100.0),
            job(1, 0.0, 1, 1.0, 0.3, 100.0),
        ];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![dfrs_sim::NodeEvent {
                time: 10.0,
                node: NodeId(1),
                up: false,
            }],
            ..SimConfig::default()
        };
        let out = simulate(cluster(), &jobs, &mut DynMcb8::new(), &cfg);
        assert_eq!(out.restart_count, 1, "exactly one job was on node 1");
        assert!((out.lost_virtual_seconds - 10.0).abs() < 1e-6);
        assert_eq!(out.records.len(), 2);
        // Shared node: both finish, the survivor first.
        assert!(out.records.iter().all(|r| r.completion > 100.0 - 1e-9));
    }

    #[test]
    fn asap_readmits_killed_job_before_the_next_tick() {
        // The lone job is admitted at submit (t=0, node 0); node 0
        // fails at t=10 and ASAP re-admits the killed job on node 1 in
        // the same event — not at the t=600 tick.
        let jobs = vec![job(0, 0.0, 1, 0.5, 0.2, 100.0)];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![dfrs_sim::NodeEvent {
                time: 10.0,
                node: NodeId(0),
                up: false,
            }],
            ..SimConfig::default()
        };
        let out = simulate(
            cluster(),
            &jobs,
            &mut DynMcb8AsapPer::with_period(600.0),
            &cfg,
        );
        assert_eq!(out.restart_count, 1);
        assert!(
            (out.records[0].completion - 110.0).abs() < 1e-6,
            "readmitted at the failure instant, got {}",
            out.records[0].completion
        );
    }

    #[test]
    fn asap_resumes_preserved_victims_before_the_next_tick() {
        // PausePreserve: the victim is paused with its 10 s of progress
        // kept and ASAP resumes it on node 1 at the failure instant —
        // not at the t=600 tick — so it completes at 100 (penalty 0).
        let jobs = vec![job(0, 0.0, 1, 0.5, 0.2, 100.0)];
        let cfg = SimConfig {
            validate: true,
            failure_policy: dfrs_sim::FailurePolicy::PausePreserve,
            node_events: vec![dfrs_sim::NodeEvent {
                time: 10.0,
                node: NodeId(0),
                up: false,
            }],
            ..SimConfig::default()
        };
        let out = simulate(
            cluster(),
            &jobs,
            &mut DynMcb8AsapPer::with_period(600.0),
            &cfg,
        );
        assert_eq!(out.restart_count, 0);
        assert_eq!(out.preemption_count, 1);
        assert!(
            (out.records[0].completion - 100.0).abs() < 1e-6,
            "resumed at the failure instant with progress kept, got {}",
            out.records[0].completion
        );
    }

    #[test]
    fn periodic_variant_restarts_victims_at_the_next_tick() {
        // PER queues re-arrivals: the killed job waits for the tick.
        let jobs = vec![job(0, 0.0, 1, 0.5, 0.2, 100.0)];
        let cfg = SimConfig {
            validate: true,
            node_events: vec![dfrs_sim::NodeEvent {
                time: 650.0,
                node: NodeId(0),
                up: false,
            }],
            ..SimConfig::default()
        };
        let out = simulate(cluster(), &jobs, &mut DynMcb8Per::with_period(600.0), &cfg);
        // Starts at tick 600 on node 0 (or 1); if it was struck at 650
        // it reruns from the t=1200 tick. Either way it completes and
        // the accounting is consistent.
        if out.restart_count == 1 {
            assert!((out.records[0].completion - 1300.0).abs() < 1e-6);
            assert!((out.lost_virtual_seconds - 50.0).abs() < 1e-6);
        } else {
            assert!((out.records[0].completion - 700.0).abs() < 1e-6);
        }
    }

    #[test]
    fn names_include_period() {
        assert_eq!(DynMcb8Per::new().name(), "DynMCB8-per 600");
        assert_eq!(DynMcb8AsapPer::new().name(), "DynMCB8-asap-per 600");
        assert_eq!(DynMcb8::new().name(), "DynMCB8");
    }
}
