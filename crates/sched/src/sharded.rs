//! Sharded scheduling: partition the cluster, run one independent
//! inner scheduler per shard, coordinate through a thin deterministic
//! layer (ROADMAP item 2).
//!
//! ## Model
//!
//! The coordinator splits the `M` nodes into `N` contiguous shards
//! ([`dfrs_sim::partition`]) and owns one inner [`Scheduler`] instance
//! plus one [`ShardView`] per shard. Inners never see the global
//! [`SimState`]; each sees its view — an ordinary shard-sized state —
//! so every registered algorithm works unmodified. Jobs are routed to
//! one shard at a time (least normalized load, ties to the lowest
//! shard index) and rebalanced between shards when the queues skew;
//! a rebalanced job leaves its old shard via [`SchedEvent::Withdraw`]
//! and arrives at the new one as a fresh local submission carrying its
//! accrued virtual time, so a paused migrant resumes through the
//! engine's ordinary pause/resume machinery (penalty included).
//!
//! ## Determinism
//!
//! Everything is deterministic by construction, mirroring the
//! `Campaign` parallel==serial discipline:
//!
//! * shard boundaries depend only on `(M, N)`;
//! * routing and rebalancing read only view load counts, with
//!   lowest-index tie-breaks;
//! * the periodic tick fans out to the inners on scoped threads (when
//!   more than one hardware thread is available), but each inner's
//!   plan depends only on its own view, and plans are merged in shard
//!   index order — thread interleaving cannot reach any output;
//! * the merged plan is emitted per job in ascending global id.
//!
//! ## Plan merging
//!
//! Within one event the coordinator may deliver several inner events
//! (a completion plus a rebalancing round, say) whose plans can touch
//! the same job more than once. Raw concatenation would trip the
//! engine's one-mention-per-job discipline, so the coordinator instead
//! mirrors every inner plan into its view immediately and then emits
//! one **net** entry per touched job: the difference between the job's
//! final view state and its pre-plan global state. The engine's own
//! diffing then classifies starts, resumes, migrations, and yield
//! adjustments exactly as if the net entry had been written directly.
//!
//! ## Wide jobs
//!
//! A job with more tasks than any single shard has in-service nodes
//! cannot be routed — shards do not overlap, and one-task-per-node is
//! the only capacity promise that holds for **every** registered
//! inner (batch algorithms never co-locate tasks). Such jobs wait at
//! the coordinator itself and are placed directly across shard
//! boundaries on **borrowed** nodes: nodes that are in service and
//! idle in their owning view. A borrowed node is marked down in its
//! view (the inner sees an ordinary capacity loss, exactly like a
//! failure, and cannot double-book it) and returns with a `NodeUp`
//! when the wide job completes. Wide placement is one task per node
//! at full yield; only a job wider than the whole in-service cluster
//! falls back to stacking tasks per node up to the memory capacity
//! with the yield scaled so CPU/GPU allocations fit. Routing and
//! rebalancing are feasibility-aware: a job is only ever admitted to
//! a shard that could host it when empty, so no shard can wedge on a
//! job it can never place. Wide placement is strict FIFO by global id
//! — a later, narrower wide job never overtakes an earlier one.
//!
//! ## Limitations
//!
//! Inner-visible virtual times and penalty windows are refreshed from
//! the global state before every delivery, so within a single
//! multi-delivery event they can lag the plan being assembled — a
//! deterministic, one-event-bounded staleness. A wide job waits until
//! enough simultaneously idle nodes exist; under sustained load the
//! inners keep their shards busy, so it may start much later than it
//! would on the unsharded cluster.

use std::collections::BTreeSet;
use std::sync::Arc;

use dfrs_core::fxhash::FxHashMap;
use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::pool::WorkerPool;
use dfrs_core::JobSpec;

use dfrs_sim::shard::{partition, ShardView};
use dfrs_sim::{JobStatus, Plan, RepackStats, SchedEvent, Scheduler, SimState};

/// The sharded coordinator. Built via the registry's
/// `sharded:<inner>:shards=N` spec family (see [`crate::spec`]); the
/// `shards=1` case never constructs this type — the registry returns
/// the bare inner scheduler, making single-shard operation byte-
/// identical to the unsharded scheduler by construction.
pub struct Sharded {
    inners: Vec<Box<dyn Scheduler>>,
    views: Vec<ShardView>,
    /// Global job id → (shard index, shard-local id).
    assign: FxHashMap<JobId, (usize, JobId)>,
    period: Option<f64>,
    /// Jobs no single shard can host, waiting at the coordinator for a
    /// cross-shard placement; ascending global id = submission FIFO.
    wide_waiting: BTreeSet<JobId>,
    /// Wide jobs currently running → the nodes borrowed for them
    /// (global ids, ascending, deduplicated).
    wide_running: FxHashMap<JobId, Vec<NodeId>>,
    /// Borrowed global node → the wide job holding it.
    borrowed_by: FxHashMap<NodeId, JobId>,
    /// Worker pool override for the tick fan-out; `None` means the
    /// machine-sized [`dfrs_core::pool::global`] pool. Tests inject a
    /// pool here to pin parallel == serial byte-identity regardless of
    /// how many cores the test host happens to have.
    pool: Option<Arc<WorkerPool>>,
}

impl Sharded {
    /// Coordinator over `inners.len()` shards (one pre-built inner
    /// instance per shard; at least 2 — use the bare inner for 1).
    pub fn new(inners: Vec<Box<dyn Scheduler>>) -> Self {
        assert!(inners.len() >= 2, "Sharded needs at least 2 inners");
        let period = inners[0].period();
        Sharded {
            inners,
            views: Vec::new(),
            assign: FxHashMap::default(),
            period,
            wide_waiting: BTreeSet::new(),
            wide_running: FxHashMap::default(),
            borrowed_by: FxHashMap::default(),
            pool: None,
        }
    }

    /// Fan the periodic tick out on `pool` instead of the global
    /// machine-sized pool. The plan merge reads results in shard index
    /// order, so any pool (including a zero-worker serial one) must
    /// produce byte-identical schedules — the property the fan-out
    /// proptests pin by injecting pools of different widths here.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inners.len()
    }

    /// Lazily build the views at the first event (the cluster size is
    /// only known from the state), clamping the shard count to the
    /// node count, and adopt whatever jobs are already in the system
    /// (a restored session): waiting jobs are routed normally; a
    /// running job is adopted by the shard holding its placement, or
    /// left unmanaged (it completes on its own) if it straddles one.
    fn init(&mut self, state: &SimState) {
        if !self.views.is_empty() {
            return;
        }
        let nodes = state.cluster.spec.nodes;
        if (self.inners.len() as u32) > nodes {
            self.inners.truncate(nodes as usize);
        }
        self.views = partition(nodes, self.inners.len() as u32)
            .into_iter()
            .map(|(lo, count)| ShardView::new(&state.cluster.spec, lo, count))
            .collect();
        let ids: Vec<JobId> = state.jobs_in_system().map(|j| j.spec.id).collect();
        for g in ids {
            let js = state.job(g);
            match js.status {
                JobStatus::Pending | JobStatus::Paused => match self.route(&js.spec) {
                    Some(s) => {
                        let local = self.views[s].admit(js);
                        self.assign.insert(g, (s, local));
                    }
                    None => {
                        self.wide_waiting.insert(g);
                    }
                },
                JobStatus::Running => {
                    let placement = state.placement(g);
                    let s = self
                        .views
                        .iter()
                        .position(|v| placement.iter().all(|&n| v.owns_node(n)));
                    if let Some(s) = s {
                        let local = self.views[s].adopt_running(js, placement);
                        self.assign.insert(g, (s, local));
                    } else {
                        // Straddles shard boundaries (a snapshot taken
                        // under a different scheduler). If it holds its
                        // nodes exclusively, adopt it as a coordinator-
                        // placed wide job (nodes borrowed, returned on
                        // completion); otherwise leave it unmanaged —
                        // it completes on its own.
                        let mut nodes: Vec<NodeId> = placement.to_vec();
                        nodes.sort_unstable();
                        nodes.dedup();
                        let exclusive = nodes.iter().all(|&n| {
                            let own = placement.iter().filter(|&&m| m == n).count() as u32;
                            state.cluster.nodes()[n.index()].task_count == own
                        });
                        if exclusive {
                            for &n in &nodes {
                                self.borrowed_by.insert(n, g);
                                let s = self.owner_of(n);
                                let ln = self.views[s].local_node(n);
                                self.views[s].mirror_node_event(ln, false, state);
                            }
                            self.wide_running.insert(g, nodes);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Tasks of `spec` that fit one empty node by memory (the only
    /// rigid resource — CPU and GPU scale with the yield), accumulated
    /// with a strict `<= 1.0` so this never claims feasible what a
    /// packer's `<= 1 + EPS` bin check would reject. At least 1
    /// (`mem_req` is in `(0, 1]`). Used only by the wide-placement
    /// stacking fallback for jobs wider than the in-service cluster.
    fn tasks_per_node(spec: &JobSpec) -> u32 {
        let mut used = 0.0;
        let mut k = 0;
        while k < spec.tasks && used + spec.mem_req <= 1.0 {
            used += spec.mem_req;
            k += 1;
        }
        k.max(1)
    }

    /// Whether `spec` could be hosted by this shard at all, were the
    /// shard otherwise empty. One task per in-service node is the only
    /// promise every inner honors (batch algorithms never co-locate
    /// tasks), so that is the bar — fluid inners remain free to pack
    /// tighter than this *inside* a shard.
    fn fits_shard(view: &ShardView, spec: &JobSpec) -> bool {
        spec.tasks <= view.state().cluster.up_nodes()
    }

    /// Least-loaded shard (jobs in system per node, compared exactly
    /// with cross-multiplied integers, ties to the lowest index) among
    /// those that can host `spec` at all; `None` when no single shard
    /// can — the job then waits at the coordinator for a cross-shard
    /// wide placement.
    fn route(&self, spec: &JobSpec) -> Option<usize> {
        let mut best: Option<usize> = None;
        for i in 0..self.views.len() {
            if !Self::fits_shard(&self.views[i], spec) {
                continue;
            }
            let Some(b) = best else {
                best = Some(i);
                continue;
            };
            let (ci, ni) = (
                self.views[i].in_system() as u64,
                u64::from(self.views[i].node_count()),
            );
            let (cb, nb) = (
                self.views[b].in_system() as u64,
                u64::from(self.views[b].node_count()),
            );
            if ci * nb < cb * ni {
                best = Some(i);
            }
        }
        best
    }

    /// Index of the shard owning global node `n`.
    fn owner_of(&self, n: NodeId) -> usize {
        self.views
            .iter()
            .position(|v| v.owns_node(n))
            .expect("node outside every shard")
    }

    /// Deliver `ev` to shard `s`'s inner against its freshly refreshed
    /// view, mirror the plan into the view, and record every job the
    /// plan touched plus its timers.
    fn deliver(&mut self, s: usize, ev: SchedEvent, state: &SimState, out: &mut MergeState) {
        self.views[s].refresh(state.now, state);
        let plan = self.inners[s].on_event(ev, self.views[s].state());
        self.absorb(s, plan, out);
    }

    /// Mirror an already-obtained plan for shard `s` (tick fan-out path).
    fn absorb(&mut self, s: usize, plan: Plan, out: &mut MergeState) {
        let view = &mut self.views[s];
        for e in &plan.entries {
            let local = match e {
                dfrs_sim::PlanEntry::Run { job, .. } => *job,
                dfrs_sim::PlanEntry::Pause { job } => *job,
            };
            out.touched.insert(view.global_job(local));
        }
        for &(local, at) in &plan.timers {
            out.timers.push((view.global_job(local), at));
        }
        view.mirror_plan(&plan);
    }

    /// Move waiting jobs from overloaded to underloaded shards until no
    /// single move strictly improves the normalized-load imbalance.
    /// Jobs already touched by this event's plans are pinned (moving
    /// them would contradict the net entries about to be emitted).
    fn rebalance(&mut self, state: &SimState, out: &mut MergeState) {
        loop {
            // Most and least loaded shard (normalized, exact).
            let (mut hi, mut lo) = (0usize, 0usize);
            for i in 1..self.views.len() {
                let (ci, ni) = (
                    self.views[i].in_system() as u64,
                    u64::from(self.views[i].node_count()),
                );
                let cmp = |j: usize| {
                    (
                        self.views[j].in_system() as u64,
                        u64::from(self.views[j].node_count()),
                    )
                };
                let (ch, nh) = cmp(hi);
                let (cl, nl) = cmp(lo);
                if ci * nh > ch * ni {
                    hi = i;
                }
                if ci * nl < cl * ni {
                    lo = i;
                }
            }
            if hi == lo {
                return;
            }
            let (ch, nh) = (
                self.views[hi].in_system() as u64,
                u64::from(self.views[hi].node_count()),
            );
            let (cl, nl) = (
                self.views[lo].in_system() as u64,
                u64::from(self.views[lo].node_count()),
            );
            // Moving one job helps only if the source stays at least as
            // loaded as the destination becomes.
            if ch * nl <= (cl + 1) * nh {
                return;
            }
            // Oldest movable (waiting, untouched) job on the hot shard
            // that the destination could actually host.
            let candidate = self.views[hi]
                .waiting_locals()
                .into_iter()
                .map(|l| (self.views[hi].global_job(l), l))
                .filter(|(g, _)| !out.touched.contains(g))
                .filter(|(g, _)| Self::fits_shard(&self.views[lo], &state.job(*g).spec))
                .min();
            let Some((g, local)) = candidate else {
                return;
            };
            self.views[hi].withdraw(local);
            self.assign.remove(&g);
            self.deliver(hi, SchedEvent::Withdraw(local), state, out);
            let dest_local = self.views[lo].admit(state.job(g));
            self.assign.insert(g, (lo, dest_local));
            self.deliver(lo, SchedEvent::Submit(dest_local), state, out);
        }
    }

    /// After shard `s` lost capacity, re-route any of its waiting jobs
    /// it can no longer host at all (they would wedge there forever).
    fn reroute_infeasible(&mut self, s: usize, state: &SimState, out: &mut MergeState) {
        let stuck: Vec<(JobId, JobId)> = self.views[s]
            .waiting_locals()
            .into_iter()
            .map(|l| (self.views[s].global_job(l), l))
            .filter(|(g, _)| !out.touched.contains(g))
            .filter(|(g, _)| !Self::fits_shard(&self.views[s], &state.job(*g).spec))
            .collect();
        for (g, local) in stuck {
            self.views[s].withdraw(local);
            self.assign.remove(&g);
            self.deliver(s, SchedEvent::Withdraw(local), state, out);
            match self.route(&state.job(g).spec) {
                Some(d) => {
                    let dl = self.views[d].admit(state.job(g));
                    self.assign.insert(g, (d, dl));
                    self.deliver(d, SchedEvent::Submit(dl), state, out);
                }
                None => {
                    self.wide_waiting.insert(g);
                }
            }
        }
    }

    /// Place waiting wide jobs (strict FIFO by global id) on idle nodes
    /// borrowed across shard boundaries; stops at the first job that
    /// cannot be placed right now. Each borrowed node is marked down in
    /// its owning view and announced to the inner as a `NodeDown`.
    fn place_wide(&mut self, state: &SimState, out: &mut MergeState) {
        while let Some(&g) = self.wide_waiting.iter().next() {
            let spec = state.job(g).spec;
            let Some((placement, nodes, yld)) = self.wide_placement(state, &spec) else {
                return;
            };
            self.wide_waiting.remove(&g);
            for &n in &nodes {
                self.borrowed_by.insert(n, g);
                let s = self.owner_of(n);
                let ln = self.views[s].local_node(n);
                self.views[s].mirror_node_event(ln, false, state);
                self.deliver(s, SchedEvent::NodeDown(ln), state, out);
            }
            self.wide_running.insert(g, nodes);
            out.wide.push((g, placement, yld));
        }
    }

    /// A concrete cross-shard placement for `spec` on borrowable nodes
    /// — in service, not already borrowed, and idle in their owning
    /// view (the view, not the global state, already reflects this
    /// event's plans) — or `None` when there is not enough idle
    /// capacity right now. One task per node at full yield; a job
    /// wider than the whole in-service cluster instead splits its
    /// tasks near-evenly over the fewest nodes that hold them by
    /// memory, with the yield scaled so CPU/GPU allocations fit.
    /// Returns `(placement, distinct nodes, yield)`.
    fn wide_placement(
        &self,
        state: &SimState,
        spec: &JobSpec,
    ) -> Option<(Vec<NodeId>, Vec<NodeId>, f64)> {
        let per = if spec.tasks <= state.cluster.up_nodes() {
            1
        } else {
            u64::from(Self::tasks_per_node(spec))
        };
        let needed = u64::from(spec.tasks).div_ceil(per) as usize;
        let mut nodes = Vec::with_capacity(needed);
        for (i, ns) in state.cluster.nodes().iter().enumerate() {
            let n = NodeId(i as u32);
            if !state.cluster.is_up(n) || ns.task_count != 0 || self.borrowed_by.contains_key(&n) {
                continue;
            }
            let view = &self.views[self.owner_of(n)];
            let ln = view.local_node(n);
            if view.state().cluster.nodes()[ln.index()].task_count != 0
                || !view.state().cluster.is_up(ln)
            {
                continue;
            }
            nodes.push(n);
            if nodes.len() == needed {
                break;
            }
        }
        if nodes.len() < needed {
            return None;
        }
        let base = spec.tasks as usize / needed;
        let rem = spec.tasks as usize % needed;
        let mut placement = Vec::with_capacity(spec.tasks as usize);
        let mut max_k = 0usize;
        for (i, &n) in nodes.iter().enumerate() {
            let k = base + usize::from(i < rem);
            max_k = max_k.max(k);
            placement.extend(std::iter::repeat_n(n, k));
        }
        let mut yld = (1.0 / (max_k as f64 * spec.cpu_need)).min(1.0);
        if spec.gpu_need > 0.0 {
            yld = yld.min(1.0 / (max_k as f64 * spec.gpu_need));
        }
        Some((placement, nodes, yld))
    }

    /// Return borrowed nodes to their shards: marked back up in the
    /// owning views, announced to the inners as `NodeUp` (exactly as a
    /// repair would arrive).
    fn release_nodes(&mut self, nodes: &[NodeId], state: &SimState, out: &mut MergeState) {
        for &n in nodes {
            self.borrowed_by.remove(&n);
            let s = self.owner_of(n);
            let ln = self.views[s].local_node(n);
            self.views[s].mirror_node_event(ln, true, state);
            self.deliver(s, SchedEvent::NodeUp(ln), state, out);
        }
    }

    /// Emit the net plan: one entry per touched job, ascending global
    /// id, diffing the job's final view state against its pre-plan
    /// global state (see module docs), plus the coordinator's own wide
    /// placements.
    fn emit(&self, state: &SimState, out: MergeState) -> Plan {
        let mut plan = Plan::noop();
        // Most touched jobs turn out unchanged (an inner's full repack
        // re-runs every job it knows), so the translated placement is
        // assembled in one reused buffer and only promoted to an owned
        // `Vec` for the entries actually emitted.
        let mut pbuf: Vec<NodeId> = Vec::new();
        for g in out.touched {
            let Some(&(s, local)) = self.assign.get(&g) else {
                continue;
            };
            let view = &self.views[s];
            let vj = view.state().job(local);
            let gj = state.job(g);
            match vj.status {
                JobStatus::Running => {
                    pbuf.clear();
                    pbuf.extend(
                        view.state()
                            .placement(local)
                            .iter()
                            .map(|&n| view.global_node(n)),
                    );
                    let unchanged = gj.status == JobStatus::Running
                        && gj.yld == vj.yld
                        && state.placement(g) == pbuf.as_slice();
                    if !unchanged {
                        plan = plan.run(g, std::mem::take(&mut pbuf), vj.yld);
                    }
                }
                JobStatus::Paused if gj.status == JobStatus::Running => {
                    plan = plan.pause(g);
                }
                _ => {}
            }
        }
        for (g, placement, yld) in out.wide {
            plan = plan.run(g, placement, yld);
        }
        plan.timers = out.timers;
        plan
    }
}

/// Accumulator for one event's deliveries: which global jobs any inner
/// plan mentioned, the translated timers, and the coordinator's own
/// wide placements (jobs no inner knows about).
#[derive(Default)]
struct MergeState {
    touched: BTreeSet<JobId>,
    timers: Vec<(JobId, f64)>,
    wide: Vec<(JobId, Vec<NodeId>, f64)>,
}

impl Scheduler for Sharded {
    fn name(&self) -> String {
        format!("Sharded[{}] {}", self.inners.len(), self.inners[0].name())
    }

    fn period(&self) -> Option<f64> {
        self.period
    }

    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        self.init(state);
        let mut out = MergeState::default();
        match ev {
            SchedEvent::Submit(g) => {
                // `init` adopts every job already in the system — on the
                // run's first event that includes the job this very
                // Submit announces, so only admit if it isn't placed yet
                // (it may also already sit in the wide queue).
                if !self.wide_waiting.contains(&g) && !self.wide_running.contains_key(&g) {
                    let routed = match self.assign.get(&g) {
                        Some(&(s, local)) => Some((s, local)),
                        None => {
                            let spec = state.job(g).spec;
                            match self.route(&spec) {
                                Some(s) => {
                                    let local = self.views[s].admit(state.job(g));
                                    self.assign.insert(g, (s, local));
                                    Some((s, local))
                                }
                                None => {
                                    self.wide_waiting.insert(g);
                                    None
                                }
                            }
                        }
                    };
                    if let Some((s, local)) = routed {
                        self.deliver(s, SchedEvent::Submit(local), state, &mut out);
                    }
                }
            }
            SchedEvent::Complete(g) => {
                if let Some(nodes) = self.wide_running.remove(&g) {
                    // A wide job finished: its borrowed nodes go home.
                    self.release_nodes(&nodes, state, &mut out);
                    self.rebalance(state, &mut out);
                } else if let Some((s, local)) = self.assign.remove(&g) {
                    self.views[s].mirror_complete(local);
                    self.deliver(s, SchedEvent::Complete(local), state, &mut out);
                    self.rebalance(state, &mut out);
                }
                // Unknown ids are unmanaged adoptions: nothing to do.
            }
            SchedEvent::Timer(g) => {
                // Routed to the *current* owner — the job may have been
                // rebalanced (or finished) since the timer was armed.
                if let Some(&(s, local)) = self.assign.get(&g) {
                    self.deliver(s, SchedEvent::Timer(local), state, &mut out);
                }
            }
            SchedEvent::NodeDown(n) if self.borrowed_by.contains_key(&n) => {
                // A borrowed node failed. The engine has already struck
                // the wide job (it is waiting again globally); return
                // the surviving borrowed nodes and requeue the job. The
                // failed node itself stays down in its view — it has
                // been since the borrow — until the repair arrives.
                let w = self.borrowed_by[&n];
                let nodes = self
                    .wide_running
                    .remove(&w)
                    .expect("borrow map out of sync");
                self.borrowed_by.remove(&n);
                let survivors: Vec<NodeId> = nodes.into_iter().filter(|&m| m != n).collect();
                self.release_nodes(&survivors, state, &mut out);
                self.wide_waiting.insert(w);
                self.rebalance(state, &mut out);
            }
            SchedEvent::NodeDown(n) | SchedEvent::NodeUp(n) => {
                let up = matches!(ev, SchedEvent::NodeUp(_));
                let s = self
                    .views
                    .iter()
                    .position(|v| v.owns_node(n))
                    .expect("node event for a node outside every shard");
                let ln = self.views[s].local_node(n);
                self.views[s].mirror_node_event(ln, up, state);
                let local_ev = if up {
                    SchedEvent::NodeUp(ln)
                } else {
                    SchedEvent::NodeDown(ln)
                };
                self.deliver(s, local_ev, state, &mut out);
                if !up {
                    // Waiting jobs the shrunken shard can no longer
                    // host at all would wedge there; move them out.
                    self.reroute_infeasible(s, state, &mut out);
                }
                self.rebalance(state, &mut out);
            }
            SchedEvent::Tick => {
                self.rebalance(state, &mut out);
                for v in &mut self.views {
                    v.refresh(state.now, state);
                }
                let plans = self.fan_out_tick();
                for (s, plan) in plans.into_iter().enumerate() {
                    self.absorb(s, plan, &mut out);
                }
            }
            SchedEvent::Withdraw(g) => {
                // The session canceled a pending/paused job: drop every
                // trace of it. (A running cancel frees resources and
                // arrives as `Complete` instead; a wide job holding
                // borrowed nodes is running by definition, so only the
                // waiting set needs checking here.)
                if !self.wide_waiting.remove(&g) {
                    if let Some((s, local)) = self.assign.remove(&g) {
                        self.views[s].withdraw(local);
                        self.deliver(s, SchedEvent::Withdraw(local), state, &mut out);
                        self.rebalance(state, &mut out);
                    }
                }
                // Unknown ids are unmanaged adoptions: nothing to do.
            }
        }
        self.place_wide(state, &mut out);
        self.emit(state, out)
    }

    fn repack_stats(&self) -> Option<RepackStats> {
        let mut sum = RepackStats::default();
        let mut any = false;
        for inner in &self.inners {
            if let Some(s) = inner.repack_stats() {
                any = true;
                sum.searches += s.searches;
                sum.search_hits += s.search_hits;
                sum.packs += s.packs;
                sum.packs_saved += s.packs_saved;
            }
        }
        any.then_some(sum)
    }
}

impl Sharded {
    /// Run every inner's tick against its view, in parallel on the
    /// persistent worker pool when the host has workers to spare (each
    /// plan depends only on its own view, so the serial fallback is
    /// result-identical — the `Campaign` discipline). Long-lived pool
    /// workers replace the per-tick `thread::scope` spawns: at huge
    /// scale that amortizes millions of thread creations into channel
    /// sends. Plans are read back in shard index order, so the worker
    /// schedule is invisible to the merge.
    fn fan_out_tick(&mut self) -> Vec<Plan> {
        let pool: &WorkerPool = match &self.pool {
            Some(p) => p,
            None => dfrs_core::pool::global(),
        };
        let parallel = self.inners.len() > 1 && pool.workers() >= 2;
        if !parallel {
            return self
                .inners
                .iter_mut()
                .zip(&self.views)
                .map(|(inner, view)| inner.on_event(SchedEvent::Tick, view.state()))
                .collect();
        }
        let mut plans: Vec<Option<Plan>> = Vec::new();
        plans.resize_with(self.inners.len(), || None);
        pool.scope(|scope| {
            for ((inner, view), slot) in self
                .inners
                .iter_mut()
                .zip(&self.views)
                .zip(plans.iter_mut())
            {
                scope.execute(move || {
                    *slot = Some(inner.on_event(SchedEvent::Tick, view.state()));
                });
            }
        });
        // Unwrap audit: no `expect` on the merge path. A panicking
        // tick task re-raises out of `scope` (and the serve stack's
        // quarantine guard catches it); the only other way a slot can
        // be empty is a task that never ran, and for that shard the
        // inner never saw the tick — so delivering it serially here IS
        // the deterministic serial path, not a guess.
        plans
            .into_iter()
            .enumerate()
            .map(|(s, plan)| match plan {
                Some(p) => p,
                None => self.inners[s].on_event(SchedEvent::Tick, self.views[s].state()),
            })
            .collect()
    }
}

impl std::fmt::Debug for Sharded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sharded")
            .field("shards", &self.inners.len())
            .field("inner", &self.inners[0].name())
            .field("jobs", &self.assign.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SchedulerRegistry;
    use dfrs_core::{ClusterSpec, JobSpec};
    use dfrs_sim::{simulate, SimConfig};

    fn jobs(n: u32) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec::new(JobId(i), i as f64 * 10.0, 2, 0.5, 0.2, 400.0).unwrap())
            .collect()
    }

    #[test]
    fn sharded_runs_all_jobs_to_completion() {
        let cluster = ClusterSpec::new(8, 4, 8.0).unwrap();
        let reg = SchedulerRegistry::builtin();
        let mut sched = reg.build_str("sharded:dynmcb8-per:t=600:shards=2").unwrap();
        let out = simulate(cluster, &jobs(12), sched.as_mut(), &SimConfig::default());
        assert_eq!(out.records.len(), 12);
        assert!(out.records.iter().all(|r| r.completion.is_finite()));
    }

    #[test]
    fn sharded_name_reports_shards_and_inner() {
        let reg = SchedulerRegistry::builtin();
        let sched = reg.build_str("sharded:greedy:shards=3").unwrap();
        assert_eq!(sched.name(), "Sharded[3] Greedy");
    }

    #[test]
    fn shards_clamped_to_node_count() {
        // 2 nodes, 4 shards requested: must still run correctly.
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let reg = SchedulerRegistry::builtin();
        let mut sched = reg.build_str("sharded:greedy:shards=4").unwrap();
        let out = simulate(cluster, &jobs(4), sched.as_mut(), &SimConfig::default());
        assert_eq!(out.records.len(), 4);
    }

    #[test]
    fn wide_job_runs_across_one_node_shards() {
        // 4 shards of 1 node each; a 4-task memory hog (0.85/node) can
        // never fit inside any shard — the coordinator must place it
        // across shard boundaries once the cluster drains.
        let cluster = ClusterSpec::new(4, 4, 8.0).unwrap();
        let specs = vec![
            JobSpec::new(JobId(0), 0.0, 2, 0.5, 0.3, 400.0).unwrap(),
            JobSpec::new(JobId(1), 10.0, 1, 1.0, 0.2, 300.0).unwrap(),
            JobSpec::new(JobId(2), 20.0, 4, 0.25, 0.85, 500.0).unwrap(),
            JobSpec::new(JobId(3), 30.0, 1, 0.5, 0.1, 100.0).unwrap(),
        ];
        let reg = SchedulerRegistry::builtin();
        let mut sched = reg.build_str("sharded:dynmcb8:shards=4").unwrap();
        let out = simulate(cluster, &specs, sched.as_mut(), &SimConfig::default());
        assert_eq!(out.records.len(), 4);
        assert!(out.records.iter().all(|r| r.completion.is_finite()));
    }

    #[test]
    fn wide_job_stacks_tasks_and_scales_yield() {
        // 2 shards of 1 node. The 4-task job (mem 0.4 → 2 tasks/node,
        // cpu 1.0 → yield 1/2) runs alone from t=0 on borrowed nodes:
        // 2 nodes × 2 tasks at yield 0.5, so runtime 100 takes 200s.
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let specs = vec![JobSpec::new(JobId(0), 0.0, 4, 1.0, 0.4, 100.0).unwrap()];
        let reg = SchedulerRegistry::builtin();
        let mut sched = reg.build_str("sharded:dynmcb8:shards=2").unwrap();
        let out = simulate(cluster, &specs, sched.as_mut(), &SimConfig::default());
        assert_eq!(out.records.len(), 1);
        let r = &out.records[0];
        assert_eq!(r.first_start, Some(0.0));
        assert!(
            (r.completion - 200.0).abs() < 1e-6,
            "completion {}",
            r.completion
        );
    }

    #[test]
    fn wide_placement_is_fifo_and_releases_nodes() {
        // Two consecutive wide jobs: the second must wait for the
        // first's borrowed nodes to come home, then run to completion.
        let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
        let specs = vec![
            JobSpec::new(JobId(0), 0.0, 2, 0.5, 0.9, 100.0).unwrap(),
            JobSpec::new(JobId(1), 1.0, 2, 0.5, 0.9, 100.0).unwrap(),
        ];
        let reg = SchedulerRegistry::builtin();
        let mut sched = reg.build_str("sharded:greedy:shards=2").unwrap();
        let out = simulate(cluster, &specs, sched.as_mut(), &SimConfig::default());
        assert_eq!(out.records.len(), 2);
        let by_id = |i: u32| out.records.iter().find(|r| r.id == JobId(i)).unwrap();
        assert!((by_id(0).completion - 100.0).abs() < 1e-6);
        // Job 1 starts only when job 0's nodes are returned.
        assert!(by_id(1).first_start.unwrap() >= 100.0 - 1e-9);
        assert!(by_id(1).completion.is_finite());
    }

    #[test]
    fn routing_balances_across_shards() {
        // Many single-task jobs arriving together spread over shards:
        // with 2 shards of 4 nodes and 8 one-node jobs, both shards
        // must host some work (makespan stays flat).
        let cluster = ClusterSpec::new(8, 4, 8.0).unwrap();
        let specs: Vec<JobSpec> = (0..8)
            .map(|i| JobSpec::new(JobId(i), 0.0, 1, 1.0, 0.5, 100.0).unwrap())
            .collect();
        let reg = SchedulerRegistry::builtin();
        let mut sched = reg.build_str("sharded:greedy:shards=2").unwrap();
        let out = simulate(cluster, &specs, sched.as_mut(), &SimConfig::default());
        assert_eq!(out.records.len(), 8);
        // All 8 fit at once (8 nodes, 1 node each): no queueing at all.
        assert!(out.makespan <= 100.0 + 1e-9, "makespan {}", out.makespan);
    }
}
