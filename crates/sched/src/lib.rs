//! # dfrs-sched
//!
//! The nine scheduling algorithms evaluated in the IPDPS 2010 DFRS paper
//! (Section III for the DFRS algorithms, Section IV-B for the batch
//! baselines), all implemented against the [`dfrs_sim::Scheduler`]
//! interface:
//!
//! | Constructor | Paper name | Mechanisms |
//! |---|---|---|
//! | [`batch::Fcfs`] | FCFS | integral nodes, FIFO queue |
//! | [`batch::Easy`] | EASY | integral nodes + backfilling, perfect estimates |
//! | [`greedy::Greedy`] | GREEDY | fractional CPU, backoff postponing |
//! | [`greedy::GreedyPmtn`] | GREEDY-PMTN | + priority-based pausing |
//! | [`greedy::GreedyPmtnMigr`] | GREEDY-PMTN-MIGR | + same-event re-placement |
//! | [`dynmcb8::DynMcb8`] | DYNMCB8 | MCB8 repack at every event |
//! | [`dynmcb8::DynMcb8Per`] | DYNMCB8-PER-600 | periodic repack |
//! | [`dynmcb8::DynMcb8AsapPer`] | DYNMCB8-ASAP-PER-600 | periodic + greedy admission |
//! | [`stretch_per::DynMcb8StretchPer`] | DYNMCB8-STRETCH-PER-600 | periodic, minimizes estimated stretch |
//!
//! Only the batch baselines are clairvoyant (EASY backfills with perfect
//! runtime estimates, as in the paper's evaluation); no DFRS algorithm
//! reads `oracle_runtime`.
//!
//! [`spec::SchedulerRegistry`] is the open entry point: string-keyed
//! factories with typed parameters (`"dynmcb8-per:t=300"`), extensible
//! by user code. [`registry::Algorithm`] enumerates the paper's nine as
//! a thin shim over the registry for the fixed Table I/II harnesses.
//! Extensions beyond the paper: [`conservative::ConservativeBf`]
//! (conservative backfilling), [`fairness::DynMcb8FairPer`]
//! (long-job yield damping, the paper's future-work sketch), and the
//! multi-resource [`drf::DynMcb8Drf`] / [`drf::DynMcb8DrfPer`] family
//! (max-min **dominant share** over CPU+GPU instead of max-min yield)
//! — registered as `conservative-bf`, `dynmcb8-fair-per`,
//! `dynmcb8-drf`, and `dynmcb8-drf-per`.
//!
//! ```
//! use dfrs_core::ids::JobId;
//! use dfrs_core::{ClusterSpec, JobSpec};
//! use dfrs_sched::Algorithm;
//! use dfrs_sim::{simulate, SimConfig};
//!
//! // Two memory-light jobs a batch scheduler would serialize run
//! // concurrently under DFRS.
//! let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
//! let jobs: Vec<JobSpec> = (0..2)
//!     .map(|i| JobSpec::new(JobId(i), 0.0, 2, 0.25, 0.1, 300.0).unwrap())
//!     .collect();
//! let fcfs = simulate(cluster, &jobs, Algorithm::Fcfs.build().as_mut(), &SimConfig::default());
//! let dfrs = simulate(cluster, &jobs, Algorithm::GreedyPmtn.build().as_mut(), &SimConfig::default());
//! assert_eq!(fcfs.max_stretch, 2.0);
//! assert_eq!(dfrs.max_stretch, 1.0);
//! ```

pub mod batch;
pub mod common;
pub mod conservative;
pub mod drf;
pub mod dynmcb8;
pub mod fairness;
pub mod greedy;
pub mod registry;
pub mod sharded;
pub mod spec;
pub mod stretch_per;

pub use batch::{Easy, Fcfs};
pub use conservative::ConservativeBf;
pub use drf::{DynMcb8Drf, DynMcb8DrfPer};
pub use dynmcb8::{DynMcb8, DynMcb8AsapPer, DynMcb8Per};
pub use fairness::DynMcb8FairPer;
pub use greedy::{Greedy, GreedyPmtn, GreedyPmtnMigr};
pub use registry::Algorithm;
pub use sharded::Sharded;
pub use spec::{SchedulerFactory, SchedulerRegistry, SchedulerSpec, SpecError, SpecParams};
pub use stretch_per::DynMcb8StretchPer;
