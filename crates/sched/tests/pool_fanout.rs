//! Proptests pinning the sharded tick fan-out: the persistent worker
//! pool must be byte-identical to the serial (scoped-baseline) path
//! for every workload and shard count.
//!
//! `Sharded::with_pool` injects the pool, so these tests drive the
//! real parallel path with a 4-worker pool even on a single-core host
//! — the production gate (`pool::global().workers() >= 2`) never gets
//! a vote here. The serial baseline is a zero-worker pool, which runs
//! every tick inline in shard index order: exactly the pre-pool
//! `thread::scope` merge order.

use std::sync::Arc;

use dfrs_core::pool::WorkerPool;
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sched::spec::SchedulerRegistry;
use dfrs_sched::Sharded;
use dfrs_sim::{simulate, SimConfig, SimOutcome};
use dfrs_workload::{Annotator, LublinModel, Trace};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn cluster() -> ClusterSpec {
    ClusterSpec::new(8, 4, 8.0).unwrap()
}

fn workload(seed: u64, n: usize, load: f64) -> Vec<JobSpec> {
    let cluster = cluster();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(seed);
    let raws = model.generate(n, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let trace = Trace::new(cluster, jobs).unwrap();
    trace.scale_to_load(load).unwrap().jobs().to_vec()
}

/// A sharded coordinator over `shards` fresh instances of `inner`,
/// fanning its ticks out on `pool`.
fn sharded(inner: &str, shards: usize, pool: Arc<WorkerPool>) -> Sharded {
    let reg = SchedulerRegistry::builtin();
    let inners = (0..shards).map(|_| reg.build_str(inner).unwrap()).collect();
    Sharded::new(inners).with_pool(pool)
}

fn run(inner: &str, shards: usize, pool: Arc<WorkerPool>, jobs: &[JobSpec]) -> SimOutcome {
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    let mut sched = sharded(inner, shards, pool);
    simulate(cluster(), jobs, &mut sched, &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel pool fan-out == serial baseline, byte for byte, for
    /// random workloads, shard counts, and tick periods. Periodic
    /// inners guarantee the tick path (the only fan-out) actually runs.
    #[test]
    fn pool_fan_out_matches_serial_baseline(
        seed in 0u64..10_000,
        n in 10usize..36,
        load in 0.3f64..1.1,
        shards in 2usize..=4,
        period in prop::sample::select(vec![300u32, 600]),
    ) {
        let inner = format!("dynmcb8-per:t={period}");
        let jobs = workload(seed, n, load);
        let serial = run(&inner, shards, Arc::new(WorkerPool::new(0)), &jobs);
        let pooled = run(&inner, shards, Arc::new(WorkerPool::new(4)), &jobs);
        prop_assert_eq!(serial.records, pooled.records);
        prop_assert_eq!(serial.preemption_count, pooled.preemption_count);
        prop_assert_eq!(serial.migration_count, pooled.migration_count);
        prop_assert_eq!(serial.max_stretch.to_bits(), pooled.max_stretch.to_bits());
        prop_assert_eq!(serial.mean_stretch.to_bits(), pooled.mean_stretch.to_bits());
    }

    /// The pooled fan-out is deterministic across runs: two simulations
    /// on the same 4-worker pool width agree exactly, whatever the
    /// worker schedule did each time.
    #[test]
    fn pool_fan_out_is_run_to_run_deterministic(
        seed in 0u64..10_000,
        n in 10usize..30,
        shards in 2usize..=4,
    ) {
        let jobs = workload(seed, n, 0.8);
        let a = run("dynmcb8-per:t=600", shards, Arc::new(WorkerPool::new(4)), &jobs);
        let b = run("dynmcb8-per:t=600", shards, Arc::new(WorkerPool::new(4)), &jobs);
        prop_assert_eq!(a.records, b.records);
        prop_assert_eq!(a.max_stretch.to_bits(), b.max_stretch.to_bits());
    }
}

/// Pool widths beyond the shard count change nothing: excess workers
/// idle, missing workers fall back serially, and the schedule is the
/// schedule.
#[test]
fn pool_width_is_invisible_to_the_schedule() {
    let jobs = workload(77, 24, 0.9);
    let baseline = run("dynmcb8-per:t=600", 3, Arc::new(WorkerPool::new(0)), &jobs);
    for workers in [1usize, 2, 3, 8] {
        let out = run(
            "dynmcb8-per:t=600",
            3,
            Arc::new(WorkerPool::new(workers)),
            &jobs,
        );
        assert_eq!(baseline.records, out.records, "workers={workers}");
    }
}
