//! Cross-algorithm tests: every scheduler, random workloads, full
//! invariant validation, and the qualitative orderings the paper reports.

use dfrs_core::ids::JobId;
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sched::Algorithm;
use dfrs_sim::{simulate, SimConfig, SimOutcome};
use dfrs_workload::{Annotator, LublinModel, Trace};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_cluster() -> ClusterSpec {
    ClusterSpec::new(8, 4, 8.0).unwrap()
}

/// A small annotated Lublin-like workload on an 8-node cluster.
fn workload(seed: u64, n: usize, load: f64) -> Vec<JobSpec> {
    let cluster = small_cluster();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(seed);
    let raws = model.generate(n, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let trace = Trace::new(cluster, jobs).unwrap();
    let trace = trace.scale_to_load(load).unwrap();
    trace.jobs().to_vec()
}

fn run(algo: Algorithm, jobs: &[JobSpec], penalty: f64) -> SimOutcome {
    let cfg = SimConfig {
        penalty,
        validate: true,
        ..SimConfig::default()
    };
    simulate(small_cluster(), jobs, algo.build().as_mut(), &cfg)
}

#[test]
fn every_algorithm_completes_every_job_with_invariants_held() {
    let jobs = workload(42, 60, 0.5);
    for algo in Algorithm::ALL {
        let out = run(algo, &jobs, 0.0);
        assert_eq!(out.records.len(), jobs.len(), "{algo}");
        for r in &out.records {
            assert!(r.stretch >= 1.0, "{algo}: stretch {} < 1", r.stretch);
            assert!(r.completion >= r.submit, "{algo}");
        }
    }
}

#[test]
fn every_algorithm_survives_the_penalty_config() {
    let jobs = workload(43, 40, 0.7);
    for algo in Algorithm::ALL {
        let out = run(algo, &jobs, 300.0);
        assert_eq!(out.records.len(), jobs.len(), "{algo}");
    }
}

#[test]
fn batch_algorithms_never_move_anything() {
    let jobs = workload(44, 50, 0.8);
    for algo in [Algorithm::Fcfs, Algorithm::Easy, Algorithm::Greedy] {
        let out = run(algo, &jobs, 300.0);
        assert_eq!(out.preemption_count, 0, "{algo}");
        assert_eq!(out.migration_count, 0, "{algo}");
    }
}

#[test]
fn easy_is_no_worse_than_fcfs_on_mean_stretch() {
    // Backfilling can only help relative to strict FIFO on these
    // workloads (both are work-conserving whole-node policies).
    let mut easy_wins = 0;
    let mut total = 0;
    for seed in 0..5 {
        let jobs = workload(100 + seed, 50, 0.7);
        let f = run(Algorithm::Fcfs, &jobs, 0.0);
        let e = run(Algorithm::Easy, &jobs, 0.0);
        total += 1;
        if e.mean_stretch <= f.mean_stretch + 1e-9 {
            easy_wins += 1;
        }
    }
    assert!(
        easy_wins >= total - 1,
        "EASY beat FCFS on only {easy_wins}/{total} seeds"
    );
}

#[test]
fn dfrs_beats_batch_on_max_stretch() {
    // The paper's headline claim, on a small instance: the best DFRS
    // algorithm achieves a (much) lower max stretch than both batch
    // baselines at non-trivial load.
    let jobs = workload(7, 80, 0.8);
    let batch_best = [Algorithm::Fcfs, Algorithm::Easy]
        .iter()
        .map(|a| run(*a, &jobs, 0.0).max_stretch)
        .fold(f64::INFINITY, f64::min);
    let dfrs_best = [
        Algorithm::GreedyPmtn,
        Algorithm::DynMcb8,
        Algorithm::DynMcb8Per,
        Algorithm::DynMcb8AsapPer,
    ]
    .iter()
    .map(|a| run(*a, &jobs, 0.0).max_stretch)
    .fold(f64::INFINITY, f64::min);
    assert!(
        dfrs_best < batch_best,
        "DFRS best {dfrs_best} not better than batch best {batch_best}"
    );
}

#[test]
fn dynmcb8_dominates_on_min_yield_proxy() {
    // Without penalty, event-driven DYNMCB8 should be at least as good as
    // the periodic variant on max stretch for most seeds (it reallocates
    // instantly). Allow one seed of slack — both are heuristics.
    let mut wins = 0;
    for seed in 0..4 {
        let jobs = workload(200 + seed, 40, 0.6);
        let event = run(Algorithm::DynMcb8, &jobs, 0.0).max_stretch;
        let periodic = run(Algorithm::DynMcb8Per, &jobs, 0.0).max_stretch;
        if event <= periodic + 1e-9 {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "DynMCB8 (no penalty) beat -PER on only {wins}/4 seeds"
    );
}

#[test]
fn deterministic_across_runs() {
    let jobs = workload(9, 30, 0.5);
    for algo in Algorithm::ALL {
        let a = run(algo, &jobs, 300.0);
        let b = run(algo, &jobs, 300.0);
        assert_eq!(a.max_stretch, b.max_stretch, "{algo}");
        assert_eq!(a.preemption_count, b.preemption_count, "{algo}");
        assert_eq!(a.records, b.records, "{algo}");
    }
}

#[test]
fn greedy_pmtn_starts_jobs_no_later_than_greedy() {
    // Forced admission: every job's first start under GREEDY-PMTN is at
    // its submission (modulo identical-instant processing), never later
    // than under GREEDY.
    let jobs = workload(11, 50, 0.8);
    let g = run(Algorithm::Greedy, &jobs, 0.0);
    let p = run(Algorithm::GreedyPmtn, &jobs, 0.0);
    for (rg, rp) in g.records.iter().zip(p.records.iter()) {
        let sp = rp.first_start.unwrap();
        assert!(
            (sp - rp.submit).abs() < 1e-6,
            "GREEDY-PMTN must start {} at submission, started {}",
            rp.id,
            sp - rp.submit
        );
        assert!(sp <= rg.first_start.unwrap() + 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any algorithm on any seed: all jobs complete, stretches ≥ 1,
    /// engine invariants hold throughout (validate=true).
    #[test]
    fn random_workloads_simulate_cleanly(
        seed in 0u64..10_000,
        n in 10usize..40,
        load in 0.2f64..1.2,
        penalty in prop::sample::select(vec![0.0, 300.0]),
    ) {
        let jobs = workload(seed, n, load);
        for algo in [
            Algorithm::Fcfs,
            Algorithm::Greedy,
            Algorithm::GreedyPmtn,
            Algorithm::GreedyPmtnMigr,
            Algorithm::DynMcb8,
            Algorithm::DynMcb8AsapPer,
            Algorithm::DynMcb8StretchPer,
        ] {
            let out = run(algo, &jobs, penalty);
            prop_assert_eq!(out.records.len(), jobs.len());
            for r in &out.records {
                prop_assert!(r.stretch >= 1.0);
            }
        }
    }

    /// Job conservation under EASY specifically (backfilling bookkeeping
    /// is the most intricate queue logic).
    #[test]
    fn easy_conserves_jobs(seed in 0u64..10_000, n in 10usize..50) {
        let jobs = workload(seed, n, 0.9);
        let out = run(Algorithm::Easy, &jobs, 0.0);
        prop_assert_eq!(out.records.len(), jobs.len());
        let ids: std::collections::HashSet<JobId> =
            out.records.iter().map(|r| r.id).collect();
        prop_assert_eq!(ids.len(), jobs.len());
    }
}
