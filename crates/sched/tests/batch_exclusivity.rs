//! Batch baselines must emulate real batch systems: whole nodes,
//! exclusive access, no sharing — verified by replaying the allocation
//! timeline against a per-node occupancy model.

use dfrs_core::ids::NodeId;
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sched::{ConservativeBf, Easy, Fcfs};
use dfrs_sim::{simulate, AllocEvent, Scheduler, SimConfig};
use dfrs_workload::{Annotator, LublinModel, Trace};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn workload(seed: u64, n: usize) -> (ClusterSpec, Vec<JobSpec>) {
    let cluster = ClusterSpec::new(16, 4, 8.0).unwrap();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(seed);
    let raws = model.generate(n, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    let trace = Trace::new(cluster, jobs)
        .unwrap()
        .scale_to_load(0.8)
        .unwrap();
    (cluster, trace.jobs().to_vec())
}

/// Replay the timeline; assert at most one job occupies a node at any
/// time and that batch jobs are never adjusted, paused, or migrated.
fn assert_exclusive(scheduler: &mut dyn Scheduler, cluster: ClusterSpec, jobs: &[JobSpec]) {
    let cfg = SimConfig {
        record_timeline: true,
        validate: true,
        ..SimConfig::default()
    };
    let out = simulate(cluster, jobs, scheduler, &cfg);
    let mut owner: Vec<Option<dfrs_core::JobId>> = vec![None; cluster.nodes as usize];
    let mut nodes_of: std::collections::HashMap<dfrs_core::JobId, Vec<NodeId>> =
        std::collections::HashMap::new();
    for e in &out.timeline.entries {
        match &e.event {
            AllocEvent::Start { nodes, yld } => {
                assert_eq!(*yld, 1.0, "batch jobs run at full speed");
                for n in nodes {
                    assert_eq!(
                        owner[n.index()],
                        None,
                        "{} given occupied node {n} at t={}",
                        e.job,
                        e.time
                    );
                    owner[n.index()] = Some(e.job);
                }
                // Whole distinct nodes.
                let mut uniq = nodes.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(
                    uniq.len(),
                    nodes.len(),
                    "{} shares nodes with itself",
                    e.job
                );
                nodes_of.insert(e.job, nodes.clone());
            }
            AllocEvent::Complete => {
                for n in nodes_of.remove(&e.job).expect("completion without start") {
                    assert_eq!(owner[n.index()], Some(e.job));
                    owner[n.index()] = None;
                }
            }
            other => panic!("batch scheduler produced {other:?} for {}", e.job),
        }
    }
    assert!(nodes_of.is_empty(), "jobs left running at the end");
}

#[test]
fn fcfs_is_exclusive() {
    let (cluster, jobs) = workload(1, 60);
    assert_exclusive(&mut Fcfs::new(), cluster, &jobs);
}

#[test]
fn easy_is_exclusive() {
    let (cluster, jobs) = workload(2, 60);
    assert_exclusive(&mut Easy::new(), cluster, &jobs);
}

#[test]
fn conservative_bf_is_exclusive() {
    let (cluster, jobs) = workload(3, 60);
    assert_exclusive(&mut ConservativeBf::new(), cluster, &jobs);
}

#[test]
fn conservative_never_beats_easy_by_definition_of_aggressiveness() {
    // EASY's aggressive backfilling starts at least as many jobs early;
    // over several seeds its mean stretch should not be systematically
    // worse than the conservative variant's.
    let mut easy_wins = 0;
    let total = 6;
    for seed in 0..total {
        let (cluster, jobs) = workload(100 + seed, 50);
        let e = simulate(cluster, &jobs, &mut Easy::new(), &SimConfig::default());
        let c = simulate(
            cluster,
            &jobs,
            &mut ConservativeBf::new(),
            &SimConfig::default(),
        );
        if e.mean_stretch <= c.mean_stretch + 1e-9 {
            easy_wins += 1;
        }
    }
    assert!(easy_wins * 2 >= total, "EASY won only {easy_wins}/{total}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Exclusivity holds for arbitrary seeds on all three batch policies.
    #[test]
    fn batch_exclusivity_random(seed in 0u64..5_000) {
        let (cluster, jobs) = workload(seed, 30);
        assert_exclusive(&mut Fcfs::new(), cluster, &jobs);
        assert_exclusive(&mut Easy::new(), cluster, &jobs);
        assert_exclusive(&mut ConservativeBf::new(), cluster, &jobs);
    }
}
