//! Spec-layer guarantees: property-based parse/display round-trips for
//! [`SchedulerSpec`], and backward compatibility for every name the old
//! closed `Algorithm` enum accepted — the paper-table names with
//! spaces, the canonical keys, and the legacy `-600` period suffixes.

use dfrs_sched::{Algorithm, SchedulerRegistry, SchedulerSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// display(parse(s)) == display(parse(display(parse(s)))) and the
    /// parsed specs are equal: the canonical form is a fixed point.
    #[test]
    fn parse_display_round_trip(
        key_idx in 0usize..13,
        t in prop::sample::select(vec![1u32, 60, 300, 600, 3600, 86_400]),
        with_t in prop::sample::select(vec![true, false]),
        packer in prop::sample::select(vec!["mcb8", "first-fit", "best-fit"]),
        with_packer in prop::sample::select(vec![true, false]),
    ) {
        let reg = SchedulerRegistry::builtin();
        let keys = reg.keys();
        let key = &keys[key_idx % keys.len()];
        let allowed = reg.factory(key).unwrap().param_names().to_vec();

        let mut spec = SchedulerSpec::new(key);
        if with_t && allowed.iter().any(|p| p == "t") {
            spec = spec.with("t", t);
        }
        if with_packer && allowed.iter().any(|p| p == "packer") {
            spec = spec.with("packer", packer);
        }

        let rendered = spec.to_string();
        let reparsed: SchedulerSpec = rendered.parse().unwrap();
        prop_assert_eq!(&reparsed, &spec, "parse(display) changed the spec {}", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered);

        // Whatever the spec, it must build through the registry.
        prop_assert!(reg.build(&spec).is_ok(), "spec {} failed to build", spec);
    }

    /// Uppercasing, underscores, and surrounding whitespace never
    /// change what a spec means.
    #[test]
    fn parse_is_case_and_separator_insensitive(
        key_idx in 0usize..13,
        upper in prop::sample::select(vec![true, false]),
        pad in prop::sample::select(vec!["", " ", "  "]),
    ) {
        let reg = SchedulerRegistry::builtin();
        let keys = reg.keys();
        let key = &keys[key_idx % keys.len()];
        let mut mangled = key.replace('-', "_");
        if upper {
            mangled = mangled.to_ascii_uppercase();
        }
        let mangled = format!("{pad}{mangled}{pad}");
        prop_assert_eq!(reg.parse(&mangled).unwrap(), SchedulerSpec::new(key));
    }
}

/// Every string `Algorithm::name()` ever printed keeps parsing — to the
/// same algorithm, through both the enum shim and the registry.
#[test]
fn every_algorithm_name_string_keeps_parsing() {
    for a in Algorithm::ALL {
        // The paper-table display name ("DynMCB8-per 600").
        assert_eq!(Algorithm::parse(a.name()), Some(a), "{}", a.name());
        assert_eq!(a.name().parse::<Algorithm>(), Ok(a), "{}", a.name());
        // The hyphenated legacy form ("dynmcb8-per-600").
        let hyphenated = a.name().to_ascii_lowercase().replace(' ', "-");
        assert_eq!(hyphenated.parse::<Algorithm>(), Ok(a), "{hyphenated}");
        // The canonical registry key.
        assert_eq!(a.key().parse::<Algorithm>(), Ok(a), "{}", a.key());
        // All three resolve to the same registry spec key.
        let reg = SchedulerRegistry::builtin();
        assert_eq!(reg.parse(a.name()).unwrap().key(), a.key());
        assert_eq!(reg.parse(&hyphenated).unwrap().key(), a.key());
    }
}

/// The legacy suffix carries its period into the built scheduler.
#[test]
fn legacy_suffix_builds_with_that_period() {
    let reg = SchedulerRegistry::builtin();
    assert_eq!(
        reg.build_str("dynmcb8-per-60").unwrap().name(),
        "DynMCB8-per 60"
    );
    assert_eq!(
        reg.build_str("DynMCB8-stretch-per 600").unwrap().name(),
        "DynMCB8-stretch-per 600"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The DRF family round-trips through the spec grammar with any
    /// period, and the periodic variant carries it into the built
    /// scheduler's display name.
    #[test]
    fn drf_specs_round_trip_and_build(
        t in prop::sample::select(vec![1u32, 60, 300, 600, 3600, 86_400]),
    ) {
        let reg = SchedulerRegistry::builtin();
        let spec = SchedulerSpec::new("dynmcb8-drf-per").with("t", t);
        let rendered = spec.to_string();
        prop_assert_eq!(&rendered.parse::<SchedulerSpec>().unwrap(), &spec);
        prop_assert_eq!(
            reg.build(&spec).unwrap().name(),
            format!("DynMCB8-drf-per {t}")
        );
        // The legacy numeric-suffix spelling resolves to the same spec.
        prop_assert_eq!(reg.parse(&format!("dynmcb8-drf-per-{t}")).unwrap(), spec);
    }

    /// The suffix rewrite never eats the `-drf` tail of the family
    /// name: `dynmcb8-drf` is not a period spelling of `dynmcb8`, and
    /// a numeric suffix on the (parameterless) event-driven key stays
    /// an unknown key instead of colliding with anything.
    #[test]
    fn drf_keys_do_not_collide_with_legacy_suffix_rewrites(
        n in prop::sample::select(vec![1u32, 60, 600, 3600]),
    ) {
        let reg = SchedulerRegistry::builtin();
        prop_assert_eq!(reg.parse("dynmcb8-drf").unwrap(), SchedulerSpec::new("dynmcb8-drf"));
        prop_assert!(matches!(
            reg.parse(&format!("dynmcb8-drf-{n}")),
            Err(dfrs_sched::SpecError::UnknownKey { .. })
        ));
    }
}

/// The DRF factories reject parameters they don't take, listing what
/// they do.
#[test]
fn drf_family_rejects_unknown_params() {
    use dfrs_sched::SpecError;
    let reg = SchedulerRegistry::builtin();
    match reg.parse("dynmcb8-drf:t=600") {
        Err(SpecError::UnknownParam {
            key,
            param,
            allowed,
        }) => {
            assert_eq!(key, "dynmcb8-drf");
            assert_eq!(param, "t");
            assert!(allowed.is_empty(), "event-driven drf takes no params");
        }
        other => panic!("expected UnknownParam, got {other:?}"),
    }
    match reg.parse("dynmcb8-drf-per:packer=mcb8") {
        Err(SpecError::UnknownParam { key, allowed, .. }) => {
            assert_eq!(key, "dynmcb8-drf-per");
            assert_eq!(allowed, vec!["t".to_string()]);
        }
        other => panic!("expected UnknownParam, got {other:?}"),
    }
    assert!(matches!(
        reg.build_str("dynmcb8-drf-per:t=0"),
        Err(SpecError::InvalidParam { .. })
    ));
    assert!(matches!(
        reg.build_str("dynmcb8-drf-per:t=banana"),
        Err(SpecError::InvalidParam { .. })
    ));
}

/// Spec errors name the known registry keys, so a typo points at the
/// fix.
#[test]
fn unknown_key_error_is_typo_friendly() {
    let err = SchedulerRegistry::builtin()
        .parse("dynmcb8-asap-par")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("dynmcb8-asap-per"), "{msg}");
    assert!(msg.contains("fcfs"), "{msg}");
}
