//! Homogeneous cluster description (Section II-B1: switched interconnect,
//! network-attached storage, identical nodes).

use crate::constants;
use crate::error::CoreError;

/// Static description of the simulated cluster.
///
/// Per-node capacities are normalized to 1.0 for both CPU and memory; the
/// physical quantities (`cores_per_node`, `node_memory_gb`) matter only
/// for workload annotation (a sequential task uses `1/cores` of a node's
/// CPU) and for Table II's bandwidth accounting (bytes moved per
/// preemption/migration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub nodes: u32,
    /// Cores per node (VM technology lets them be shared as one fluid
    /// resource, Section IV-C).
    pub cores_per_node: u32,
    /// Physical memory per node in GB, for bandwidth accounting.
    pub node_memory_gb: f64,
}

impl ClusterSpec {
    /// Validate and build a cluster spec.
    ///
    /// # Errors
    /// Returns [`CoreError`] when a count is zero or memory non-positive.
    pub fn new(nodes: u32, cores_per_node: u32, node_memory_gb: f64) -> Result<Self, CoreError> {
        if nodes == 0 {
            return Err(CoreError::ZeroCount { what: "nodes" });
        }
        if cores_per_node == 0 {
            return Err(CoreError::ZeroCount {
                what: "cores_per_node",
            });
        }
        if !node_memory_gb.is_finite() || node_memory_gb <= 0.0 {
            return Err(CoreError::NonPositive {
                what: "node_memory_gb",
                value: node_memory_gb,
            });
        }
        Ok(ClusterSpec {
            nodes,
            cores_per_node,
            node_memory_gb,
        })
    }

    /// The 128-node quad-core 8 GB cluster of the synthetic experiments.
    pub fn synthetic() -> Self {
        ClusterSpec {
            nodes: constants::SYNTHETIC_CLUSTER_NODES,
            cores_per_node: constants::SYNTHETIC_CORES_PER_NODE,
            node_memory_gb: constants::SYNTHETIC_NODE_MEMORY_GB,
        }
    }

    /// The 120-node dual-core 2 GB HPC2N cluster.
    pub fn hpc2n() -> Self {
        ClusterSpec {
            nodes: constants::HPC2N_CLUSTER_NODES,
            cores_per_node: constants::HPC2N_CORES_PER_NODE,
            node_memory_gb: constants::HPC2N_NODE_MEMORY_GB,
        }
    }

    /// CPU need of a sequential CPU-bound task on this cluster: one core
    /// out of `cores_per_node` (Section IV-C).
    #[inline]
    pub fn sequential_cpu_need(&self) -> f64 {
        1.0 / self.cores_per_node as f64
    }

    /// GB moved when a task of memory fraction `mem_req` is saved to (or
    /// restored from) network storage.
    #[inline]
    pub fn task_move_gb(&self, mem_req: f64) -> f64 {
        mem_req * self.node_memory_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let s = ClusterSpec::synthetic();
        assert_eq!((s.nodes, s.cores_per_node), (128, 4));
        assert_eq!(s.node_memory_gb, 8.0);
        let h = ClusterSpec::hpc2n();
        assert_eq!((h.nodes, h.cores_per_node), (120, 2));
        assert_eq!(h.node_memory_gb, 2.0);
    }

    #[test]
    fn sequential_need_is_one_core() {
        assert!((ClusterSpec::synthetic().sequential_cpu_need() - 0.25).abs() < 1e-12);
        assert!((ClusterSpec::hpc2n().sequential_cpu_need() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(ClusterSpec::new(0, 4, 8.0).is_err());
        assert!(ClusterSpec::new(16, 0, 8.0).is_err());
        assert!(ClusterSpec::new(16, 4, 0.0).is_err());
        assert!(ClusterSpec::new(16, 4, f64::NAN).is_err());
    }

    #[test]
    fn task_move_gb_scales_with_memory_fraction() {
        let s = ClusterSpec::synthetic();
        assert!((s.task_move_gb(1.0) - 8.0).abs() < 1e-12);
        assert!((s.task_move_gb(0.25) - 2.0).abs() < 1e-12);
    }
}
