//! Typed identifiers for jobs and nodes.
//!
//! Newtypes over `u32` keep the simulator's dense `Vec`-indexed tables
//! cheap while preventing a job index from being used where a node index
//! is expected.

use std::fmt;

/// Identifier of a job within one trace. Jobs are numbered densely from 0
/// in submission order, which lets per-job state live in a `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

/// Identifier of a physical node within the cluster, dense from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl JobId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for JobId {
    fn from(v: u32) -> Self {
        JobId(v)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(JobId(7).to_string(), "j7");
        assert_eq!(NodeId(120).to_string(), "n120");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(JobId(42).index(), 42);
        assert_eq!(NodeId(0).index(), 0);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(JobId(1) < JobId(2));
        assert!(NodeId(9) > NodeId(3));
    }
}
