//! # dfrs-core
//!
//! Core types and math for **Dynamic Fractional Resource Scheduling**
//! (DFRS), the job-scheduling approach of Stillwell, Vivien and Casanova
//! (IPDPS 2010).
//!
//! This crate is deliberately free of any simulation or algorithmic logic;
//! it defines the vocabulary shared by the rest of the workspace:
//!
//! * [`JobId`], [`NodeId`] — typed identifiers;
//! * [`JobSpec`] — a job request: submit time, task count, per-task CPU
//!   need and memory requirement, and the (oracle-only) dedicated runtime;
//! * [`ClusterSpec`] — a homogeneous cluster description;
//! * [`stretch`] — the bounded-stretch metric the paper reports;
//! * [`priority`] — the pause/resume priority function
//!   `max(30, flow_time) / virtual_time²`;
//! * [`yield_math`] — helpers for yields (allocated CPU / CPU need);
//! * [`stats`] — numerically stable online statistics (Welford) used for
//!   the avg/std/max aggregates of Table I and Table II;
//! * [`constants`] — the paper's magic numbers in one place.
//!
//! ## Conventions
//!
//! * Time is `f64` seconds from the start of the trace.
//! * CPU and memory quantities are fractions of one node's capacity in
//!   `[0, 1]` (CPU *loads*, being sums of needs, may exceed 1).
//! * All randomness lives in `dfrs-workload`; this crate is deterministic.

pub mod approx;
pub mod checksum;
pub mod cluster;
pub mod constants;
pub mod error;
pub mod fxhash;
pub mod histogram;
pub mod ids;
pub mod job;
pub mod json;
pub mod pool;
pub mod priority;
pub mod resources;
pub mod stats;
pub mod stretch;
pub mod yield_math;

pub use cluster::ClusterSpec;
pub use error::CoreError;
pub use histogram::LogHistogram;
pub use ids::{JobId, NodeId};
pub use job::JobSpec;
pub use priority::Priority;
pub use resources::{ResourceVec, DIM_CPU, DIM_FLUID, DIM_GPU, DIM_MEM, RESOURCE_DIMS};
pub use stats::OnlineStats;
