//! CRC-32 (IEEE 802.3) checksums for on-disk integrity.
//!
//! The write-ahead command journal of `dfrs-serve` seals every record
//! with a checksum so recovery can distinguish a *torn* final record
//! (the tail of an append cut short by a crash — tolerated, dropped)
//! from *corruption* earlier in the file (a hard, typed error). A
//! 32-bit CRC is plenty for single-record integrity: the records are
//! short NDJSON lines, and the failure mode being detected is a partial
//! or bit-flipped line, not an adversary.
//!
//! The table is built at compile time — no dependencies, no runtime
//! initialization, byte-identical on every platform.

/// The reflected CRC-32 polynomial (IEEE 802.3, zlib's `crc32`).
const POLY: u32 = 0xedb8_8320;

/// One 256-entry table, built in a `const` context.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, reflected, init/final-xor `0xffff_ffff` —
/// the value `cksum`-style tools and zlib agree on for the same input).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Render a CRC as the fixed-width hex form journal records carry.
pub fn crc32_hex(bytes: &[u8]) -> String {
    format!("{:08x}", crc32(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(crc32_hex(b""), "00000000");
        assert_eq!(crc32_hex(b"123456789"), "cbf43926");
    }

    #[test]
    fn detects_single_byte_damage() {
        let line = br#"{"line":"{\"cmd\":\"drain\"}","seq":7}"#;
        let good = crc32(line);
        for i in 0..line.len() {
            let mut bad = line.to_vec();
            bad[i] ^= 0x01;
            assert_ne!(crc32(&bad), good, "flip at byte {i} went undetected");
        }
        let mut truncated = line.to_vec();
        truncated.pop();
        assert_ne!(crc32(&truncated), good);
    }
}
