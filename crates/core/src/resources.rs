//! The N-dimensional resource vector behind the scheduling stack.
//!
//! The paper's model is the two-resource (CPU, memory) instance of a
//! general multi-capacity family; this module fixes the general
//! vocabulary: a [`ResourceVec`] is a small fixed array of per-node
//! fractions, one slot per resource dimension, with CPU in slot 0,
//! memory in slot 1 and GPU in slot 2. Packing and scheduling code is
//! written against `[f64; D]` slices so the dimension count is a
//! compile-time constant everywhere it matters.
//!
//! Two kinds of dimension exist:
//!
//! * **fluid** dimensions (CPU, GPU) scale with the yield — a job given
//!   yield `y` consumes `need · y` of each fluid resource;
//! * **rigid** dimensions (memory) are all-or-nothing — a placed task
//!   occupies its full requirement regardless of yield, exactly the
//!   paper's treatment of memory.

use crate::approx;

/// Number of resource dimensions the stack models.
pub const RESOURCE_DIMS: usize = 3;

/// Index of the CPU dimension (fluid).
pub const DIM_CPU: usize = 0;
/// Index of the memory dimension (rigid).
pub const DIM_MEM: usize = 1;
/// Index of the GPU dimension (fluid).
pub const DIM_GPU: usize = 2;

/// Whether each dimension scales with yield (`true`) or is occupied in
/// full whenever the task is placed (`false`).
pub const DIM_FLUID: [bool; RESOURCE_DIMS] = [true, false, true];

/// Per-task demand (or per-node capacity) across every modeled
/// dimension, as fractions of one node's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVec(pub [f64; RESOURCE_DIMS]);

impl ResourceVec {
    /// A vector from the three named demands.
    #[inline]
    pub fn new(cpu: f64, mem: f64, gpu: f64) -> Self {
        ResourceVec([cpu, mem, gpu])
    }

    /// The unit capacity vector (a full node in every dimension).
    #[inline]
    pub fn unit() -> Self {
        ResourceVec([1.0; RESOURCE_DIMS])
    }

    /// CPU component.
    #[inline]
    pub fn cpu(&self) -> f64 {
        self.0[DIM_CPU]
    }

    /// Memory component.
    #[inline]
    pub fn mem(&self) -> f64 {
        self.0[DIM_MEM]
    }

    /// GPU component.
    #[inline]
    pub fn gpu(&self) -> f64 {
        self.0[DIM_GPU]
    }

    /// Largest component (the dominant demand).
    #[inline]
    pub fn max_component(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The dominant dimension: the index of the largest component, with
    /// ties resolved toward the *higher* index. The 2-dim degenerate
    /// case reproduces MCB8's split exactly: an item is CPU-dominant iff
    /// `cpu > mem` (a tie is memory-dominant).
    #[inline]
    pub fn dominant_dim(&self) -> usize {
        dominant_dim(&self.0)
    }

    /// Largest *fluid* component — the denominator of the dominant-share
    /// objective (memory is rigid: it never scales with yield, so it
    /// enters dominance only through packing feasibility).
    #[inline]
    pub fn dominant_fluid(&self) -> f64 {
        let mut best = 0.0f64;
        for (&fluid, &need) in DIM_FLUID.iter().zip(self.0.iter()) {
            if fluid {
                best = best.max(need);
            }
        }
        best
    }

    /// Component-wise `self + other`.
    #[inline]
    pub fn add(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = self.0;
        for (o, x) in out.iter_mut().zip(other.0.iter()) {
            *o += x;
        }
        ResourceVec(out)
    }

    /// Whether every component of `self` fits under `cap` within
    /// [`approx::le`] tolerance.
    #[inline]
    pub fn fits_within(&self, cap: &ResourceVec) -> bool {
        self.0
            .iter()
            .zip(cap.0.iter())
            .all(|(x, c)| approx::le(*x, *c))
    }
}

/// The dominant dimension of a raw demand slice: index of the largest
/// component, ties toward the higher index. See
/// [`ResourceVec::dominant_dim`] for the degeneration argument.
#[inline]
pub fn dominant_dim<const D: usize>(req: &[f64; D]) -> usize {
    let mut dim = 0usize;
    for d in 1..D {
        if req[d] >= req[dim] {
            dim = d;
        }
    }
    dim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_accessors_match_slots() {
        let v = ResourceVec::new(0.2, 0.5, 0.9);
        assert_eq!(v.cpu(), 0.2);
        assert_eq!(v.mem(), 0.5);
        assert_eq!(v.gpu(), 0.9);
        assert_eq!(v.max_component(), 0.9);
    }

    #[test]
    fn dominant_dim_ties_prefer_higher_index() {
        // cpu == mem tie is memory-dominant, matching MCB8's
        // `cpu_dominant == (cpu > mem)` split.
        assert_eq!(ResourceVec::new(0.5, 0.5, 0.0).dominant_dim(), DIM_MEM);
        assert_eq!(ResourceVec::new(0.6, 0.5, 0.0).dominant_dim(), DIM_CPU);
        assert_eq!(ResourceVec::new(0.2, 0.5, 0.5).dominant_dim(), DIM_GPU);
        assert_eq!(ResourceVec::new(0.2, 0.5, 0.9).dominant_dim(), DIM_GPU);
    }

    #[test]
    fn dominant_fluid_skips_memory() {
        // Memory is rigid: however large, it never becomes the fluid
        // dominant demand.
        let v = ResourceVec::new(0.3, 0.95, 0.4);
        assert_eq!(v.dominant_fluid(), 0.4);
        let cpu_only = ResourceVec::new(0.3, 0.95, 0.0);
        assert_eq!(cpu_only.dominant_fluid(), 0.3);
    }

    #[test]
    fn add_and_fits_within() {
        let a = ResourceVec::new(0.4, 0.3, 0.0);
        let b = ResourceVec::new(0.6, 0.5, 0.2);
        let sum = a.add(&b);
        assert!(sum.fits_within(&ResourceVec::unit()));
        assert!(!sum
            .add(&ResourceVec::new(0.1, 0.0, 0.0))
            .fits_within(&ResourceVec::unit()));
        // The approx::le boundary: exactly-at-capacity fits.
        let full = ResourceVec::new(1.0, 1.0, 1.0);
        assert!(full.fits_within(&ResourceVec::unit()));
    }

    #[test]
    fn fluid_mask_matches_paper_semantics() {
        assert!(DIM_FLUID[DIM_CPU]);
        assert!(!DIM_FLUID[DIM_MEM]);
        assert!(DIM_FLUID[DIM_GPU]);
    }
}
