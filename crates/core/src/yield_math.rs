//! Yield arithmetic (Section II-B2).
//!
//! The **yield** of a task is the CPU fraction allocated to it divided by
//! its CPU need; since all tasks of a job get identical fractions, it is
//! also the yield of the job. A yield of 1 means "running as fast as in
//! dedicated mode"; the job's virtual time advances at `yield` seconds per
//! second. The yield is the inverse of an instantaneous stretch.

use crate::approx;

/// The base equal-share yield used by the greedy algorithms:
/// `1 / max(1, Λ)`, where `Λ` is the maximum CPU load (sum of CPU needs)
/// over all nodes. This maximizes the minimum yield for a *fixed*
/// task-to-node mapping.
#[inline]
pub fn equal_share_yield(max_cpu_load: f64) -> f64 {
    debug_assert!(max_cpu_load >= 0.0);
    1.0 / max_cpu_load.max(1.0)
}

/// CPU fraction actually allocated to a task given its need and yield.
#[inline]
pub fn allocated_fraction(cpu_need: f64, yld: f64) -> f64 {
    debug_assert!((0.0..=1.0 + approx::EPS).contains(&yld), "yield {yld}");
    cpu_need * yld
}

/// Largest yield increase a single node can grant a job: `slack / need`,
/// where `need` is the job's total CPU need on that node.
#[inline]
pub fn max_yield_increase(node_cpu_slack: f64, job_need_on_node: f64) -> f64 {
    debug_assert!(job_need_on_node > 0.0);
    (node_cpu_slack / job_need_on_node).max(0.0)
}

/// The estimated-stretch recurrence of `DYNMCB8-STRETCH-PER`
/// (Section III-B): assuming a job keeps yield `y` for the next period
/// `t`, its estimated stretch at the next event is
/// `(flow + t) / (vt + y·t)`.
#[inline]
pub fn estimated_stretch_after(flow_time: f64, virtual_time: f64, yld: f64, period: f64) -> f64 {
    debug_assert!(period > 0.0);
    (flow_time + period) / (virtual_time + yld * period)
}

/// Invert the recurrence: the yield needed over the next period `t` for
/// the job's estimated stretch to reach `target` — may be negative (target
/// unreachable slowly) or above 1 (target unreachable at all); callers
/// clamp per the paper (non-positive → 0.01 floor, above 1 → 1).
#[inline]
pub fn yield_for_target_stretch(
    flow_time: f64,
    virtual_time: f64,
    target: f64,
    period: f64,
) -> f64 {
    debug_assert!(target > 0.0);
    debug_assert!(period > 0.0);
    ((flow_time + period) / target - virtual_time) / period
}

/// A job's **dominant share** under DRF: the fraction of the cluster's
/// scarcest (for this job) fluid resource it is allocated. With yield
/// `y` and dominant fluid need `d = max(cpu_need, gpu_need)`, every
/// fluid allocation is `need·y`, so the dominant share is simply `d·y`.
/// Memory is rigid and enters only through packing feasibility.
#[inline]
pub fn dominant_share(dominant_fluid_need: f64, yld: f64) -> f64 {
    debug_assert!(dominant_fluid_need >= 0.0);
    debug_assert!((0.0..=1.0 + approx::EPS).contains(&yld), "yield {yld}");
    dominant_fluid_need * yld
}

/// Invert [`dominant_share`]: the yield that grants a job dominant
/// share `s`, clamped into `[0, 1]` (a share at or above the job's
/// dominant need means full speed — yield never exceeds 1).
#[inline]
pub fn yield_for_dominant_share(dominant_fluid_need: f64, share: f64) -> f64 {
    debug_assert!(share >= 0.0);
    if dominant_fluid_need <= 0.0 {
        return 1.0; // no fluid demand: the job runs at full speed free
    }
    (share / dominant_fluid_need).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_share_is_one_when_underloaded() {
        assert_eq!(equal_share_yield(0.0), 1.0);
        assert_eq!(equal_share_yield(0.7), 1.0);
        assert_eq!(equal_share_yield(1.0), 1.0);
    }

    #[test]
    fn equal_share_shrinks_with_overload() {
        assert!((equal_share_yield(2.0) - 0.5).abs() < 1e-12);
        assert!((equal_share_yield(4.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn allocated_fraction_scales() {
        assert!((allocated_fraction(0.6, 0.5) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stretch_recurrence_round_trips() {
        let (flow, vt, period) = (1000.0, 400.0, 600.0);
        for y in [0.01, 0.3, 0.77, 1.0] {
            let s = estimated_stretch_after(flow, vt, y, period);
            let back = yield_for_target_stretch(flow, vt, s, period);
            assert!((back - y).abs() < 1e-9, "y={y} back={back}");
        }
    }

    #[test]
    fn unreachable_target_gives_out_of_range_yield() {
        // Target stretch 1 immediately after a long wait needs y > 1.
        let y = yield_for_target_stretch(10_000.0, 0.0, 1.0, 600.0);
        assert!(y > 1.0);
        // A very lax target needs a negative yield (already better).
        let y = yield_for_target_stretch(100.0, 5_000.0, 10.0, 600.0);
        assert!(y < 0.0);
    }

    #[test]
    fn dominant_share_round_trips_through_yield() {
        for d in [0.05, 0.4, 1.0] {
            for y in [0.01, 0.5, 1.0] {
                let s = dominant_share(d, y);
                let back = yield_for_dominant_share(d, s);
                assert!((back - y).abs() < 1e-12, "d={d} y={y} back={back}");
            }
        }
        // Shares above the need clamp the yield at 1.
        assert_eq!(yield_for_dominant_share(0.5, 2.0), 1.0);
        // Degenerate zero-demand jobs run at full speed.
        assert_eq!(yield_for_dominant_share(0.0, 0.3), 1.0);
    }

    #[test]
    fn max_increase_never_negative() {
        assert_eq!(max_yield_increase(-0.1, 0.5), 0.0);
        assert!((max_yield_increase(0.25, 0.5) - 0.5).abs() < 1e-12);
    }
}
