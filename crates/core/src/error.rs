//! Workspace-wide error type for constructing and validating model inputs.

use std::fmt;

/// Errors raised while building jobs, clusters, or traces.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A fraction that must lie in `(0, 1]` (or `[0, 1]`) was out of range.
    FractionOutOfRange {
        /// Name of the offending field.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A quantity that must be strictly positive was not.
    NonPositive {
        /// Name of the offending field.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A count (tasks, nodes) that must be at least one was zero.
    ZeroCount {
        /// Name of the offending field.
        what: &'static str,
    },
    /// A job demands more tasks than any allocation could ever host, or is
    /// otherwise impossible on the given cluster.
    Infeasible {
        /// Human-readable explanation.
        reason: String,
    },
    /// A trace file (e.g. SWF) could not be parsed.
    Parse {
        /// 1-based line number, when known.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::FractionOutOfRange { what, value } => {
                write!(f, "{what} must be a fraction in (0, 1], got {value}")
            }
            CoreError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            CoreError::ZeroCount { what } => write!(f, "{what} must be at least 1"),
            CoreError::Infeasible { reason } => write!(f, "infeasible input: {reason}"),
            CoreError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field_and_value() {
        let e = CoreError::FractionOutOfRange {
            what: "cpu_need",
            value: 1.5,
        };
        let s = e.to_string();
        assert!(s.contains("cpu_need") && s.contains("1.5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::ZeroCount { what: "tasks" });
        assert!(e.to_string().contains("tasks"));
    }
}
