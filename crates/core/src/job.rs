//! Job requests, as defined in Section II-B1 of the paper.
//!
//! A job consists of `tasks` identical parallel tasks. Each task has a
//! **CPU need** (fraction of a node's CPU it uses when running at full
//! speed in dedicated mode) and a **memory requirement** (fraction of a
//! node's memory, a hard constraint). All tasks of a job progress at the
//! same rate and are always given identical CPU fractions.
//!
//! `runtime` is the execution time the job would take on a dedicated
//! cluster with every task given its full CPU need. DFRS algorithms are
//! **non-clairvoyant** and must never read it; it exists so the simulator
//! can decide when jobs finish and so the clairvoyant batch baseline
//! (`EASY`) can use perfect estimates, exactly as in the paper's
//! methodology. Access is funneled through [`JobSpec::oracle_runtime`] to
//! make the clairvoyance grep-able.

use crate::approx;
use crate::error::CoreError;
use crate::ids::JobId;
use crate::resources::ResourceVec;

/// An immutable job request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Dense identifier within the trace (submission order).
    pub id: JobId,
    /// Submission time, seconds from trace start.
    pub submit_time: f64,
    /// Number of parallel tasks (≥ 1); one VM instance per task.
    pub tasks: u32,
    /// Per-task CPU need, fraction of one node's CPU in `(0, 1]`.
    pub cpu_need: f64,
    /// Per-task memory requirement, fraction of one node's memory in `(0, 1]`.
    pub mem_req: f64,
    /// Per-task GPU need, fraction of one node's GPU capacity in
    /// `[0, 1]`. Zero (the default — every constructor that predates the
    /// resource-vector model) means "no GPU demand" and reproduces the
    /// paper's two-resource model exactly. Like CPU, GPU is *fluid*:
    /// the allocation scales with the yield.
    pub gpu_need: f64,
    /// Dedicated-mode execution time in seconds (> 0). Oracle data — see
    /// the module docs.
    runtime: f64,
}

impl JobSpec {
    /// Validate and build a job spec.
    ///
    /// # Errors
    /// Returns [`CoreError`] if `tasks == 0`, a fraction is outside
    /// `(0, 1]`, a time is negative, or `runtime` is non-positive.
    pub fn new(
        id: JobId,
        submit_time: f64,
        tasks: u32,
        cpu_need: f64,
        mem_req: f64,
        runtime: f64,
    ) -> Result<Self, CoreError> {
        if tasks == 0 {
            return Err(CoreError::ZeroCount { what: "tasks" });
        }
        if !cpu_need.is_finite() || cpu_need <= 0.0 || !approx::le(cpu_need, 1.0) {
            return Err(CoreError::FractionOutOfRange {
                what: "cpu_need",
                value: cpu_need,
            });
        }
        if !mem_req.is_finite() || mem_req <= 0.0 || !approx::le(mem_req, 1.0) {
            return Err(CoreError::FractionOutOfRange {
                what: "mem_req",
                value: mem_req,
            });
        }
        if !submit_time.is_finite() || submit_time < 0.0 {
            return Err(CoreError::NonPositive {
                what: "submit_time",
                value: submit_time,
            });
        }
        if !runtime.is_finite() || runtime <= 0.0 {
            return Err(CoreError::NonPositive {
                what: "runtime",
                value: runtime,
            });
        }
        Ok(JobSpec {
            id,
            submit_time,
            tasks,
            cpu_need: cpu_need.min(1.0),
            mem_req: mem_req.min(1.0),
            gpu_need: 0.0,
            runtime,
        })
    }

    /// This job with a per-task GPU need attached (fraction of one
    /// node's GPU capacity in `[0, 1]`; zero removes the demand).
    ///
    /// # Errors
    /// Returns [`CoreError::FractionOutOfRange`] when `gpu_need` is
    /// negative, above 1, or not finite.
    pub fn with_gpu(mut self, gpu_need: f64) -> Result<Self, CoreError> {
        if !gpu_need.is_finite() || gpu_need < 0.0 || !approx::le(gpu_need, 1.0) {
            return Err(CoreError::FractionOutOfRange {
                what: "gpu_need",
                value: gpu_need,
            });
        }
        self.gpu_need = gpu_need.min(1.0);
        Ok(self)
    }

    /// Per-task demand across every modeled resource dimension.
    #[inline]
    pub fn resources(&self) -> ResourceVec {
        ResourceVec::new(self.cpu_need, self.mem_req, self.gpu_need)
    }

    /// The job's dominant *fluid* demand — `max(cpu_need, gpu_need)`,
    /// the denominator of the DRF dominant-share objective.
    #[inline]
    pub fn dominant_fluid_need(&self) -> f64 {
        self.resources().dominant_fluid()
    }

    /// The dedicated-mode execution time. **Clairvoyant accessor**: only
    /// the simulation engine (to detect completion) and the batch
    /// baselines (perfect estimates for EASY) may call this; DFRS
    /// algorithms must not.
    #[inline]
    pub fn oracle_runtime(&self) -> f64 {
        self.runtime
    }

    /// Total CPU need summed over tasks — the quantity the average-yield
    /// improvement heuristic sorts by (Section III-A).
    #[inline]
    pub fn total_cpu_need(&self) -> f64 {
        self.cpu_need * self.tasks as f64
    }

    /// Total memory footprint in node-memory units (e.g. `2.5` means two
    /// and a half nodes' worth of memory).
    #[inline]
    pub fn total_mem(&self) -> f64 {
        self.mem_req * self.tasks as f64
    }

    /// Total work in CPU-need × seconds — used for offered-load
    /// computations: `tasks × runtime` node-seconds under the integral
    /// batch model.
    #[inline]
    pub fn node_seconds(&self) -> f64 {
        self.tasks as f64 * self.runtime
    }

    /// Whether this job could ever run on a cluster of `nodes` nodes under
    /// the *batch* model (one task per node, exclusive).
    #[inline]
    pub fn fits_batch(&self, nodes: u32) -> bool {
        self.tasks <= nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_job() -> JobSpec {
        JobSpec::new(JobId(0), 10.0, 4, 0.25, 0.1, 3600.0).unwrap()
    }

    #[test]
    fn valid_job_builds() {
        let j = ok_job();
        assert_eq!(j.tasks, 4);
        assert_eq!(j.oracle_runtime(), 3600.0);
    }

    #[test]
    fn zero_tasks_rejected() {
        assert!(matches!(
            JobSpec::new(JobId(0), 0.0, 0, 0.5, 0.5, 1.0),
            Err(CoreError::ZeroCount { .. })
        ));
    }

    #[test]
    fn cpu_need_out_of_range_rejected() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                JobSpec::new(JobId(0), 0.0, 1, bad, 0.5, 1.0).is_err(),
                "cpu {bad}"
            );
        }
    }

    #[test]
    fn mem_req_out_of_range_rejected() {
        for bad in [0.0, -0.1, 1.01, f64::NAN] {
            assert!(
                JobSpec::new(JobId(0), 0.0, 1, 0.5, bad, 1.0).is_err(),
                "mem {bad}"
            );
        }
    }

    #[test]
    fn negative_submit_time_rejected() {
        assert!(JobSpec::new(JobId(0), -1.0, 1, 0.5, 0.5, 1.0).is_err());
    }

    #[test]
    fn non_positive_runtime_rejected() {
        assert!(JobSpec::new(JobId(0), 0.0, 1, 0.5, 0.5, 0.0).is_err());
        assert!(JobSpec::new(JobId(0), 0.0, 1, 0.5, 0.5, -3.0).is_err());
    }

    #[test]
    fn cpu_need_exactly_one_is_allowed() {
        let j = JobSpec::new(JobId(1), 0.0, 2, 1.0, 1.0, 60.0).unwrap();
        assert_eq!(j.cpu_need, 1.0);
        assert_eq!(j.mem_req, 1.0);
    }

    #[test]
    fn totals_scale_with_tasks() {
        let j = ok_job();
        assert!((j.total_cpu_need() - 1.0).abs() < 1e-12);
        assert!((j.total_mem() - 0.4).abs() < 1e-12);
        assert!((j.node_seconds() - 4.0 * 3600.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_defaults_to_zero_and_validates() {
        let j = ok_job();
        assert_eq!(j.gpu_need, 0.0);
        let g = j.with_gpu(0.75).unwrap();
        assert_eq!(g.gpu_need, 0.75);
        assert_eq!(g.resources().0, [0.25, 0.1, 0.75]);
        assert_eq!(g.dominant_fluid_need(), 0.75);
        assert_eq!(j.dominant_fluid_need(), 0.25, "no GPU: CPU dominates");
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(ok_job().with_gpu(bad).is_err(), "gpu {bad}");
        }
        assert_eq!(ok_job().with_gpu(0.0).unwrap().gpu_need, 0.0);
    }

    #[test]
    fn fits_batch_boundary() {
        let j = JobSpec::new(JobId(0), 0.0, 128, 1.0, 0.1, 60.0).unwrap();
        assert!(j.fits_batch(128));
        assert!(!j.fits_batch(127));
    }
}
