//! Numerically stable online statistics.
//!
//! Table I reports average, standard deviation and maximum of degradation
//! factors over hundreds of instances; Table II reports averages and
//! maxima of bandwidth and event rates. [`OnlineStats`] accumulates these
//! in one pass with Welford's algorithm, so experiment runners never need
//! to keep every sample in memory.

/// Single-pass mean / sample-standard-deviation / min / max accumulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator; 0 with fewer than two
    /// observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0).sqrt()
        }
    }

    /// Population standard deviation (n denominator).
    pub fn std_dev_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0).sqrt()
        }
    }

    /// Smallest observation (+∞ when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean (0 with fewer than two observations).
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Approximate 95 % confidence half-width of the mean
    /// (normal-approximation `1.96 × SEM`; experiment tables report it
    /// alongside averages so readers can judge instance-count noise).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var.sqrt())
    }

    #[test]
    fn matches_naive_formulas() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s: OnlineStats = xs.iter().copied().collect();
        let (mean, sd) = naive(&xs);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.std_dev() - sd).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        let mut s1 = OnlineStats::new();
        s1.push(42.0);
        assert_eq!(s1.mean(), 42.0);
        assert_eq!(s1.std_dev(), 0.0);
        assert_eq!(s1.min(), 42.0);
        assert_eq!(s1.max(), 42.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..37].iter().copied().collect();
        let b: OnlineStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.min(), whole.min());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Catastrophic cancellation check: tiny variance on a huge mean.
        let base = 1e9;
        let s: OnlineStats = (0..1000).map(|i| base + (i % 2) as f64).collect();
        assert!((s.std_dev() - 0.50025).abs() < 1e-3);
    }
}

#[cfg(test)]
mod ci_tests {
    use super::*;

    #[test]
    fn std_error_shrinks_with_sample_size() {
        let small: OnlineStats = (0..10).map(|i| (i % 3) as f64).collect();
        let large: OnlineStats = (0..1000).map(|i| (i % 3) as f64).collect();
        assert!(large.std_error() < small.std_error());
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn ci_is_zero_for_tiny_samples() {
        let mut s = OnlineStats::new();
        assert_eq!(s.ci95_half_width(), 0.0);
        s.push(5.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_covers_known_mean() {
        // Uniform-ish data with known mean 49.5 over 0..100.
        let s: OnlineStats = (0..100).map(|i| i as f64).collect();
        let half = s.ci95_half_width();
        assert!(half > 0.0);
        assert!((s.mean() - 49.5).abs() < half + 1e-9);
    }
}
