//! The bounded-stretch metric (Section II-B2).
//!
//! The *stretch* (slowdown) of a job is its turn-around time divided by
//! the turn-around time it would have had alone on the cluster (= its
//! dedicated runtime, assuming the cluster is large enough). Real
//! workloads contain many near-instant jobs that would dominate a max
//! metric, so the paper uses the **bounded** variant: turn-around times
//! are clamped up to a 30-second threshold. We clamp the dedicated time by
//! the same threshold so that an unimpeded short job has stretch exactly 1
//! (without this, a 1-second job running alone would score 30, which would
//! contradict "a value of 1 means the algorithm is the best").

use crate::constants::STRETCH_BOUND_SECS;

/// Bounded stretch of a single job.
///
/// * `turnaround` — completion time − submit time (seconds, ≥ 0);
/// * `dedicated` — runtime on a dedicated cluster (seconds, > 0).
///
/// Values below 1 are possible only through clamping artifacts and are
/// truncated to 1 (a job cannot be *faster* than dedicated mode).
#[inline]
pub fn bounded_stretch(turnaround: f64, dedicated: f64) -> f64 {
    debug_assert!(turnaround >= 0.0, "negative turnaround {turnaround}");
    debug_assert!(dedicated > 0.0, "non-positive dedicated time {dedicated}");
    let num = turnaround.max(STRETCH_BOUND_SECS);
    let den = dedicated.max(STRETCH_BOUND_SECS);
    (num / den).max(1.0)
}

/// Degradation factor of one algorithm on one instance: the ratio of its
/// max stretch to the best (lowest) max stretch achieved by any algorithm
/// on the same instance (Section V). 1.0 means "best on this instance".
#[inline]
pub fn degradation_factor(max_stretch: f64, best_max_stretch: f64) -> f64 {
    debug_assert!(best_max_stretch >= 1.0);
    debug_assert!(max_stretch + 1e-9 >= best_max_stretch);
    max_stretch / best_max_stretch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_job_stretch_is_plain_ratio() {
        // 2h dedicated, 4h turnaround -> stretch 2 (the paper's example).
        assert!((bounded_stretch(4.0 * 3600.0, 2.0 * 3600.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn short_unimpeded_job_has_stretch_one() {
        assert_eq!(bounded_stretch(1.0, 1.0), 1.0);
        assert_eq!(bounded_stretch(29.0, 29.0), 1.0);
    }

    #[test]
    fn short_job_waiting_counts_against_the_bound() {
        // 1 s job that waited 59 s: bounded turnaround 60, bounded dedicated 30.
        assert!((bounded_stretch(60.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bound_kicks_in_exactly_at_threshold() {
        assert_eq!(bounded_stretch(30.0, 30.0), 1.0);
        assert!((bounded_stretch(31.0, 30.0) - 31.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn never_below_one() {
        // Turnaround slightly under dedicated can arise from clamping.
        assert_eq!(bounded_stretch(10.0, 40.0), 1.0);
    }

    #[test]
    fn degradation_of_best_is_one() {
        assert_eq!(degradation_factor(5.0, 5.0), 1.0);
        assert!((degradation_factor(50.0, 5.0) - 10.0).abs() < 1e-12);
    }
}
