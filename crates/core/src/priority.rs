//! The pause/resume priority function of Section III-A.
//!
//! ```text
//! priority = max(30, flow_time) / virtual_time²
//! ```
//!
//! * *flow time* — seconds since the job was submitted;
//! * *virtual time* — the integral of the job's yield since submission
//!   (the "subjective execution time" it has experienced).
//!
//! Jobs are considered for **pausing in increasing** order of priority and
//! for **resuming in decreasing** order. A job with zero virtual time has
//! infinite priority (it has never run, so it must never be paused in
//! favor of one that has). The flow time in the numerator guarantees every
//! paused job eventually gets resumed (no starvation); the square in the
//! denominator biases toward short-running jobs — the paper reports that
//! removing it is markedly worse.

use std::cmp::Ordering;

use crate::constants::PRIORITY_FLOW_FLOOR_SECS;
use crate::ids::JobId;

/// A job's scheduling priority: either a finite positive value or
/// infinite (never-run jobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Priority {
    /// `max(30, flow) / vt²` for a job with positive virtual time.
    Finite(f64),
    /// Job has never accrued virtual time.
    Infinite,
}

impl Priority {
    /// Compute the priority of a job at time `now`.
    ///
    /// `submit_time` is the job's submission time and `virtual_time` its
    /// accrued virtual time, both in seconds. Callers must ensure
    /// `now >= submit_time`.
    pub fn compute(now: f64, submit_time: f64, virtual_time: f64) -> Priority {
        Priority::compute_with_exponent(now, submit_time, virtual_time, 2.0)
    }

    /// The priority with a configurable virtual-time exponent:
    /// `max(30, flow) / vt^exponent`. The paper uses exponent 2 and
    /// reports that exponent 1 is markedly worse; this generalization
    /// exists for that ablation (DESIGN.md §6).
    pub fn compute_with_exponent(
        now: f64,
        submit_time: f64,
        virtual_time: f64,
        exponent: f64,
    ) -> Priority {
        debug_assert!(
            now + 1e-9 >= submit_time,
            "priority queried before submission"
        );
        debug_assert!(virtual_time >= 0.0);
        debug_assert!(exponent > 0.0);
        if virtual_time <= 0.0 {
            return Priority::Infinite;
        }
        let flow = (now - submit_time).max(0.0).max(PRIORITY_FLOW_FLOOR_SECS);
        Priority::Finite(flow / virtual_time.powf(exponent))
    }

    /// True when infinite.
    #[inline]
    pub fn is_infinite(&self) -> bool {
        matches!(self, Priority::Infinite)
    }
}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp_total(other))
    }
}

impl Priority {
    /// Total order: any finite value < infinite; finite values compare
    /// numerically (`total_cmp`, so no NaN surprises).
    pub fn cmp_total(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Priority::Infinite, Priority::Infinite) => Ordering::Equal,
            (Priority::Infinite, Priority::Finite(_)) => Ordering::Greater,
            (Priority::Finite(_), Priority::Infinite) => Ordering::Less,
            (Priority::Finite(a), Priority::Finite(b)) => a.total_cmp(b),
        }
    }
}

/// A fully ordered priority key for deterministic scheduling decisions.
///
/// Equal priority values are broken by submission time (earlier submission
/// = higher priority, i.e. resumed first / paused last) and finally by job
/// id, so sorting is a total order and simulations are reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityKey {
    /// The priority value.
    pub priority: Priority,
    /// Submission time of the job.
    pub submit_time: f64,
    /// The job, as the final tie-break.
    pub id: JobId,
}

impl PriorityKey {
    /// Build the key for a job.
    pub fn new(now: f64, submit_time: f64, virtual_time: f64, id: JobId) -> Self {
        PriorityKey {
            priority: Priority::compute(now, submit_time, virtual_time),
            submit_time,
            id,
        }
    }

    /// Key under a custom virtual-time exponent (ablation).
    pub fn with_exponent(
        now: f64,
        submit_time: f64,
        virtual_time: f64,
        id: JobId,
        exponent: f64,
    ) -> Self {
        PriorityKey {
            priority: Priority::compute_with_exponent(now, submit_time, virtual_time, exponent),
            submit_time,
            id,
        }
    }
}

impl Eq for PriorityKey {}

impl PartialOrd for PriorityKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PriorityKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ascending order = increasing priority (pause candidates first).
        self.priority
            .cmp_total(&other.priority)
            // Later submission = lower priority on ties.
            .then_with(|| other.submit_time.total_cmp(&self.submit_time))
            .then_with(|| other.id.cmp(&self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_run_job_is_infinite() {
        assert!(Priority::compute(100.0, 50.0, 0.0).is_infinite());
    }

    #[test]
    fn paper_example_virtual_time() {
        // 10 s at yield 1.0, 2 min paused, 30 s at yield 0.5 -> vt = 25 s.
        // At that point flow = 160 s, priority = 160 / 625.
        let p = Priority::compute(160.0, 0.0, 25.0);
        match p {
            Priority::Finite(v) => assert!((v - 160.0 / 625.0).abs() < 1e-12),
            Priority::Infinite => panic!("expected finite"),
        }
    }

    #[test]
    fn flow_floor_protects_young_jobs() {
        // A job 1 s after submission uses flow = 30, not 1.
        let p = Priority::compute(1.0, 0.0, 1.0);
        match p {
            Priority::Finite(v) => assert!((v - 30.0).abs() < 1e-12),
            Priority::Infinite => panic!(),
        }
    }

    #[test]
    fn more_virtual_time_means_lower_priority() {
        let young = Priority::compute(1000.0, 0.0, 10.0);
        let old = Priority::compute(1000.0, 0.0, 100.0);
        assert_eq!(old.cmp_total(&young), Ordering::Less);
    }

    #[test]
    fn longer_wait_raises_priority() {
        let waited = Priority::compute(5000.0, 0.0, 50.0);
        let fresh = Priority::compute(1000.0, 900.0, 50.0);
        assert_eq!(waited.cmp_total(&fresh), Ordering::Greater);
    }

    #[test]
    fn infinite_dominates() {
        let inf = Priority::Infinite;
        let fin = Priority::Finite(1e30);
        assert_eq!(inf.cmp_total(&fin), Ordering::Greater);
        assert_eq!(fin.cmp_total(&inf), Ordering::Less);
        assert_eq!(inf.cmp_total(&Priority::Infinite), Ordering::Equal);
    }

    #[test]
    fn key_ties_broken_by_submission_then_id() {
        // Two never-run jobs: the earlier-submitted one has the *greater*
        // key (resumed first when iterating in decreasing order).
        let a = PriorityKey::new(100.0, 10.0, 0.0, JobId(1));
        let b = PriorityKey::new(100.0, 20.0, 0.0, JobId(2));
        assert!(a > b);
        // Same submit: lower id wins (greater key).
        let c = PriorityKey::new(100.0, 10.0, 0.0, JobId(3));
        assert!(a > c);
    }

    #[test]
    fn key_sort_is_deterministic_total_order() {
        let mut keys = [
            PriorityKey::new(500.0, 0.0, 100.0, JobId(0)),
            PriorityKey::new(500.0, 0.0, 0.0, JobId(1)),
            PriorityKey::new(500.0, 100.0, 5.0, JobId(2)),
            PriorityKey::new(500.0, 100.0, 5.0, JobId(3)),
        ];
        keys.sort();
        // Ascending = pause order: long-run low-priority jobs first,
        // infinite-priority last.
        assert_eq!(keys.last().unwrap().id, JobId(1));
        let pos2 = keys.iter().position(|k| k.id == JobId(2)).unwrap();
        let pos3 = keys.iter().position(|k| k.id == JobId(3)).unwrap();
        assert!(pos2 > pos3, "lower id = higher priority on exact ties");
    }
}
