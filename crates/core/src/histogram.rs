//! Log-bucketed histogram for heavy-tailed metrics.
//!
//! Stretch and degradation values span four orders of magnitude
//! (1 … >1000), so experiments summarize their distributions with
//! logarithmically spaced buckets and derived quantiles. Buckets are
//! `[lo·r^k, lo·r^(k+1))` with a configurable ratio; values below `lo`
//! land in bucket 0, values above the top in the last bucket.

/// Fixed log-spaced histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl LogHistogram {
    /// Histogram from `lo` with `buckets` buckets growing by `ratio`.
    ///
    /// Panics on invalid parameters (programmer constants).
    pub fn new(lo: f64, ratio: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && ratio > 1.0 && buckets >= 1);
        LogHistogram {
            lo,
            ratio,
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
        }
    }

    /// Suitable default for bounded stretches: 1.0 … ~10⁴ in 40 buckets
    /// (ratio ≈ 1.26, i.e. 10 buckets per decade).
    pub fn for_stretch() -> Self {
        LogHistogram::new(1.0, 10f64.powf(0.1), 40)
    }

    /// Bucket index of a value.
    fn bucket_of(&self, x: f64) -> usize {
        if x < self.lo {
            return 0;
        }
        let k = (x / self.lo).ln() / self.ratio.ln();
        (k.floor() as usize).min(self.counts.len() - 1)
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite() && x >= 0.0);
        let b = self.bucket_of(x);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += x;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of all observations (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile (upper edge of the bucket containing the
    /// q-th observation). `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.lo * self.ratio.powi(i as i32 + 1);
            }
        }
        self.lo * self.ratio.powi(self.counts.len() as i32)
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.lo, other.lo);
        assert_eq!(self.ratio, other.ratio);
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// `(bucket_lower_edge, count)` pairs for non-empty buckets.
    pub fn nonempty_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.lo * self.ratio.powi(i as i32), c))
            .collect()
    }
}

impl Extend<f64> for LogHistogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_decades() {
        let mut h = LogHistogram::for_stretch();
        for x in [1.0, 2.0, 10.0, 100.0, 5_000.0, 1e9] {
            h.push(x);
        }
        assert_eq!(h.count(), 6);
        // The 1e9 outlier is clamped into the last bucket, not lost.
        assert_eq!(h.nonempty_buckets().iter().map(|(_, c)| c).sum::<u64>(), 6);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LogHistogram::for_stretch();
        for i in 1..=1000 {
            h.push(i as f64 / 10.0); // 0.1 .. 100, median 50.05
        }
        let med = h.quantile(0.5);
        assert!((40.0..80.0).contains(&med), "median approx {med}");
        assert!(h.quantile(1.0) >= 100.0);
        assert!(h.quantile(0.0) >= 1.0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::for_stretch();
        h.extend([1.0, 3.0, 5.0]);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::for_stretch();
        a.extend([1.0, 10.0]);
        let mut b = LogHistogram::for_stretch();
        b.extend([100.0]);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 37.0).abs() < 1e-12);
    }

    #[test]
    fn below_range_clamps_to_first_bucket() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        h.push(0.01);
        assert_eq!(h.nonempty_buckets()[0].0, 1.0);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_geometry() {
        let mut a = LogHistogram::new(1.0, 2.0, 4);
        let b = LogHistogram::new(1.0, 3.0, 4);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = LogHistogram::for_stretch();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.nonempty_buckets().is_empty());
    }
}
