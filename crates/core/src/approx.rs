//! Tolerant floating-point comparisons.
//!
//! The simulator integrates yields over time and the packer sums many
//! small fractions; both accumulate rounding error. Every capacity check
//! in the workspace goes through these helpers so the tolerance is uniform
//! and auditable.

/// Absolute tolerance used for resource-capacity comparisons.
///
/// Resource fractions are O(1) and at most a few hundred terms are summed
/// per node, so 1e-9 is comfortably above accumulated f64 error while
/// remaining far below the paper's own 0.01 yield-search accuracy.
pub const EPS: f64 = 1e-9;

/// `a <= b`, tolerating `EPS` of overshoot.
#[inline]
pub fn le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a >= b`, tolerating `EPS` of undershoot.
#[inline]
pub fn ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a == b` within `EPS`.
#[inline]
pub fn eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Strictly positive beyond tolerance.
#[inline]
pub fn pos(a: f64) -> bool {
    a > EPS
}

/// Clamp a value into `[lo, hi]`, first snapping values within `EPS` of a
/// bound onto the bound (useful after arithmetic that should land exactly
/// on 0 or 1).
#[inline]
pub fn clamp_snap(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    if (x - lo).abs() <= EPS {
        lo
    } else if (x - hi).abs() <= EPS {
        hi
    } else {
        x.clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_tolerates_tiny_overshoot() {
        assert!(le(1.0 + 1e-12, 1.0));
        assert!(!le(1.0 + 1e-6, 1.0));
    }

    #[test]
    fn ge_tolerates_tiny_undershoot() {
        assert!(ge(1.0 - 1e-12, 1.0));
        assert!(!ge(0.9999, 1.0));
    }

    #[test]
    fn eq_is_symmetric() {
        assert!(eq(0.3, 0.1 + 0.2));
        assert!(eq(0.1 + 0.2, 0.3));
        assert!(!eq(0.3, 0.301));
    }

    #[test]
    fn pos_rejects_noise() {
        assert!(!pos(1e-12));
        assert!(pos(1e-6));
    }

    #[test]
    fn clamp_snap_snaps_to_bounds() {
        assert_eq!(clamp_snap(1.0 + 1e-12, 0.0, 1.0), 1.0);
        assert_eq!(clamp_snap(-1e-12, 0.0, 1.0), 0.0);
        assert_eq!(clamp_snap(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clamp_snap(2.0, 0.0, 1.0), 1.0);
    }
}
