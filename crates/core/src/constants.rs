//! The paper's fixed parameters, collected in one place so every crate
//! agrees on them and tests can reference them by name.

/// Threshold (seconds) of the *bounded* stretch: turn-around times below
/// this are clamped up to it, which stops trivially short jobs from
/// dominating the max-stretch metric (Section II-B2 of the paper).
pub const STRETCH_BOUND_SECS: f64 = 30.0;

/// The same 30 s bound reused in the numerator of the pause/resume
/// priority function (Section III-A), ensuring a job is never eligible for
/// pausing immediately after it starts.
pub const PRIORITY_FLOW_FLOOR_SECS: f64 = STRETCH_BOUND_SECS;

/// Cap of the bounded exponential backoff used by `GREEDY` when postponing
/// a job: the retry delay is `min(2^12, 2^count)` seconds.
pub const BACKOFF_CAP_SECS: f64 = 4096.0; // 2^12

/// Wall-clock cost (seconds) of one rescheduling operation (pause or
/// migration) in the pessimistic evaluation setting — "5 minutes of wall
/// clock time" (Section IV-A). The optimistic setting uses 0.
pub const RESCHEDULING_PENALTY_SECS: f64 = 300.0;

/// Scheduling period (seconds) of the periodic algorithms
/// (`DYNMCB8-PER`, `DYNMCB8-ASAP-PER`, `DYNMCB8-STRETCH-PER`): all the
/// paper's results use T = 600.
pub const DEFAULT_PERIOD_SECS: f64 = 600.0;

/// Accuracy threshold of the binary search on the yield (Section III-B).
pub const YIELD_SEARCH_ACCURACY: f64 = 0.01;

/// Floor given to a job whose computed yield would be non-positive in
/// `DYNMCB8-STRETCH-PER`, "so that no job consumes memory without making
/// progress" (Section III-B).
pub const MIN_STRETCH_PER_YIELD: f64 = 0.01;

/// Number of compute nodes of the synthetic-trace cluster (Section IV-C).
pub const SYNTHETIC_CLUSTER_NODES: u32 = 128;

/// Cores per node assumed for the synthetic traces ("we arbitrarily assume
/// quad-core nodes"), which makes a sequential CPU-bound task use 25 % of
/// a node's CPU resource.
pub const SYNTHETIC_CORES_PER_NODE: u32 = 4;

/// Node memory (GB) used for Table II bandwidth accounting. The paper's
/// footnote 1 sizes a 128-task job at 1 TB total, i.e. 8 GB per node.
pub const SYNTHETIC_NODE_MEMORY_GB: f64 = 8.0;

/// HPC2N cluster size (Section IV-C): 120 nodes.
pub const HPC2N_CLUSTER_NODES: u32 = 120;

/// HPC2N nodes are dual-core.
pub const HPC2N_CORES_PER_NODE: u32 = 2;

/// HPC2N node memory: 2 GB (Section IV-C).
pub const HPC2N_NODE_MEMORY_GB: f64 = 2.0;

/// Number of jobs per synthetic trace (Section IV-C).
pub const SYNTHETIC_TRACE_JOBS: usize = 1_000;

/// Number of synthetic base traces in the paper's evaluation.
pub const SYNTHETIC_TRACE_COUNT: usize = 100;

/// The offered-load levels of the scaled synthetic traces.
pub const SCALED_LOADS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_cap_is_two_to_the_twelve() {
        assert_eq!(BACKOFF_CAP_SECS, (2.0_f64).powi(12));
    }

    #[test]
    fn period_exceeds_penalty() {
        // Section IV-A: periods shorter than the penalty cause thrashing;
        // the defaults must respect that.
        let (period, penalty) = (DEFAULT_PERIOD_SECS, RESCHEDULING_PENALTY_SECS);
        assert!(period > penalty);
    }

    #[test]
    fn loads_are_increasing_and_in_range() {
        for w in SCALED_LOADS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(SCALED_LOADS.iter().all(|l| (0.0..=1.0).contains(l)));
    }
}
