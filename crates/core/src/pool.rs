//! A persistent worker pool with scoped, deterministic-merge execution.
//!
//! The sharded coordinator used to spawn one OS thread per shard per
//! tick (`std::thread::scope`), which at huge scale means millions of
//! short-lived spawns; the packing searches could not afford even that.
//! This module keeps a small set of **long-lived workers** alive for
//! the whole process and hands them closures over a queue, so a tick
//! fan-out or a speculative search probe costs one enqueue instead of
//! one `clone(2)`.
//!
//! ## Determinism
//!
//! The pool executes closures; it never merges results. Callers write
//! into pre-allocated, index-addressed slots (one `&mut` slot per
//! task, exactly like the `thread::scope` pattern it replaces) and
//! read them back in index order after [`WorkerPool::scope`] returns,
//! so the *schedule* of workers is invisible: outputs are a pure
//! function of the inputs regardless of interleaving. DESIGN.md §14
//! carries the full argument.
//!
//! ## Scoped borrows
//!
//! [`WorkerPool::scope`] mirrors [`std::thread::scope`]: closures may
//! borrow from the caller's stack (`'env`), and the scope joins every
//! submitted task before returning. Internally the closure is
//! lifetime-erased to sit in the shared queue; the join barrier is
//! what makes that sound (no task can outlive the borrows it captured,
//! because `scope` does not return until all tasks ran).
//!
//! ## Nested scopes
//!
//! A task may itself open a scope on the same pool (the sharded tick
//! fan-out runs inner schedulers whose searches submit speculative
//! probes). A waiting scope **helps**: while its tasks are pending it
//! drains the shared queue and runs tasks inline, so the pool cannot
//! deadlock even when every worker is blocked inside a nested wait.
//!
//! ## One-core behavior
//!
//! With one available core the pool spawns **zero** workers and
//! `execute` runs closures inline in submission order — byte-for-byte
//! the serial path, with no threads to coordinate. Callers that want
//! to skip building per-task state entirely can gate on
//! [`WorkerPool::workers`]` >= 2`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased unit of work. Tasks are wrapped in `catch_unwind`
/// before they reach the queue, so running one never unwinds into a
/// worker's loop.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue shared by workers and helping scopes.
struct Queue {
    state: Mutex<QueueState>,
    /// Signaled when a job is pushed, when the pool closes, and when a
    /// scope's last task finishes (so a helping waiter re-checks).
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    /// Lock the queue state, treating a poisoned mutex as usable:
    /// tasks run under `catch_unwind`, so a panic can only poison the
    /// lock between balanced push/pop operations that leave the state
    /// consistent.
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Per-scope join state: how many submitted tasks have not finished,
/// and the first captured panic (re-raised at scope exit).
struct ScopeSync {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A persistent pool of worker threads. See the module docs.
pub struct WorkerPool {
    queue: Arc<Queue>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Upper bound on spawned workers: fan-outs in this workspace are
/// shard- or probe-sized, far below large host core counts.
const MAX_WORKERS: usize = 16;

impl WorkerPool {
    /// A pool with `threads` long-lived workers. `threads <= 1` spawns
    /// no workers at all: with no parallelism to win, `execute` runs
    /// inline and the pool is a zero-thread pass-through.
    pub fn new(threads: usize) -> WorkerPool {
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        });
        let workers = if threads <= 1 { 0 } else { threads };
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("dfrs-pool-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { queue, handles }
    }

    /// A pool sized to the machine: one worker per available core,
    /// capped, and zero workers on a single-core host.
    pub fn sized_for_machine() -> WorkerPool {
        WorkerPool::new(available_threads())
    }

    /// Number of live workers (0 means `execute` runs inline).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `f` with a [`Scope`] whose tasks may borrow from the
    /// caller's stack; returns only after every submitted task ran.
    /// The first panicking task's payload is re-raised here (after the
    /// join barrier), matching `std::thread::scope` semantics.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            sync: Arc::new(ScopeSync {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            env: std::marker::PhantomData,
        };
        let result = f(&scope);
        self.wait(&scope.sync);
        let panic = scope
            .sync
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        result
    }

    /// The join barrier: run queued tasks (ours or anyone's — that is
    /// what makes nested scopes deadlock-free) until this scope's
    /// pending count reaches zero.
    fn wait(&self, sync: &ScopeSync) {
        loop {
            let job = {
                let mut q = self.queue.lock();
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break Some(job);
                    }
                    if sync.pending.load(Ordering::Acquire) == 0 {
                        break None;
                    }
                    // The last-task notification takes the queue lock
                    // before signaling, so this wait cannot miss it.
                    q = self.queue.ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            match job {
                Some(job) => job(),
                None => return,
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.lock().closed = true;
        self.queue.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut q = queue.lock();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.closed {
                    return;
                }
                q = queue.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job();
    }
}

/// Handle for submitting borrowed tasks to a [`WorkerPool`]; created
/// by [`WorkerPool::scope`] and joined before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    sync: Arc<ScopeSync>,
    /// Invariant over `'env`, like `std::thread::scope`'s marker: the
    /// environment lifetime must not be shortened behind the borrows
    /// the tasks captured.
    env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Submit a task. With zero workers it runs inline immediately
    /// (the serial path); otherwise it is queued for the workers and
    /// joined at scope exit. Panics are captured and re-raised by
    /// `scope` after the barrier.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.workers() == 0 {
            f();
            return;
        }
        self.sync.pending.fetch_add(1, Ordering::AcqRel);
        let sync = Arc::clone(&self.sync);
        let queue = Arc::clone(&self.pool.queue);
        let wrapped = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = sync.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            if sync.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake the scope's waiter under the queue lock so the
                // wake cannot race its pending-count check.
                drop(queue.lock());
                queue.ready.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: the queue requires 'static, but every task submitted
        // through this scope is joined by `WorkerPool::scope` before it
        // returns (the `wait` barrier runs until pending == 0), so no
        // task — nor anything it borrows from 'env — outlives the
        // scope body. This is the same argument `std::thread::scope`
        // makes for its own lifetime erasure.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        let mut q = self.pool.queue.lock();
        q.jobs.push_back(job);
        drop(q);
        self.pool.queue.ready.notify_one();
    }
}

/// Worker count a machine-sized pool would use: available parallelism,
/// capped at `MAX_WORKERS` (16), and 0 on a single-core host (see
/// [`WorkerPool::new`]).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_WORKERS)
}

/// The process-wide pool shared by the sharded tick fan-out and the
/// speculative search probes. Initialized on first use, sized by
/// [`available_threads`], and never torn down (workers park on the
/// condvar when idle).
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(WorkerPool::sized_for_machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_worker_pool_runs_inline_in_submission_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 0);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..8 {
                let order = &order;
                s.execute(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(order.into_inner().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_tasks_fill_index_addressed_slots() {
        let pool = WorkerPool::new(4);
        let inputs: Vec<u64> = (0..64).collect();
        let mut out = vec![0u64; inputs.len()];
        pool.scope(|s| {
            for (slot, &x) in out.iter_mut().zip(&inputs) {
                s.execute(move || *slot = x * x);
            }
        });
        assert!(out.iter().zip(&inputs).all(|(&o, &x)| o == x * x));
    }

    #[test]
    fn scope_joins_before_returning() {
        use std::sync::atomic::AtomicU64;
        let pool = WorkerPool::new(3);
        let done = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                s.execute(|| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // More outer tasks than workers, each opening an inner scope:
        // without the helping waiter this configuration deadlocks.
        let pool = WorkerPool::new(2);
        let inputs: Vec<u64> = (0..8).collect();
        let mut out = vec![0u64; inputs.len()];
        pool.scope(|s| {
            for (slot, &x) in out.iter_mut().zip(&inputs) {
                s.execute(move || {
                    let mut inner = [0u64; 3];
                    global_free_scope(&mut inner, x);
                    *slot = inner.iter().sum();
                });
            }
        });
        assert!(out.iter().zip(&inputs).all(|(&o, &x)| o == 3 * x));

        fn global_free_scope(slots: &mut [u64; 3], x: u64) {
            // Re-enter the *global* pool pattern via a local pool would
            // spawn threads; nested scopes must work on the same pool,
            // which the helper in `wait` guarantees. Use the global
            // pool here so the nesting is real when cores allow.
            global().scope(|s| {
                for slot in slots.iter_mut() {
                    s.execute(move || *slot = x);
                }
            });
        }
    }

    #[test]
    fn task_panic_is_reraised_at_scope_exit() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.execute(|| panic!("probe exploded"));
            });
        }));
        let payload = caught.expect_err("the task panic must re-raise");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("probe exploded"), "{msg}");
        // The pool survives a panicking task.
        let mut x = 0;
        pool.scope(|s| s.execute(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn global_pool_matches_machine_sizing() {
        let pool = global();
        let threads = available_threads();
        let expected = if threads <= 1 { 0 } else { threads };
        assert_eq!(pool.workers(), expected);
    }
}
