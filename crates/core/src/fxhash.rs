//! A tiny fixed-seed hasher for internal lookup tables.
//!
//! The standard library's `RandomState` pays SipHash's per-lookup cost
//! to defend against adversarial keys — a non-concern for the
//! scheduler's own id-keyed tables, which sit on per-event hot paths
//! (the sharded coordinator consults its assignment map once per
//! touched job per event). This is the word-folding multiply hash used
//! by the Rust compiler itself (Firefox's "FxHash"): one rotate, one
//! xor, one multiply per word.
//!
//! Unlike `RandomState`, the seed is fixed, so iteration order of an
//! [`FxHashMap`] is reproducible across runs — nothing may *depend* on
//! that order (no deterministic output ever hinges on map iteration),
//! but reproducibility can only help debugging.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the compiler's FxHash (a truncation of π's digits).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. Construct via `Default` (as `HashMap` does).
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.word(n as u64);
    }
}

/// A `HashMap` keyed by the fixed-seed hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by the fixed-seed hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"abcdefghi"), hash(b"abcdefghi"));
        assert_ne!(hash(b"abcdefghi"), hash(b"abcdefghj"));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.remove(&11), Some("eleven"));
        assert!(!m.contains_key(&11));
    }
}
