//! A minimal JSON reader/writer.
//!
//! The build environment has no registry access, so `serde` is not
//! available; this module implements the small slice of JSON the
//! workspace needs — `BENCH_sim.json` emission, the perf regression
//! guard that reads it back, the golden-trace snapshot suites, the
//! engine's snapshot/restore format, and the `dfrs-serve` line
//! protocol. Floats that must round-trip **bit-exactly** (golden
//! metrics, snapshot state) are stored as `"0x<16 hex digits>"` bit
//! strings, not JSON numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep insertion order irrelevant —
/// they are sorted maps, which also makes emitted files diff-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted by key).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// This value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Decode a `"0x…"` bit string written by [`bits`] back to the
    /// exact `f64`.
    pub fn as_bits_f64(&self) -> Option<f64> {
        let s = self.as_str()?.strip_prefix("0x")?;
        u64::from_str_radix(s, 16).ok().map(f64::from_bits)
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Single-line rendering (no trailing newline) for line-delimited
    /// protocols. Objects are sorted maps, so output is diff-stable.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(a) if a.is_empty() => out.push_str("[]"),
            Value::Arr(a) if a.iter().all(is_scalar) => {
                // Scalar-only arrays (e.g. one golden job row) stay on
                // one line so snapshot files diff row-by-row.
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write(out, indent + 1);
                }
                out.push(']');
            }
            Value::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Value::Obj(m) if m.is_empty() => out.push_str("{}"),
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Encode an `f64` as a bit-exact `"0x…"` string value.
pub fn bits(x: f64) -> Value {
    Value::Str(format!("0x{:016x}", x.to_bits()))
}

fn is_scalar(v: &Value) -> bool {
    !matches!(v, Value::Arr(_) | Value::Obj(_))
}

/// Build an object from `(key, value)` pairs.
pub fn obj(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
    Value::Obj(pairs.into_iter().collect())
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no Inf/NaN; bit strings are used where those can
        // occur, so plain numbers degrade to null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed, with a byte offset for context.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected {")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // files; map them to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through intact.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let ch_len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = rest
                        .get(..ch_len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let chunk =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let v = obj([
            ("name".into(), Value::Str("bench".into())),
            (
                "phases".into(),
                Value::Arr(vec![Value::Num(1.5), Value::Num(-3.0), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("nested".into(), obj([("k".into(), Value::Num(42.0))])),
        ]);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn bits_round_trip_exactly() {
        for x in [0.0, -0.0, 1.0 / 3.0, f64::MAX, 2.2250738585072014e-308] {
            let v = bits(x);
            let text = v.pretty();
            let back = parse(&text).unwrap().as_bits_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te µ".into());
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, "x"], "b": {"c": 2.5}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(2.5));
        assert!(v.get("missing").is_none());
        assert!(v.as_obj().is_some());
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        let text = Value::Num(42.0).pretty();
        assert_eq!(text.trim(), "42");
        let text = Value::Num(0.5).pretty();
        assert_eq!(text.trim(), "0.5");
    }
}
