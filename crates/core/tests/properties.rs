//! Property-based tests for the core math.

use dfrs_core::constants::STRETCH_BOUND_SECS;
use dfrs_core::priority::{Priority, PriorityKey};
use dfrs_core::stats::OnlineStats;
use dfrs_core::stretch::bounded_stretch;
use dfrs_core::yield_math;
use dfrs_core::JobId;
use proptest::prelude::*;

proptest! {
    /// Bounded stretch is ≥ 1 and monotone in the turnaround.
    #[test]
    fn stretch_at_least_one_and_monotone(
        ta in 0.0f64..1e8,
        extra in 0.0f64..1e8,
        dedicated in 1e-3f64..1e7,
    ) {
        let s1 = bounded_stretch(ta, dedicated);
        let s2 = bounded_stretch(ta + extra, dedicated);
        prop_assert!(s1 >= 1.0);
        prop_assert!(s2 + 1e-12 >= s1);
    }

    /// Stretch is anti-monotone in the dedicated time.
    #[test]
    fn stretch_antimonotone_in_dedicated(
        ta in 0.0f64..1e8,
        d1 in 1e-3f64..1e7,
        factor in 1.0f64..100.0,
    ) {
        let s1 = bounded_stretch(ta, d1);
        let s2 = bounded_stretch(ta, d1 * factor);
        prop_assert!(s2 <= s1 + 1e-12);
    }

    /// Below the 30 s threshold the clamp makes stretch exactly 1 when the
    /// job ran unimpeded.
    #[test]
    fn short_unimpeded_jobs_score_one(rt in 1e-3f64..30.0) {
        prop_assert_eq!(bounded_stretch(rt, rt), 1.0);
        prop_assert_eq!(bounded_stretch(STRETCH_BOUND_SECS, rt.min(STRETCH_BOUND_SECS)), 1.0);
    }

    /// The priority function is anti-monotone in virtual time and monotone
    /// in waiting time.
    #[test]
    fn priority_monotonicity(
        now in 100.0f64..1e7,
        vt in 1e-3f64..1e6,
        dv in 1e-3f64..1e6,
    ) {
        let p_small_vt = Priority::compute(now, 0.0, vt);
        let p_big_vt = Priority::compute(now, 0.0, vt + dv);
        prop_assert!(p_big_vt.cmp_total(&p_small_vt) != std::cmp::Ordering::Greater);

        let p_later = Priority::compute(now * 2.0, 0.0, vt);
        prop_assert!(p_later.cmp_total(&p_small_vt) != std::cmp::Ordering::Less);
    }

    /// PriorityKey ordering is a total order consistent with equality.
    #[test]
    fn priority_key_total_order(
        entries in prop::collection::vec((0.0f64..1e6, 0.0f64..1e5, 0u32..1000), 2..40),
        now_extra in 1.0f64..1e6,
    ) {
        let now = entries.iter().map(|e| e.0).fold(0.0, f64::max) + now_extra;
        let keys: Vec<PriorityKey> = entries
            .iter()
            .map(|&(submit, vt, id)| PriorityKey::new(now, submit, vt, JobId(id)))
            .collect();
        // Antisymmetry + transitivity smoke: sorting must not panic and
        // must be idempotent.
        let mut sorted = keys.clone();
        sorted.sort();
        let mut resorted = sorted.clone();
        resorted.sort();
        for (a, b) in sorted.iter().zip(resorted.iter()) {
            prop_assert!(a == b);
        }
        // All infinite-priority keys come after all finite ones.
        let first_inf = sorted.iter().position(|k| k.priority.is_infinite());
        if let Some(i) = first_inf {
            prop_assert!(sorted[i..].iter().all(|k| k.priority.is_infinite()));
        }
    }

    /// Welford statistics agree with naive two-pass formulas.
    #[test]
    fn stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let s: OnlineStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let scale = mean.abs().max(var.sqrt()).max(1.0);
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((s.std_dev() - var.sqrt()).abs() / scale < 1e-6);
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
    }

    /// Merging any split of the samples equals processing them in one go.
    #[test]
    fn stats_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        cut in 0usize..100,
    ) {
        let cut = cut.min(xs.len());
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..cut].iter().copied().collect();
        let right: OnlineStats = xs[cut..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.std_dev() - whole.std_dev()).abs() < 1e-7);
    }

    /// The stretch-target yield inversion round-trips through the
    /// recurrence for any feasible target.
    #[test]
    fn stretch_yield_roundtrip(
        flow in 0.0f64..1e6,
        vt in 0.0f64..1e6,
        y in 0.01f64..1.0,
        period in 1.0f64..10_000.0,
    ) {
        let s = yield_math::estimated_stretch_after(flow, vt, y, period);
        let back = yield_math::yield_for_target_stretch(flow, vt, s, period);
        prop_assert!((back - y).abs() < 1e-6, "y={} back={}", y, back);
    }

    /// Equal-share yield always lands in (0, 1] and saturates node CPU
    /// exactly when overloaded.
    #[test]
    fn equal_share_bounds(load in 0.0f64..1e4) {
        let y = yield_math::equal_share_yield(load);
        prop_assert!(y > 0.0 && y <= 1.0);
        if load > 1.0 {
            prop_assert!((y * load - 1.0).abs() < 1e-9);
        }
    }
}
