//! Perf regression guard (`#[ignore]`-gated; the CI bench job runs it
//! right after regenerating `BENCH_sim.json` on the same machine, so
//! the comparison is apples to apples):
//!
//! ```sh
//! cargo run -p dfrs_bench --release              # writes BENCH_sim.json
//! cargo test -p dfrs_bench --release -- --ignored
//! ```
//!
//! Event-loop throughput on the fixed medium Lublin scenario must stay
//! within 1.5× of the recorded value, so a future PR cannot silently
//! give back the engine-overhaul speedup.

use std::time::Instant;

use dfrs_bench::json;
use dfrs_bench::scales::medium_lublin;

/// Allowed slowdown versus the recorded number when measured on the
/// machine that recorded it. Cross-machine runs (CI) widen this via
/// `DFRS_PERF_MAX_REGRESSION`.
const MAX_REGRESSION: f64 = 1.5;

fn max_regression() -> f64 {
    std::env::var("DFRS_PERF_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| *x >= 1.0)
        .unwrap_or(MAX_REGRESSION)
}

fn recorded_events_per_sec() -> f64 {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun `cargo run -p dfrs_bench --release` first",
            path.display()
        )
    });
    let report = json::parse(&text).expect("BENCH_sim.json parses");
    report
        .get("phases")
        .and_then(|p| p.get("event_loop"))
        .and_then(|e| e.get("events_per_sec"))
        .and_then(|v| v.as_f64())
        .expect("BENCH_sim.json records phases.event_loop.events_per_sec")
}

#[test]
#[ignore = "perf guard; run in the CI bench job against the checked-in BENCH_sim.json"]
fn event_loop_throughput_within_recorded_bounds() {
    let max_regression = max_regression();
    let recorded = recorded_events_per_sec();
    assert!(recorded > 0.0, "recorded throughput must be positive");

    // Best of three runs of the exact scenario the bench binary times,
    // so scheduler warm-up and allocator noise don't fail the guard.
    let scenario = medium_lublin();
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let out = scenario.run("greedy-pmtn").expect("builtin spec");
        let wall = start.elapsed().as_secs_f64();
        best = best.max(out.events_processed as f64 / wall);
    }

    assert!(
        best * max_regression >= recorded,
        "event-loop throughput regressed more than {max_regression}x: \
         current best {best:.0} events/s vs recorded {recorded:.0} events/s \
         (medium Lublin, greedy-pmtn). If the slowdown is intentional, \
         regenerate BENCH_sim.json with `cargo run -p dfrs_bench --release`."
    );
}

#[test]
fn bench_report_schema_is_parseable_when_present() {
    // Non-ignored companion: if a BENCH_sim.json is checked in, it must
    // parse and carry the fields the guard relies on.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json");
    if !path.exists() {
        return;
    }
    let recorded = recorded_events_per_sec();
    assert!(recorded.is_finite() && recorded > 0.0);
}
