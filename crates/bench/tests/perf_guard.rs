//! Perf regression guard (`#[ignore]`-gated; the CI bench job runs it
//! right after regenerating `BENCH_sim.json` on the same machine, so
//! the comparison is apples to apples):
//!
//! ```sh
//! cargo run -p dfrs_bench --release              # writes BENCH_sim.json
//! cargo test -p dfrs_bench --release -- --ignored
//! ```
//!
//! Event-loop throughput on the fixed medium Lublin scenario must stay
//! within 1.5× of the recorded value, so a future PR cannot silently
//! give back the engine-overhaul speedup.

use std::time::Instant;

use dfrs_bench::json;
use dfrs_bench::scales::medium_lublin;

/// Allowed slowdown versus the recorded number when measured on the
/// machine that recorded it. Cross-machine runs (CI) widen this via
/// `DFRS_PERF_MAX_REGRESSION`.
const MAX_REGRESSION: f64 = 1.5;

fn max_regression() -> f64 {
    std::env::var("DFRS_PERF_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|x| *x >= 1.0)
        .unwrap_or(MAX_REGRESSION)
}

/// The report under test: `DFRS_BENCH_REPORT` (a path, for CI runs
/// against a freshly generated report) or the checked-in
/// `BENCH_sim.json`.
fn report_path() -> std::path::PathBuf {
    match std::env::var_os("DFRS_BENCH_REPORT") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_sim.json"),
    }
}

fn load_report() -> json::Value {
    let path = report_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun `cargo run -p dfrs_bench --release` first",
            path.display()
        )
    });
    json::parse(&text).expect("bench report parses")
}

fn recorded_events_per_sec() -> f64 {
    load_report()
        .get("phases")
        .and_then(|p| p.get("event_loop"))
        .and_then(|e| e.get("events_per_sec"))
        .and_then(|v| v.as_f64())
        .expect("bench report records phases.event_loop.events_per_sec")
}

#[test]
#[ignore = "perf guard; run in the CI bench job against the checked-in BENCH_sim.json"]
fn event_loop_throughput_within_recorded_bounds() {
    let max_regression = max_regression();
    let recorded = recorded_events_per_sec();
    assert!(recorded > 0.0, "recorded throughput must be positive");

    // Best of three runs of the exact scenario the bench binary times,
    // so scheduler warm-up and allocator noise don't fail the guard.
    let scenario = medium_lublin();
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let out = scenario.run("greedy-pmtn").expect("builtin spec");
        let wall = start.elapsed().as_secs_f64();
        best = best.max(out.events_processed as f64 / wall);
    }

    assert!(
        best * max_regression >= recorded,
        "event-loop throughput regressed more than {max_regression}x: \
         current best {best:.0} events/s vs recorded {recorded:.0} events/s \
         (medium Lublin, greedy-pmtn). If the slowdown is intentional, \
         regenerate BENCH_sim.json with `cargo run -p dfrs_bench --release`."
    );
}

/// The repack phase's warm-vs-cold contract: warm-start repacking must
/// not be slower per event than cold repacking, within the same
/// cross-machine tolerance the throughput guard uses
/// (`DFRS_PERF_MAX_REGRESSION`; CI runs this against the report it just
/// generated via `DFRS_BENCH_REPORT`). Warm-vs-cold is measured on one
/// machine in one process, so the ratio is far more stable than the
/// absolute-throughput guard — the wide tolerance only absorbs CI noise.
#[test]
#[ignore = "perf guard; run in the CI bench job against a bench report"]
fn repack_warm_not_slower_than_cold() {
    let tolerance = max_regression();
    let repack = load_report();
    let repack = repack
        .get("phases")
        .and_then(|p| p.get("repack"))
        .expect("bench report records a repack phase");
    let warm = repack
        .get("warm_us_per_event")
        .and_then(|v| v.as_f64())
        .expect("repack phase records warm_us_per_event");
    let cold = repack
        .get("cold_us_per_event")
        .and_then(|v| v.as_f64())
        .expect("repack phase records cold_us_per_event");
    assert!(
        warm.is_finite() && cold.is_finite() && warm > 0.0 && cold > 0.0,
        "degenerate repack measurements: warm {warm} µs/event, cold {cold} µs/event"
    );
    assert!(
        warm <= cold * tolerance,
        "warm-start repacking is slower than cold: {warm:.1} µs/event vs \
         {cold:.1} µs/event (tolerance {tolerance}x). If the memo's hit rate \
         collapsed, its overhead now exceeds its savings."
    );
}

#[test]
fn bench_report_schema_is_parseable_when_present() {
    // Non-ignored companion: if a BENCH_sim.json is checked in, it must
    // parse and carry the fields the guards rely on.
    if !report_path().exists() {
        return;
    }
    let recorded = recorded_events_per_sec();
    assert!(recorded.is_finite() && recorded > 0.0);
    let report = load_report();
    let repack = report
        .get("phases")
        .and_then(|p| p.get("repack"))
        .expect("checked-in report records a repack phase");
    for field in ["warm_us_per_event", "cold_us_per_event", "warm_speedup"] {
        let v = repack.get(field).and_then(|v| v.as_f64());
        assert!(
            v.is_some_and(|v| v.is_finite() && v > 0.0),
            "repack phase field {field} missing or degenerate: {v:?}"
        );
    }
    let recovery = report
        .get("phases")
        .and_then(|p| p.get("recovery"))
        .expect("checked-in report records a recovery phase");
    for field in [
        "plain_cmds_per_sec",
        "replay_lines_per_sec",
        "replay_wall_secs",
    ] {
        let v = recovery.get(field).and_then(|v| v.as_f64());
        assert!(
            v.is_some_and(|v| v.is_finite() && v > 0.0),
            "recovery phase field {field} missing or degenerate: {v:?}"
        );
    }
    let journaled = recovery
        .get("journaled")
        .expect("recovery phase records per-fsync-policy results");
    for policy in ["always", "interval_64", "never"] {
        let ratio = journaled
            .get(policy)
            .and_then(|p| p.get("overhead_ratio"))
            .and_then(|v| v.as_f64());
        assert!(
            ratio.is_some_and(|r| r.is_finite() && r > 0.0),
            "recovery phase fsync policy {policy} missing or degenerate: {ratio:?}"
        );
    }
    let pool = report
        .get("phases")
        .and_then(|p| p.get("pool"))
        .expect("checked-in report records a pool phase");
    for field in [
        "scoped_us_per_tick",
        "pool_us_per_tick",
        "per_record_cmds_per_sec",
        "group_commit_cmds_per_sec",
    ] {
        let v = pool.get(field).and_then(|v| v.as_f64());
        assert!(
            v.is_some_and(|v| v.is_finite() && v > 0.0),
            "pool phase field {field} missing or degenerate: {v:?}"
        );
    }
}

/// A parallel speedup is a claim about threads that actually ran: a
/// report generated on a single-hardware-thread host must not record
/// one (two back-to-back serial runs differ only by noise), and a
/// multi-thread report must record a finite, positive ratio.
#[test]
fn campaign_speedup_claims_are_honest() {
    if !report_path().exists() {
        return;
    }
    let report = load_report();
    let campaign = report
        .get("phases")
        .and_then(|p| p.get("campaign"))
        .expect("checked-in report records a campaign phase");
    let threads = campaign
        .get("parallel_threads")
        .and_then(|v| v.as_f64())
        .expect("campaign phase records parallel_threads");
    assert!(
        threads >= 1.0 && threads.fract() == 0.0,
        "campaign parallel_threads degenerate: {threads}"
    );
    let speedup = campaign.get("parallel_speedup").and_then(|v| v.as_f64());
    if threads < 2.0 {
        assert!(
            speedup.is_none(),
            "campaign claims a parallel speedup ({speedup:?}) measured on a \
             single thread — that number is serial-vs-serial noise"
        );
    } else {
        assert!(
            speedup.is_some_and(|s| s.is_finite() && s > 0.0),
            "campaign ran {threads} threads but records no usable \
             parallel_speedup: {speedup:?}"
        );
    }
}
