//! End-to-end simulation benches over the three workload families
//! (Lublin, Downey, HPC2N-like) at the three fixed scales — the
//! macro-level view of the engine + scheduler hot path that the
//! `BENCH_sim.json` phases summarize — plus warm-vs-cold repack pairs
//! that make the cross-event warm-start win visible directly in
//! `cargo bench` output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfrs_bench::scales::repack_lublin;
use dfrs_bench::Scale;
use std::hint::black_box;

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenarios");
    g.sample_size(3);
    for scale in [Scale::Small, Scale::Medium, Scale::Large] {
        let scenarios = scale.scenarios();
        for scenario in &scenarios {
            for spec in ["greedy-pmtn", "dynmcb8-per"] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{}/{spec}", scenario.label), scale.tag()),
                    scenario,
                    |b, scenario| b.iter(|| black_box(scenario.run(spec).expect("builtin spec"))),
                );
            }
        }
    }
    g.finish();
}

/// Warm vs cold pairs: the same pressure trace under each `DynMCB8*`
/// scheduler with the repack memo on and off. Outcomes are
/// byte-identical (the repack bench phase asserts it); only the wall
/// time differs.
fn bench_repack_warm_vs_cold(c: &mut Criterion) {
    let scenario = repack_lublin(Scale::Small);
    let cases = dfrs_bench::scales::repack_cases();
    let mut g = c.benchmark_group("repack");
    g.sample_size(5);
    for (key, build) in cases {
        for (mode, warm) in [("cold", false), ("warm", true)] {
            g.bench_with_input(BenchmarkId::new(key, mode), &scenario, |b, scenario| {
                b.iter(|| {
                    // A fresh scheduler per iteration: the memo warms
                    // up within the run, as it does in a campaign.
                    let mut sched = build(warm);
                    black_box(dfrs_sim::simulate(
                        scenario.cluster,
                        &scenario.jobs,
                        sched.as_mut(),
                        &scenario.config,
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scenarios, bench_repack_warm_vs_cold);
criterion_main!(benches);
