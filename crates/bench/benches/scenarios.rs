//! End-to-end simulation benches over the three workload families
//! (Lublin, Downey, HPC2N-like) at the three fixed scales — the
//! macro-level view of the engine + scheduler hot path that the
//! `BENCH_sim.json` phases summarize.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfrs_bench::Scale;
use std::hint::black_box;

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenarios");
    g.sample_size(3);
    for scale in [Scale::Small, Scale::Medium, Scale::Large] {
        let scenarios = scale.scenarios();
        for scenario in &scenarios {
            for spec in ["greedy-pmtn", "dynmcb8-per"] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{}/{spec}", scenario.label), scale.tag()),
                    scenario,
                    |b, scenario| b.iter(|| black_box(scenario.run(spec).expect("builtin spec"))),
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
