//! Tables I and II as Criterion benches: miniature versions of the two
//! table-regeneration pipelines (the recorded full-scale values live in
//! EXPERIMENTS.md; the binaries in `dfrs-experiments` regenerate them).

use criterion::{criterion_group, criterion_main, Criterion};
use dfrs_experiments::{table1, table2};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    let cfg = table1::Table1Config {
        seeds: 1,
        jobs: 50,
        loads: vec![0.5],
        penalty: 300.0,
        seed0: 2,
        threads: 1,
        weeks: 1,
        hpc2n_jobs_per_week: 80.0,
        swf_text: None,
    };
    g.bench_function("three_families_mini", |b| {
        b.iter(|| black_box(table1::run(black_box(&cfg))))
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("high_load_costs_mini", |b| {
        b.iter(|| black_box(table2::run(1, 50, &[0.8], 300.0, 4, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_table1, bench_table2);
criterion_main!(benches);
