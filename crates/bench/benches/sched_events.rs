//! Per-algorithm simulation throughput: one fixed trace through each of
//! the nine schedulers (plus the two extensions). Useful to see where
//! the event-driven repacker's cost sits relative to the cheap greedy
//! and batch policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfrs_core::ClusterSpec;
use dfrs_sched::{Algorithm, ConservativeBf, DynMcb8FairPer};
use dfrs_sim::{simulate, SimConfig};
use dfrs_workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn trace() -> Trace {
    let cluster = ClusterSpec::synthetic();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(99);
    let raws = model.generate(120, &mut rng);
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    Trace::new(cluster, jobs)
        .unwrap()
        .scale_to_load(0.7)
        .unwrap()
}

fn bench_algorithms(c: &mut Criterion) {
    let t = trace();
    let cfg = SimConfig::with_penalty();
    let mut g = c.benchmark_group("simulate_120_jobs");
    g.sample_size(10);
    for algo in Algorithm::ALL {
        g.bench_with_input(BenchmarkId::new("algo", algo.name()), &t, |b, t| {
            b.iter(|| black_box(simulate(t.cluster, t.jobs(), algo.build().as_mut(), &cfg)))
        });
    }
    g.bench_with_input(BenchmarkId::new("algo", "Conservative-BF"), &t, |b, t| {
        b.iter(|| {
            black_box(simulate(
                t.cluster,
                t.jobs(),
                &mut ConservativeBf::new(),
                &cfg,
            ))
        })
    });
    g.bench_with_input(BenchmarkId::new("algo", "DynMCB8-fair-per"), &t, |b, t| {
        b.iter(|| {
            black_box(simulate(
                t.cluster,
                t.jobs(),
                &mut DynMcb8FairPer::new(),
                &cfg,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
