//! Workload-substrate benchmarks: Lublin generation throughput, SWF
//! parse/write, and HPC2N preprocessing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfrs_core::ClusterSpec;
use dfrs_workload::{
    hpc2n_preprocess, parse_swf, write_swf, Annotator, Hpc2nLikeGenerator, LublinModel,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_lublin(c: &mut Criterion) {
    let mut g = c.benchmark_group("lublin_generate");
    g.sample_size(30);
    let cluster = ClusterSpec::synthetic();
    let model = LublinModel::for_cluster(&cluster);
    let annotator = Annotator::new(cluster);
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("jobs", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                let raws = model.generate(n, &mut rng);
                black_box(annotator.annotate(&raws, &mut rng).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_swf(c: &mut Criterion) {
    let mut g = c.benchmark_group("swf");
    g.sample_size(20);
    let mut rng = SmallRng::seed_from_u64(5);
    let records = Hpc2nLikeGenerator::default().generate_swf(4, &mut rng);
    let text = write_swf(&Vec::new(), &records);
    g.bench_function("parse_4_weeks", |b| {
        b.iter(|| black_box(parse_swf(black_box(&text))))
    });
    g.bench_function("write_4_weeks", |b| {
        b.iter(|| black_box(write_swf(&Vec::new(), black_box(&records))))
    });
    g.bench_function("hpc2n_preprocess_4_weeks", |b| {
        b.iter(|| black_box(hpc2n_preprocess(black_box(&records), ClusterSpec::hpc2n())))
    });
    g.finish();
}

criterion_group!(benches, bench_lublin, bench_swf);
criterion_main!(benches);
