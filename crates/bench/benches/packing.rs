//! Micro-benchmarks of the vector-packing substrate: MCB8 vs the
//! first/best-fit baselines, and the yield binary search — the inner
//! loops every DYNMCB8 decision pays for. Also serves as the ablation
//! quantifying what the balance-aware packer buys (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfrs_core::ids::JobId;
use dfrs_packing::{
    max_min_yield, BestFitDecreasing, FirstFitDecreasing, JobLoad, Mcb8, PackItem, VectorPacker,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn items(n: usize, seed: u64) -> Vec<PackItem> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| PackItem {
            id: i as u32,
            cpu: rng.gen_range(0.05..0.6),
            mem: rng.gen_range(0.05..0.4),
        })
        .collect()
}

fn jobs(n: usize, seed: u64) -> Vec<JobLoad> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| JobLoad {
            job: JobId(i as u32),
            tasks: rng.gen_range(1..8),
            cpu_need: if rng.gen_bool(0.25) { 0.25 } else { 1.0 },
            mem_req: 0.1 * rng.gen_range(1..6) as f64,
        })
        .collect()
}

fn bench_packers(c: &mut Criterion) {
    let mut g = c.benchmark_group("packers");
    g.sample_size(20);
    for n in [64usize, 256, 1024] {
        let its = items(n, 7);
        let bins = n / 3;
        for packer in [
            &Mcb8 as &dyn VectorPacker,
            &FirstFitDecreasing,
            &BestFitDecreasing,
        ] {
            g.bench_with_input(BenchmarkId::new(packer.name(), n), &its, |b, its| {
                b.iter(|| black_box(packer.pack(black_box(its), bins)))
            });
        }
    }
    g.finish();
}

fn bench_yield_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("yield_search");
    g.sample_size(15);
    for n in [16usize, 64, 128] {
        let loads = jobs(n, 11);
        g.bench_with_input(BenchmarkId::new("mcb8", n), &loads, |b, loads| {
            b.iter(|| black_box(max_min_yield(black_box(loads), 128, &Mcb8, 0.01, 0.01)))
        });
        g.bench_with_input(BenchmarkId::new("first-fit", n), &loads, |b, loads| {
            b.iter(|| {
                black_box(max_min_yield(
                    black_box(loads),
                    128,
                    &FirstFitDecreasing,
                    0.01,
                    0.01,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_packers, bench_yield_search);
criterion_main!(benches);
