//! The §V timing study as a Criterion bench: `DYNMCB8` simulation cost
//! at increasing numbers of simultaneously live jobs. The paper reports
//! ≤ 1 ms per allocation below 10 jobs and ≈ 0.25 s average up to 102
//! jobs on 2010 hardware; the shape (growth with population) is the
//! claim to check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfrs_core::ClusterSpec;
use dfrs_sched::Algorithm;
use dfrs_sim::{simulate, SimConfig};
use dfrs_workload::{Annotator, LublinModel, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A burst of `n` simultaneous jobs: every submission triggers a repack
/// over all jobs in the system, so allocation cost at population ≈ n
/// dominates.
fn burst_trace(n: usize, seed: u64) -> Trace {
    let cluster = ClusterSpec::synthetic();
    let model = LublinModel::for_cluster(&cluster);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raws = model.generate(n, &mut rng);
    for r in &mut raws {
        r.submit = 0.0;
    }
    let jobs = Annotator::new(cluster).annotate(&raws, &mut rng).unwrap();
    Trace::new(cluster, jobs).unwrap()
}

fn bench_dynmcb8_allocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynmcb8_allocation");
    g.sample_size(10);
    for n in [10usize, 50, 100] {
        let trace = burst_trace(n, 3);
        g.bench_with_input(BenchmarkId::new("burst_jobs", n), &trace, |b, trace| {
            b.iter(|| {
                black_box(simulate(
                    trace.cluster,
                    trace.jobs(),
                    Algorithm::DynMcb8.build().as_mut(),
                    &SimConfig::default(),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dynmcb8_allocation);
criterion_main!(benches);
