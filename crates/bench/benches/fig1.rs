//! Figure 1 as Criterion benches: one miniature degradation-vs-load
//! point per penalty setting. These measure the cost of regenerating the
//! figure (the actual curves come from `cargo run -p dfrs-experiments
//! --bin fig1`; see EXPERIMENTS.md for recorded values).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfrs_experiments::fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    // (penalty, label): (a) = no penalty, (b) = 5-minute penalty.
    for (penalty, label) in [(0.0, "a"), (300.0, "b")] {
        g.bench_with_input(BenchmarkId::new("panel", label), &penalty, |b, &penalty| {
            b.iter(|| black_box(fig1::run(1, 60, &[0.3, 0.7], penalty, 5, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
