//! The `bench` binary: run the phase suite and write `BENCH_sim.json`.
//!
//! ```sh
//! cargo run -p dfrs_bench --release -- --scale small --out BENCH_sim.json
//! ```

use dfrs_bench::{BenchConfig, BenchReport, Scale};

const USAGE: &str = "\
Usage: bench [--scale small|medium|large|huge] [--out PATH] [--skip-sweep]

Phases: packing, event_loop, streaming, repack, failures, drf,
campaign, sweep — plus, at --scale huge, the sharding phase (a
100k-node cluster fed one million streamed jobs, shards=1 vs shards=4;
the other phases run at their small sizes). See crates/bench.
Writes the phase timings as JSON to PATH (default BENCH_sim.json).";

fn main() {
    let mut config = BenchConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("missing value after --scale"));
                config.scale = Scale::parse(v).unwrap_or_else(|| {
                    die(&format!("unknown scale {v:?} (small|medium|large|huge)"))
                });
            }
            "--out" => {
                config.out = it
                    .next()
                    .unwrap_or_else(|| die("missing value after --out"))
                    .clone();
            }
            "--skip-sweep" => config.skip_sweep = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument {other}\n{USAGE}")),
        }
    }

    eprintln!("running bench phases at scale {} ...", config.scale.tag());
    let report = BenchReport::measure(config.scale, config.skip_sweep);
    for (name, phase) in &report.phases {
        if let Some(w) = phase.get("wall_secs").and_then(|v| v.as_f64()) {
            eprintln!("  {name:<12} {w:8.3}s");
        } else if let Some(w) = phase.get("serial_wall_secs").and_then(|v| v.as_f64()) {
            eprintln!("  {name:<12} {w:8.3}s (serial)");
        } else if let Some(w) = phase.get("mcb8_wall_secs").and_then(|v| v.as_f64()) {
            eprintln!("  {name:<12} {w:8.3}s (mcb8)");
        }
    }
    let text = report.to_json().pretty();
    std::fs::write(&config.out, &text)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", config.out)));
    eprintln!("report written to {}", config.out);
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
