//! Fixed workload scales for repeatable benchmark runs.
//!
//! Three sizes, each materializing the same three workload families the
//! paper evaluates (Lublin, Downey, HPC2N-like), with pinned seeds so
//! two runs of the same binary measure identical simulations.

use dfrs_scenario::{Scenario, ScenarioBuilder};

/// How big a benchmark run is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI smoke size: seconds end to end.
    Small,
    /// Laptop size: the scale EXPERIMENTS.md numbers are recorded at.
    Medium,
    /// Stress size: minutes; for profiling sessions.
    Large,
    /// Sharding-demo size: adds the `huge` phase (a ≥100k-node cluster
    /// fed one million streamed jobs, shards=1 vs shards=4). Every
    /// other phase runs at the small sizes so regeneration stays
    /// dominated by the sharding measurement itself.
    Huge,
}

impl Scale {
    /// Parse a CLI argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            "huge" => Some(Scale::Huge),
            _ => None,
        }
    }

    /// Lowercase tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::Huge => "huge",
        }
    }

    /// Jobs per synthetic (Lublin/Downey) trace at this scale.
    pub fn jobs(&self) -> usize {
        match self {
            Scale::Small | Scale::Huge => 150,
            Scale::Medium => 500,
            Scale::Large => 1500,
        }
    }

    /// HPC2N-like weeks at this scale.
    pub fn weeks(&self) -> u32 {
        match self {
            Scale::Small | Scale::Huge => 1,
            Scale::Medium => 2,
            Scale::Large => 4,
        }
    }

    /// The benchmark scenario set at this scale: one Lublin trace, one
    /// Downey trace, and `weeks` HPC2N-like week segments, all seeded.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = vec![
            ScenarioBuilder::new()
                .label(format!("bench-lublin-{}", self.tag()))
                .lublin(self.jobs())
                .load(0.7)
                .seed(1)
                .build()
                .expect("lublin scenarios build"),
            ScenarioBuilder::new()
                .label(format!("bench-downey-{}", self.tag()))
                .downey(self.jobs())
                .load(0.7)
                .seed(1)
                .build()
                .expect("downey scenarios build"),
        ];
        out.extend(
            ScenarioBuilder::new()
                .label(format!("bench-hpc2n-{}", self.tag()))
                .hpc2n_like(self.weeks(), 250.0)
                .seed(1)
                .build_all()
                .expect("hpc2n-like scenarios build"),
        );
        out
    }
}

/// The fixed medium Lublin scenario shared by the `event_loop` phase of
/// the bench binary and the perf regression guard — both must measure
/// the same simulation for the 1.5× throughput comparison to be
/// meaningful.
pub fn medium_lublin() -> Scenario {
    ScenarioBuilder::new()
        .label("bench-lublin-medium")
        .lublin(Scale::Medium.jobs())
        .load(0.7)
        .seed(1)
        .build()
        .expect("lublin scenarios build")
}

/// The pinned Lublin trace the `repack` phase drives through the
/// `DynMCB8*` schedulers warm and cold, sized by scale. Load 0.7 keeps
/// genuine CPU and memory pressure in the stream so the binary searches
/// actually bisect (an underloaded trace would measure only the
/// trivial one-probe path).
pub fn repack_lublin(scale: Scale) -> Scenario {
    ScenarioBuilder::new()
        .label(format!("bench-repack-lublin-{}", scale.tag()))
        .lublin(scale.jobs())
        .load(0.7)
        .seed(1)
        .build()
        .expect("lublin scenarios build")
}

/// The failure-heavy phase's scenario: the pinned Lublin trace at load
/// 0.7 with aggressive per-node exponential churn attached (MTBF two
/// simulated days, MTTR one hour — enough strikes that failure
/// handling, not the base workload, dominates the phase). Jobs are
/// identical to [`repack_lublin`]'s: the failure seed stream is
/// independent of workload generation.
pub fn churn_lublin(scale: Scale) -> Scenario {
    ScenarioBuilder::new()
        .label(format!("bench-churn-lublin-{}", scale.tag()))
        .lublin(scale.jobs())
        .load(0.7)
        .seed(1)
        .failures(dfrs_scenario::FailureModel::exp(172_800.0, 3_600.0))
        .build()
        .expect("lublin scenarios build")
}

/// The multi-resource phase's scenario: the pinned Lublin trace at load
/// 0.7 with 40% of the jobs GPU-annotated (deterministic per-trace
/// salt; see `ScenarioBuilder::gpu_frac`). Jobs are otherwise identical
/// to [`repack_lublin`]'s: annotation only adds a GPU demand, never
/// touches CPU, memory, or submit times.
pub fn gpu_lublin(scale: Scale) -> Scenario {
    ScenarioBuilder::new()
        .label(format!("bench-gpu-lublin-{}", scale.tag()))
        .lublin(scale.jobs())
        .load(0.7)
        .seed(1)
        .gpu_frac(0.4)
        .build()
        .expect("lublin scenarios build")
}

/// Builder of one warm- or cold-configured `DynMCB8*` scheduler.
pub type RepackCaseFn = fn(bool) -> Box<dyn dfrs_sim::Scheduler>;

/// The schedulers the warm-vs-cold measurements cover — the single
/// source of truth shared by the `repack` phase of `BENCH_sim.json`
/// and the criterion pairs in `benches/scenarios.rs`, so the two
/// reports can never drift apart.
pub fn repack_cases() -> [(&'static str, RepackCaseFn); 4] {
    [
        ("dynmcb8", |warm| {
            Box::new(dfrs_sched::DynMcb8::new().warm(warm))
        }),
        ("dynmcb8-per", |warm| {
            Box::new(dfrs_sched::DynMcb8Per::new().warm(warm))
        }),
        ("dynmcb8-asap-per", |warm| {
            Box::new(dfrs_sched::DynMcb8AsapPer::new().warm(warm))
        }),
        ("dynmcb8-stretch-per", |warm| {
            Box::new(dfrs_sched::DynMcb8StretchPer::new().warm(warm))
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_tags() {
        for s in [Scale::Small, Scale::Medium, Scale::Large, Scale::Huge] {
            assert_eq!(Scale::parse(s.tag()), Some(s));
        }
        assert_eq!(Scale::parse("SMALL"), Some(Scale::Small));
        assert_eq!(Scale::parse("giant"), None);
    }

    #[test]
    fn small_scenarios_materialize() {
        let scens = Scale::Small.scenarios();
        assert_eq!(scens.len(), 3, "lublin + downey + 1 week");
        assert_eq!(scens[0].jobs.len(), 150);
        assert!(scens[2].label.contains("hpc2n"));
    }

    #[test]
    fn medium_lublin_is_deterministic() {
        let (a, b) = (medium_lublin(), medium_lublin());
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.jobs.len(), 500);
    }
}
