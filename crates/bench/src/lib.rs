//! Criterion benchmark crate (benches live in benches/).
