//! # dfrs-bench
//!
//! The benchmark subsystem: fixed scenario *scales* for repeatable
//! measurements, a phase-timed report emitted as `BENCH_sim.json`, and
//! the criterion benches under `benches/`.
//!
//! Entry points:
//!
//! * `cargo run -p dfrs_bench --release` — run the phase suite at the
//!   default (small) scale and write `BENCH_sim.json`;
//! * `cargo bench` — the criterion-shim micro/meso benchmarks;
//! * `cargo test -p dfrs_bench --release -- --ignored` — the perf
//!   regression guard, which compares current event-loop throughput
//!   against the last recorded `BENCH_sim.json`.

pub use dfrs_core::json;
pub mod report;
pub mod scales;

pub use report::{BenchConfig, BenchReport};
pub use scales::Scale;
