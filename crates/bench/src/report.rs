//! The phase-timed benchmark report behind `BENCH_sim.json`.
//!
//! One run times the three layers the tentpole perf work targets, each
//! as its own phase:
//!
//! * **packing** — the MCB8 packer and the yield binary search on
//!   synthetic instances (the inner loop of every `DynMCB8*` decision);
//! * **event_loop** — one full simulation of the fixed medium Lublin
//!   scenario under a cheap scheduler, isolating engine overhead; its
//!   `events_per_sec` is the number the perf regression guard defends;
//! * **streaming** — one million generated jobs pulled through the
//!   streaming engine without ever materializing the trace, asserting
//!   the resident job window stays flat (the `dfrs-serve` memory
//!   claim) and recording feed throughput;
//! * **recovery** — the crash-safety price: the same NDJSON command
//!   script driven through the `dfrs-serve` daemon bare and with the
//!   write-ahead journal attached at each fsync policy, plus the
//!   journal-replay throughput of `Daemon::recover` (the restart cost
//!   after a crash);
//! * **repack** — the `DynMCB8*` schedulers driven over the same
//!   scenario warm (cross-event repack memo on) and cold (memo off),
//!   with per-event µs and pack counts; warm and cold outcomes are
//!   asserted byte-identical before either number is reported;
//! * **drf** — the GPU-annotated Lublin trace under the GPU-clamped
//!   yield scheduler and the DRF family, pricing the dominant-share
//!   bisection against the yield bisection;
//! * **campaign** — the `scenarios × specs` fan-out at the requested
//!   scale, serial and (on multi-core hosts) parallel with threads
//!   derived from the machine, with per-unit wall times; a speedup is
//!   recorded only when real workers ran;
//! * **pool** — the parallel runtime itself: per-tick `thread::scope`
//!   spawns vs the persistent worker pool (µs/tick), and per-record
//!   fsync vs group-commit journal appends (cmds/sec under
//!   `--fsync always`);
//! * **sweep** — the laptop-scale `sweep` workload (2 seeds × 4 loads ×
//!   9 algorithms × 2 penalties, single-threaded), the end-to-end
//!   number the ≥2× speedup target is stated against.

use std::time::Instant;

use dfrs_core::ids::JobId;
use dfrs_packing::{max_min_yield, JobLoad, Mcb8, PackItem, VectorPacker};
use dfrs_scenario::Campaign;
use dfrs_sched::Algorithm;
use dfrs_sim::{Scheduler, SimOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::json::{obj, Value};
use crate::scales::{medium_lublin, Scale};

/// Wall-clock seconds of the laptop-scale sweep phase measured at the
/// seed of this PR (commit c2d77df, pre-refactor engine, single thread,
/// on the reference container). The ratio `baseline / current` recorded
/// in `BENCH_sim.json` is the tentpole's end-to-end speedup.
pub const SWEEP_SEED_WALL_SECS: f64 = 9.17;

/// Wall-clock seconds of the same sweep recorded at the previous PR
/// (commit b639a6f, engine + packer overhaul, before warm-start
/// repacking) on the reference container.
pub const SWEEP_PR3_WALL_SECS: f64 = 4.10;

/// Upper bound on the campaign phase's parallel worker count: beyond
/// this the small/medium matrices have too few cells per worker for
/// the measurement to say anything about scaling.
const MAX_CAMPAIGN_THREADS: usize = 8;

/// What to run and where to write it.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Workload scale for the campaign phase.
    pub scale: Scale,
    /// Output path (default `BENCH_sim.json`).
    pub out: String,
    /// Skip the (comparatively slow) sweep phase.
    pub skip_sweep: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: Scale::Small,
            out: "BENCH_sim.json".into(),
            skip_sweep: false,
        }
    }
}

/// The measured report; render with [`BenchReport::to_json`].
#[derive(Debug)]
pub struct BenchReport {
    /// Scale the campaign phase ran at.
    pub scale: Scale,
    /// `(phase name, phase json)` in execution order.
    pub phases: Vec<(String, Value)>,
}

impl BenchReport {
    /// Run every phase at `scale`.
    pub fn measure(scale: Scale, skip_sweep: bool) -> BenchReport {
        let mut phases = vec![
            ("packing".to_string(), packing_phase(scale)),
            ("event_loop".to_string(), event_loop_phase()),
            ("streaming".to_string(), streaming_phase()),
            ("recovery".to_string(), recovery_phase(scale)),
            ("repack".to_string(), repack_phase(scale)),
            ("failures".to_string(), failures_phase(scale)),
            ("drf".to_string(), drf_phase(scale)),
            ("campaign".to_string(), campaign_phase(scale)),
            ("pool".to_string(), pool_phase()),
        ];
        if scale == Scale::Huge {
            phases.push(("huge".to_string(), huge_phase()));
        }
        if !skip_sweep {
            phases.push(("sweep".to_string(), sweep_phase()));
        }
        BenchReport { scale, phases }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> Value {
        obj([
            ("schema".into(), Value::Str("dfrs-bench-v1".into())),
            ("scale".into(), Value::Str(self.scale.tag().into())),
            ("phases".into(), obj(self.phases.iter().cloned())),
        ])
    }
}

fn secs(start: Instant) -> f64 {
    start.elapsed().as_secs_f64()
}

/// Synthetic pack items mirroring the distribution the paper's
/// annotator produces (mixed CPU- and memory-dominant tasks).
fn synthetic_items(n: usize, seed: u64) -> Vec<PackItem> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| PackItem {
            id: i as u32,
            cpu: rng.gen_range(0.05..0.7),
            mem: rng.gen_range(0.05..0.45),
        })
        .collect()
}

fn synthetic_loads(n: usize, seed: u64) -> Vec<JobLoad> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| JobLoad {
            job: JobId(i as u32),
            tasks: rng.gen_range(1..6),
            cpu_need: if rng.gen_bool(0.3) { 0.25 } else { 1.0 },
            mem_req: 0.1 * rng.gen_range(1..5) as f64,
        })
        .collect()
}

fn packing_phase(scale: Scale) -> Value {
    let (n_items, n_jobs, nodes, iters) = match scale {
        // Huge's extra work lives in the sharding phase; the packing
        // micro-benchmark stays at the small sizes.
        Scale::Small | Scale::Huge => (256, 64, 128, 200),
        Scale::Medium => (512, 128, 128, 200),
        Scale::Large => (1024, 256, 256, 200),
    };

    let items = synthetic_items(n_items, 7);
    let start = Instant::now();
    let mut packed = 0u64;
    for _ in 0..iters {
        if Mcb8.pack(&items, nodes).is_some() {
            packed += 1;
        }
    }
    let mcb8_wall = secs(start);

    let loads = synthetic_loads(n_jobs, 7);
    let start = Instant::now();
    let mut feasible = 0u64;
    for _ in 0..iters {
        if max_min_yield(&loads, nodes, &Mcb8, 0.01, 0.01).is_some() {
            feasible += 1;
        }
    }
    let search_wall = secs(start);

    obj([
        ("items".into(), Value::Num(n_items as f64)),
        ("jobs".into(), Value::Num(n_jobs as f64)),
        ("nodes".into(), Value::Num(nodes as f64)),
        ("iterations".into(), Value::Num(iters as f64)),
        ("mcb8_wall_secs".into(), Value::Num(mcb8_wall)),
        (
            "mcb8_us_per_pack".into(),
            Value::Num(mcb8_wall / iters as f64 * 1e6),
        ),
        ("mcb8_packed".into(), Value::Num(packed as f64)),
        ("yield_search_wall_secs".into(), Value::Num(search_wall)),
        (
            "yield_search_us_per_call".into(),
            Value::Num(search_wall / iters as f64 * 1e6),
        ),
        ("yield_search_feasible".into(), Value::Num(feasible as f64)),
    ])
}

fn event_loop_phase() -> Value {
    // Always the fixed medium Lublin scenario (see `scales::medium_lublin`):
    // the perf guard compares against this exact measurement.
    let scenario = medium_lublin();
    let start = Instant::now();
    let out = scenario.run("greedy-pmtn").expect("builtin spec");
    let wall = secs(start);
    obj([
        ("scenario".into(), Value::Str(scenario.label.clone())),
        ("scheduler".into(), Value::Str("greedy-pmtn".into())),
        ("jobs".into(), Value::Num(out.records.len() as f64)),
        (
            "events_processed".into(),
            Value::Num(out.events_processed as f64),
        ),
        ("wall_secs".into(), Value::Num(wall)),
        (
            "events_per_sec".into(),
            Value::Num(out.events_processed as f64 / wall),
        ),
        ("sched_wall_secs".into(), Value::Num(out.sched_wall_total)),
        (
            "engine_wall_secs".into(),
            Value::Num((wall - out.sched_wall_total).max(0.0)),
        ),
    ])
}

/// Jobs the streaming phase generates (the throughput claim is stated
/// against a feed too large to materialize comfortably).
const STREAMING_JOBS: usize = 1_000_000;

/// Ceiling on the resident job window of the streaming phase. The
/// point of the pull-based engine is bounded live-set memory: at the
/// generated load (~0.6 utilization) steady state holds a few hundred
/// jobs, so blowing past this means completed records stopped
/// streaming out (or admission ran far ahead of the live set).
const STREAMING_MAX_RESIDENT: usize = 20_000;

/// The streaming phase: one million generated jobs pulled through
/// [`dfrs_sim::simulate_stream`] from an [`IterSource`] — the trace is
/// never materialized — with records discarded at the sink. Measures
/// raw engine throughput on an effectively unbounded feed and asserts
/// the resident window stayed flat (the memory claim of the streaming
/// engine; the peak is recorded in the report).
fn streaming_phase() -> Value {
    use dfrs_sim::{simulate_stream, DiscardRecords, IterSource, SimConfig};

    let cluster = dfrs_core::ClusterSpec::synthetic();
    // Deterministic feed: ~4 s mean arrival gap, 1-task jobs, mean
    // runtime ~5.5 min → ≈0.6 CPU utilization on the synthetic 128
    // nodes, so the live set stays small while the cluster stays busy.
    let mut rng = SmallRng::seed_from_u64(41);
    let mut t = 0.0;
    let feed = (0..STREAMING_JOBS).map(move |i| {
        t += rng.gen_range(2.0..6.0);
        let cpu = [0.25, 0.5, 1.0][rng.gen_range(0..3usize)];
        let mem = 0.05 * rng.gen_range(1..7) as f64;
        let runtime = rng.gen_range(60.0..600.0);
        dfrs_core::JobSpec::new(JobId(i as u32), t, 1, cpu, mem, runtime)
            .expect("generated job is valid")
    });

    let mut scheduler = dfrs_sched::GreedyPmtn::new();
    let start = Instant::now();
    let out = simulate_stream(
        cluster,
        &mut IterSource::new(feed),
        &mut DiscardRecords,
        &mut scheduler,
        &SimConfig::default(),
    )
    .expect("streaming run completes");
    let wall = secs(start);

    assert_eq!(out.jobs_completed as usize, STREAMING_JOBS);
    assert!(
        out.peak_resident_jobs < STREAMING_MAX_RESIDENT as u64,
        "streaming live-set window not bounded: peak {} resident jobs",
        out.peak_resident_jobs
    );

    obj([
        ("jobs".into(), Value::Num(STREAMING_JOBS as f64)),
        ("scheduler".into(), Value::Str("greedy-pmtn".into())),
        ("wall_secs".into(), Value::Num(wall)),
        (
            "events_processed".into(),
            Value::Num(out.events_processed as f64),
        ),
        (
            "events_per_sec".into(),
            Value::Num(out.events_processed as f64 / wall.max(1e-9)),
        ),
        (
            "jobs_per_sec".into(),
            Value::Num(STREAMING_JOBS as f64 / wall.max(1e-9)),
        ),
        (
            "peak_live_jobs".into(),
            Value::Num(out.peak_live_jobs as f64),
        ),
        (
            "peak_resident_jobs".into(),
            Value::Num(out.peak_resident_jobs as f64),
        ),
        ("makespan".into(), Value::Num(out.makespan)),
    ])
}

/// Journaled commands the recovery phase drives, by scale (huge keeps
/// the small size — its extra work lives in the sharding phase).
fn recovery_commands(scale: Scale) -> usize {
    match scale {
        Scale::Small | Scale::Huge => 2_000,
        Scale::Medium => 10_000,
        Scale::Large => 20_000,
    }
}

/// The recovery phase: price the crash-safety machinery. The same
/// deterministic NDJSON command script is driven through the
/// `dfrs-serve` daemon bare (no journal) and with the write-ahead
/// journal attached at each fsync policy; then the journal is
/// recovered with `Daemon::recover`, measuring replay throughput (the
/// restart cost after a crash). The bare, journaled, and recovered
/// daemons are asserted to land in the identical state before any
/// number is reported.
fn recovery_phase(scale: Scale) -> Value {
    use dfrs_serve::journal::FsyncPolicy;
    use dfrs_serve::Daemon;
    use dfrs_sim::SimConfig;

    let n = recovery_commands(scale);
    // Deterministic command feed shaped like the streaming phase's
    // (~0.6 utilization on the synthetic cluster), ending in a drain.
    let mut rng = SmallRng::seed_from_u64(43);
    let mut t = 0.0;
    let mut script: Vec<String> = (0..n - 1)
        .map(|_| {
            t += rng.gen_range(2.0..6.0);
            let cpu = [0.25, 0.5, 1.0][rng.gen_range(0..3usize)];
            let mem = 0.05 * rng.gen_range(1..7) as f64;
            let runtime = rng.gen_range(60.0..600.0);
            format!(r#"{{"cmd":"submit","time":{t},"cpu":{cpu},"mem":{mem},"runtime":{runtime}}}"#)
        })
        .collect();
    script.push(r#"{"cmd":"drain"}"#.to_string());

    let cluster = dfrs_core::ClusterSpec::synthetic();
    let mk = || Daemon::new(cluster, "greedy-pmtn", SimConfig::default()).expect("builtin spec");
    let stats = |d: &mut Daemon| d.handle_line(r#"{"cmd":"stats"}"#).0[0].compact();
    // Drive the feed the way the `dfrs-serve` binary does: through the
    // batched command path in fixed chunks, so the journaled arms price
    // the group-commit journal a deployment actually runs — one
    // write+fsync per batch — not a per-command fsync the binary never
    // issues. The plain arm takes the same path for apples-to-apples
    // dispatch overhead.
    const RECOVERY_BATCH: usize = 64;
    let run = |d: &mut Daemon| {
        let start = Instant::now();
        for chunk in script.chunks(RECOVERY_BATCH) {
            d.handle_batch(chunk);
        }
        secs(start)
    };

    // Baseline: the same commands with no journal attached.
    let mut plain = mk();
    let plain_wall = run(&mut plain);
    let reference = stats(&mut plain);

    // Journaled, at each fsync policy. The `never` journal is kept for
    // the replay measurement below.
    let dir = std::env::temp_dir().join(format!("dfrs-bench-recovery-{}", std::process::id()));
    let mut journaled = Vec::new();
    for (tag, policy) in [
        ("always", FsyncPolicy::Always),
        ("interval_64", FsyncPolicy::Interval(64)),
        ("never", FsyncPolicy::Never),
    ] {
        let _ = std::fs::remove_dir_all(&dir);
        let mut d = mk();
        d.attach_journal(&dir, policy).expect("fresh journal dir");
        let wall = run(&mut d);
        assert_eq!(stats(&mut d), reference, "journaling changed the outcome");
        journaled.push((
            tag.to_string(),
            obj([
                ("wall_secs".into(), Value::Num(wall)),
                (
                    "cmds_per_sec".into(),
                    Value::Num(script.len() as f64 / wall.max(1e-9)),
                ),
                (
                    "overhead_ratio".into(),
                    Value::Num(wall / plain_wall.max(1e-9)),
                ),
            ]),
        ));
    }

    // Replay: rebuild the daemon from the `never` journal.
    let start = Instant::now();
    let (mut recovered, recovery) =
        Daemon::recover(&dir, FsyncPolicy::Never).expect("journal recovers");
    let replay_wall = secs(start);
    assert_eq!(recovery.replayed as usize, script.len());
    assert_eq!(stats(&mut recovered), reference, "replay diverged");
    let _ = std::fs::remove_dir_all(&dir);

    obj([
        ("commands".into(), Value::Num(script.len() as f64)),
        ("batch".into(), Value::Num(RECOVERY_BATCH as f64)),
        ("scheduler".into(), Value::Str("greedy-pmtn".into())),
        ("plain_wall_secs".into(), Value::Num(plain_wall)),
        (
            "plain_cmds_per_sec".into(),
            Value::Num(script.len() as f64 / plain_wall.max(1e-9)),
        ),
        ("journaled".into(), obj(journaled)),
        (
            "replayed_lines".into(),
            Value::Num(recovery.replayed as f64),
        ),
        ("replay_wall_secs".into(), Value::Num(replay_wall)),
        (
            "replay_lines_per_sec".into(),
            Value::Num(recovery.replayed as f64 / replay_wall.max(1e-9)),
        ),
    ])
}

/// Cluster size of the `huge` sharding phase: two orders of magnitude
/// past the paper's testbed, so the per-event full-cluster work the
/// `DynMCB8*` schedulers do (available-node slice, platform identity,
/// packing bins) is what the phase prices.
const HUGE_NODES: u32 = 102_400;

/// Jobs the `huge` phase streams through each arm (never materialized).
const HUGE_JOBS: usize = 1_000_000;

/// Shard count of the primary sharded arm; the headline speedup is
/// stated against the bare (shards=1) arm of the same inner scheduler.
const HUGE_SHARDS: u32 = 4;

/// Shard count of the wide arm: double the primary, to show the
/// worker-pool fan-out still pays past the first doubling (per-event
/// view work shrinks with the shard count; the pool keeps the fan-out
/// cost flat instead of spawning 8 scoped threads per tick).
const HUGE_SHARDS_WIDE: u32 = 8;

/// Inner scheduler of both arms.
const HUGE_INNER: &str = "dynmcb8";

/// One arm of the `huge` phase: `jobs` generated jobs pulled through
/// the streaming engine on the 100k-node cluster under `spec`. The feed
/// (~1 s mean arrival gap, 1-task jobs, mean runtime ~500 s) holds the
/// live set near 500 jobs — small against the cluster, so every repack
/// takes the fast all-fit path and the measurement isolates the
/// per-event cluster-sized work that sharding divides.
fn huge_arm(spec: &str, jobs: usize) -> (SimOutcome, f64) {
    use dfrs_sim::{simulate_stream, DiscardRecords, IterSource, SimConfig};

    let cluster = dfrs_core::ClusterSpec::new(HUGE_NODES, 4, 8.0).expect("valid huge cluster");
    let mut rng = SmallRng::seed_from_u64(97);
    let mut t = 0.0;
    let feed = (0..jobs).map(move |i| {
        t += rng.gen_range(0.6..1.4);
        let cpu = [0.25, 0.5, 1.0][rng.gen_range(0..3usize)];
        let mem = 0.05 * rng.gen_range(1..7) as f64;
        let runtime = rng.gen_range(300.0..700.0);
        dfrs_core::JobSpec::new(JobId(i as u32), t, 1, cpu, mem, runtime)
            .expect("generated job is valid")
    });

    let mut scheduler = dfrs_sched::SchedulerRegistry::builtin()
        .build_str(spec)
        .expect("builtin spec");
    let start = Instant::now();
    let out = simulate_stream(
        cluster,
        &mut IterSource::new(feed),
        &mut DiscardRecords,
        scheduler.as_mut(),
        &SimConfig::default(),
    )
    .expect("huge run completes");
    let wall = secs(start);
    assert_eq!(out.jobs_completed as usize, jobs, "{spec}: run drained");
    (out, wall)
}

fn huge_arm_json(spec: &str, out: &SimOutcome, wall: f64) -> Value {
    obj([
        ("spec".into(), Value::Str(spec.into())),
        ("wall_secs".into(), Value::Num(wall)),
        ("sched_wall_secs".into(), Value::Num(out.sched_wall_total)),
        (
            "events_processed".into(),
            Value::Num(out.events_processed as f64),
        ),
        (
            "peak_resident_jobs".into(),
            Value::Num(out.peak_resident_jobs as f64),
        ),
        ("makespan".into(), Value::Num(out.makespan)),
    ])
}

/// The `huge` phase (`--scale huge` only): the intra-run sharding
/// speedup at cluster sizes where one scheduler instance's per-event
/// work is dominated by cluster-sized scans. Both arms stream the same
/// million-job feed; the sharded arm routes each event to one shard,
/// whose view holds `nodes/shards` nodes, so the serial per-event work
/// shrinks by the shard count.
fn huge_phase() -> Value {
    huge_phase_sized(HUGE_JOBS)
}

fn huge_phase_sized(jobs: usize) -> Value {
    let bare = HUGE_INNER.to_string();
    let sharded = format!("sharded:{HUGE_INNER}:shards={HUGE_SHARDS}");
    let wide = format!("sharded:{HUGE_INNER}:shards={HUGE_SHARDS_WIDE}");
    let (bare_out, bare_wall) = huge_arm(&bare, jobs);
    let (sharded_out, sharded_wall) = huge_arm(&sharded, jobs);
    let (wide_out, wide_wall) = huge_arm(&wide, jobs);
    obj([
        ("nodes".into(), Value::Num(HUGE_NODES as f64)),
        ("jobs".into(), Value::Num(jobs as f64)),
        ("shards".into(), Value::Num(HUGE_SHARDS as f64)),
        ("inner".into(), Value::Str(HUGE_INNER.into())),
        ("shards1".into(), huge_arm_json(&bare, &bare_out, bare_wall)),
        (
            format!("shards{HUGE_SHARDS}"),
            huge_arm_json(&sharded, &sharded_out, sharded_wall),
        ),
        (
            format!("shards{HUGE_SHARDS_WIDE}"),
            huge_arm_json(&wide, &wide_out, wide_wall),
        ),
        (
            "sched_speedup".into(),
            Value::Num(bare_out.sched_wall_total / sharded_out.sched_wall_total.max(1e-9)),
        ),
        (
            "wall_speedup".into(),
            Value::Num(bare_wall / sharded_wall.max(1e-9)),
        ),
        (
            format!("sched_speedup_shards{HUGE_SHARDS_WIDE}"),
            Value::Num(bare_out.sched_wall_total / wide_out.sched_wall_total.max(1e-9)),
        ),
        (
            format!("wall_speedup_shards{HUGE_SHARDS_WIDE}"),
            Value::Num(bare_wall / wide_wall.max(1e-9)),
        ),
    ])
}

/// The simulation a `(scenario, spec)` cell runs, timed, with its
/// warm-start accounting.
fn timed_sim(
    scenario: &dfrs_scenario::Scenario,
    scheduler: &mut dyn Scheduler,
) -> (SimOutcome, f64) {
    let start = Instant::now();
    let out = dfrs_sim::simulate(
        scenario.cluster,
        &scenario.jobs,
        scheduler,
        &scenario.config,
    );
    let wall = secs(start);
    (out, wall)
}

/// Deterministic bytes of an outcome (wall-clock fields excluded) —
/// the warm-vs-cold identity assertion of the repack phase.
fn outcome_fingerprint(o: &SimOutcome) -> String {
    use std::fmt::Write;
    let mut s = format!(
        "{}|max={:016x} mean={:016x} mk={:016x} pre={} migr={} ev={}",
        o.algorithm,
        o.max_stretch.to_bits(),
        o.mean_stretch.to_bits(),
        o.makespan.to_bits(),
        o.preemption_count,
        o.migration_count,
        o.events_processed,
    );
    for r in &o.records {
        write!(s, "|{}:{:016x}", r.id.0, r.completion.to_bits()).expect("string write");
    }
    s
}

fn repack_phase(scale: Scale) -> Value {
    // The same pinned Lublin trace the event-loop phase uses at medium;
    // scaled by the requested size. Load 0.7 keeps genuine memory and
    // CPU pressure in the stream, so the searches actually bisect.
    let scenario = crate::scales::repack_lublin(scale);

    let mut specs = Vec::new();
    let mut warm_wall_total = 0.0;
    let mut cold_wall_total = 0.0;
    let mut events_total = 0u64;
    for (key, build) in crate::scales::repack_cases() {
        let (cold_out, cold_wall) = timed_sim(&scenario, build(false).as_mut());
        let (warm_out, warm_wall) = timed_sim(&scenario, build(true).as_mut());
        assert_eq!(
            outcome_fingerprint(&cold_out),
            outcome_fingerprint(&warm_out),
            "{key}: warm-start changed the simulation outcome"
        );
        let cold = cold_out.repack.unwrap_or_default();
        let warm = warm_out.repack.unwrap_or_default();
        let events = warm_out.events_processed;
        warm_wall_total += warm_wall;
        cold_wall_total += cold_wall;
        events_total += events;
        specs.push((
            key.to_string(),
            obj([
                ("events".into(), Value::Num(events as f64)),
                ("cold_wall_secs".into(), Value::Num(cold_wall)),
                ("warm_wall_secs".into(), Value::Num(warm_wall)),
                (
                    "cold_us_per_event".into(),
                    Value::Num(cold_wall / events.max(1) as f64 * 1e6),
                ),
                (
                    "warm_us_per_event".into(),
                    Value::Num(warm_wall / events.max(1) as f64 * 1e6),
                ),
                ("cold_packs".into(), Value::Num(cold.packs as f64)),
                ("warm_packs".into(), Value::Num(warm.packs as f64)),
                (
                    "warm_packs_saved".into(),
                    Value::Num(warm.packs_saved as f64),
                ),
                ("warm_searches".into(), Value::Num(warm.searches as f64)),
                (
                    "warm_search_hits".into(),
                    Value::Num(warm.search_hits as f64),
                ),
            ]),
        ));
    }

    obj([
        ("scenario".into(), Value::Str(scenario.label.clone())),
        ("jobs".into(), Value::Num(scenario.jobs.len() as f64)),
        (
            "cold_us_per_event".into(),
            Value::Num(cold_wall_total / events_total.max(1) as f64 * 1e6),
        ),
        (
            "warm_us_per_event".into(),
            Value::Num(warm_wall_total / events_total.max(1) as f64 * 1e6),
        ),
        (
            "warm_speedup".into(),
            Value::Num(cold_wall_total / warm_wall_total.max(1e-9)),
        ),
        ("specs".into(), obj(specs)),
    ])
}

/// The failure-heavy phase: the pinned churn scenario (aggressive
/// per-node exponential MTBF/MTTR) driven through one batch baseline
/// and three DFRS schedulers. Wall time here prices the whole platform
/// machinery — NodeDown evictions, kill bookkeeping, requeues, and the
/// extra scheduler rounds — and the recorded restart/lost-work counts
/// are deterministic, so drift in them flags a semantic change.
fn failures_phase(scale: Scale) -> Value {
    let scenario = crate::scales::churn_lublin(scale);
    let node_events = scenario.config.node_events.len();
    let specs = ["fcfs", "greedy-pmtn", "dynmcb8", "dynmcb8-per"];
    let mut per_spec = Vec::new();
    let mut wall_total = 0.0;
    for key in specs {
        let start = Instant::now();
        let out = scenario.run(key).expect("builtin spec");
        let wall = secs(start);
        wall_total += wall;
        per_spec.push((
            key.to_string(),
            obj([
                ("wall_secs".into(), Value::Num(wall)),
                (
                    "events_processed".into(),
                    Value::Num(out.events_processed as f64),
                ),
                ("restarts".into(), Value::Num(out.restart_count as f64)),
                (
                    "lost_vt_hours".into(),
                    Value::Num(out.lost_virtual_seconds / 3_600.0),
                ),
                (
                    "preemptions".into(),
                    Value::Num(out.preemption_count as f64),
                ),
                ("migrations".into(), Value::Num(out.migration_count as f64)),
                (
                    "down_node_hours".into(),
                    Value::Num(out.down_node_seconds / 3_600.0),
                ),
            ]),
        ));
    }
    obj([
        ("scenario".into(), Value::Str(scenario.label.clone())),
        ("jobs".into(), Value::Num(scenario.jobs.len() as f64)),
        ("node_events".into(), Value::Num(node_events as f64)),
        ("wall_secs".into(), Value::Num(wall_total)),
        ("specs".into(), obj(per_spec)),
    ])
}

/// The multi-resource phase: the pinned GPU-annotated Lublin trace
/// driven through the GPU-clamped yield scheduler and the DRF family.
/// Wall time prices the dominant-share bisection against the yield
/// bisection on the same workload, and the recorded stretch/preemption
/// metrics are deterministic, so drift in them flags a semantic change
/// in either the DRF search or the clamp.
fn drf_phase(scale: Scale) -> Value {
    let scenario = crate::scales::gpu_lublin(scale);
    let specs = ["dynmcb8", "dynmcb8-drf", "dynmcb8-drf-per:t=600"];
    let mut per_spec = Vec::new();
    let mut wall_total = 0.0;
    for key in specs {
        let start = Instant::now();
        let out = scenario.run(key).expect("builtin spec");
        let wall = secs(start);
        wall_total += wall;
        let repack = out.repack.unwrap_or_default();
        per_spec.push((
            key.to_string(),
            obj([
                ("wall_secs".into(), Value::Num(wall)),
                (
                    "events_processed".into(),
                    Value::Num(out.events_processed as f64),
                ),
                ("max_stretch".into(), Value::Num(out.max_stretch)),
                ("mean_stretch".into(), Value::Num(out.mean_stretch)),
                (
                    "preemptions".into(),
                    Value::Num(out.preemption_count as f64),
                ),
                ("migrations".into(), Value::Num(out.migration_count as f64)),
                ("searches".into(), Value::Num(repack.searches as f64)),
                ("packs".into(), Value::Num(repack.packs as f64)),
            ]),
        ));
    }
    obj([
        ("scenario".into(), Value::Str(scenario.label.clone())),
        ("jobs".into(), Value::Num(scenario.jobs.len() as f64)),
        (
            "gpu_jobs".into(),
            Value::Num(scenario.jobs.iter().filter(|j| j.gpu_need > 0.0).count() as f64),
        ),
        ("wall_secs".into(), Value::Num(wall_total)),
        ("specs".into(), obj(per_spec)),
    ])
}

fn campaign_phase(scale: Scale) -> Value {
    let scenarios = scale.scenarios();
    let specs = ["fcfs", "greedy-pmtn", "dynmcb8-per", "dynmcb8-stretch-per"];

    let start = Instant::now();
    let serial = Campaign::new(&scenarios, specs)
        .expect("builtin specs")
        .threads(1)
        .run();
    let serial_wall = secs(start);

    // Derive the worker count from the machine instead of hard-coding
    // it, capped so tiny matrices still have a few cells per worker.
    // `available_parallelism` failing means we know nothing about the
    // machine — claim nothing (1 thread) rather than invent workers.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_CAMPAIGN_THREADS);

    let mut fields = vec![
        ("scenarios".into(), Value::Num(scenarios.len() as f64)),
        ("specs".into(), Value::Num(specs.len() as f64)),
        ("serial_wall_secs".into(), Value::Num(serial_wall)),
        ("parallel_threads".into(), Value::Num(threads as f64)),
    ];

    // On a single-hardware-thread host a "parallel" run is the serial
    // run under another name, and the wall-clock ratio of two identical
    // runs is pure noise — recording it as a "speedup" would be a lie.
    // Run the threaded arm, and record a speedup, only when there are
    // real workers to measure; the perf guard rejects reports claiming
    // a speedup at 1 thread.
    let measured = if threads >= 2 {
        let start = Instant::now();
        let parallel = Campaign::new(&scenarios, specs)
            .expect("builtin specs")
            .threads(threads)
            .run();
        let parallel_wall = secs(start);
        assert_eq!(
            serial.fingerprint(),
            parallel.fingerprint(),
            "campaign determinism broke under threads"
        );
        fields.push(("parallel_wall_secs".into(), Value::Num(parallel_wall)));
        fields.push((
            "parallel_speedup".into(),
            Value::Num(serial_wall / parallel_wall.max(1e-9)),
        ));
        parallel
    } else {
        serial
    };

    // Per-unit wall times of the measured run, in the deterministic
    // (scenario, spec) matrix order — the raw data behind the
    // cost-aware dispatch order.
    let mut units = Vec::new();
    for (i, row) in measured.cells.iter().enumerate() {
        for cell in row {
            units.push(obj([
                (
                    "scenario".to_string(),
                    Value::Str(scenarios[i].label.clone()),
                ),
                ("spec".to_string(), Value::Str(cell.spec.to_string())),
                ("wall_secs".to_string(), Value::Num(cell.wall_secs)),
            ]));
        }
    }
    fields.push(("unit_wall_secs".into(), Value::Arr(units)));

    obj(fields)
}

/// The `pool` phase: price the parallel runtime itself, in isolation.
///
/// * **Tick fan-out** — the per-tick `thread::scope` spawn pattern the
///   sharded scheduler used before the persistent pool, against
///   `WorkerPool::scope` on long-lived workers, µs per tick over the
///   same fixed per-shard work. Both arms use the same thread count;
///   the difference is pure spawn cost, which the pool amortizes into
///   channel sends.
/// * **Group commit** — the write-ahead journal under `--fsync always`,
///   appending one record per fsync (the pre-group-commit discipline)
///   against batched `append_async` + one `wait_durable` per group
///   (what `Daemon::handle_batch` issues), commands per second.
///
/// Both comparisons assert result equality before reporting a number.
fn pool_phase() -> Value {
    use dfrs_core::pool::WorkerPool;
    use dfrs_serve::journal::{FsyncPolicy, Journal};

    const TICKS: usize = 1_000;
    const SHARDS: usize = 4;

    // Fixed per-shard busywork, heavy enough to be a real task and
    // light enough that per-tick spawn overhead stays visible.
    fn shard_work(seed: u64) -> u64 {
        let mut h = seed | 1;
        for i in 0..2_000u64 {
            h = h.wrapping_mul(0x0100_0000_01b3).wrapping_add(i);
        }
        std::hint::black_box(h)
    }

    let mut scoped_sum = 0u64;
    let start = Instant::now();
    for t in 0..TICKS {
        let mut slots = [0u64; SHARDS];
        std::thread::scope(|scope| {
            for (s, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || *slot = shard_work((t * SHARDS + s) as u64));
            }
        });
        scoped_sum = scoped_sum.wrapping_add(slots.iter().sum::<u64>());
    }
    let scoped_wall = secs(start);

    let pool = WorkerPool::new(SHARDS);
    let mut pool_sum = 0u64;
    let start = Instant::now();
    for t in 0..TICKS {
        let mut slots = [0u64; SHARDS];
        pool.scope(|scope| {
            for (s, slot) in slots.iter_mut().enumerate() {
                scope.execute(move || *slot = shard_work((t * SHARDS + s) as u64));
            }
        });
        pool_sum = pool_sum.wrapping_add(slots.iter().sum::<u64>());
    }
    let pool_wall = secs(start);
    assert_eq!(scoped_sum, pool_sum, "pool fan-out diverged from scoped");

    const JOURNAL_CMDS: usize = 2_000;
    const GROUP: usize = 64;
    let record = r#"{"cmd":"submit","time":1.0,"cpu":0.5,"mem":0.1,"runtime":60.0}"#;
    let dir = std::env::temp_dir().join(format!("dfrs-bench-pool-{}", std::process::id()));

    let _ = std::fs::remove_dir_all(&dir);
    let mut j = Journal::create(&dir, FsyncPolicy::Always, "{}").expect("fresh journal dir");
    let start = Instant::now();
    for _ in 0..JOURNAL_CMDS {
        j.append(record).expect("journal append");
    }
    let per_record_wall = secs(start);
    assert_eq!(j.last_seq(), JOURNAL_CMDS as u64);
    drop(j);

    let _ = std::fs::remove_dir_all(&dir);
    let mut j = Journal::create(&dir, FsyncPolicy::Always, "{}").expect("fresh journal dir");
    let start = Instant::now();
    let mut appended = 0usize;
    while appended < JOURNAL_CMDS {
        let group = GROUP.min(JOURNAL_CMDS - appended);
        let mut last = 0;
        for _ in 0..group {
            last = j.append_async(record).expect("journal append");
        }
        j.wait_durable(last).expect("group durable");
        appended += group;
    }
    let group_wall = secs(start);
    assert_eq!(j.last_seq(), JOURNAL_CMDS as u64);
    drop(j);
    let _ = std::fs::remove_dir_all(&dir);

    obj([
        ("ticks".into(), Value::Num(TICKS as f64)),
        ("shards".into(), Value::Num(SHARDS as f64)),
        (
            "scoped_us_per_tick".into(),
            Value::Num(scoped_wall * 1e6 / TICKS as f64),
        ),
        (
            "pool_us_per_tick".into(),
            Value::Num(pool_wall * 1e6 / TICKS as f64),
        ),
        (
            "spawn_amortization".into(),
            Value::Num(scoped_wall / pool_wall.max(1e-9)),
        ),
        ("journal_cmds".into(), Value::Num(JOURNAL_CMDS as f64)),
        ("group_size".into(), Value::Num(GROUP as f64)),
        (
            "per_record_cmds_per_sec".into(),
            Value::Num(JOURNAL_CMDS as f64 / per_record_wall.max(1e-9)),
        ),
        (
            "group_commit_cmds_per_sec".into(),
            Value::Num(JOURNAL_CMDS as f64 / group_wall.max(1e-9)),
        ),
        (
            "group_commit_speedup".into(),
            Value::Num(per_record_wall / group_wall.max(1e-9)),
        ),
    ])
}

fn sweep_phase() -> Value {
    // Mirrors `cargo run -p dfrs_experiments --bin sweep -- --instances 2
    // --jobs 400 --loads 0.3,0.5,0.7,0.9 --threads 1`: all nine
    // algorithms, both penalty settings.
    let loads = [0.3, 0.5, 0.7, 0.9];
    let start = Instant::now();
    let mut cells = 0usize;
    for penalty in [0.0, dfrs_core::constants::RESCHEDULING_PENALTY_SECS] {
        for &load in &loads {
            let instances = dfrs_experiments::instances::scaled_instances(2, 400, &[load], 1);
            let result = Campaign::over(&instances, &Algorithm::ALL)
                .penalty(penalty)
                .threads(1)
                .run();
            cells += result.cells.iter().map(Vec::len).sum::<usize>();
        }
    }
    let wall = secs(start);
    obj([
        ("cells".into(), Value::Num(cells as f64)),
        ("wall_secs".into(), Value::Num(wall)),
        ("seed_wall_secs".into(), Value::Num(SWEEP_SEED_WALL_SECS)),
        ("pr3_wall_secs".into(), Value::Num(SWEEP_PR3_WALL_SECS)),
        (
            "seed_wall_note".into(),
            Value::Str(
                "seed baseline measured on the reference container at commit c2d77df \
                 (pr3 baseline at b639a6f); the speedup ratios are only meaningful \
                 on comparable hardware"
                    .into(),
            ),
        ),
        (
            "speedup_vs_seed".into(),
            Value::Num(SWEEP_SEED_WALL_SECS / wall.max(1e-9)),
        ),
        (
            "speedup_vs_pr3".into(),
            Value::Num(SWEEP_PR3_WALL_SECS / wall.max(1e-9)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_inputs_are_deterministic() {
        assert_eq!(synthetic_items(32, 7), synthetic_items(32, 7));
        assert_eq!(synthetic_loads(16, 7), synthetic_loads(16, 7));
    }

    #[test]
    #[ignore = "manual sizing probe: a 1/50-scale huge phase, for tuning"]
    fn huge_probe() {
        let v = huge_phase_sized(HUGE_JOBS / 50);
        eprintln!("{}", v.pretty());
    }

    #[test]
    fn report_json_shape() {
        // Phases are expensive; check shape machinery on a stub report.
        let report = BenchReport {
            scale: Scale::Small,
            phases: vec![(
                "packing".into(),
                obj([("wall_secs".into(), Value::Num(0.5))]),
            )],
        };
        let v = report.to_json();
        assert_eq!(v.get("scale").unwrap().as_str(), Some("small"));
        let phases = v.get("phases").unwrap();
        assert!(phases.get("packing").is_some());
        let text = v.pretty();
        assert_eq!(crate::json::parse(&text).unwrap(), v);
    }
}
