//! Simulation results: per-job records plus the aggregates every paper
//! table and figure is computed from.

use dfrs_core::ids::JobId;
use dfrs_core::stretch::bounded_stretch;

/// One job's fate.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job.
    pub id: JobId,
    /// Submission time.
    pub submit: f64,
    /// First placement time, if the job ever started before completing.
    pub first_start: Option<f64>,
    /// Completion time.
    pub completion: f64,
    /// Dedicated-mode runtime (denominator of the stretch).
    pub dedicated: f64,
    /// Turn-around time (`completion − submit`).
    pub turnaround: f64,
    /// The bounded stretch (Section II-B2).
    pub stretch: f64,
    /// Pause occurrences.
    pub preemptions: u32,
    /// Move-while-running occurrences.
    pub migrations: u32,
    /// Node-failure kills (progress lost, job resubmitted; see
    /// [`crate::FailurePolicy::Restart`]).
    pub restarts: u32,
}

/// One scheduler-invocation timing sample (for the paper's §V timing
/// study of allocation compute times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionSample {
    /// Jobs in the system when the scheduler was invoked.
    pub jobs_in_system: u32,
    /// Wall-clock seconds the invocation took.
    pub wall_secs: f64,
}

/// Aggregate outcome of one simulation run.
///
/// All aggregates are folded online by the engine in record-emission
/// (= id) order, so a streamed run ([`crate::simulate_stream`]) that
/// discards its records still reports bit-identical aggregates to a
/// materialized one.
#[derive(Debug, Clone, Default)]
pub struct SimOutcome {
    /// Scheduler display name.
    pub algorithm: String,
    /// Per-job records, indexed by job id. Populated by the materialized
    /// entry points ([`crate::simulate`] / [`crate::try_simulate`]);
    /// empty for [`crate::simulate_stream`] runs, whose records went to
    /// the sink instead.
    pub records: Vec<JobRecord>,
    /// Maximum bounded stretch — the paper's headline metric.
    pub max_stretch: f64,
    /// Mean bounded stretch.
    pub mean_stretch: f64,
    /// Time of the last completion.
    pub makespan: f64,
    /// Total pause occurrences.
    pub preemption_count: u64,
    /// Total migration occurrences.
    pub migration_count: u64,
    /// GB moved through storage by pauses + resumes.
    pub preemption_gb: f64,
    /// GB moved through storage by migrations (save + restore).
    pub migration_gb: f64,
    /// Jobs killed by node failures and resubmitted from scratch
    /// ([`crate::FailurePolicy::Restart`]); occurrences, like
    /// preemptions.
    pub restart_count: u64,
    /// Accrued virtual time discarded by those kills (seconds) — work
    /// the cluster performed and lost.
    pub lost_virtual_seconds: f64,
    /// Integral of idle nodes over time (node-seconds) — the energy
    /// observation of Section II-B2.
    pub idle_node_seconds: f64,
    /// Integral of allocated CPU over time (node-seconds of useful
    /// allocation).
    pub busy_node_seconds: f64,
    /// Integral of out-of-service nodes over time (node-seconds);
    /// zero on the paper's static cluster.
    pub down_node_seconds: f64,
    /// Scheduler wall-clock: total seconds across invocations.
    pub sched_wall_total: f64,
    /// Scheduler wall-clock: worst single invocation.
    pub sched_wall_max: f64,
    /// Number of scheduler invocations.
    pub sched_calls: u64,
    /// Engine event-loop iterations processed (deterministic; the
    /// denominator of event-throughput measurements).
    pub events_processed: u64,
    /// Jobs that completed (the per-job rate denominator — equals
    /// `records.len()` on materialized runs, where every record is
    /// retained).
    pub jobs_completed: u64,
    /// High-water mark of jobs simultaneously in the system.
    pub peak_live_jobs: u64,
    /// High-water mark of resident [`crate::state::JobStore`] entries
    /// (live set plus the completed prefix awaiting emission) — the
    /// memory bound a streamed run actually held.
    pub peak_resident_jobs: u64,
    /// Warm-start accounting reported by the scheduler, when it keeps
    /// any ([`Scheduler::repack_stats`](crate::Scheduler::repack_stats)).
    /// Observational only — never part of outcome fingerprints.
    pub repack: Option<crate::plan::RepackStats>,
    /// Per-invocation samples (populated when requested in `SimConfig`).
    pub decisions: Vec<DecisionSample>,
    /// Full allocation log (populated when `SimConfig::record_timeline`).
    pub timeline: crate::timeline::Timeline,
}

impl SimOutcome {
    /// Average storage bandwidth consumed by preemptions, GB/s over the
    /// makespan (Table II, "Bandwidth Consumption — pmtn").
    pub fn preemption_bandwidth_gbs(&self) -> f64 {
        if self.makespan > 0.0 {
            self.preemption_gb / self.makespan
        } else {
            0.0
        }
    }

    /// Average storage bandwidth consumed by migrations, GB/s (Table II).
    pub fn migration_bandwidth_gbs(&self) -> f64 {
        if self.makespan > 0.0 {
            self.migration_gb / self.makespan
        } else {
            0.0
        }
    }

    /// Preemptions per hour of simulated time (Table II).
    pub fn preemptions_per_hour(&self) -> f64 {
        if self.makespan > 0.0 {
            self.preemption_count as f64 / (self.makespan / 3600.0)
        } else {
            0.0
        }
    }

    /// Migrations per hour of simulated time (Table II).
    pub fn migrations_per_hour(&self) -> f64 {
        if self.makespan > 0.0 {
            self.migration_count as f64 / (self.makespan / 3600.0)
        } else {
            0.0
        }
    }

    /// Preemptions per job (Table II).
    pub fn preemptions_per_job(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.preemption_count as f64 / self.jobs_completed as f64
        }
    }

    /// Migrations per job (Table II).
    pub fn migrations_per_job(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.migration_count as f64 / self.jobs_completed as f64
        }
    }

    /// Failure-induced restarts per job (the availability study's
    /// occurrence-rate analogue of Table II).
    pub fn restarts_per_job(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.restart_count as f64 / self.jobs_completed as f64
        }
    }

    /// Mean fraction of the cluster out of service over the makespan
    /// (0 on a static cluster).
    pub fn mean_unavailability(&self, nodes: u32) -> f64 {
        if self.makespan > 0.0 && nodes > 0 {
            self.down_node_seconds / (self.makespan * nodes as f64)
        } else {
            0.0
        }
    }
}

/// Compute a job record from raw times.
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_record(
    id: JobId,
    submit: f64,
    first_start: Option<f64>,
    completion: f64,
    dedicated: f64,
    preemptions: u32,
    migrations: u32,
    restarts: u32,
) -> JobRecord {
    let turnaround = completion - submit;
    JobRecord {
        id,
        submit,
        first_start,
        completion,
        dedicated,
        turnaround,
        stretch: bounded_stretch(turnaround, dedicated),
        preemptions,
        migrations,
        restarts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Outcome with aggregates folded the way the engine folds them
    /// online (same ops, same order).
    fn outcome_with(records: Vec<JobRecord>, makespan: f64) -> SimOutcome {
        let max_stretch = records.iter().map(|r| r.stretch).fold(0.0, f64::max);
        let mean_stretch = if records.is_empty() {
            0.0
        } else {
            records.iter().map(|r| r.stretch).sum::<f64>() / records.len() as f64
        };
        SimOutcome {
            jobs_completed: records.len() as u64,
            records,
            makespan,
            max_stretch,
            mean_stretch,
            ..SimOutcome::default()
        }
    }

    fn rec(stretch_inputs: (f64, f64)) -> JobRecord {
        let (turnaround, dedicated) = stretch_inputs;
        make_record(JobId(0), 0.0, Some(0.0), turnaround, dedicated, 0, 0, 0)
    }

    #[test]
    fn stretch_aggregates() {
        let o = outcome_with(vec![rec((100.0, 50.0)), rec((400.0, 50.0))], 400.0);
        assert!((o.max_stretch - 8.0).abs() < 1e-12);
        assert!((o.mean_stretch - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table2_rates() {
        let mut o = outcome_with(vec![rec((100.0, 50.0)); 4], 7200.0);
        o.preemption_count = 8;
        o.migration_count = 2;
        o.preemption_gb = 72.0;
        assert!((o.preemptions_per_hour() - 4.0).abs() < 1e-12);
        assert!((o.migrations_per_hour() - 1.0).abs() < 1e-12);
        assert!((o.preemptions_per_job() - 2.0).abs() < 1e-12);
        assert!((o.preemption_bandwidth_gbs() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_outcome_is_all_zeros() {
        let o = outcome_with(vec![], 0.0);
        assert_eq!(o.max_stretch, 0.0);
        assert_eq!(o.mean_stretch, 0.0);
        assert_eq!(o.preemptions_per_hour(), 0.0);
        assert_eq!(o.migrations_per_job(), 0.0);
    }

    #[test]
    fn record_computes_bounded_stretch() {
        let r = make_record(JobId(3), 100.0, Some(150.0), 400.0, 10.0, 1, 2, 3);
        assert_eq!(r.turnaround, 300.0);
        assert!((r.stretch - 10.0).abs() < 1e-12); // max(300,30)/max(10,30)
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.migrations, 2);
        assert_eq!(r.restarts, 3);
    }

    #[test]
    fn availability_rates() {
        let mut o = outcome_with(vec![rec((100.0, 50.0)); 4], 1_000.0);
        o.restart_count = 2;
        o.down_node_seconds = 500.0;
        assert!((o.restarts_per_job() - 0.5).abs() < 1e-12);
        // 500 down node-seconds over 1000 s × 10 nodes = 5 %.
        assert!((o.mean_unavailability(10) - 0.05).abs() < 1e-12);
        assert_eq!(o.mean_unavailability(0), 0.0);
    }
}
