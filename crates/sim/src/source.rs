//! Pull-based job submission and push-based record emission.
//!
//! The streaming engine loop ([`crate::simulate_stream`]) never holds
//! the whole workload: it pulls the next [`JobSpec`] from a
//! [`SubmissionSource`] exactly when the previous one has been admitted
//! (one-job lookahead), and streams each finished job's
//! [`JobRecord`] out through a [`RecordSink`] as soon
//! as every lower-id job has also completed. The materialized path
//! ([`crate::simulate`]) is the trivial composition: a [`SliceSource`]
//! over a `Vec<JobSpec>` feeding a `Vec<JobRecord>` sink — byte-identical
//! outcomes, since the engine sees the same pull order either way.
//!
//! Sources must yield jobs with **dense, in-order ids** (`j0, j1, …`)
//! and **non-decreasing, finite submit times**; the engine validates
//! both at pull time and surfaces violations as
//! [`SimError`](crate::SimError) values rather than panics, so a
//! long-lived daemon can reject bad input and keep serving.

use dfrs_core::job::JobSpec;

use crate::outcome::JobRecord;

/// A pull-based feed of job submissions, consumed in submit-time order.
pub trait SubmissionSource {
    /// The next job to arrive, or `None` when the feed is exhausted.
    fn next_job(&mut self) -> Option<JobSpec>;

    /// Total number of jobs, when known up front (lets the engine
    /// pre-reserve; purely an optimization hint).
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streams a workload already materialized as a slice (the adapter the
/// batch path uses — clones each spec on pull, never the whole vector).
pub struct SliceSource<'a> {
    jobs: &'a [JobSpec],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Source over `jobs` in slice order (callers keep workloads sorted
    /// by submit time with dense ids).
    pub fn new(jobs: &'a [JobSpec]) -> Self {
        SliceSource { jobs, pos: 0 }
    }
}

impl SubmissionSource for SliceSource<'_> {
    fn next_job(&mut self) -> Option<JobSpec> {
        let j = self.jobs.get(self.pos)?;
        self.pos += 1;
        Some(*j)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.jobs.len())
    }
}

/// Adapts any `Iterator<Item = JobSpec>` (generator closures, channel
/// receivers, decoded feeds) into a [`SubmissionSource`].
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = JobSpec>> IterSource<I> {
    /// Wrap `iter`; items must follow the source contract (dense ids,
    /// non-decreasing submit times).
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = JobSpec>> SubmissionSource for IterSource<I> {
    fn next_job(&mut self) -> Option<JobSpec> {
        self.iter.next()
    }
}

/// Receives completed-job records as they leave the engine's live
/// window (in job-id order — the same order the batch path's
/// materialized `records` vector has always used).
pub trait RecordSink {
    /// Accept one finished job's record.
    fn record(&mut self, rec: JobRecord);
}

/// The materialized sink: collect every record.
impl RecordSink for Vec<JobRecord> {
    fn record(&mut self, rec: JobRecord) {
        self.push(rec);
    }
}

/// Drops records on the floor — for throughput benchmarks and daemon
/// runs where per-job records are forwarded elsewhere before discard.
pub struct DiscardRecords;

impl RecordSink for DiscardRecords {
    fn record(&mut self, _rec: JobRecord) {}
}

/// Forwards each record to a closure (the serve daemon's NDJSON
/// emitter).
pub struct FnSink<F: FnMut(JobRecord)>(pub F);

impl<F: FnMut(JobRecord)> RecordSink for FnSink<F> {
    fn record(&mut self, rec: JobRecord) {
        (self.0)(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::ids::JobId;

    fn spec(i: u32, t: f64) -> JobSpec {
        JobSpec::new(JobId(i), t, 1, 1.0, 0.1, 100.0).unwrap()
    }

    #[test]
    fn slice_source_yields_in_order_with_hint() {
        let jobs = vec![spec(0, 0.0), spec(1, 5.0)];
        let mut s = SliceSource::new(&jobs);
        assert_eq!(s.size_hint(), Some(2));
        assert_eq!(s.next_job().unwrap().id, JobId(0));
        assert_eq!(s.next_job().unwrap().id, JobId(1));
        assert!(s.next_job().is_none());
        assert!(s.next_job().is_none());
    }

    #[test]
    fn iter_source_wraps_generators() {
        let mut s = IterSource::new((0..3).map(|i| spec(i, i as f64)));
        assert!(s.size_hint().is_none());
        let mut n = 0;
        while let Some(j) = s.next_job() {
            assert_eq!(j.id, JobId(n));
            n += 1;
        }
        assert_eq!(n, 3);
    }
}
