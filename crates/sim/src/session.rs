//! Long-lived scheduling sessions with snapshot/restore.
//!
//! A [`SimSession`] is the engine turned inside out: instead of a
//! source that is drained to completion, *commands* arrive one at a
//! time — submit a job, fail or repair a node, advance the clock — and
//! the session pumps the event loop up to each command's instant before
//! applying it. This is the backend of the `dfrs-serve` daemon.
//!
//! ## Determinism contract
//!
//! A session is driven by the **same iteration rule** as
//! [`crate::simulate_stream`]: every pump iteration counts once against
//! `events_processed`, advances the clock to the earliest of the next
//! derived completion / queue event / command instant, settles all due
//! completions, and then dispatches at most one discrete event — with
//! submissions winning ties against queue events, exactly as in the
//! batch loop. A session fed the jobs of a trace via [`SimSession::submit`]
//! and finished with [`SimSession::drain`] therefore produces an outcome
//! **bit-identical** to [`crate::try_simulate`] over the same trace:
//! same aggregates, same float bits, same `events_processed`.
//!
//! ## Snapshots
//!
//! [`SimSession::snapshot`] serializes the full engine state as a
//! `dfrs-snapshot-v1` JSON document, and [`SimSession::restore`] rebuilds
//! a session that continues **byte-identically**: the same command
//! sequence applied with or without a snapshot/restore cycle in between
//! yields the same bits. Snapshots are only defined at **quiescence**
//! (no jobs in the system) because then:
//!
//! * the job window is empty (every record has streamed out), so no
//!   per-job state needs serializing;
//! * every outstanding timer is necessarily stale (timers target live
//!   pending jobs), so the timer-version window is empty and entries
//!   can round-trip as opaque `(time, seq, kind, ver)` tuples;
//! * registry schedulers decide identically warm or cold, so the
//!   scheduler is *not* serialized — the restorer rebuilds it fresh
//!   from the registry spec recorded in the snapshot
//!   ([`snapshot_spec`] reads it back).
//!
//! Floats are stored as bit-exact `"0x…"` strings ([`json::bits`]);
//! wall-clock scheduler timings are zeroed on restore (they are
//! measurements of the host, not simulation state). Emitted records,
//! decision samples, and timeline entries are *outputs*, not state —
//! drain them before snapshotting or they stay behind.

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::json::{self, bits, obj, Value};
use dfrs_core::{ClusterSpec, JobSpec};

use crate::engine::{EngineCore, FailurePolicy, MigrationMode, SimConfig};
use crate::error::SimError;
use crate::event::{EventKind, EventQueue};
use crate::outcome::{JobRecord, SimOutcome};
use crate::plan::{SchedEvent, Scheduler};
use crate::source::SliceSource;
use crate::state::{JobStatus, JobStore, SimState};
use crate::timeline::TimelineEntry;

/// Snapshot schema identifier (bump on any incompatible change).
pub const SNAPSHOT_SCHEMA: &str = "dfrs-snapshot-v1";

/// A long-lived simulation driven by commands instead of a materialized
/// trace. See the module docs for the determinism contract.
pub struct SimSession {
    core: EngineCore,
    config: SimConfig,
    scheduler: Box<dyn Scheduler>,
    /// The registry spec (or any opaque label) this session's scheduler
    /// was built from; recorded in snapshots so the restorer can rebuild
    /// the scheduler.
    spec: String,
    /// Records emitted since the last [`SimSession::take_records`].
    records: Vec<JobRecord>,
}

impl SimSession {
    /// Fresh session at `t = 0`. `spec` is the scheduler-registry spec
    /// (an opaque label to this crate) preserved in snapshots;
    /// `config.node_events` are installed into the queue up front, like
    /// a batch run's.
    pub fn new(
        cluster: ClusterSpec,
        spec: impl Into<String>,
        scheduler: Box<dyn Scheduler>,
        config: SimConfig,
    ) -> Self {
        let mut core = EngineCore::new(cluster);
        core.install_clock_events(&*scheduler, &config);
        SimSession {
            core,
            config,
            scheduler,
            spec: spec.into(),
            records: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.core.state.now
    }

    /// The scheduler spec this session was built from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Jobs currently in the system (submitted, not completed).
    pub fn live_jobs(&self) -> usize {
        self.core.state.live.len()
    }

    /// Jobs admitted so far.
    pub fn admitted(&self) -> usize {
        self.core.admitted
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> usize {
        self.core.completed
    }

    /// Engine iterations processed so far (deterministic).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// True when no job is in the system — the only instants at which
    /// [`SimSession::snapshot`] is defined.
    pub fn is_quiescent(&self) -> bool {
        self.core.state.live.is_empty()
    }

    /// Read-only view of the engine state (for inspection; schedulers
    /// get the same view during rounds).
    pub fn state(&self) -> &SimState {
        &self.core.state
    }

    /// Submit one job. Ids must be dense and in admission order; the
    /// submit time must be finite and `>= now()`. Pumps the loop up to
    /// the submission instant (completions and queue events due earlier
    /// fire first; at the exact instant the arrival wins ties, as in the
    /// batch loop), then admits the job and runs its scheduler round.
    ///
    /// # Errors
    /// [`SimError::NonDenseSubmission`] / [`SimError::SubmissionOutOfOrder`]
    /// on contract violations (the session state is untouched);
    /// [`SimError::EventCapExceeded`] from the runaway guard.
    pub fn submit(&mut self, job: JobSpec) -> Result<JobId, SimError> {
        let expected = JobId(self.core.state.jobs.len() as u32);
        if job.id != expected {
            return Err(SimError::NonDenseSubmission {
                expected,
                got: job.id,
            });
        }
        if !job.submit_time.is_finite() || job.submit_time < self.core.state.now {
            return Err(SimError::SubmissionOutOfOrder {
                job: job.id,
                time: job.submit_time,
                now: self.core.state.now,
            });
        }
        // Mirror `run_stream` with `job` as the pending arrival: one
        // bump per iteration, arrivals before queue events at ties.
        loop {
            self.core.bump_events(&self.config)?;
            let mut t_next = job.submit_time;
            if let Some((tc, _)) = self.core.next_completion() {
                t_next = t_next.min(tc);
            }
            if let Some(te) = self.core.queue.peek_time() {
                t_next = t_next.min(te);
            }
            self.core.advance_to(t_next);
            self.core
                .settle_completions(&mut *self.scheduler, &self.config, &mut self.records);
            if job.submit_time <= self.core.state.now {
                let id = self.core.admit(job);
                let plan = self.core.call_scheduler(
                    &mut *self.scheduler,
                    SchedEvent::Submit(id),
                    &self.config,
                );
                self.core.apply_plan(plan, &self.config);
                return Ok(id);
            }
            self.core
                .handle_due_queue_event(&mut *self.scheduler, &self.config);
        }
    }

    /// Take a node out of service (`up == false`) or return it
    /// (`up == true`) at `time`. Pumps the loop up to `time` — queue
    /// events already scheduled at exactly `time` fire first (they carry
    /// earlier sequence numbers) — then applies the transition with its
    /// scheduler round. A duplicate transition (down on a down node, up
    /// on an up node) is dropped silently, exactly like a duplicate in
    /// an availability trace.
    ///
    /// # Errors
    /// [`SimError::UnknownNode`] / [`SimError::CommandInPast`] on bad
    /// arguments (session untouched); [`SimError::EventCapExceeded`]
    /// from the runaway guard.
    pub fn node_event(&mut self, time: f64, node: NodeId, up: bool) -> Result<(), SimError> {
        let nodes = self.core.state.cluster.spec.nodes;
        if node.index() >= nodes as usize {
            return Err(SimError::UnknownNode { node, nodes });
        }
        if !time.is_finite() || time < self.core.state.now {
            return Err(SimError::CommandInPast {
                time,
                now: self.core.state.now,
            });
        }
        loop {
            self.core.bump_events(&self.config)?;
            let mut t_next = time;
            if let Some((tc, _)) = self.core.next_completion() {
                t_next = t_next.min(tc);
            }
            if let Some(te) = self.core.queue.peek_time() {
                t_next = t_next.min(te);
            }
            self.core.advance_to(t_next);
            self.core
                .settle_completions(&mut *self.scheduler, &self.config, &mut self.records);
            if self
                .core
                .handle_due_queue_event(&mut *self.scheduler, &self.config)
            {
                continue;
            }
            if self.core.state.now >= time {
                let is_up = self.core.state.cluster.is_up(node);
                if up != is_up {
                    if up {
                        self.core.state.cluster.set_node_up(node, true);
                        let plan = self.core.call_scheduler(
                            &mut *self.scheduler,
                            SchedEvent::NodeUp(node),
                            &self.config,
                        );
                        self.core.apply_plan(plan, &self.config);
                    } else {
                        self.core.fail_node(node, &self.config);
                        let plan = self.core.call_scheduler(
                            &mut *self.scheduler,
                            SchedEvent::NodeDown(node),
                            &self.config,
                        );
                        self.core.apply_plan(plan, &self.config);
                    }
                }
                return Ok(());
            }
        }
    }

    /// Advance the clock to `t`, processing every completion and queue
    /// event due on the way (each costs one iteration, as always). The
    /// final positioning to `t` itself is free — it dispatches nothing.
    ///
    /// # Errors
    /// [`SimError::CommandInPast`] when `t` is non-finite or behind the
    /// clock; [`SimError::EventCapExceeded`] from the runaway guard.
    pub fn advance_to(&mut self, t: f64) -> Result<(), SimError> {
        if !t.is_finite() || t < self.core.state.now {
            return Err(SimError::CommandInPast {
                time: t,
                now: self.core.state.now,
            });
        }
        loop {
            let mut t_next = f64::INFINITY;
            if let Some((tc, _)) = self.core.next_completion() {
                t_next = t_next.min(tc);
            }
            if let Some(te) = self.core.queue.peek_time() {
                t_next = t_next.min(te);
            }
            if t_next > t {
                break;
            }
            self.core.bump_events(&self.config)?;
            self.core.advance_to(t_next);
            self.core
                .settle_completions(&mut *self.scheduler, &self.config, &mut self.records);
            self.core
                .handle_due_queue_event(&mut *self.scheduler, &self.config);
        }
        self.core.advance_to(t);
        Ok(())
    }

    /// Run the loop until every admitted job has completed — the tail of
    /// a batch run. Identical to the end of [`crate::simulate_stream`]
    /// with a dry source.
    ///
    /// # Errors
    /// [`SimError::Deadlock`] when jobs are stuck with no event that
    /// could ever free them; [`SimError::EventCapExceeded`] from the
    /// runaway guard.
    pub fn drain(&mut self) -> Result<(), SimError> {
        let mut dry = SliceSource::new(&[]);
        self.core.run_stream(
            &mut *self.scheduler,
            &mut dry,
            &mut self.records,
            &self.config,
        )
    }

    /// Cancel a job: remove it from the system at the current instant
    /// without finishing its work. A pending or paused job is first
    /// *withdrawn* from the scheduler ([`SchedEvent::Withdraw`]), so
    /// composite schedulers can drop their bookkeeping; a running job
    /// frees its tasks and the scheduler sees an ordinary
    /// [`SchedEvent::Complete`] round — from its point of view a cancel
    /// is indistinguishable from an early completion, so waiting jobs
    /// get the freed capacity immediately. The canceled job's record is
    /// emitted through the normal drain path (its completion time is
    /// the cancel instant; accrued progress counts as lost work).
    ///
    /// This is what the serve layer's quarantine uses to excise a job
    /// whose plan round failed, so the daemon can keep serving.
    ///
    /// # Errors
    /// [`SimError::UnknownJob`] when the id was never admitted (or its
    /// record was already drained); [`SimError::NotCancelable`] when the
    /// job has already completed. The session is untouched on error.
    pub fn cancel(&mut self, id: JobId) -> Result<(), SimError> {
        let status = match self.core.state.jobs.get(id.index()) {
            None => return Err(SimError::UnknownJob { job: id }),
            Some(j) => j.status,
        };
        if matches!(status, JobStatus::Pending | JobStatus::Paused) {
            let plan = self.core.call_scheduler(
                &mut *self.scheduler,
                SchedEvent::Withdraw(id),
                &self.config,
            );
            self.core.apply_plan(plan, &self.config);
        }
        // Re-read the status: the withdraw round may have moved the job
        // (legal, if pointless); `cancel_job` validates whatever holds
        // now and errors on already-completed jobs.
        let was_running = self.core.cancel_job(id, &self.config)?;
        if was_running {
            let plan = self.core.call_scheduler(
                &mut *self.scheduler,
                SchedEvent::Complete(id),
                &self.config,
            );
            self.core.apply_plan(plan, &self.config);
        }
        self.core.drain_completed(&mut self.records);
        Ok(())
    }

    /// Records emitted since the last call (in completion-prefix order,
    /// i.e. ascending job id).
    pub fn take_records(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.records)
    }

    /// Timeline entries recorded since the last call (empty unless
    /// [`SimConfig::record_timeline`] is set). Draining between commands
    /// keeps a long-lived session's memory flat.
    pub fn take_timeline(&mut self) -> Vec<TimelineEntry> {
        self.core.timeline.take_entries()
    }

    /// Finish the session and report the aggregate outcome (records
    /// taken earlier are not re-attached; the ones still buffered are).
    pub fn outcome(mut self) -> SimOutcome {
        let mut outcome = self.core.into_outcome(self.scheduler.name());
        outcome.repack = self.scheduler.repack_stats();
        outcome.records = std::mem::take(&mut self.records);
        outcome
    }

    /// Serialize the full engine state as a `dfrs-snapshot-v1` document.
    /// Only defined at quiescence (see the module docs for why).
    ///
    /// # Errors
    /// [`SimError::NotQuiescent`] when jobs are still in the system.
    pub fn snapshot(&self) -> Result<Value, SimError> {
        let live = self.core.state.live.len();
        if live != 0 {
            return Err(SimError::NotQuiescent { live });
        }
        debug_assert_eq!(
            self.core.state.jobs.resident(),
            0,
            "quiescent session with resident jobs (undrained records?)"
        );
        let c = &self.core;
        let spec = c.state.cluster.spec;
        let down: Vec<Value> = (0..spec.nodes)
            .filter(|&n| !c.state.cluster.is_up(NodeId(n)))
            .map(|n| Value::Num(n as f64))
            .collect();
        let node_epoch: Vec<Value> = (0..spec.nodes)
            .map(|n| Value::Num(c.state.cluster.node_epoch(NodeId(n)) as f64))
            .collect();
        let (entries, seq, timer_base) = c.queue.snapshot_parts();
        let entries: Vec<Value> = entries
            .iter()
            .map(|&(time, eseq, kind, ver)| {
                let (tag, arg) = match kind {
                    EventKind::Submit(j) => ("submit", Value::Num(j.0 as f64)),
                    EventKind::Timer(j) => ("timer", Value::Num(j.0 as f64)),
                    EventKind::Tick => ("tick", Value::Null),
                    EventKind::NodeDown(n) => ("down", Value::Num(n.0 as f64)),
                    EventKind::NodeUp(n) => ("up", Value::Num(n.0 as f64)),
                };
                Value::Arr(vec![
                    bits(time),
                    Value::Num(eseq as f64),
                    Value::Str(tag.into()),
                    arg,
                    Value::Num(ver as f64),
                ])
            })
            .collect();
        let migration = match self.config.migration_mode {
            MigrationMode::StopAndCopy => Value::Str("stop-and-copy".into()),
            MigrationMode::Live { freeze_secs } => {
                obj([("live_freeze_secs".into(), bits(freeze_secs))])
            }
        };
        let failure_policy = match self.config.failure_policy {
            FailurePolicy::Restart => "restart",
            FailurePolicy::PausePreserve => "pause-preserve",
        };
        Ok(obj([
            ("schema".into(), Value::Str(SNAPSHOT_SCHEMA.into())),
            ("spec".into(), Value::Str(self.spec.clone())),
            ("now".into(), bits(c.state.now)),
            (
                "cluster".into(),
                obj([
                    ("nodes".into(), Value::Num(spec.nodes as f64)),
                    (
                        "cores_per_node".into(),
                        Value::Num(spec.cores_per_node as f64),
                    ),
                    ("node_memory_gb".into(), bits(spec.node_memory_gb)),
                    ("down".into(), Value::Arr(down)),
                    ("epoch".into(), Value::Num(c.state.cluster.epoch() as f64)),
                    ("node_epoch".into(), Value::Arr(node_epoch)),
                ]),
            ),
            (
                // `node_events` are deliberately absent: they were
                // materialized into the queue at session start and
                // travel with it.
                "config".into(),
                obj([
                    ("penalty".into(), bits(self.config.penalty)),
                    ("migration".into(), migration),
                    ("failure_policy".into(), Value::Str(failure_policy.into())),
                    ("validate".into(), Value::Bool(self.config.validate)),
                    (
                        "record_decisions".into(),
                        Value::Bool(self.config.record_decisions),
                    ),
                    (
                        "record_timeline".into(),
                        Value::Bool(self.config.record_timeline),
                    ),
                    (
                        "max_events".into(),
                        Value::Num(self.config.max_events as f64),
                    ),
                ]),
            ),
            (
                "counts".into(),
                obj([
                    ("admitted".into(), Value::Num(c.admitted as f64)),
                    ("completed".into(), Value::Num(c.completed as f64)),
                    (
                        "events_processed".into(),
                        Value::Num(c.events_processed as f64),
                    ),
                    ("sched_calls".into(), Value::Num(c.sched_calls as f64)),
                    ("pmtn_count".into(), Value::Num(c.pmtn_count as f64)),
                    ("migr_count".into(), Value::Num(c.migr_count as f64)),
                    ("restart_count".into(), Value::Num(c.restart_count as f64)),
                    ("peak_live".into(), Value::Num(c.peak_live as f64)),
                    ("peak_resident".into(), Value::Num(c.peak_resident as f64)),
                ]),
            ),
            (
                "floats".into(),
                obj([
                    ("pmtn_gb".into(), bits(c.pmtn_gb)),
                    ("migr_gb".into(), bits(c.migr_gb)),
                    ("lost_vt".into(), bits(c.lost_vt)),
                    ("idle_ns".into(), bits(c.idle_ns)),
                    ("busy_ns".into(), bits(c.busy_ns)),
                    ("down_ns".into(), bits(c.down_ns)),
                    ("makespan".into(), bits(c.makespan)),
                    ("stretch_max".into(), bits(c.stretch_max)),
                    ("stretch_sum".into(), bits(c.stretch_sum)),
                ]),
            ),
            ("state_epoch".into(), Value::Num(c.state.epoch as f64)),
            (
                "queue".into(),
                obj([
                    ("seq".into(), Value::Num(seq as f64)),
                    ("timer_base".into(), Value::Num(timer_base as f64)),
                    ("entries".into(), Value::Arr(entries)),
                ]),
            ),
        ]))
    }

    /// Rebuild a session from a [`SimSession::snapshot`] document and a
    /// freshly built scheduler (use [`snapshot_spec`] to read the spec
    /// and build it from the registry **before** calling this). The
    /// restored session continues byte-identically; wall-clock scheduler
    /// timings restart at zero.
    ///
    /// # Errors
    /// [`SimError::SnapshotMalformed`] when the document is not a
    /// well-formed `dfrs-snapshot-v1` snapshot.
    pub fn restore(v: &Value, scheduler: Box<dyn Scheduler>) -> Result<Self, SimError> {
        Self::restore_impl(v, scheduler).map_err(|detail| SimError::SnapshotMalformed { detail })
    }

    fn restore_impl(v: &Value, scheduler: Box<dyn Scheduler>) -> Result<Self, String> {
        let schema = str_field(v, "schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "snapshot: schema {schema:?} is not {SNAPSHOT_SCHEMA:?}"
            ));
        }
        let spec = str_field(v, "spec")?.to_string();
        let now = bits_field(v, "now")?;

        let cl = field(v, "cluster")?;
        let cluster_spec = ClusterSpec::new(
            num_field(cl, "nodes")? as u32,
            num_field(cl, "cores_per_node")? as u32,
            bits_field(cl, "node_memory_gb")?,
        )
        .map_err(|e| format!("snapshot: bad cluster: {e}"))?;
        let down: Vec<NodeId> = arr_field(cl, "down")?
            .iter()
            .map(|x| as_num(x, "cluster.down[]").map(|n| NodeId(n as u32)))
            .collect::<Result<_, _>>()?;
        if let Some(bad) = down
            .iter()
            .find(|n| n.index() >= cluster_spec.nodes as usize)
        {
            return Err(format!("snapshot: down node {bad} outside the cluster"));
        }
        let node_epoch: Vec<u64> = arr_field(cl, "node_epoch")?
            .iter()
            .map(|x| as_num(x, "cluster.node_epoch[]").map(|n| n as u64))
            .collect::<Result<_, _>>()?;
        if node_epoch.len() != cluster_spec.nodes as usize {
            return Err(format!(
                "snapshot: node_epoch has {} entries for {} nodes",
                node_epoch.len(),
                cluster_spec.nodes
            ));
        }
        let cluster_epoch = num_field(cl, "epoch")? as u64;

        let cf = field(v, "config")?;
        let migration_mode = match cf.get("migration") {
            Some(Value::Str(s)) if s == "stop-and-copy" => MigrationMode::StopAndCopy,
            Some(m @ Value::Obj(_)) => MigrationMode::Live {
                freeze_secs: bits_field(m, "live_freeze_secs")?,
            },
            _ => return Err("snapshot: bad config.migration".into()),
        };
        let failure_policy = match str_field(cf, "failure_policy")? {
            "restart" => FailurePolicy::Restart,
            "pause-preserve" => FailurePolicy::PausePreserve,
            other => return Err(format!("snapshot: bad failure_policy {other:?}")),
        };
        let config = SimConfig {
            penalty: bits_field(cf, "penalty")?,
            migration_mode,
            failure_policy,
            // Already materialized in the queue; re-installing would
            // double-fire them.
            node_events: Vec::new(),
            validate: bool_field(cf, "validate")?,
            record_decisions: bool_field(cf, "record_decisions")?,
            record_timeline: bool_field(cf, "record_timeline")?,
            max_events: num_field(cf, "max_events")? as u64,
        };

        let cn = field(v, "counts")?;
        let admitted = num_field(cn, "admitted")? as usize;
        let completed = num_field(cn, "completed")? as usize;
        if completed != admitted {
            return Err(format!(
                "snapshot: not quiescent ({admitted} admitted, {completed} completed)"
            ));
        }

        let q = field(v, "queue")?;
        let mut entries: Vec<(f64, u64, EventKind, u32)> = Vec::new();
        for e in arr_field(q, "entries")? {
            let row = e
                .as_arr()
                .filter(|r| r.len() == 5)
                .ok_or("snapshot: queue entry is not a 5-tuple")?;
            let time = row[0]
                .as_bits_f64()
                .ok_or("snapshot: bad queue entry time")?;
            let eseq = as_num(&row[1], "queue entry seq")? as u64;
            let tag = row[2].as_str().ok_or("snapshot: bad queue entry kind")?;
            let arg = |what: &str| as_num(&row[3], what).map(|n| n as u32);
            let kind = match tag {
                "submit" => EventKind::Submit(JobId(arg("submit job")?)),
                "timer" => EventKind::Timer(JobId(arg("timer job")?)),
                "tick" => EventKind::Tick,
                "down" => EventKind::NodeDown(NodeId(arg("down node")?)),
                "up" => EventKind::NodeUp(NodeId(arg("up node")?)),
                other => return Err(format!("snapshot: unknown event kind {other:?}")),
            };
            let ver = as_num(&row[4], "queue entry ver")? as u32;
            entries.push((time, eseq, kind, ver));
        }
        let queue = EventQueue::restore_parts(
            &entries,
            num_field(q, "seq")? as u64,
            num_field(q, "timer_base")? as usize,
        );

        let fl = field(v, "floats")?;
        let mut core = EngineCore::new(cluster_spec);
        core.state = SimState {
            now,
            cluster: crate::state::ClusterState::restore(
                cluster_spec,
                &down,
                cluster_epoch,
                node_epoch,
            ),
            jobs: JobStore::with_base(admitted),
            live: Vec::new(),
            running: Vec::new(),
            epoch: num_field(v, "state_epoch")? as u64,
        };
        core.queue = queue;
        core.admitted = admitted;
        core.completed = completed;
        core.pmtn_count = num_field(cn, "pmtn_count")? as u64;
        core.migr_count = num_field(cn, "migr_count")? as u64;
        core.restart_count = num_field(cn, "restart_count")? as u64;
        core.peak_live = num_field(cn, "peak_live")? as usize;
        core.peak_resident = num_field(cn, "peak_resident")? as usize;
        core.events_processed = num_field(cn, "events_processed")? as u64;
        core.sched_calls = num_field(cn, "sched_calls")? as u64;
        core.pmtn_gb = bits_field(fl, "pmtn_gb")?;
        core.migr_gb = bits_field(fl, "migr_gb")?;
        core.lost_vt = bits_field(fl, "lost_vt")?;
        core.idle_ns = bits_field(fl, "idle_ns")?;
        core.busy_ns = bits_field(fl, "busy_ns")?;
        core.down_ns = bits_field(fl, "down_ns")?;
        core.makespan = bits_field(fl, "makespan")?;
        core.stretch_max = bits_field(fl, "stretch_max")?;
        core.stretch_sum = bits_field(fl, "stretch_sum")?;
        // Wall-clock timings (sched_wall, sched_max) stay zero: they
        // measure the host, not the simulation.

        Ok(SimSession {
            core,
            config,
            scheduler,
            spec,
            records: Vec::new(),
        })
    }
}

/// The scheduler-registry spec recorded in a snapshot document, so a
/// daemon can rebuild the scheduler *before* calling
/// [`SimSession::restore`].
pub fn snapshot_spec(v: &Value) -> Option<&str> {
    v.get("spec")?.as_str()
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("snapshot: missing field {key:?}"))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("snapshot: field {key:?} is not a string"))
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("snapshot: field {key:?} is not a number"))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    match field(v, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("snapshot: field {key:?} is not a bool")),
    }
}

fn bits_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_bits_f64()
        .ok_or_else(|| format!("snapshot: field {key:?} is not a bit string"))
}

fn arr_field<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("snapshot: field {key:?} is not an array"))
}

fn as_num(v: &Value, what: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("snapshot: {what} is not a number"))
}

/// Round-trip a snapshot through its canonical text form (what a daemon
/// writing to disk does); useful in tests to prove text stability.
pub fn reparse(v: &Value) -> Result<Value, json::ParseError> {
    json::parse(&v.pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use crate::simulate;

    /// Start every pending job on node `id % nodes` at full yield as
    /// soon as it arrives or a slot frees up (single-task test jobs).
    struct RoundRobin;
    impl Scheduler for RoundRobin {
        fn name(&self) -> String {
            "round-robin".into()
        }
        fn on_event(&mut self, _ev: SchedEvent, state: &SimState) -> Plan {
            let mut plan = Plan::noop();
            let n = state.cluster.spec.nodes;
            for j in state.jobs_in_system() {
                if j.status == crate::state::JobStatus::Pending {
                    let node = NodeId(j.spec.id.0 % n);
                    if state.cluster.is_up(node) {
                        plan = plan.run(j.spec.id, vec![node; j.spec.tasks as usize], 1.0);
                    }
                }
            }
            plan
        }
    }

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(4, 4, 8.0).unwrap()
    }

    fn job(id: u32, t: f64, runtime: f64) -> JobSpec {
        JobSpec::new(JobId(id), t, 1, 0.5, 0.2, runtime).unwrap()
    }

    /// The deterministic bits of an outcome (wall-clock timings and
    /// observational extras excluded).
    fn fingerprint(o: &SimOutcome) -> Vec<u64> {
        vec![
            o.max_stretch.to_bits(),
            o.mean_stretch.to_bits(),
            o.makespan.to_bits(),
            o.preemption_gb.to_bits(),
            o.migration_gb.to_bits(),
            o.idle_node_seconds.to_bits(),
            o.busy_node_seconds.to_bits(),
            o.down_node_seconds.to_bits(),
            o.lost_virtual_seconds.to_bits(),
            o.preemption_count,
            o.migration_count,
            o.restart_count,
            o.sched_calls,
            o.events_processed,
            o.jobs_completed,
        ]
    }

    #[test]
    fn session_matches_batch_run_bit_for_bit() {
        let jobs = vec![job(0, 0.0, 100.0), job(1, 30.0, 200.0), job(2, 500.0, 50.0)];
        let batch = simulate(cluster(), &jobs, &mut RoundRobin, &SimConfig::default());

        let mut s = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        for j in &jobs {
            s.submit(*j).unwrap();
        }
        s.drain().unwrap();
        let session = s.outcome();
        assert_eq!(fingerprint(&session), fingerprint(&batch));
        assert_eq!(session.records, batch.records);
    }

    #[test]
    fn snapshot_restore_is_transparent() {
        // Quiescent gap: j0 finishes at 100, j1 arrives at 500.
        let mut a = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        let mut b = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        for s in [&mut a, &mut b] {
            s.submit(job(0, 0.0, 100.0)).unwrap();
            s.advance_to(300.0).unwrap();
            assert!(s.is_quiescent());
            s.take_records();
        }
        // b goes through a text-form snapshot/restore cycle; a doesn't.
        let snap = b.snapshot().unwrap();
        assert_eq!(snapshot_spec(&snap), Some("round-robin"));
        let reparsed = reparse(&snap).unwrap();
        assert_eq!(reparsed, snap, "snapshot text form is stable");
        let mut b = SimSession::restore(&reparsed, Box::new(RoundRobin)).unwrap();
        assert_eq!(b.now(), 300.0);
        assert_eq!(b.spec(), "round-robin");

        for s in [&mut a, &mut b] {
            s.submit(job(1, 500.0, 50.0)).unwrap();
            s.submit(job(2, 510.0, 50.0)).unwrap();
            s.drain().unwrap();
        }
        let (oa, ob) = (a.outcome(), b.outcome());
        assert_eq!(fingerprint(&oa), fingerprint(&ob));
    }

    #[test]
    fn snapshot_requires_quiescence() {
        let mut s = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        s.submit(job(0, 0.0, 100.0)).unwrap();
        assert!(!s.is_quiescent());
        assert_eq!(s.snapshot(), Err(SimError::NotQuiescent { live: 1 }));
        s.drain().unwrap();
        assert!(s.is_quiescent());
        assert!(s.snapshot().is_ok());
    }

    #[test]
    fn command_validation() {
        let mut s = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        // Non-dense id.
        assert!(matches!(
            s.submit(job(3, 0.0, 10.0)),
            Err(SimError::NonDenseSubmission { .. })
        ));
        s.submit(job(0, 50.0, 10.0)).unwrap();
        // Time behind the clock.
        assert!(matches!(
            s.submit(job(1, 10.0, 10.0)),
            Err(SimError::SubmissionOutOfOrder { .. })
        ));
        // Unknown node and past command time.
        assert!(matches!(
            s.node_event(60.0, NodeId(99), false),
            Err(SimError::UnknownNode { .. })
        ));
        assert!(matches!(
            s.node_event(1.0, NodeId(0), false),
            Err(SimError::CommandInPast { .. })
        ));
        assert!(matches!(
            s.advance_to(1.0),
            Err(SimError::CommandInPast { .. })
        ));
        // A failed submit leaves the session usable.
        s.submit(job(1, 60.0, 10.0)).unwrap();
        s.drain().unwrap();
        assert_eq!(s.completed(), 2);
    }

    #[test]
    fn node_events_apply_with_duplicate_drop() {
        let mut s = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        s.submit(job(0, 0.0, 100.0)).unwrap();
        // j0 runs on node 0; failing it restarts the job (Restart
        // policy) and the round-robin scheduler cannot replace it while
        // the node is down.
        s.node_event(40.0, NodeId(0), false).unwrap();
        assert_eq!(s.state().cluster.down_nodes(), 1);
        // Duplicate down: silently dropped.
        s.node_event(41.0, NodeId(0), false).unwrap();
        assert_eq!(s.state().cluster.down_nodes(), 1);
        s.node_event(50.0, NodeId(0), true).unwrap();
        assert_eq!(s.state().cluster.down_nodes(), 0);
        s.drain().unwrap();
        let o = s.outcome();
        assert_eq!(o.restart_count, 1);
        // Restarted at the repair round: full runtime from t=50.
        assert_eq!(o.makespan, 150.0);
    }

    #[test]
    fn cancel_running_job_frees_resources() {
        let mut s = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        s.submit(job(0, 0.0, 100.0)).unwrap();
        s.advance_to(10.0).unwrap();
        s.cancel(JobId(0)).unwrap();
        // The job is gone, its resources are free, and the session is
        // quiescent without a drain.
        assert!(s.is_quiescent());
        assert_eq!(s.state().cluster.total_cpu_alloc(), 0.0);
        let recs = s.take_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].completion, 10.0);
        // Accrued progress counts as lost work.
        assert_eq!(s.outcome().lost_virtual_seconds, 10.0);
    }

    #[test]
    fn cancel_pending_job_unwedges_drain() {
        let mut s = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        // j0 targets node 0 (id % nodes), which is down: it waits
        // forever, and a drain would deadlock.
        s.node_event(0.0, NodeId(0), false).unwrap();
        s.submit(job(0, 5.0, 100.0)).unwrap();
        assert!(matches!(s.drain(), Err(SimError::Deadlock { .. })));
        s.cancel(JobId(0)).unwrap();
        s.drain().unwrap();
        let recs = s.take_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].first_start, None);
        assert_eq!(recs[0].completion, 5.0);
    }

    #[test]
    fn cancel_validation() {
        let mut s = SimSession::new(
            cluster(),
            "round-robin",
            Box::new(RoundRobin),
            SimConfig::default(),
        );
        assert_eq!(
            s.cancel(JobId(0)),
            Err(SimError::UnknownJob { job: JobId(0) })
        );
        s.submit(job(0, 0.0, 10.0)).unwrap();
        s.drain().unwrap();
        // Completed and drained: the record window has moved past it.
        assert_eq!(
            s.cancel(JobId(0)),
            Err(SimError::UnknownJob { job: JobId(0) })
        );
    }

    #[test]
    fn restore_rejects_malformed_documents() {
        let err = SimSession::restore(&Value::Null, Box::new(RoundRobin))
            .err()
            .unwrap();
        assert!(matches!(err, SimError::SnapshotMalformed { .. }), "{err}");
        assert!(err.to_string().contains("missing field"));
        let bogus = obj([("schema".into(), Value::Str("nope".into()))]);
        assert!(SimSession::restore(&bogus, Box::new(RoundRobin))
            .err()
            .unwrap()
            .to_string()
            .contains("schema"));
    }
}
