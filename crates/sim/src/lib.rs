//! # dfrs-sim
//!
//! Discrete-event simulator for fractional resource scheduling on a
//! homogeneous cluster — the substrate behind every experiment in the
//! IPDPS 2010 DFRS paper (Section IV-A).
//!
//! ## Model
//!
//! * Nodes have unit CPU and unit memory. Tasks placed on a node consume
//!   memory **hard** (the engine rejects overcommitment) and CPU
//!   **fluidly**: each running job has a *yield* in `(0, 1]` and every one
//!   of its tasks is allocated `cpu_need × yield` of its node.
//! * A job's **virtual time** advances at `yield` seconds per second; the
//!   job completes when virtual time reaches its dedicated runtime.
//!   Between scheduler decisions yields are constant, so completions are
//!   computed exactly rather than time-stepped.
//! * Schedulers ([`Scheduler`]) are driven by events — job submission,
//!   job completion, per-job timers (backoff), periodic ticks, and
//!   platform events (node failure/repair, [`SchedEvent::NodeDown`] /
//!   [`SchedEvent::NodeUp`]) — and respond with [`Plan`]s: pause
//!   entries and full `(placement, yield)` run entries. The engine diffs plans against current state to count
//!   **preemptions** and **migrations**, to charge the optional
//!   **rescheduling penalty** (300 s of frozen progress after a resume or
//!   migration, Section IV-A), and to meter the bytes moved through
//!   network storage (Table II).
//! * The engine never lets algorithms observe the penalty; the
//!   clairvoyant runtime accessor used by the batch baselines is explicit
//!   ([`dfrs_core::JobSpec::oracle_runtime`]).
//!
//! ## Entry points
//!
//! [`simulate`] runs one scheduler over one job list and returns a
//! [`SimOutcome`] with per-job records and the aggregate metrics every
//! table and figure of the paper is computed from. It is a thin wrapper
//! over the streaming core, [`simulate_stream`], which pulls
//! submissions from a [`SubmissionSource`] and emits completed-job
//! records through a [`RecordSink`] — memory stays bounded by the live
//! set, and the two paths are byte-identical by construction. For
//! open-ended operation (submissions arriving over time, node events on
//! command, snapshot/restore at quiescence) there is [`SimSession`],
//! the command-driven session behind the `dfrs-serve` daemon.
//!
//! ```
//! use dfrs_core::ids::{JobId, NodeId};
//! use dfrs_core::{ClusterSpec, JobSpec};
//! use dfrs_sim::{simulate, Plan, SchedEvent, Scheduler, SimConfig, SimState};
//!
//! /// Start every job on node 0 at full yield the moment it arrives.
//! struct RunNow;
//! impl Scheduler for RunNow {
//!     fn name(&self) -> String { "run-now".into() }
//!     fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
//!         match ev {
//!             SchedEvent::Submit(id) => {
//!                 let tasks = state.job(id).spec.tasks;
//!                 Plan::noop().run(id, vec![NodeId(0); tasks as usize], 1.0)
//!             }
//!             _ => Plan::noop(),
//!         }
//!     }
//! }
//!
//! let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
//! let jobs = vec![JobSpec::new(JobId(0), 0.0, 1, 0.5, 0.2, 120.0).unwrap()];
//! let out = simulate(cluster, &jobs, &mut RunNow, &SimConfig::default());
//! assert_eq!(out.records[0].completion, 120.0);
//! assert_eq!(out.max_stretch, 1.0);
//! ```

pub mod engine;
pub mod error;
pub mod event;
pub mod export;
pub mod outcome;
pub mod plan;
pub mod session;
pub mod shard;
pub mod source;
pub mod state;
pub mod timeline;
pub mod validate;

pub use engine::{
    simulate, simulate_stream, try_simulate, FailurePolicy, MigrationMode, NodeEvent, SimConfig,
};
pub use error::SimError;
pub use event::{EventKind, EventQueue};
pub use outcome::{DecisionSample, JobRecord, SimOutcome};
pub use plan::{Plan, PlanEntry, RepackStats, SchedEvent, Scheduler};
pub use session::{snapshot_spec, SimSession, SNAPSHOT_SCHEMA};
pub use shard::{partition, ShardView};
pub use source::{DiscardRecords, FnSink, IterSource, RecordSink, SliceSource, SubmissionSource};
pub use state::{ClusterState, JobState, JobStatus, JobStore, NodeState, SimState};
pub use timeline::{AllocEvent, Timeline, TimelineEntry};
pub use validate::{check_invariants, check_plan, PlanError, ValidationError};
