//! Per-shard [`SimState`] views for hierarchical (sharded) scheduling.
//!
//! A sharded coordinator partitions the cluster's nodes into `N`
//! contiguous ranges and runs one independent inner scheduler per
//! range. Each inner instance must see an ordinary [`SimState`] — that
//! is the whole point: existing algorithms work unmodified — so every
//! shard owns a [`ShardView`]: a real `SimState` over a shard-sized
//! [`ClusterState`](crate::ClusterState) plus the id maps between the
//! shard-local world and the global one.
//!
//! The view is maintained **incrementally** by the coordinator from the
//! only three sources of global mutation it witnesses:
//!
//! 1. plans its inner schedulers returned (mirrored via
//!    [`ShardView::mirror_plan`] with the engine's own
//!    classification: start/resume adds, migrate remove+add, pure
//!    yield changes retarget — so per-node arithmetic replays the
//!    engine's operations and stays within the same `EPS` tolerances);
//! 2. engine lifecycle events (completion, node failure/repair),
//!    mirrored before the inner scheduler is notified, matching the
//!    engine's "state reflects the event's bookkeeping" contract;
//! 3. the continuous virtual-time accrual of running jobs, copied from
//!    the global state by [`ShardView::refresh`] before every
//!    delivery (`O(running jobs in shard)`).
//!
//! Job ids inside a view are **local and dense** (the
//! [`JobStore`](crate::state::JobStore) window requires density);
//! [`ShardView::global_job`] translates a
//! local id back. Node ids translate by offset: local node `k` is
//! global node `lo + k`.
//!
//! Withdrawn jobs (rebalanced away by the coordinator) and completed
//! jobs are marked `Completed` locally and evicted once they reach the
//! window front, exactly like the streaming engine's eviction.

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::ClusterSpec;

use crate::plan::{Plan, PlanEntry};
use crate::state::{JobState, JobStatus, SimState};

/// Contiguous near-equal node partition: shard `i` of `shards` gets
/// `nodes/shards` nodes plus one of the `nodes % shards` remainder
/// nodes (lowest shards first). Returns `(lo, count)` per shard; every
/// `count` is at least 1 when `shards <= nodes`.
pub fn partition(nodes: u32, shards: u32) -> Vec<(u32, u32)> {
    assert!(shards >= 1 && shards <= nodes, "invalid shard count");
    let (base, rem) = (nodes / shards, nodes % shards);
    let mut out = Vec::with_capacity(shards as usize);
    let mut lo = 0;
    for i in 0..shards {
        let count = base + u32::from(i < rem);
        out.push((lo, count));
        lo += count;
    }
    out
}

/// One shard's private world: a shard-sized [`SimState`] plus the
/// local↔global id maps. See the module docs for the maintenance
/// protocol.
#[derive(Debug)]
pub struct ShardView {
    state: SimState,
    lo: u32,
    count: u32,
    /// `global_of[local]` = global job id (grows monotonically; local
    /// ids are never reused).
    global_of: Vec<u32>,
}

impl ShardView {
    /// View over global nodes `[lo, lo + count)` of a cluster described
    /// by `spec` (same per-node cores and memory).
    pub fn new(spec: &ClusterSpec, lo: u32, count: u32) -> Self {
        let shard_spec = ClusterSpec::new(count, spec.cores_per_node, spec.node_memory_gb)
            .expect("a shard of a valid cluster spec is a valid cluster spec");
        ShardView {
            state: SimState::empty(shard_spec),
            lo,
            count,
            global_of: Vec::new(),
        }
    }

    /// The shard-local state handed to the inner scheduler.
    #[inline]
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// First global node of this shard.
    #[inline]
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Number of nodes in this shard.
    #[inline]
    pub fn node_count(&self) -> u32 {
        self.count
    }

    /// Whether `node` (global) belongs to this shard.
    #[inline]
    pub fn owns_node(&self, node: NodeId) -> bool {
        node.0 >= self.lo && node.0 < self.lo + self.count
    }

    /// Global → local node id (caller guarantees ownership).
    #[inline]
    pub fn local_node(&self, node: NodeId) -> NodeId {
        debug_assert!(self.owns_node(node));
        NodeId(node.0 - self.lo)
    }

    /// Local → global node id.
    #[inline]
    pub fn global_node(&self, node: NodeId) -> NodeId {
        debug_assert!(node.0 < self.count);
        NodeId(node.0 + self.lo)
    }

    /// Local → global job id.
    #[inline]
    pub fn global_job(&self, local: JobId) -> JobId {
        JobId(self.global_of[local.index()])
    }

    /// Jobs currently in this shard's system (its load metric for
    /// routing and rebalancing).
    #[inline]
    pub fn in_system(&self) -> usize {
        self.state.live.len()
    }

    /// Total CPU demand of the jobs in this shard's system (coarse
    /// pressure metric for routing and rebalancing).
    pub fn total_cpu_demand(&self) -> f64 {
        self.state
            .jobs_in_system()
            .map(|j| j.spec.total_cpu_need())
            .sum()
    }

    /// Local ids of waiting (`Pending` or `Paused`) jobs, ascending.
    pub fn waiting_locals(&self) -> Vec<JobId> {
        self.state
            .jobs_in_system()
            .filter(|j| matches!(j.status, JobStatus::Pending | JobStatus::Paused))
            .map(|j| j.spec.id)
            .collect()
    }

    /// Admit `global` (a job the coordinator routed here) as a fresh
    /// local `Pending` job, carrying over its accrued virtual time and
    /// penalty window (a `Paused` migrant keeps its progress — the
    /// resume at this shard goes through the engine's ordinary
    /// pause/resume machinery). Returns the local id.
    pub fn admit(&mut self, global: &JobState) -> JobId {
        let local = JobId(self.state.jobs.len() as u32);
        let mut spec = global.spec;
        spec.id = local;
        let mut js = JobState::new(spec);
        js.status = JobStatus::Pending;
        js.virtual_time = global.virtual_time;
        js.penalty_until = global.penalty_until;
        self.state.jobs.push(js);
        self.state
            .index_transition(local, JobStatus::Unsubmitted, JobStatus::Pending);
        self.global_of.push(global.spec.id.0);
        local
    }

    /// Adopt a job that is already `Running` with every task inside
    /// this shard (coordinator initialization against a non-empty
    /// state, e.g. a restored session). `placement` is global.
    pub fn adopt_running(&mut self, global: &JobState, placement: &[NodeId]) -> JobId {
        let local = self.admit(global);
        let spec = self.state.jobs[local.index()].spec;
        for &n in placement {
            let ln = self.local_node(n);
            self.state
                .cluster
                .add_task(ln, spec.cpu_need, spec.mem_req, spec.gpu_need, global.yld);
        }
        for (slot, &n) in self.state.placement_slot(local).iter_mut().zip(placement) {
            *slot = NodeId(n.0 - self.lo);
        }
        let js = &mut self.state.jobs[local.index()];
        js.status = JobStatus::Running;
        js.yld = global.yld;
        js.first_start = global.first_start;
        self.state
            .index_transition(local, JobStatus::Pending, JobStatus::Running);
        local
    }

    /// Remove a waiting job from this shard's jurisdiction (it is being
    /// rebalanced elsewhere). The job must be `Pending` or `Paused`
    /// (it holds no tasks); it is marked `Completed` locally so the
    /// window can evict it.
    pub fn withdraw(&mut self, local: JobId) {
        let js = &mut self.state.jobs[local.index()];
        debug_assert!(
            matches!(js.status, JobStatus::Pending | JobStatus::Paused),
            "withdrawing {local} in status {:?}",
            js.status
        );
        js.status = JobStatus::Completed;
        match self.state.live.binary_search(&local.0) {
            Ok(pos) => {
                self.state.live.remove(pos);
            }
            Err(_) => debug_assert!(false, "withdrawn {local} not in live index"),
        }
        self.state.epoch += 1;
        self.evict_completed();
    }

    /// Mirror a completion the engine just finalized: free the tasks,
    /// retire the job locally.
    pub fn mirror_complete(&mut self, local: JobId) {
        let js = &self.state.jobs[local.index()];
        debug_assert_eq!(js.status, JobStatus::Running, "completing {local}");
        let (need, mem, gpu, yld, tasks) = (
            js.spec.cpu_need,
            js.spec.mem_req,
            js.spec.gpu_need,
            js.yld,
            js.spec.tasks,
        );
        for k in 0..tasks as usize {
            let node = self.state.placement_raw(local)[k];
            self.state.cluster.remove_task(node, need, mem, gpu, yld);
        }
        let js = &mut self.state.jobs[local.index()];
        js.status = JobStatus::Completed;
        js.completion = Some(self.state.now);
        js.yld = 0.0;
        self.state
            .index_transition(local, JobStatus::Running, JobStatus::Completed);
        self.evict_completed();
    }

    /// Mirror a node availability transition. For a failure the
    /// engine has already struck every resident job globally (victims
    /// are `Pending` or `Paused` per the failure policy); the same
    /// eviction replays here, with each victim's post-event status
    /// copied from `global`.
    pub fn mirror_node_event(&mut self, local_node: NodeId, up: bool, global: &SimState) {
        if !up {
            let mut victims: Vec<JobId> = Vec::new();
            for &i in self.state.running.iter() {
                let id = JobId(i);
                if self.state.placement_raw(id).contains(&local_node) {
                    victims.push(id);
                }
            }
            for local in victims {
                let js = &self.state.jobs[local.index()];
                let (need, mem, gpu, yld, tasks) = (
                    js.spec.cpu_need,
                    js.spec.mem_req,
                    js.spec.gpu_need,
                    js.yld,
                    js.spec.tasks,
                );
                for k in 0..tasks as usize {
                    let node = self.state.placement_raw(local)[k];
                    self.state.cluster.remove_task(node, need, mem, gpu, yld);
                }
                let g = &global.jobs[self.global_of[local.index()] as usize];
                debug_assert!(
                    matches!(g.status, JobStatus::Pending | JobStatus::Paused),
                    "victim {local} globally {:?}",
                    g.status
                );
                let js = &mut self.state.jobs[local.index()];
                js.status = g.status;
                js.virtual_time = g.virtual_time;
                js.penalty_until = g.penalty_until;
                js.yld = 0.0;
                self.state
                    .index_transition(local, JobStatus::Running, g.status);
            }
        }
        self.state.cluster.set_node_up(local_node, up);
    }

    /// Mirror a plan this shard's inner scheduler returned (local ids,
    /// local nodes), replaying the engine's two-phase application:
    /// all releases (pauses, migration departures, yield decreases)
    /// before any addition, with the same per-case arithmetic
    /// (start/resume add, same-placement yield change retarget) so the
    /// view's node loads track the global ones operation for operation.
    pub fn mirror_plan(&mut self, plan: &Plan) {
        // Phase 1: releases.
        for e in &plan.entries {
            match e {
                PlanEntry::Pause { job } => {
                    let js = &self.state.jobs[job.index()];
                    debug_assert_eq!(js.status, JobStatus::Running, "pausing {job}");
                    let (need, mem, gpu, yld, tasks) = (
                        js.spec.cpu_need,
                        js.spec.mem_req,
                        js.spec.gpu_need,
                        js.yld,
                        js.spec.tasks,
                    );
                    for k in 0..tasks as usize {
                        let node = self.state.placement_raw(*job)[k];
                        self.state.cluster.remove_task(node, need, mem, gpu, yld);
                    }
                    let js = &mut self.state.jobs[job.index()];
                    js.status = JobStatus::Paused;
                    js.yld = 0.0;
                    js.preemptions += 1;
                    self.state
                        .index_transition(*job, JobStatus::Running, JobStatus::Paused);
                }
                PlanEntry::Run {
                    job,
                    placement,
                    yld,
                } => {
                    let js = &self.state.jobs[job.index()];
                    if js.status != JobStatus::Running {
                        continue;
                    }
                    let (need, gpu, old_yld) = (js.spec.cpu_need, js.spec.gpu_need, js.yld);
                    if placement.as_slice() == self.state.placement_raw(*job) {
                        // Pure yield change; decreases release in
                        // phase 1, increases wait for phase 2.
                        if *yld < old_yld {
                            for k in 0..placement.len() {
                                let node = self.state.placement_raw(*job)[k];
                                self.state
                                    .cluster
                                    .retarget_task(node, need, gpu, old_yld, *yld);
                            }
                            self.state.jobs[job.index()].yld = *yld;
                        }
                    } else {
                        // Migration: vacate the old placement now.
                        let (mem, tasks) = (js.spec.mem_req, js.spec.tasks);
                        for k in 0..tasks as usize {
                            let node = self.state.placement_raw(*job)[k];
                            self.state
                                .cluster
                                .remove_task(node, need, mem, gpu, old_yld);
                        }
                    }
                }
            }
        }
        // Phase 2: additions and upward adjustments.
        for e in &plan.entries {
            let PlanEntry::Run {
                job,
                placement,
                yld,
            } = e
            else {
                continue;
            };
            let js = &self.state.jobs[job.index()];
            let spec = js.spec;
            let yld = yld.min(1.0);
            match js.status {
                JobStatus::Pending | JobStatus::Paused => {
                    let from = js.status;
                    for &n in placement {
                        self.state.cluster.add_task(
                            n,
                            spec.cpu_need,
                            spec.mem_req,
                            spec.gpu_need,
                            yld,
                        );
                    }
                    self.state.placement_slot(*job).copy_from_slice(placement);
                    let js = &mut self.state.jobs[job.index()];
                    js.status = JobStatus::Running;
                    js.first_start.get_or_insert(self.state.now);
                    js.yld = yld;
                    self.state.index_transition(*job, from, JobStatus::Running);
                }
                JobStatus::Running => {
                    if placement.as_slice() == self.state.placement_raw(*job) {
                        let old_yld = js.yld;
                        if yld > old_yld {
                            for k in 0..placement.len() {
                                let node = self.state.placement_raw(*job)[k];
                                self.state.cluster.retarget_task(
                                    node,
                                    spec.cpu_need,
                                    spec.gpu_need,
                                    old_yld,
                                    yld,
                                );
                            }
                            self.state.jobs[job.index()].yld = yld;
                        }
                    } else {
                        // Migration arrival (departure ran in phase 1).
                        for &n in placement {
                            self.state.cluster.add_task(
                                n,
                                spec.cpu_need,
                                spec.mem_req,
                                spec.gpu_need,
                                yld,
                            );
                        }
                        self.state.placement_slot(*job).copy_from_slice(placement);
                        let js = &mut self.state.jobs[job.index()];
                        js.yld = yld;
                        js.migrations += 1;
                    }
                }
                st => debug_assert!(false, "plan runs {job} in status {st:?}"),
            }
        }
    }

    /// Bring the view's clock and its running jobs' continuously
    /// advancing fields (virtual time, penalty window) up to date from
    /// the global state. Called before every event delivery.
    pub fn refresh(&mut self, now: f64, global: &SimState) {
        self.state.now = now;
        for k in 0..self.state.running.len() {
            let i = self.state.running[k] as usize;
            let gid = self.global_of[i] as usize;
            // A job evicted from the global window is already
            // completed; its mirror event is on the way.
            if let Some(g) = global.jobs.get(gid) {
                let j = &mut self.state.jobs[i];
                j.virtual_time = g.virtual_time;
                j.penalty_until = g.penalty_until;
            }
        }
    }

    /// Translate a local plan into global ids (jobs and nodes).
    pub fn translate_plan(&self, plan: Plan) -> Plan {
        Plan {
            entries: plan
                .entries
                .into_iter()
                .map(|e| match e {
                    PlanEntry::Run {
                        job,
                        mut placement,
                        yld,
                    } => {
                        for n in placement.iter_mut() {
                            *n = self.global_node(*n);
                        }
                        PlanEntry::Run {
                            job: self.global_job(job),
                            placement,
                            yld,
                        }
                    }
                    PlanEntry::Pause { job } => PlanEntry::Pause {
                        job: self.global_job(job),
                    },
                })
                .collect(),
            timers: plan
                .timers
                .into_iter()
                .map(|(j, t)| (self.global_job(j), t))
                .collect(),
        }
    }

    /// Evict the completed window prefix (records are the global
    /// engine's business; the view just drops retired jobs).
    fn evict_completed(&mut self) {
        while self
            .state
            .jobs
            .front()
            .is_some_and(|j| j.status == JobStatus::Completed)
        {
            self.state.jobs.evict_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfrs_core::JobSpec;

    fn spec4() -> ClusterSpec {
        ClusterSpec::new(10, 4, 8.0).unwrap()
    }

    fn gjob(id: u32, tasks: u32) -> JobState {
        let mut js = JobState::new(JobSpec::new(JobId(id), 0.0, tasks, 0.5, 0.25, 100.0).unwrap());
        js.status = JobStatus::Pending;
        js
    }

    #[test]
    fn partition_is_contiguous_and_near_equal() {
        let parts = partition(10, 3);
        assert_eq!(parts, vec![(0, 4), (4, 3), (7, 3)]);
        let parts = partition(8, 4);
        assert_eq!(parts, vec![(0, 2), (2, 2), (4, 2), (6, 2)]);
        let parts = partition(5, 5);
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn admit_assigns_dense_local_ids_and_maps_back() {
        let mut v = ShardView::new(&spec4(), 4, 3);
        let a = v.admit(&gjob(17, 1));
        let b = v.admit(&gjob(99, 2));
        assert_eq!(a, JobId(0));
        assert_eq!(b, JobId(1));
        assert_eq!(v.global_job(a), JobId(17));
        assert_eq!(v.global_job(b), JobId(99));
        assert_eq!(v.in_system(), 2);
        assert_eq!(v.state().cluster.spec.nodes, 3);
    }

    #[test]
    fn node_translation_offsets_by_lo() {
        let v = ShardView::new(&spec4(), 4, 3);
        assert!(v.owns_node(NodeId(4)) && v.owns_node(NodeId(6)));
        assert!(!v.owns_node(NodeId(3)) && !v.owns_node(NodeId(7)));
        assert_eq!(v.local_node(NodeId(5)), NodeId(1));
        assert_eq!(v.global_node(NodeId(1)), NodeId(5));
    }

    #[test]
    fn mirror_plan_and_complete_round_trip() {
        let mut v = ShardView::new(&spec4(), 0, 3);
        let l = v.admit(&gjob(3, 2));
        let plan = Plan::noop().run(l, vec![NodeId(0), NodeId(1)], 1.0);
        v.mirror_plan(&plan);
        assert_eq!(v.state().job(l).status, JobStatus::Running);
        assert_eq!(v.state().cluster.busy_nodes(), 2);
        v.mirror_complete(l);
        assert_eq!(v.in_system(), 0);
        assert_eq!(v.state().cluster.busy_nodes(), 0);
        // The retired local id was evicted from the window.
        assert!(v.state().jobs.get(l.index()).is_none());
    }

    #[test]
    fn withdraw_removes_waiting_job_from_view() {
        let mut v = ShardView::new(&spec4(), 0, 3);
        let a = v.admit(&gjob(1, 1));
        let b = v.admit(&gjob(2, 1));
        v.withdraw(a);
        assert_eq!(v.in_system(), 1);
        assert_eq!(v.waiting_locals(), vec![b]);
    }

    #[test]
    fn translate_plan_maps_jobs_and_nodes_global() {
        let mut v = ShardView::new(&spec4(), 4, 3);
        let l = v.admit(&gjob(42, 1));
        let p = v.translate_plan(Plan::noop().run(l, vec![NodeId(2)], 0.5).timer(l, 9.0));
        match &p.entries[0] {
            PlanEntry::Run { job, placement, .. } => {
                assert_eq!(*job, JobId(42));
                assert_eq!(placement.as_slice(), &[NodeId(6)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.timers, vec![(JobId(42), 9.0)]);
    }

    #[test]
    fn migrant_keeps_virtual_time() {
        let mut v = ShardView::new(&spec4(), 0, 3);
        let mut g = gjob(7, 1);
        g.status = JobStatus::Paused;
        g.virtual_time = 33.5;
        g.penalty_until = 40.0;
        let l = v.admit(&g);
        let j = v.state().job(l);
        assert_eq!(j.status, JobStatus::Pending);
        assert_eq!(j.virtual_time, 33.5);
        assert_eq!(j.penalty_until, 40.0);
    }
}
