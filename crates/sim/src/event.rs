//! External-event queue with versioned entries.
//!
//! Only *external* events live in the queue: submissions (known from the
//! trace), per-job timers (scheduler backoff), periodic ticks, and
//! platform events (node failures and repairs, known from the scenario's
//! availability trace). Job completions are **derived** — between
//! decisions yields are constant, so the engine computes the earliest
//! completion analytically and merges it with the queue head (see
//! DESIGN.md §"Engine internals" for why they must stay derived; §9 for
//! why failures, like submissions, are external). A monotonically
//! increasing sequence number makes same-instant ordering deterministic
//! (FIFO).
//!
//! ## Versioned entries
//!
//! Per-job timer entries carry the job's timer *version* at push time;
//! [`EventQueue::cancel_timers`] bumps the version in O(1), instantly
//! invalidating every outstanding timer of that job without scanning
//! the heap (rescheduling is a cancel + push, O(log n) total).
//! Invalidated entries still pop at their original time — the engine
//! must observe the same event instants whether or not a timer is
//! stale, because advancing the clock in different increments changes
//! the floating-point integrals — but they pop marked stale, so the
//! engine drops them without a scheduler round.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use dfrs_core::ids::{JobId, NodeId};

/// What an external event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job from the trace arrives.
    Submit(JobId),
    /// A scheduler-requested wake-up for a postponed job (GREEDY's
    /// bounded exponential backoff).
    Timer(JobId),
    /// Periodic scheduling event (the `-PER` algorithms).
    Tick,
    /// A node fails and leaves service (platform event from the
    /// scenario's availability trace).
    NodeDown(NodeId),
    /// A failed node is repaired and returns to service.
    NodeUp(NodeId),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    seq: u64,
    kind: EventKind,
    /// Timer version at push time (0 for non-timer events).
    ver: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One serialized queue entry: `(time, seq, kind, ver)` — the snapshot
/// row format produced by [`EventQueue::snapshot_parts`] and consumed
/// by [`EventQueue::restore_parts`].
pub(crate) type QueueEntryRow = (f64, u64, EventKind, u32);

/// Min-heap of timestamped external events with FIFO tie-breaking and
/// O(1) timer cancellation (see module docs).
///
/// Timer versions live in a *windowed* table aligned with the
/// [`crate::state::JobStore`] eviction window: versions of evicted
/// (completed) jobs are retired, and any heap entry referencing an id
/// below the window base pops stale — a completed job's timers were
/// dropped without a scheduler round before, so behavior is identical
/// while memory stays bounded on endless feeds.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
    /// Ids below this have retired timer versions (always stale).
    timer_base: usize,
    /// Current timer version for job `timer_base + k`; heap entries
    /// with an older version are stale. Grown on demand.
    timer_ver: VecDeque<u32>,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current version of `job`'s timers; `None` once retired.
    #[inline]
    fn ver_of(&self, job: JobId) -> Option<u32> {
        job.index()
            .checked_sub(self.timer_base)
            .and_then(|k| self.timer_ver.get(k).copied().or(Some(0)))
    }

    /// Schedule `kind` at absolute time `time`. Timer entries capture
    /// the job's current version (0 for a retired job — it pops stale).
    pub fn push(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        let ver = match kind {
            EventKind::Timer(job) => self.ver_of(job).unwrap_or(0),
            _ => 0,
        };
        self.push_raw(Entry {
            time,
            seq: self.seq,
            kind,
            ver,
        });
        self.seq += 1;
    }

    fn push_raw(&mut self, e: Entry) {
        self.heap.push(e);
    }

    /// Invalidate every outstanding timer of `job` in O(1). Stale
    /// entries still pop at their scheduled time (the engine's clock
    /// advances identically either way) but pop as invalid. No-op for
    /// an evicted job — its entries are stale already.
    pub fn cancel_timers(&mut self, job: JobId) {
        let Some(k) = job.index().checked_sub(self.timer_base) else {
            return;
        };
        if k >= self.timer_ver.len() {
            self.timer_ver.resize(k + 1, 0);
        }
        self.timer_ver[k] += 1;
    }

    /// Retire timer versions of every job below `base` (evicted by the
    /// job store); their outstanding entries pop stale.
    pub(crate) fn retire_below(&mut self, base: usize) {
        while self.timer_base < base {
            self.timer_ver.pop_front();
            self.timer_base += 1;
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event; the flag is false for a stale (cancelled
    /// or retired) timer, which the caller drops without a scheduler
    /// round.
    pub fn pop(&mut self) -> Option<(f64, EventKind, bool)> {
        self.heap.pop().map(|e| {
            let valid = match e.kind {
                EventKind::Timer(job) => self.ver_of(job) == Some(e.ver),
                _ => true,
            };
            (e.time, e.kind, valid)
        })
    }

    /// Number of pending events (stale entries included).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Rebuild a queue from [`EventQueue::snapshot_parts`] output.
    pub(crate) fn restore_parts(entries: &[QueueEntryRow], seq: u64, timer_base: usize) -> Self {
        let mut q = EventQueue {
            heap: BinaryHeap::with_capacity(entries.len()),
            seq,
            timer_base,
            timer_ver: VecDeque::new(),
        };
        for &(time, eseq, kind, ver) in entries {
            q.push_raw(Entry {
                time,
                seq: eseq,
                kind,
                ver,
            });
        }
        q
    }

    /// Snapshot support: every pending entry as `(time, seq, kind, ver)`
    /// in deterministic `(time, seq)` order, plus the sequence counter
    /// and the timer-version window base. Only meaningful at quiescence
    /// (no live jobs), when every outstanding timer is necessarily
    /// stale and the version window is empty.
    pub(crate) fn snapshot_parts(&self) -> (Vec<QueueEntryRow>, u64, usize) {
        let mut entries: Vec<QueueEntryRow> = self
            .heap
            .iter()
            .map(|e| (e.time, e.seq, e.kind, e.ver))
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        (entries, self.seq, self.timer_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30.0, EventKind::Tick);
        q.push(10.0, EventKind::Submit(JobId(0)));
        q.push(20.0, EventKind::Timer(JobId(1)));
        assert_eq!(q.pop().unwrap(), (10.0, EventKind::Submit(JobId(0)), true));
        assert_eq!(q.pop().unwrap(), (20.0, EventKind::Timer(JobId(1)), true));
        assert_eq!(q.pop().unwrap(), (30.0, EventKind::Tick, true));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::Submit(JobId(1)));
        q.push(5.0, EventKind::Submit(JobId(2)));
        q.push(5.0, EventKind::Tick);
        assert_eq!(q.pop().unwrap().1, EventKind::Submit(JobId(1)));
        assert_eq!(q.pop().unwrap().1, EventKind::Submit(JobId(2)));
        assert_eq!(q.pop().unwrap().1, EventKind::Tick);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(7.5, EventKind::Tick);
        assert_eq!(q.peek_time(), Some(7.5));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10.0, EventKind::Tick);
        q.push(1.0, EventKind::Tick);
        assert_eq!(q.pop().unwrap().0, 1.0);
        q.push(5.0, EventKind::Tick);
        q.push(0.5, EventKind::Tick);
        assert_eq!(q.pop().unwrap().0, 0.5);
        assert_eq!(q.pop().unwrap().0, 5.0);
        assert_eq!(q.pop().unwrap().0, 10.0);
    }

    #[test]
    fn cancelled_timers_pop_stale_at_their_time() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::Timer(JobId(2)));
        q.push(9.0, EventKind::Timer(JobId(2)));
        q.push(7.0, EventKind::Timer(JobId(1)));
        q.cancel_timers(JobId(2));
        // Entries still fire at their times — the clock must advance
        // identically — but are flagged stale.
        assert_eq!(q.pop().unwrap(), (5.0, EventKind::Timer(JobId(2)), false));
        assert_eq!(q.pop().unwrap(), (7.0, EventKind::Timer(JobId(1)), true));
        assert_eq!(q.pop().unwrap(), (9.0, EventKind::Timer(JobId(2)), false));
    }

    #[test]
    fn timers_pushed_after_cancel_are_valid() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Timer(JobId(0)));
        q.cancel_timers(JobId(0));
        q.push(2.0, EventKind::Timer(JobId(0)));
        assert_eq!(q.pop().unwrap(), (1.0, EventKind::Timer(JobId(0)), false));
        assert_eq!(q.pop().unwrap(), (2.0, EventKind::Timer(JobId(0)), true));
    }

    #[test]
    fn cancel_is_per_job() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Timer(JobId(0)));
        q.push(2.0, EventKind::Timer(JobId(1)));
        q.cancel_timers(JobId(0));
        assert!(!q.pop().unwrap().2);
        assert!(q.pop().unwrap().2);
    }
}
