//! External-event queue.
//!
//! Only *external* events live in the queue: submissions (known from the
//! trace), per-job timers (scheduler backoff), and periodic ticks. Job
//! completions are **derived** — between decisions yields are constant,
//! so the engine computes the earliest completion analytically and merges
//! it with the queue head. A monotonically increasing sequence number
//! makes same-instant ordering deterministic (FIFO).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dfrs_core::ids::JobId;

/// What an external event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job from the trace arrives.
    Submit(JobId),
    /// A scheduler-requested wake-up for a postponed job (GREEDY's
    /// bounded exponential backoff).
    Timer(JobId),
    /// Periodic scheduling event (the `-PER` algorithms).
    Tick,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of timestamped external events with FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `kind` at absolute time `time`.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(f64, EventKind)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30.0, EventKind::Tick);
        q.push(10.0, EventKind::Submit(JobId(0)));
        q.push(20.0, EventKind::Timer(JobId(1)));
        assert_eq!(q.pop().unwrap(), (10.0, EventKind::Submit(JobId(0))));
        assert_eq!(q.pop().unwrap(), (20.0, EventKind::Timer(JobId(1))));
        assert_eq!(q.pop().unwrap(), (30.0, EventKind::Tick));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::Submit(JobId(1)));
        q.push(5.0, EventKind::Submit(JobId(2)));
        q.push(5.0, EventKind::Tick);
        assert_eq!(q.pop().unwrap().1, EventKind::Submit(JobId(1)));
        assert_eq!(q.pop().unwrap().1, EventKind::Submit(JobId(2)));
        assert_eq!(q.pop().unwrap().1, EventKind::Tick);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(7.5, EventKind::Tick);
        assert_eq!(q.peek_time(), Some(7.5));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10.0, EventKind::Tick);
        q.push(1.0, EventKind::Tick);
        assert_eq!(q.pop().unwrap().0, 1.0);
        q.push(5.0, EventKind::Tick);
        q.push(0.5, EventKind::Tick);
        assert_eq!(q.pop().unwrap().0, 0.5);
        assert_eq!(q.pop().unwrap().0, 5.0);
        assert_eq!(q.pop().unwrap().0, 10.0);
    }
}
