//! Mutable simulation state: per-job lifecycle and per-node resource
//! bookkeeping.
//!
//! ## Hot-path layout
//!
//! The engine touches this state once per event, so the layout avoids
//! per-event allocation and per-event whole-trace scans:
//!
//! * **Windowed job store** — [`JobStore`] keeps only the *resident*
//!   jobs (admitted, plus a completed prefix not yet streamed out) in a
//!   deque indexed by dense job id. The streaming engine admits jobs as
//!   a [`crate::SubmissionSource`] yields them and evicts the completed
//!   prefix after emitting each record, so live-set memory stays
//!   bounded no matter how long the feed is. Each job's task placement
//!   is a per-job boxed slice filled in place (no per-event `Vec`
//!   allocation).
//! * **Live/running indexes** — sorted id lists of the jobs in the
//!   system and the running subset, so per-event scans cost O(live)
//!   instead of O(trace length). Iteration order equals ascending id —
//!   identical to a filtered scan of the full job table.
//! * **Change epochs** — a monotone counter bumped on every observable
//!   state change (job lifecycle transitions here, per-node load
//!   changes in [`ClusterState`]). Schedulers use
//!   [`SimState::change_epoch`] to recognize that nothing changed since
//!   their last decision and skip provably identical repacks.

use std::collections::VecDeque;
use std::ops::{Index, IndexMut};

use dfrs_core::approx;
use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::priority::PriorityKey;
use dfrs_core::{ClusterSpec, JobSpec};

/// Lifecycle of a job inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Known from the trace but not yet submitted.
    Unsubmitted,
    /// Submitted, never or not currently placed, waiting to start.
    Pending,
    /// Placed on nodes with a positive yield.
    Running,
    /// Previously ran, currently evicted from the cluster.
    Paused,
    /// Finished.
    Completed,
}

/// Full dynamic state of one job, including its task placement slots
/// (read through [`SimState::placement`]).
#[derive(Debug, Clone)]
pub struct JobState {
    /// The immutable request.
    pub spec: JobSpec,
    /// One hosting-node slot per task; meaningful only while `Running`.
    pub(crate) placement: Box<[NodeId]>,
    /// Lifecycle phase.
    pub status: JobStatus,
    /// Accrued virtual time (integral of yield since submission).
    pub virtual_time: f64,
    /// Current yield; meaningful only while `Running`.
    pub yld: f64,
    /// Wall-clock time until which progress is frozen (rescheduling
    /// penalty after a resume or migration).
    pub penalty_until: f64,
    /// First time the job was placed, if ever.
    pub first_start: Option<f64>,
    /// Completion time, once finished.
    pub completion: Option<f64>,
    /// Times this job was paused (preemption occurrences).
    pub preemptions: u32,
    /// Times this job was moved while running (migration occurrences).
    pub migrations: u32,
    /// Times this job was killed by a node failure and resubmitted with
    /// its progress discarded ([`crate::FailurePolicy::Restart`]).
    pub restarts: u32,
}

impl JobState {
    /// Fresh state for a spec.
    pub fn new(spec: JobSpec) -> Self {
        JobState {
            placement: vec![NodeId(0); spec.tasks as usize].into_boxed_slice(),
            spec,
            status: JobStatus::Unsubmitted,
            virtual_time: 0.0,
            yld: 0.0,
            penalty_until: 0.0,
            first_start: None,
            completion: None,
            preemptions: 0,
            migrations: 0,
            restarts: 0,
        }
    }

    /// Remaining virtual time to completion.
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.spec.oracle_runtime() - self.virtual_time).max(0.0)
    }

    /// Is the job in the system (submitted, not finished)?
    #[inline]
    pub fn in_system(&self) -> bool {
        matches!(
            self.status,
            JobStatus::Pending | JobStatus::Running | JobStatus::Paused
        )
    }

    /// The paper's pause/resume priority key at time `now`.
    pub fn priority_key(&self, now: f64) -> PriorityKey {
        PriorityKey::new(now, self.spec.submit_time, self.virtual_time, self.spec.id)
    }

    /// Completion instant under the current yield, accounting for a
    /// pending penalty window; `None` when not running or not progressing.
    pub fn completion_time(&self, now: f64) -> Option<f64> {
        if self.status != JobStatus::Running || self.yld <= 0.0 {
            return None;
        }
        let start = now.max(self.penalty_until);
        Some(start + self.remaining() / self.yld)
    }
}

/// Resource bookkeeping of one node. All quantities are derived from the
/// placements of running jobs; [`crate::validate`] cross-checks them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeState {
    /// Sum of CPU needs of hosted tasks (may exceed 1 — over-subscription).
    pub cpu_load: f64,
    /// Sum of allocated CPU fractions (`need × yield`; must stay ≤ 1).
    pub cpu_alloc: f64,
    /// Sum of memory requirements (must stay ≤ 1 — hard constraint).
    pub mem_used: f64,
    /// Sum of allocated GPU fractions (`need × yield`; must stay ≤ 1).
    /// GPU is fluid like CPU: allocations scale with the yield. Zero
    /// whenever no hosted job declares GPU demand, so the paper's
    /// two-resource scenarios never observe it.
    pub gpu_alloc: f64,
    /// Number of hosted tasks.
    pub task_count: u32,
}

impl NodeState {
    /// Remaining memory.
    #[inline]
    pub fn mem_free(&self) -> f64 {
        1.0 - self.mem_used
    }

    /// Remaining allocatable CPU.
    #[inline]
    pub fn cpu_slack(&self) -> f64 {
        1.0 - self.cpu_alloc
    }

    /// Remaining allocatable GPU.
    #[inline]
    pub fn gpu_slack(&self) -> f64 {
        1.0 - self.gpu_alloc
    }

    /// True when no task is placed here (candidate for power-down).
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.task_count == 0
    }
}

/// The cluster: node states plus aggregate counters, an up/down bit per
/// node (platform dynamics), and change epochs.
#[derive(Debug, Clone)]
pub struct ClusterState {
    /// Static description.
    pub spec: ClusterSpec,
    nodes: Vec<NodeState>,
    busy_nodes: u32,
    /// Ids of the nodes hosting at least one task, ascending. Lets the
    /// per-event utilization integrals sum allocated CPU over busy
    /// nodes only — bit-identical to the full scan, since idle nodes'
    /// contributions are exactly `+0.0` (snapped on last removal) and
    /// adding `+0.0` never changes a non-negative partial sum — while
    /// costing `O(busy)` instead of `O(all nodes)` on huge clusters.
    busy_ids: Vec<u32>,
    /// Up/down bit per node; a down node hosts no tasks and is invisible
    /// to [`available_nodes`](Self::available_nodes).
    node_up: Vec<bool>,
    /// Number of nodes currently in service.
    up_count: u32,
    /// Bumped on every task add/remove/retarget.
    epoch: u64,
    /// Epoch at which each node last changed (dirty-node tracking).
    node_epoch: Vec<u64>,
    /// Bumped only when a node leaves or rejoins service — unlike
    /// `epoch`, never by load changes. Schedulers key caches of the
    /// available-node set on this, so a no-churn run computes that set
    /// once instead of once per event.
    membership_epoch: u64,
}

impl ClusterState {
    /// All-idle cluster, every node in service.
    pub fn new(spec: ClusterSpec) -> Self {
        ClusterState {
            spec,
            nodes: vec![NodeState::default(); spec.nodes as usize],
            busy_nodes: 0,
            busy_ids: Vec::new(),
            node_up: vec![true; spec.nodes as usize],
            up_count: spec.nodes,
            epoch: 0,
            node_epoch: vec![0; spec.nodes as usize],
            membership_epoch: 0,
        }
    }

    /// Rebuild a cluster from snapshot parts: all nodes idle (snapshots
    /// are taken at quiescence, when nothing is placed) with the
    /// down-node set and both epoch counters restored exactly, so every
    /// future epoch value matches the uninterrupted run.
    pub(crate) fn restore(
        spec: ClusterSpec,
        down: &[NodeId],
        epoch: u64,
        node_epoch: Vec<u64>,
    ) -> Self {
        let mut c = ClusterState::new(spec);
        for &n in down {
            c.node_up[n.index()] = false;
        }
        c.up_count = spec.nodes - down.len() as u32;
        c.epoch = epoch;
        c.node_epoch = node_epoch;
        // Snapshots don't carry the membership counter; any value no
        // smaller than past ones keeps it monotone, and `epoch` counts
        // a superset of membership changes. Schedulers are rebuilt on
        // restore, so their membership-keyed caches start empty anyway.
        c.membership_epoch = epoch;
        c
    }

    /// Per-node states.
    #[inline]
    pub fn nodes(&self) -> &[NodeState] {
        &self.nodes
    }

    /// Number of nodes hosting at least one task.
    #[inline]
    pub fn busy_nodes(&self) -> u32 {
        self.busy_nodes
    }

    /// Number of idle nodes *in service* (down nodes are not idle
    /// capacity — they are gone until repaired).
    #[inline]
    pub fn idle_nodes(&self) -> u32 {
        self.up_count - self.busy_nodes
    }

    /// Whether `node` is in service.
    #[inline]
    pub fn is_up(&self, node: NodeId) -> bool {
        self.node_up[node.index()]
    }

    /// Number of nodes currently in service.
    #[inline]
    pub fn up_nodes(&self) -> u32 {
        self.up_count
    }

    /// Number of nodes currently out of service.
    #[inline]
    pub fn down_nodes(&self) -> u32 {
        self.spec.nodes - self.up_count
    }

    /// Ids of the nodes currently in service, ascending — the
    /// **available-node view** that placement (packing bins, greedy
    /// scratch, batch free lists) consumes. With no failures this is
    /// every node, so failure-free behavior is unchanged.
    pub fn available_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_up
            .iter()
            .enumerate()
            .filter(|(_, &up)| up)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Take `node` out of service or return it. The engine evicts every
    /// resident task *before* marking a node down; bumps the change
    /// epoch so schedulers caching decisions observe the node-set
    /// change. No-op when the bit already has the requested value.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        if self.node_up[node.index()] == up {
            return;
        }
        debug_assert!(
            up || self.nodes[node.index()].task_count == 0,
            "{node} taken down while hosting tasks"
        );
        self.node_up[node.index()] = up;
        self.up_count = if up {
            self.up_count + 1
        } else {
            self.up_count - 1
        };
        self.membership_epoch += 1;
        self.touch(node);
    }

    /// Monotone counter of node-membership changes (see the field doc).
    /// Equal values at two instants of one run guarantee the
    /// available-node set is unchanged between them.
    #[inline]
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    /// Monotone counter of node-state mutations.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch at which `node` last changed.
    #[inline]
    pub fn node_epoch(&self, node: NodeId) -> u64 {
        self.node_epoch[node.index()]
    }

    /// Nodes whose load changed strictly after `since` (dirty-node
    /// tracking for schedulers that cache decisions between events).
    pub fn dirty_nodes_since(&self, since: u64) -> impl Iterator<Item = NodeId> + '_ {
        self.node_epoch
            .iter()
            .enumerate()
            .filter(move |(_, &e)| e > since)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Sum of allocated CPU over all nodes (for utilization integrals).
    ///
    /// Summed over the busy-node index in ascending id order — the
    /// same sequence of non-zero terms the historical full scan added
    /// (idle nodes contribute exactly `+0.0`, the additive identity
    /// here), so the result is bit-identical at `O(busy)` cost.
    pub fn total_cpu_alloc(&self) -> f64 {
        self.busy_ids
            .iter()
            .map(|&i| self.nodes[i as usize].cpu_alloc)
            .sum()
    }

    /// Highest CPU load over all nodes (the `Λ` of the greedy yield
    /// rule). Idle nodes carry load exactly `0.0` — the fold's seed —
    /// so scanning only busy nodes is exact.
    pub fn max_cpu_load(&self) -> f64 {
        self.busy_ids
            .iter()
            .map(|&i| self.nodes[i as usize].cpu_load)
            .fold(0.0, f64::max)
    }

    #[inline]
    fn touch(&mut self, node: NodeId) {
        self.epoch += 1;
        self.node_epoch[node.index()] = self.epoch;
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeState {
        &mut self.nodes[id.index()]
    }

    /// Place one task of `job` (at `yld`) on `node`. Panics (debug) on
    /// memory overcommitment — callers must have checked feasibility —
    /// and on placement onto a node that is out of service.
    pub fn add_task(&mut self, node: NodeId, cpu_need: f64, mem_req: f64, gpu_need: f64, yld: f64) {
        debug_assert!(self.node_up[node.index()], "task placed on down {node}");
        let n = self.node_mut(node);
        if n.task_count == 0 {
            self.busy_nodes += 1;
            let id = node.index() as u32;
            let pos = self.busy_ids.partition_point(|&b| b < id);
            self.busy_ids.insert(pos, id);
        }
        let n = self.node_mut(node);
        n.cpu_load += cpu_need;
        n.cpu_alloc += cpu_need * yld;
        n.mem_used += mem_req;
        n.gpu_alloc += gpu_need * yld;
        n.task_count += 1;
        debug_assert!(
            approx::le(n.mem_used, 1.0),
            "memory overcommitted: {}",
            n.mem_used
        );
        debug_assert!(
            approx::le(n.cpu_alloc, 1.0),
            "CPU overallocated: {}",
            n.cpu_alloc
        );
        debug_assert!(
            approx::le(n.gpu_alloc, 1.0),
            "GPU overallocated: {}",
            n.gpu_alloc
        );
        self.touch(node);
    }

    /// Remove one task of `job` from `node`.
    pub fn remove_task(
        &mut self,
        node: NodeId,
        cpu_need: f64,
        mem_req: f64,
        gpu_need: f64,
        yld: f64,
    ) {
        let n = self.node_mut(node);
        debug_assert!(n.task_count > 0, "removing task from empty node");
        n.cpu_load = (n.cpu_load - cpu_need).max(0.0);
        n.cpu_alloc = (n.cpu_alloc - cpu_need * yld).max(0.0);
        n.mem_used = (n.mem_used - mem_req).max(0.0);
        n.gpu_alloc = (n.gpu_alloc - gpu_need * yld).max(0.0);
        n.task_count -= 1;
        if n.task_count == 0 {
            self.busy_nodes -= 1;
            let id = node.index() as u32;
            if let Ok(pos) = self.busy_ids.binary_search(&id) {
                self.busy_ids.remove(pos);
            } else {
                debug_assert!(false, "{node} missing from the busy index");
            }
            // Snap residues so long simulations don't accumulate drift.
            let n = self.node_mut(node);
            n.cpu_load = 0.0;
            n.cpu_alloc = 0.0;
            n.mem_used = 0.0;
            n.gpu_alloc = 0.0;
        }
        self.touch(node);
    }

    /// Adjust the allocated fluid resources (CPU, GPU) of a hosted task
    /// after a yield change.
    pub fn retarget_task(
        &mut self,
        node: NodeId,
        cpu_need: f64,
        gpu_need: f64,
        old_yld: f64,
        new_yld: f64,
    ) {
        let n = self.node_mut(node);
        n.cpu_alloc += cpu_need * (new_yld - old_yld);
        n.cpu_alloc = n.cpu_alloc.max(0.0);
        n.gpu_alloc += gpu_need * (new_yld - old_yld);
        n.gpu_alloc = n.gpu_alloc.max(0.0);
        debug_assert!(
            approx::le(n.cpu_alloc, 1.0),
            "CPU overallocated: {}",
            n.cpu_alloc
        );
        debug_assert!(
            approx::le(n.gpu_alloc, 1.0),
            "GPU overallocated: {}",
            n.gpu_alloc
        );
        self.touch(node);
    }
}

/// Resident job table with a sliding eviction window.
///
/// Jobs are admitted in dense-id order; the completed *prefix* is
/// evicted (after its records stream out through a
/// [`crate::RecordSink`]), so memory holds only `[base, base + resident)`
/// — the jobs still in the system plus completed jobs waiting for a
/// lower id to finish. Indexing is by dense job id; `len()` counts every
/// job ever admitted, preserving the `total = jobs.len()` arithmetic of
/// the materialized engine. Accessing an evicted or not-yet-admitted id
/// through `[]` panics; use [`JobStore::get`] where eviction is legal.
#[derive(Debug, Default)]
pub struct JobStore {
    /// Ids below this are completed and evicted.
    base: usize,
    /// Resident jobs, `window[k]` holding id `base + k`.
    window: VecDeque<JobState>,
}

impl JobStore {
    /// Empty store whose next admitted id is `base` (snapshot restore).
    pub(crate) fn with_base(base: usize) -> Self {
        JobStore {
            base,
            window: VecDeque::new(),
        }
    }

    /// Total jobs ever admitted (evicted ones included).
    #[inline]
    pub fn len(&self) -> usize {
        self.base + self.window.len()
    }

    /// True when no job was ever admitted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of resident (non-evicted) jobs.
    #[inline]
    pub fn resident(&self) -> usize {
        self.window.len()
    }

    /// Smallest resident id — everything below it is evicted.
    #[inline]
    pub fn first_resident(&self) -> usize {
        self.base
    }

    /// The job with dense id `i`, when resident.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&JobState> {
        i.checked_sub(self.base).and_then(|k| self.window.get(k))
    }

    #[inline]
    fn get_mut(&mut self, i: usize) -> Option<&mut JobState> {
        i.checked_sub(self.base)
            .and_then(|k| self.window.get_mut(k))
    }

    /// Resident jobs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = &JobState> {
        self.window.iter()
    }

    /// Admit the next job (its id must be `len()`; the engine checks).
    pub(crate) fn push(&mut self, job: JobState) {
        self.window.push_back(job);
    }

    /// Evict the front job; callers only do this once it has completed
    /// and its record has been emitted.
    pub(crate) fn evict_front(&mut self) -> Option<JobState> {
        let j = self.window.pop_front()?;
        self.base += 1;
        Some(j)
    }

    /// The lowest-id resident job, if any.
    #[inline]
    pub(crate) fn front(&self) -> Option<&JobState> {
        self.window.front()
    }
}

impl Index<usize> for JobStore {
    type Output = JobState;
    #[inline]
    fn index(&self, i: usize) -> &JobState {
        self.get(i).unwrap_or_else(|| {
            panic!(
                "job {i} is not resident (ids below {} evicted, {} admitted)",
                self.base,
                self.len()
            )
        })
    }
}

impl IndexMut<usize> for JobStore {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut JobState {
        let (base, len) = (self.base, self.len());
        self.get_mut(i).unwrap_or_else(|| {
            panic!("job {i} is not resident (ids below {base} evicted, {len} admitted)")
        })
    }
}

impl<'a> IntoIterator for &'a JobStore {
    type Item = &'a JobState;
    type IntoIter = std::collections::vec_deque::Iter<'a, JobState>;
    fn into_iter(self) -> Self::IntoIter {
        self.window.iter()
    }
}

/// Read view handed to schedulers: current time, cluster, jobs.
#[derive(Debug)]
pub struct SimState {
    /// Current simulation time (seconds).
    pub now: f64,
    /// Node bookkeeping.
    pub cluster: ClusterState,
    /// One entry per admitted job, indexed by [`JobId`]; completed
    /// prefixes are evicted by the streaming engine.
    pub jobs: JobStore,
    /// Sorted ids of jobs in the system (submitted, not completed).
    pub(crate) live: Vec<u32>,
    /// Sorted ids of running jobs.
    pub(crate) running: Vec<u32>,
    /// Bumped on every job lifecycle transition.
    pub(crate) epoch: u64,
}

impl SimState {
    /// Fresh state with every trace job resident and unsubmitted, all
    /// nodes idle (the materialized construction; the streaming engine
    /// starts from [`SimState::empty`] and admits jobs as they arrive).
    pub fn new(cluster: ClusterSpec, jobs: &[JobSpec]) -> Self {
        let mut state = SimState::empty(cluster);
        for j in jobs {
            state.jobs.push(JobState::new(*j));
        }
        state
    }

    /// Fresh state with no jobs admitted yet.
    pub fn empty(cluster: ClusterSpec) -> Self {
        SimState {
            now: 0.0,
            cluster: ClusterState::new(cluster),
            jobs: JobStore::default(),
            live: Vec::new(),
            running: Vec::new(),
            epoch: 0,
        }
    }

    /// Access a job by id.
    #[inline]
    pub fn job(&self, id: JobId) -> &JobState {
        &self.jobs[id.index()]
    }

    /// The task placement of `id`: one hosting node per task while the
    /// job is `Running`, empty otherwise.
    #[inline]
    pub fn placement(&self, id: JobId) -> &[NodeId] {
        let j = &self.jobs[id.index()];
        if j.status == JobStatus::Running {
            &j.placement
        } else {
            &[]
        }
    }

    /// The full placement slice of `id` (regardless of status) for the
    /// engine to fill before marking the job running.
    #[inline]
    pub(crate) fn placement_slot(&mut self, id: JobId) -> &mut [NodeId] {
        &mut self.jobs[id.index()].placement
    }

    /// The placement slice of `id` read without the `Running` guard (the
    /// engine reads it mid-transition, e.g. while vacating a migrating
    /// job whose status is still `Running` but whose tasks are being
    /// removed).
    #[inline]
    pub(crate) fn placement_raw(&self, id: JobId) -> &[NodeId] {
        &self.jobs[id.index()].placement
    }

    /// Monotone counter of observable state changes (job lifecycle +
    /// node loads). Equal epochs at two instants guarantee that no job
    /// was submitted, started, paused, resumed, migrated, completed, or
    /// re-targeted in between (virtual-time accrual is *not* tracked —
    /// it advances continuously).
    #[inline]
    pub fn change_epoch(&self) -> u64 {
        self.epoch + self.cluster.epoch()
    }

    /// Jobs currently in the system (submitted, not completed), in
    /// ascending id order.
    pub fn jobs_in_system(&self) -> impl Iterator<Item = &JobState> {
        self.live.iter().map(|&i| &self.jobs[i as usize])
    }

    /// Running jobs, in ascending id order.
    pub fn running_jobs(&self) -> impl Iterator<Item = &JobState> {
        self.running.iter().map(|&i| &self.jobs[i as usize])
    }

    /// Sorted ids of running jobs (engine hot path).
    #[inline]
    pub(crate) fn running_ids(&self) -> &[u32] {
        &self.running
    }

    fn index_insert(list: &mut Vec<u32>, id: u32) {
        match list.binary_search(&id) {
            Ok(_) => debug_assert!(false, "job {id} already indexed"),
            Err(pos) => list.insert(pos, id),
        }
    }

    fn index_remove(list: &mut Vec<u32>, id: u32) {
        match list.binary_search(&id) {
            Ok(pos) => {
                list.remove(pos);
            }
            Err(_) => debug_assert!(false, "job {id} not indexed"),
        }
    }

    /// Record a lifecycle transition of `id` from `from` to `to`,
    /// keeping the live/running indexes and the change epoch in sync.
    /// The caller sets `jobs[id].status` itself (it owns the rest of
    /// the transition bookkeeping).
    pub(crate) fn index_transition(&mut self, id: JobId, from: JobStatus, to: JobStatus) {
        let raw = id.0;
        match (from, to) {
            (JobStatus::Unsubmitted, JobStatus::Pending) => Self::index_insert(&mut self.live, raw),
            (JobStatus::Pending | JobStatus::Paused, JobStatus::Running) => {
                Self::index_insert(&mut self.running, raw)
            }
            (JobStatus::Running, JobStatus::Paused) => Self::index_remove(&mut self.running, raw),
            // Node failure under FailurePolicy::Restart: the job is
            // resubmitted with its progress discarded.
            (JobStatus::Running, JobStatus::Pending) => Self::index_remove(&mut self.running, raw),
            (JobStatus::Running, JobStatus::Completed) => {
                Self::index_remove(&mut self.running, raw);
                Self::index_remove(&mut self.live, raw);
            }
            // Cancel of a job that never held (or no longer holds)
            // resources: only the live index knows about it.
            (JobStatus::Pending | JobStatus::Paused, JobStatus::Completed) => {
                Self::index_remove(&mut self.live, raw);
            }
            (f, t) => debug_assert!(false, "unexpected transition {f:?} -> {t:?}"),
        }
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32, tasks: u32) -> JobSpec {
        JobSpec::new(JobId(id), 0.0, tasks, 0.5, 0.25, 100.0).unwrap()
    }

    fn cluster() -> ClusterState {
        ClusterState::new(ClusterSpec::new(4, 4, 8.0).unwrap())
    }

    #[test]
    fn add_remove_round_trips_node_state() {
        let mut c = cluster();
        c.add_task(NodeId(1), 0.5, 0.25, 0.0, 0.8);
        assert_eq!(c.busy_nodes(), 1);
        let n = c.nodes()[1];
        assert!((n.cpu_load - 0.5).abs() < 1e-12);
        assert!((n.cpu_alloc - 0.4).abs() < 1e-12);
        assert!((n.mem_used - 0.25).abs() < 1e-12);
        c.remove_task(NodeId(1), 0.5, 0.25, 0.0, 0.8);
        assert_eq!(c.busy_nodes(), 0);
        assert_eq!(c.nodes()[1], NodeState::default());
    }

    #[test]
    fn retarget_updates_allocation_only() {
        let mut c = cluster();
        c.add_task(NodeId(0), 0.5, 0.1, 0.0, 1.0);
        c.retarget_task(NodeId(0), 0.5, 0.0, 1.0, 0.4);
        let n = c.nodes()[0];
        assert!((n.cpu_alloc - 0.2).abs() < 1e-12);
        assert!((n.cpu_load - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_counting_tracks_multiple_tasks_per_node() {
        let mut c = cluster();
        c.add_task(NodeId(2), 0.3, 0.1, 0.0, 1.0);
        c.add_task(NodeId(2), 0.3, 0.1, 0.0, 1.0);
        assert_eq!(c.busy_nodes(), 1);
        c.remove_task(NodeId(2), 0.3, 0.1, 0.0, 1.0);
        assert_eq!(c.busy_nodes(), 1);
        c.remove_task(NodeId(2), 0.3, 0.1, 0.0, 1.0);
        assert_eq!(c.busy_nodes(), 0);
        assert_eq!(c.idle_nodes(), 4);
    }

    #[test]
    fn max_cpu_load_over_nodes() {
        let mut c = cluster();
        c.add_task(NodeId(0), 1.0, 0.1, 0.0, 0.5);
        c.add_task(NodeId(0), 1.0, 0.1, 0.0, 0.5);
        c.add_task(NodeId(3), 0.7, 0.1, 0.0, 1.0);
        assert!((c.max_cpu_load() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn epochs_mark_dirty_nodes() {
        let mut c = cluster();
        let e0 = c.epoch();
        c.add_task(NodeId(2), 0.3, 0.1, 0.0, 1.0);
        c.add_task(NodeId(1), 0.3, 0.1, 0.0, 1.0);
        assert!(c.epoch() > e0);
        let dirty: Vec<NodeId> = c.dirty_nodes_since(e0).collect();
        assert_eq!(dirty, vec![NodeId(1), NodeId(2)]);
        let e1 = c.epoch();
        assert_eq!(c.dirty_nodes_since(e1).count(), 0);
        c.retarget_task(NodeId(1), 0.3, 0.0, 1.0, 0.5);
        assert_eq!(c.dirty_nodes_since(e1).collect::<Vec<_>>(), [NodeId(1)]);
    }

    #[test]
    fn up_down_bit_and_available_view() {
        let mut c = cluster();
        assert_eq!(c.up_nodes(), 4);
        assert_eq!(c.down_nodes(), 0);
        assert_eq!(c.available_nodes().count(), 4);
        let e0 = c.epoch();
        c.set_node_up(NodeId(2), false);
        assert!(!c.is_up(NodeId(2)));
        assert_eq!(c.up_nodes(), 3);
        assert_eq!(c.down_nodes(), 1);
        assert_eq!(
            c.available_nodes().collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
        assert!(c.epoch() > e0, "node-set changes bump the epoch");
        // Idempotent: repeating the same bit is a no-op (no epoch bump).
        let e1 = c.epoch();
        c.set_node_up(NodeId(2), false);
        assert_eq!(c.epoch(), e1);
        c.set_node_up(NodeId(2), true);
        assert_eq!(c.up_nodes(), 4);
    }

    #[test]
    fn down_nodes_are_not_idle_capacity() {
        let mut c = cluster();
        c.add_task(NodeId(0), 0.3, 0.1, 0.0, 1.0);
        assert_eq!(c.idle_nodes(), 3);
        c.set_node_up(NodeId(3), false);
        assert_eq!(c.idle_nodes(), 2, "a down node is not idle");
        assert_eq!(c.busy_nodes(), 1);
    }

    #[test]
    fn completion_time_accounts_for_penalty() {
        let mut j = JobState::new(spec(0, 1));
        j.status = JobStatus::Running;
        j.yld = 0.5;
        j.virtual_time = 40.0;
        // remaining 60 vt-seconds at yield 0.5 → 120 s of wall clock.
        assert_eq!(j.completion_time(1_000.0), Some(1_120.0));
        j.penalty_until = 1_200.0;
        assert_eq!(j.completion_time(1_000.0), Some(1_320.0));
        j.status = JobStatus::Paused;
        assert_eq!(j.completion_time(1_000.0), None);
    }

    #[test]
    fn job_state_lifecycle_flags() {
        let mut j = JobState::new(spec(0, 2));
        assert!(!j.in_system());
        j.status = JobStatus::Pending;
        assert!(j.in_system());
        j.status = JobStatus::Completed;
        assert!(!j.in_system());
    }

    #[test]
    fn sim_state_indexes_follow_transitions() {
        let cl = ClusterSpec::new(4, 4, 8.0).unwrap();
        let jobs = vec![spec(0, 2), spec(1, 1), spec(2, 3)];
        let mut s = SimState::new(cl, &jobs);
        assert_eq!(s.jobs_in_system().count(), 0);
        let e0 = s.change_epoch();

        for id in [1u32, 0, 2] {
            s.jobs[id as usize].status = JobStatus::Pending;
            s.index_transition(JobId(id), JobStatus::Unsubmitted, JobStatus::Pending);
        }
        let ids: Vec<u32> = s.jobs_in_system().map(|j| j.spec.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2], "ascending id order");
        assert!(s.change_epoch() > e0);

        s.jobs[1].status = JobStatus::Running;
        s.index_transition(JobId(1), JobStatus::Pending, JobStatus::Running);
        assert_eq!(s.running_ids(), &[1]);

        s.jobs[1].status = JobStatus::Running;
        s.placement_slot(JobId(1))[0] = NodeId(3);
        assert_eq!(s.placement(JobId(1)), &[NodeId(3)]);
        assert_eq!(s.placement(JobId(0)), &[] as &[NodeId]);

        s.jobs[1].status = JobStatus::Completed;
        s.index_transition(JobId(1), JobStatus::Running, JobStatus::Completed);
        assert_eq!(s.running_ids(), &[] as &[u32]);
        assert_eq!(s.jobs_in_system().count(), 2);
    }
}
