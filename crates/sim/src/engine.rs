//! The discrete-event simulation engine.
//!
//! Between scheduler decisions all yields are constant, so the engine
//! never time-steps: it alternates between (a) advancing the clock to the
//! earlier of the next external event and the next derived completion,
//! integrating virtual time and the idle/busy node integrals, and (b)
//! letting the scheduler react and applying its plan.
//!
//! ## Streaming loop
//!
//! Submissions arrive from a pull-based [`SubmissionSource`] with
//! one-job lookahead — the engine holds at most one not-yet-due
//! submission in memory — and completed-job records leave through a
//! [`RecordSink`] as soon as every lower id has also completed, at which
//! point the job's state is evicted from the windowed
//! [`crate::state::JobStore`]. Live-set memory is therefore bounded by
//! the number of jobs in the system (plus the completed-prefix lag), not
//! by trace length. The materialized entry point ([`simulate`]) is the
//! trivial adapter: a slice source feeding a `Vec` sink, byte-identical
//! to the historical all-in-memory loop (the golden suites pin this).
//! Within an instant, arrivals are handled before queue events — they
//! carried the lowest sequence numbers when submissions lived in the
//! materialized queue — and completions before either.
//!
//! Hot-path internals (indexed state, per-job placement slots, versioned
//! timers, why completions stay derived) are documented in DESIGN.md
//! §"Engine internals".
//!
//! ## Rescheduling-penalty semantics (Section IV-A, made precise)
//!
//! The paper charges "5 minutes of wall clock time" per preemption or
//! migration, with all migrations through a pause/resume mechanism, and
//! keeps schedulers unaware of the penalty. Concretely here:
//!
//! * pausing stops progress immediately (no penalty on the way out);
//! * resuming a paused job, or moving a running job, occupies the target
//!   nodes immediately but freezes the job's virtual time for the next
//!   `penalty` seconds (`penalty_until`);
//! * first-time starts are free — there is no VM state to move yet;
//! * bandwidth accounting (Table II): a pause writes `tasks × mem × node
//!   GB` to storage and the matching resume reads it back (both booked as
//!   preemption traffic); a migration of `k` tasks moves `2k × mem ×
//!   node GB` (save + restore), booked as migration traffic. Occurrences
//!   are counted **per job**, not per task.

use std::time::Instant;

use dfrs_core::approx;
use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::{ClusterSpec, JobSpec};

use crate::error::SimError;
use crate::event::{EventKind, EventQueue};
use crate::outcome::{make_record, DecisionSample, SimOutcome};
use crate::plan::{Plan, PlanEntry, SchedEvent, Scheduler};
use crate::source::{RecordSink, SliceSource, SubmissionSource};
use crate::state::{JobState, JobStatus, SimState};
use crate::validate;

/// Virtual-time slack below which a job counts as finished (absorbs the
/// rounding of `remaining / yield` completion arithmetic).
const COMPLETION_TOLERANCE: f64 = 1e-6;

/// How migrations of running jobs are carried out.
///
/// The paper pessimistically assumes **stop-and-copy** through network
/// storage (footnote 1) while noting that live migration exists; the
/// live mode is provided as an extension for what-if studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationMode {
    /// Save to storage, restore on the target: the full rescheduling
    /// penalty applies and each moved task crosses storage twice.
    StopAndCopy,
    /// Direct node-to-node transfer: each moved task's memory crosses
    /// the network once, and progress freezes only for `freeze_secs`
    /// (the brownout of the final copy round), independent of the
    /// configured pause/resume penalty.
    Live {
        /// Progress freeze per migration (seconds).
        freeze_secs: f64,
    },
}

/// What happens to a running job when a node hosting one of its tasks
/// fails.
///
/// Failures strike whole jobs: a parallel job that loses one task loses
/// its synchronized state, so every task leaves the cluster (the
/// healthy-node ones included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Paper-pessimistic default: the struck job loses all accrued
    /// virtual time and is resubmitted (`Pending`, progress zero). The
    /// lost progress is metered in
    /// [`SimOutcome::lost_virtual_seconds`].
    #[default]
    Restart,
    /// Optimistic alternative: the job is paused and preserved, reusing
    /// the pause bookkeeping (occurrence + storage traffic) — the
    /// semantics of continuous checkpointing to network storage. A
    /// later resume pays the usual rescheduling penalty.
    PausePreserve,
}

/// One platform availability event: `node` leaves (`up == false`) or
/// rejoins (`up == true`) service at `time`. Produced by the scenario
/// layer's failure models and consumed by the engine as an external
/// queue event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEvent {
    /// Absolute simulation time (seconds).
    pub time: f64,
    /// The node affected.
    pub node: NodeId,
    /// `true` for a repair, `false` for a failure.
    pub up: bool,
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Wall-clock seconds of frozen progress per resume/migration
    /// (0.0 or [`dfrs_core::constants::RESCHEDULING_PENALTY_SECS`]).
    pub penalty: f64,
    /// Mechanism used for migrations of running jobs.
    pub migration_mode: MigrationMode,
    /// What a node failure does to the jobs it strikes.
    pub failure_policy: FailurePolicy,
    /// Platform availability trace: node failures and repairs delivered
    /// as external events (empty = the static cluster of the paper).
    /// Duplicate transitions (down on a down node, up on an up node)
    /// are dropped without a scheduler round.
    pub node_events: Vec<NodeEvent>,
    /// Run full plan + invariant validation around every plan (tests;
    /// O(jobs) per event).
    pub validate: bool,
    /// Record one [`DecisionSample`] per scheduler invocation.
    pub record_decisions: bool,
    /// Record the full allocation [`crate::timeline::Timeline`].
    /// Off by default — streaming runs must not accumulate unbounded
    /// per-decision state (the serve daemon drains the log between
    /// commands instead).
    pub record_timeline: bool,
    /// Hard cap on processed events (runaway-scheduler guard); trips as
    /// [`SimError::EventCapExceeded`].
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            penalty: 0.0,
            migration_mode: MigrationMode::StopAndCopy,
            failure_policy: FailurePolicy::Restart,
            node_events: Vec::new(),
            validate: false,
            record_decisions: false,
            record_timeline: false,
            max_events: 50_000_000,
        }
    }
}

impl SimConfig {
    /// Config with the paper's 5-minute penalty.
    pub fn with_penalty() -> Self {
        SimConfig {
            penalty: dfrs_core::constants::RESCHEDULING_PENALTY_SECS,
            ..SimConfig::default()
        }
    }
}

/// The engine proper, shared between the one-shot drivers
/// ([`simulate_stream`]) and the long-lived [`crate::SimSession`]. Holds
/// no reference to the config or the scheduler — both are passed into
/// each method so a session can own all three side by side.
pub(crate) struct EngineCore {
    pub(crate) state: SimState,
    pub(crate) queue: EventQueue,
    /// Jobs admitted so far (= `state.jobs.len()`, kept as a counter for
    /// symmetry with `completed`).
    pub(crate) admitted: usize,
    pub(crate) completed: usize,
    // Accounting.
    pub(crate) pmtn_count: u64,
    pub(crate) migr_count: u64,
    pub(crate) pmtn_gb: f64,
    pub(crate) migr_gb: f64,
    pub(crate) restart_count: u64,
    pub(crate) lost_vt: f64,
    pub(crate) idle_ns: f64,
    pub(crate) busy_ns: f64,
    pub(crate) down_ns: f64,
    pub(crate) sched_wall: f64,
    pub(crate) sched_max: f64,
    pub(crate) sched_calls: u64,
    pub(crate) events_processed: u64,
    // Online record aggregates, folded in emission (= id) order with the
    // same operations the materialized path used over its records vector,
    // so streamed aggregates are bit-identical.
    pub(crate) makespan: f64,
    pub(crate) stretch_max: f64,
    pub(crate) stretch_sum: f64,
    // High-water marks of the bounded live set (memory-flatness proof
    // for endless feeds).
    pub(crate) peak_live: usize,
    pub(crate) peak_resident: usize,
    pub(crate) decisions: Vec<DecisionSample>,
    pub(crate) timeline: crate::timeline::Timeline,
    // Reused per-event scratch (never observable in results).
    actions: Vec<RunAction>,
    pauses: Vec<JobId>,
    moved_a: Vec<NodeId>,
    moved_b: Vec<NodeId>,
}

/// Run `scheduler` over `jobs` (sorted by submit time, dense ids) on
/// `cluster`. Panics on scheduler protocol violations (invalid plans),
/// on deadlock (jobs in the system with no way to ever progress), and on
/// the event cap — all bugs, not data conditions. Fallible callers use
/// [`try_simulate`] or [`simulate_stream`].
pub fn simulate(
    cluster: ClusterSpec,
    jobs: &[JobSpec],
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
) -> SimOutcome {
    try_simulate(cluster, jobs, scheduler, config).unwrap_or_else(|e| panic!("{e}"))
}

/// [`simulate`], but engine-level failures (deadlock, event cap, bad
/// submission order) come back as [`SimError`] values.
///
/// # Errors
/// Returns [`SimError`] when the run cannot make progress or the
/// workload violates the submission contract.
pub fn try_simulate(
    cluster: ClusterSpec,
    jobs: &[JobSpec],
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
) -> Result<SimOutcome, SimError> {
    let mut source = SliceSource::new(jobs);
    let mut records = Vec::with_capacity(jobs.len());
    let mut outcome = simulate_stream(cluster, &mut source, &mut records, scheduler, config)?;
    outcome.records = records;
    Ok(outcome)
}

/// Run `scheduler` against a pull-based submission feed, streaming
/// completed-job records into `sink`. Memory stays bounded by the live
/// set: the trace is never materialized and
/// [`SimOutcome::records`] comes back empty (aggregates are folded
/// online and are bit-identical to the materialized path's).
///
/// # Errors
/// Returns [`SimError`] when the run cannot make progress or the source
/// violates the submission contract (dense ids, non-decreasing times).
pub fn simulate_stream(
    cluster: ClusterSpec,
    source: &mut dyn SubmissionSource,
    sink: &mut dyn RecordSink,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
) -> Result<SimOutcome, SimError> {
    let mut core = EngineCore::new(cluster);
    core.install_clock_events(&*scheduler, config);
    core.run_stream(scheduler, source, sink, config)?;
    let mut outcome = core.into_outcome(scheduler.name());
    outcome.repack = scheduler.repack_stats();
    Ok(outcome)
}

impl EngineCore {
    pub(crate) fn new(cluster: ClusterSpec) -> Self {
        EngineCore {
            state: SimState::empty(cluster),
            queue: EventQueue::new(),
            admitted: 0,
            completed: 0,
            pmtn_count: 0,
            migr_count: 0,
            pmtn_gb: 0.0,
            migr_gb: 0.0,
            restart_count: 0,
            lost_vt: 0.0,
            idle_ns: 0.0,
            busy_ns: 0.0,
            down_ns: 0.0,
            sched_wall: 0.0,
            sched_max: 0.0,
            sched_calls: 0,
            events_processed: 0,
            makespan: 0.0,
            stretch_max: 0.0,
            stretch_sum: 0.0,
            peak_live: 0,
            peak_resident: 0,
            decisions: Vec::new(),
            timeline: crate::timeline::Timeline::default(),
            actions: Vec::new(),
            pauses: Vec::new(),
            moved_a: Vec::new(),
            moved_b: Vec::new(),
        }
    }

    /// Seed the queue with the scheduler's first tick and the scenario's
    /// availability trace. Called exactly once, before any event runs
    /// (a restored session must *not* call this — its queue already
    /// carries these, materialized, from the snapshot).
    pub(crate) fn install_clock_events(&mut self, scheduler: &dyn Scheduler, config: &SimConfig) {
        if let Some(period) = scheduler.period() {
            assert!(period > 0.0, "scheduler period must be positive");
            self.queue.push(period, EventKind::Tick);
        }
        for ev in &config.node_events {
            assert!(
                ev.node.index() < self.state.cluster.spec.nodes as usize,
                "node event references nonexistent {} (cluster has {} nodes)",
                ev.node,
                self.state.cluster.spec.nodes
            );
            let kind = if ev.up {
                EventKind::NodeUp(ev.node)
            } else {
                EventKind::NodeDown(ev.node)
            };
            self.queue.push(ev.time, kind);
        }
    }

    /// The full streaming loop: pull, advance, settle completions, admit
    /// or dispatch one queue event — until source and live set are both
    /// drained.
    pub(crate) fn run_stream(
        &mut self,
        scheduler: &mut dyn Scheduler,
        source: &mut dyn SubmissionSource,
        sink: &mut dyn RecordSink,
        config: &SimConfig,
    ) -> Result<(), SimError> {
        let mut pending = self.pull(source)?;
        while pending.is_some() || self.completed < self.admitted {
            self.bump_events(config)?;

            let mut t_next = f64::INFINITY;
            if let Some((tc, _)) = self.next_completion() {
                t_next = t_next.min(tc);
            }
            if let Some(te) = self.queue.peek_time() {
                t_next = t_next.min(te);
            }
            if let Some(j) = pending.as_ref() {
                t_next = t_next.min(j.submit_time);
            }
            if t_next == f64::INFINITY {
                return Err(self.deadlock());
            }
            self.advance_to(t_next);

            // Finalize every completion due now, one scheduler round each.
            self.settle_completions(scheduler, config, sink);
            if pending.is_none() && self.completed == self.admitted {
                return Ok(());
            }

            // Then at most one arrival or queue event at this instant;
            // the loop re-checks completions before the next one.
            // Arrivals go first — they carried the lowest sequence
            // numbers when submissions lived in the materialized queue.
            if pending
                .as_ref()
                .is_some_and(|j| j.submit_time <= self.state.now)
            {
                let spec = pending.take().expect("checked is_some");
                let id = self.admit(spec);
                let plan = self.call_scheduler(scheduler, SchedEvent::Submit(id), config);
                self.apply_plan(plan, config);
                pending = self.pull(source)?;
            } else {
                self.handle_due_queue_event(scheduler, config);
            }
        }
        Ok(())
    }

    /// Count one engine iteration against the runaway guard.
    pub(crate) fn bump_events(&mut self, config: &SimConfig) -> Result<(), SimError> {
        self.events_processed += 1;
        if self.events_processed > config.max_events {
            return Err(SimError::EventCapExceeded {
                max_events: config.max_events,
            });
        }
        Ok(())
    }

    /// Pull and validate the next submission from the source.
    pub(crate) fn pull(
        &mut self,
        source: &mut dyn SubmissionSource,
    ) -> Result<Option<JobSpec>, SimError> {
        let Some(spec) = source.next_job() else {
            return Ok(None);
        };
        let expected = JobId(self.state.jobs.len() as u32);
        if spec.id != expected {
            return Err(SimError::NonDenseSubmission {
                expected,
                got: spec.id,
            });
        }
        if !spec.submit_time.is_finite() || spec.submit_time < self.state.now {
            return Err(SimError::SubmissionOutOfOrder {
                job: spec.id,
                time: spec.submit_time,
                now: self.state.now,
            });
        }
        Ok(Some(spec))
    }

    /// Admit `spec` into the live set as `Pending` (the caller delivers
    /// the `Submit` scheduler round).
    pub(crate) fn admit(&mut self, spec: JobSpec) -> JobId {
        let id = spec.id;
        let mut js = JobState::new(spec);
        js.status = JobStatus::Pending;
        self.state.jobs.push(js);
        self.state
            .index_transition(id, JobStatus::Unsubmitted, JobStatus::Pending);
        self.admitted += 1;
        self.peak_live = self.peak_live.max(self.state.live.len());
        self.peak_resident = self.peak_resident.max(self.state.jobs.resident());
        id
    }

    /// Finalize every completion due at the current instant, one
    /// scheduler round each, streaming records out as the completed
    /// prefix grows.
    pub(crate) fn settle_completions(
        &mut self,
        scheduler: &mut dyn Scheduler,
        config: &SimConfig,
        sink: &mut dyn RecordSink,
    ) {
        while let Some(job) = self.due_completion() {
            self.finish_job(job, config);
            let plan = self.call_scheduler(scheduler, SchedEvent::Complete(job), config);
            self.apply_plan(plan, config);
            self.drain_completed(sink);
        }
    }

    /// Emit and evict the completed prefix of the job store: records
    /// leave in id order (exactly the order the materialized records
    /// vector had), aggregates fold online with the same operations the
    /// post-hoc pass used, and retired jobs' timer versions are dropped.
    pub(crate) fn drain_completed(&mut self, sink: &mut dyn RecordSink) {
        let mut evicted = false;
        while self
            .state
            .jobs
            .front()
            .is_some_and(|j| j.status == JobStatus::Completed)
        {
            let j = self.state.jobs.evict_front().expect("front checked");
            let completion = j
                .completion
                .unwrap_or_else(|| panic!("job {} never completed", j.spec.id));
            let rec = make_record(
                j.spec.id,
                j.spec.submit_time,
                j.first_start,
                completion,
                j.spec.oracle_runtime(),
                j.preemptions,
                j.migrations,
                j.restarts,
            );
            self.makespan = f64::max(self.makespan, rec.completion);
            self.stretch_max = f64::max(self.stretch_max, rec.stretch);
            self.stretch_sum += rec.stretch;
            sink.record(rec);
            evicted = true;
        }
        if evicted {
            self.queue.retire_below(self.state.jobs.first_resident());
        }
    }

    /// Dispatch at most one queue event due at the current instant.
    /// Returns whether one was consumed.
    pub(crate) fn handle_due_queue_event(
        &mut self,
        scheduler: &mut dyn Scheduler,
        config: &SimConfig,
    ) -> bool {
        if !self.queue.peek_time().is_some_and(|t| t <= self.state.now) {
            return false;
        }
        let (_, kind, valid) = self.queue.pop().expect("peeked");
        match kind {
            EventKind::Submit(job) => {
                unreachable!("streaming queue holds no submissions ({job})")
            }
            EventKind::Timer(job) => {
                // Stale timers (cancelled when their job started, or
                // retired with an evicted job) are dropped silently; the
                // pending check guards against schedulers timing
                // non-pending jobs.
                if valid
                    && self
                        .state
                        .jobs
                        .get(job.index())
                        .is_some_and(|j| j.status == JobStatus::Pending)
                {
                    let plan = self.call_scheduler(scheduler, SchedEvent::Timer(job), config);
                    self.apply_plan(plan, config);
                }
            }
            EventKind::Tick => {
                // Re-arm from the scheduler's *current* period: a
                // scheduler may stop ticking (`period()` -> `None`)
                // mid-run, e.g. after a restore under a different spec.
                // The already-queued tick is delivered once more and
                // simply not re-armed instead of panicking on the stale
                // queue entry.
                if let Some(period) = scheduler.period() {
                    self.queue.push(self.state.now + period, EventKind::Tick);
                }
                let plan = self.call_scheduler(scheduler, SchedEvent::Tick, config);
                self.apply_plan(plan, config);
            }
            EventKind::NodeDown(node) => {
                // Duplicate transitions (explicit availability traces
                // may contain them) are dropped silently.
                if self.state.cluster.is_up(node) {
                    self.fail_node(node, config);
                    let plan = self.call_scheduler(scheduler, SchedEvent::NodeDown(node), config);
                    self.apply_plan(plan, config);
                }
            }
            EventKind::NodeUp(node) => {
                if !self.state.cluster.is_up(node) {
                    self.state.cluster.set_node_up(node, true);
                    let plan = self.call_scheduler(scheduler, SchedEvent::NodeUp(node), config);
                    self.apply_plan(plan, config);
                }
            }
        }
        true
    }

    /// Earliest completion among running jobs (ties: smallest id).
    /// Scans the sorted running index — ascending id order, exactly as
    /// a full job-table scan would.
    pub(crate) fn next_completion(&self) -> Option<(f64, JobId)> {
        let mut best: Option<(f64, JobId)> = None;
        for &i in self.state.running_ids() {
            let j = &self.state.jobs[i as usize];
            if let Some(t) = j.completion_time(self.state.now) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, j.spec.id));
                }
            }
        }
        best
    }

    /// A running job whose remaining virtual time is (numerically) zero
    /// (smallest id first, via the sorted running index).
    pub(crate) fn due_completion(&self) -> Option<JobId> {
        for &i in self.state.running_ids() {
            let j = &self.state.jobs[i as usize];
            if j.remaining() <= COMPLETION_TOLERANCE {
                return Some(j.spec.id);
            }
        }
        None
    }

    pub(crate) fn advance_to(&mut self, t: f64) {
        let now = self.state.now;
        debug_assert!(t + approx::EPS >= now, "time went backwards: {now} -> {t}");
        if t <= now {
            return;
        }
        let dt = t - now;
        self.idle_ns += self.state.cluster.idle_nodes() as f64 * dt;
        self.busy_ns += self.state.cluster.total_cpu_alloc() * dt;
        self.down_ns += self.state.cluster.down_nodes() as f64 * dt;
        for k in 0..self.state.running_ids().len() {
            let i = self.state.running_ids()[k] as usize;
            let j = &mut self.state.jobs[i];
            let from = now.max(j.penalty_until);
            if t > from {
                j.virtual_time += j.yld * (t - from);
            }
        }
        self.state.now = t;
    }

    fn finish_job(&mut self, id: JobId, config: &SimConfig) {
        let now = self.state.now;
        let j = &self.state.jobs[id.index()];
        debug_assert_eq!(j.status, JobStatus::Running);
        let (need, mem, gpu, yld, tasks) = (
            j.spec.cpu_need,
            j.spec.mem_req,
            j.spec.gpu_need,
            j.yld,
            j.spec.tasks,
        );
        for k in 0..tasks as usize {
            let node = self.state.placement_raw(id)[k];
            self.state.cluster.remove_task(node, need, mem, gpu, yld);
        }
        let j = &mut self.state.jobs[id.index()];
        j.status = JobStatus::Completed;
        j.completion = Some(now);
        j.yld = 0.0;
        self.state
            .index_transition(id, JobStatus::Running, JobStatus::Completed);
        self.completed += 1;
        if config.record_timeline {
            self.timeline
                .push(now, id, crate::timeline::AllocEvent::Complete);
        }
    }

    /// Take `node` out of service: every running job with a task there
    /// is struck (all its tasks leave the cluster, healthy-node ones
    /// included — a parallel job that loses one task loses its
    /// synchronized state) under the configured [`FailurePolicy`], then
    /// the node is marked down. The scheduler is notified *after* this
    /// bookkeeping, mirroring how completions are delivered.
    pub(crate) fn fail_node(&mut self, node: NodeId, config: &SimConfig) {
        // Victims in ascending id order (the running index's order).
        let mut victims: Vec<JobId> = Vec::new();
        for &i in self.state.running_ids() {
            let id = JobId(i);
            if self.state.placement_raw(id).contains(&node) {
                victims.push(id);
            }
        }
        for id in victims {
            match config.failure_policy {
                FailurePolicy::Restart => self.kill_job(id, config),
                FailurePolicy::PausePreserve => self.do_pause(id, config),
            }
        }
        self.state.cluster.set_node_up(node, false);
    }

    /// [`FailurePolicy::Restart`]: evict every task of `id` and resubmit
    /// the job with its progress discarded. Unlike a pause, nothing
    /// crosses storage — the state died with the node.
    fn kill_job(&mut self, id: JobId, config: &SimConfig) {
        let j = &self.state.jobs[id.index()];
        debug_assert_eq!(j.status, JobStatus::Running);
        let (need, mem, gpu, yld, tasks) = (
            j.spec.cpu_need,
            j.spec.mem_req,
            j.spec.gpu_need,
            j.yld,
            j.spec.tasks,
        );
        for k in 0..tasks as usize {
            let node = self.state.placement_raw(id)[k];
            self.state.cluster.remove_task(node, need, mem, gpu, yld);
        }
        let j = &mut self.state.jobs[id.index()];
        self.lost_vt += j.virtual_time;
        j.virtual_time = 0.0;
        j.yld = 0.0;
        j.penalty_until = 0.0;
        j.status = JobStatus::Pending;
        j.restarts += 1;
        self.restart_count += 1;
        self.state
            .index_transition(id, JobStatus::Running, JobStatus::Pending);
        if config.record_timeline {
            self.timeline
                .push(self.state.now, id, crate::timeline::AllocEvent::Kill);
        }
    }

    /// Remove `id` from the system at the current instant without
    /// finishing its work: an operator or quarantine *cancel*. Running
    /// jobs free their tasks; pending and paused jobs simply leave the
    /// queue. Either way the job transitions to `Completed` (so the
    /// normal drain path emits its record and quiescence is reachable)
    /// and its accrued virtual time counts as lost work. Returns
    /// whether the job held cluster resources.
    pub(crate) fn cancel_job(&mut self, id: JobId, config: &SimConfig) -> Result<bool, SimError> {
        let Some(j) = self.state.jobs.get(id.index()) else {
            return Err(SimError::UnknownJob { job: id });
        };
        let status = j.status;
        let was_running = status == JobStatus::Running;
        match status {
            JobStatus::Running => {
                let (need, mem, gpu, yld, tasks) = (
                    j.spec.cpu_need,
                    j.spec.mem_req,
                    j.spec.gpu_need,
                    j.yld,
                    j.spec.tasks,
                );
                for k in 0..tasks as usize {
                    let node = self.state.placement_raw(id)[k];
                    self.state.cluster.remove_task(node, need, mem, gpu, yld);
                }
            }
            JobStatus::Pending | JobStatus::Paused => {}
            st => {
                return Err(SimError::NotCancelable {
                    job: id,
                    status: st,
                })
            }
        }
        let j = &mut self.state.jobs[id.index()];
        self.lost_vt += j.virtual_time;
        j.status = JobStatus::Completed;
        j.completion = Some(self.state.now);
        j.yld = 0.0;
        self.state
            .index_transition(id, status, JobStatus::Completed);
        self.completed += 1;
        if config.record_timeline {
            self.timeline.push(
                self.state.now,
                id,
                crate::timeline::AllocEvent::Cancel { was_running },
            );
        }
        Ok(was_running)
    }

    pub(crate) fn call_scheduler(
        &mut self,
        scheduler: &mut dyn Scheduler,
        ev: SchedEvent,
        config: &SimConfig,
    ) -> Plan {
        let in_system = self.state.jobs_in_system().count() as u32;
        let start = Instant::now();
        let plan = scheduler.on_event(ev, &self.state);
        let wall = start.elapsed().as_secs_f64();
        self.sched_wall += wall;
        self.sched_max = self.sched_max.max(wall);
        self.sched_calls += 1;
        if config.record_decisions {
            self.decisions.push(DecisionSample {
                jobs_in_system: in_system,
                wall_secs: wall,
            });
        }
        plan
    }

    /// Apply a plan in two phases — all removals (pauses, migration
    /// departures) strictly before all additions — so that plans which
    /// permute jobs across nodes never trip capacity checks on transient
    /// intermediate states. Placements are read from the plan entries in
    /// place and copied into the per-job slots; nothing is cloned.
    pub(crate) fn apply_plan(&mut self, plan: Plan, config: &SimConfig) {
        if config.validate {
            if let Err(e) = validate::check_plan(&self.state, &plan) {
                panic!("invalid plan at t={}: {e}", self.state.now);
            }
        }

        // Classify run entries against the *pre-plan* state.
        let mut actions = std::mem::take(&mut self.actions);
        let mut pauses = std::mem::take(&mut self.pauses);
        actions.clear();
        pauses.clear();
        for (idx, e) in plan.entries.iter().enumerate() {
            match e {
                PlanEntry::Pause { job } => pauses.push(*job),
                PlanEntry::Run {
                    job,
                    placement,
                    yld,
                } => {
                    let js = &self.state.jobs[job.index()];
                    assert_eq!(
                        placement.len(),
                        js.spec.tasks as usize,
                        "plan places {} tasks for {job} ({} expected)",
                        placement.len(),
                        js.spec.tasks
                    );
                    assert!(
                        *yld > 0.0 && *yld <= 1.0 + approx::EPS,
                        "plan sets invalid yield {yld} for {job}"
                    );
                    let kind = match js.status {
                        JobStatus::Pending => RunKind::Start,
                        JobStatus::Paused => RunKind::Resume,
                        JobStatus::Running => {
                            let moved = moved_tasks(
                                self.state.placement_raw(*job),
                                placement,
                                &mut self.moved_a,
                                &mut self.moved_b,
                            );
                            if moved == 0 {
                                RunKind::Adjust
                            } else {
                                RunKind::Migrate { moved }
                            }
                        }
                        st => panic!("plan runs job {job} in status {st:?}"),
                    };
                    actions.push(RunAction {
                        entry: idx as u32,
                        job: *job,
                        yld: yld.min(1.0),
                        kind,
                        old_yld: js.yld,
                    });
                }
            }
        }
        debug_assert!(
            {
                let mut seen = std::collections::HashSet::new();
                actions.iter().all(|a| seen.insert(a.job)) && pauses.iter().all(|p| seen.insert(*p))
            },
            "plan mentions a job twice (pause+run or duplicate run)"
        );

        // Phase 1: removals — pauses, migration departures, and yield
        // *decreases*. Doing every release before any addition keeps the
        // per-node capacity monotone below its final value, so transient
        // states never overshoot even when a plan permutes jobs.
        for &job in &pauses {
            self.do_pause(job, config);
        }
        for a in &actions {
            match a.kind {
                RunKind::Migrate { .. } => {
                    let j = &self.state.jobs[a.job.index()];
                    let (need, mem, gpu, tasks) = (
                        j.spec.cpu_need,
                        j.spec.mem_req,
                        j.spec.gpu_need,
                        j.spec.tasks,
                    );
                    for k in 0..tasks as usize {
                        let node = self.state.placement_raw(a.job)[k];
                        self.state
                            .cluster
                            .remove_task(node, need, mem, gpu, a.old_yld);
                    }
                }
                RunKind::Adjust if a.yld < a.old_yld => {
                    // Applied here in phase 1 (a release); recorded here
                    // too — phase 2 skips this action entirely.
                    if config.record_timeline {
                        self.timeline.push(
                            self.state.now,
                            a.job,
                            crate::timeline::AllocEvent::Adjust { yld: a.yld },
                        );
                    }
                    let need = self.state.jobs[a.job.index()].spec.cpu_need;
                    let gpu = self.state.jobs[a.job.index()].spec.gpu_need;
                    let tasks = self.state.jobs[a.job.index()].spec.tasks;
                    for k in 0..tasks as usize {
                        let node = self.state.placement_raw(a.job)[k];
                        self.state
                            .cluster
                            .retarget_task(node, need, gpu, a.old_yld, a.yld);
                    }
                    self.state.jobs[a.job.index()].yld = a.yld;
                }
                _ => {}
            }
        }

        // Phase 2: additions and upward adjustments.
        for a in &actions {
            if matches!(a.kind, RunKind::Adjust) && a.yld < a.old_yld {
                continue; // already applied in phase 1
            }
            let placement = match &plan.entries[a.entry as usize] {
                PlanEntry::Run { placement, .. } => placement.as_slice(),
                PlanEntry::Pause { .. } => unreachable!("run actions index run entries"),
            };
            self.do_run(a, placement, config);
        }
        self.actions = actions;
        self.pauses = pauses;

        for (job, at) in plan.timers {
            assert!(
                at + approx::EPS >= self.state.now,
                "timer for {job} in the past ({at} < {})",
                self.state.now
            );
            self.queue
                .push(at.max(self.state.now), EventKind::Timer(job));
        }
        if config.validate {
            if let Err(msg) = validate::check_invariants(&self.state) {
                panic!("invariant violation at t={}: {msg}", self.state.now);
            }
        }
    }

    fn do_pause(&mut self, id: JobId, config: &SimConfig) {
        let j = &self.state.jobs[id.index()];
        assert_eq!(
            j.status,
            JobStatus::Running,
            "plan pauses non-running job {id}"
        );
        let (need, mem, gpu, yld, tasks) = (
            j.spec.cpu_need,
            j.spec.mem_req,
            j.spec.gpu_need,
            j.yld,
            j.spec.tasks,
        );
        for k in 0..tasks as usize {
            let node = self.state.placement_raw(id)[k];
            self.state.cluster.remove_task(node, need, mem, gpu, yld);
        }
        let j = &mut self.state.jobs[id.index()];
        j.status = JobStatus::Paused;
        j.yld = 0.0;
        j.preemptions += 1;
        self.state
            .index_transition(id, JobStatus::Running, JobStatus::Paused);
        self.pmtn_count += 1;
        self.pmtn_gb += tasks as f64 * self.state.cluster.spec.task_move_gb(mem);
        if config.record_timeline {
            self.timeline
                .push(self.state.now, id, crate::timeline::AllocEvent::Pause);
        }
    }

    fn do_run(&mut self, a: &RunAction, placement: &[NodeId], config: &SimConfig) {
        let now = self.state.now;
        let spec = self.state.jobs[a.job.index()].spec;
        if config.record_timeline {
            use crate::timeline::AllocEvent;
            let ev = match a.kind {
                RunKind::Start => Some(AllocEvent::Start {
                    nodes: placement.to_vec(),
                    yld: a.yld,
                }),
                RunKind::Resume => Some(AllocEvent::Resume {
                    nodes: placement.to_vec(),
                    yld: a.yld,
                }),
                RunKind::Adjust if (a.yld - a.old_yld).abs() > 0.0 => {
                    Some(AllocEvent::Adjust { yld: a.yld })
                }
                RunKind::Adjust => None,
                RunKind::Migrate { moved } => Some(AllocEvent::Migrate {
                    nodes: placement.to_vec(),
                    yld: a.yld,
                    moved,
                }),
            };
            if let Some(ev) = ev {
                self.timeline.push(now, a.job, ev);
            }
        }
        match a.kind {
            RunKind::Start => {
                // First start: free (no VM state to move yet).
                for &n in placement {
                    self.state.cluster.add_task(
                        n,
                        spec.cpu_need,
                        spec.mem_req,
                        spec.gpu_need,
                        a.yld,
                    );
                }
                self.state.placement_slot(a.job).copy_from_slice(placement);
                let j = &mut self.state.jobs[a.job.index()];
                j.status = JobStatus::Running;
                j.first_start.get_or_insert(now);
                j.yld = a.yld;
                self.state
                    .index_transition(a.job, JobStatus::Pending, JobStatus::Running);
                // Any outstanding backoff timer is now obsolete.
                self.queue.cancel_timers(a.job);
            }
            RunKind::Resume => {
                // Restore from storage, charge the penalty.
                for &n in placement {
                    self.state.cluster.add_task(
                        n,
                        spec.cpu_need,
                        spec.mem_req,
                        spec.gpu_need,
                        a.yld,
                    );
                }
                self.pmtn_gb +=
                    spec.tasks as f64 * self.state.cluster.spec.task_move_gb(spec.mem_req);
                self.state.placement_slot(a.job).copy_from_slice(placement);
                let j = &mut self.state.jobs[a.job.index()];
                j.status = JobStatus::Running;
                j.yld = a.yld;
                j.penalty_until = now + config.penalty;
                self.state
                    .index_transition(a.job, JobStatus::Paused, JobStatus::Running);
            }
            RunKind::Adjust => {
                // Pure yield adjustment; placement is unchanged.
                if (a.yld - a.old_yld).abs() > 0.0 {
                    let tasks = spec.tasks as usize;
                    for k in 0..tasks {
                        let node = self.state.placement_raw(a.job)[k];
                        self.state.cluster.retarget_task(
                            node,
                            spec.cpu_need,
                            spec.gpu_need,
                            a.old_yld,
                            a.yld,
                        );
                    }
                    self.state.jobs[a.job.index()].yld = a.yld;
                }
            }
            RunKind::Migrate { moved } => {
                // Old tasks were removed in phase 1.
                for &n in placement {
                    self.state.cluster.add_task(
                        n,
                        spec.cpu_need,
                        spec.mem_req,
                        spec.gpu_need,
                        a.yld,
                    );
                }
                self.state.placement_slot(a.job).copy_from_slice(placement);
                let gb_per_task = self.state.cluster.spec.task_move_gb(spec.mem_req);
                let (gb, freeze) = match config.migration_mode {
                    MigrationMode::StopAndCopy => {
                        // Save + restore through storage.
                        (2.0 * moved as f64 * gb_per_task, config.penalty)
                    }
                    MigrationMode::Live { freeze_secs } => {
                        // One node-to-node copy; short brownout.
                        (moved as f64 * gb_per_task, freeze_secs)
                    }
                };
                self.migr_gb += gb;
                self.migr_count += 1;
                let j = &mut self.state.jobs[a.job.index()];
                j.yld = a.yld;
                j.migrations += 1;
                j.penalty_until = now + freeze;
            }
        }
    }

    /// The typed form of the old deadlock panic: nothing can ever make
    /// progress again.
    pub(crate) fn deadlock(&self) -> SimError {
        SimError::Deadlock {
            now: self.state.now,
            stuck: self
                .state
                .jobs_in_system()
                .map(|j| (j.spec.id, j.status))
                .collect(),
        }
    }

    pub(crate) fn into_outcome(self, algorithm: String) -> SimOutcome {
        let mean_stretch = if self.completed == 0 {
            0.0
        } else {
            self.stretch_sum / self.completed as f64
        };
        SimOutcome {
            algorithm,
            records: Vec::new(),
            max_stretch: self.stretch_max,
            mean_stretch,
            makespan: self.makespan,
            preemption_count: self.pmtn_count,
            migration_count: self.migr_count,
            preemption_gb: self.pmtn_gb,
            migration_gb: self.migr_gb,
            restart_count: self.restart_count,
            lost_virtual_seconds: self.lost_vt,
            idle_node_seconds: self.idle_ns,
            busy_node_seconds: self.busy_ns,
            down_node_seconds: self.down_ns,
            sched_wall_total: self.sched_wall,
            sched_wall_max: self.sched_max,
            sched_calls: self.sched_calls,
            events_processed: self.events_processed,
            jobs_completed: self.completed as u64,
            peak_live_jobs: self.peak_live as u64,
            peak_resident_jobs: self.peak_resident as u64,
            decisions: self.decisions,
            timeline: self.timeline,
            ..SimOutcome::default()
        }
    }
}

/// How a run entry affects its job, classified against pre-plan state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RunKind {
    Start,
    Resume,
    Adjust,
    Migrate { moved: usize },
}

/// One classified run entry; the placement is read from the plan entry
/// at index `entry` (no clone).
#[derive(Debug, Clone, Copy)]
struct RunAction {
    entry: u32,
    job: JobId,
    yld: f64,
    kind: RunKind,
    old_yld: f64,
}

/// Number of tasks that change nodes between two placements (multiset
/// difference; task identity within a job is interchangeable). `buf_a`
/// and `buf_b` are caller-owned sort scratch.
fn moved_tasks(
    old: &[NodeId],
    new: &[NodeId],
    buf_a: &mut Vec<NodeId>,
    buf_b: &mut Vec<NodeId>,
) -> usize {
    debug_assert_eq!(old.len(), new.len());
    buf_a.clear();
    buf_a.extend_from_slice(old);
    buf_b.clear();
    buf_b.extend_from_slice(new);
    buf_a.sort_unstable();
    buf_b.sort_unstable();
    let (mut i, mut k, mut common) = (0usize, 0usize, 0usize);
    while i < buf_a.len() && k < buf_b.len() {
        match buf_a[i].cmp(&buf_b[k]) {
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                k += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => k += 1,
        }
    }
    old.len() - common
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moved_tasks_counts_multiset_difference() {
        let n = |v: &[u32]| v.iter().map(|&x| NodeId(x)).collect::<Vec<_>>();
        let mt = |a: &[u32], b: &[u32]| {
            let (mut ba, mut bb) = (Vec::new(), Vec::new());
            moved_tasks(&n(a), &n(b), &mut ba, &mut bb)
        };
        assert_eq!(mt(&[0, 1, 2], &[2, 1, 0]), 0, "permutation is no move");
        assert_eq!(mt(&[0, 1, 2], &[0, 1, 3]), 1);
        assert_eq!(mt(&[0, 0, 1], &[0, 1, 1]), 1, "multiplicity matters");
        assert_eq!(mt(&[4, 5], &[6, 7]), 2);
        assert_eq!(mt(&[], &[]), 0);
    }
}
