//! CSV export/import of simulation outcomes.
//!
//! Per-job records round-trip through a documented CSV schema so results
//! can be archived, diffed across code versions, and plotted by external
//! tooling without re-running simulations.

use dfrs_core::ids::JobId;
use dfrs_core::CoreError;

use crate::outcome::{JobRecord, SimOutcome};

/// CSV header for per-job records.
pub const RECORDS_HEADER: &str =
    "job,submit,first_start,completion,dedicated,turnaround,stretch,preemptions,migrations,restarts";

/// Serialize the per-job records of an outcome to CSV (header included).
pub fn records_to_csv(outcome: &SimOutcome) -> String {
    let mut out = String::with_capacity(64 * (outcome.records.len() + 1));
    out.push_str(RECORDS_HEADER);
    out.push('\n');
    for r in &outcome.records {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            r.id.0,
            r.submit,
            r.first_start.map(|s| s.to_string()).unwrap_or_default(),
            r.completion,
            r.dedicated,
            r.turnaround,
            r.stretch,
            r.preemptions,
            r.migrations,
            r.restarts,
        ));
    }
    out
}

/// Parse records back from CSV produced by [`records_to_csv`].
pub fn records_from_csv(text: &str) -> Result<Vec<JobRecord>, CoreError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == RECORDS_HEADER => {}
        _ => {
            return Err(CoreError::Parse {
                line: 1,
                reason: "missing records header".into(),
            });
        }
    }
    let mut records = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 10 {
            return Err(CoreError::Parse {
                line: lineno,
                reason: format!("expected 10 fields, found {}", f.len()),
            });
        }
        let num = |s: &str| -> Result<f64, CoreError> {
            s.parse::<f64>().map_err(|_| CoreError::Parse {
                line: lineno,
                reason: format!("bad number {s:?}"),
            })
        };
        let int = |s: &str| -> Result<u32, CoreError> {
            s.parse::<u32>().map_err(|_| CoreError::Parse {
                line: lineno,
                reason: format!("bad integer {s:?}"),
            })
        };
        records.push(JobRecord {
            id: JobId(int(f[0])?),
            submit: num(f[1])?,
            first_start: if f[2].is_empty() {
                None
            } else {
                Some(num(f[2])?)
            },
            completion: num(f[3])?,
            dedicated: num(f[4])?,
            turnaround: num(f[5])?,
            stretch: num(f[6])?,
            preemptions: int(f[7])?,
            migrations: int(f[8])?,
            restarts: int(f[9])?,
        });
    }
    Ok(records)
}

/// One-line summary of an outcome (for logs and quick comparisons).
pub fn summary_line(outcome: &SimOutcome) -> String {
    format!(
        "{}: jobs={} max_stretch={:.3} mean_stretch={:.3} makespan={:.0}s pmtn={} migr={} moved={:.1}GB",
        outcome.algorithm,
        outcome.records.len(),
        outcome.max_stretch,
        outcome.mean_stretch,
        outcome.makespan,
        outcome.preemption_count,
        outcome.migration_count,
        outcome.preemption_gb + outcome.migration_gb,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::make_record;

    fn sample_outcome() -> SimOutcome {
        SimOutcome {
            algorithm: "test".into(),
            records: vec![
                make_record(JobId(0), 0.0, Some(5.0), 105.0, 100.0, 1, 2, 1),
                make_record(JobId(1), 10.0, None, 40.0, 25.0, 0, 0, 0),
            ],
            makespan: 105.0,
            jobs_completed: 2,
            ..SimOutcome::default()
        }
    }

    #[test]
    fn csv_round_trip() {
        let o = sample_outcome();
        let csv = records_to_csv(&o);
        let parsed = records_from_csv(&csv).unwrap();
        assert_eq!(parsed, o.records);
    }

    #[test]
    fn none_first_start_round_trips() {
        let o = sample_outcome();
        let parsed = records_from_csv(&records_to_csv(&o)).unwrap();
        assert_eq!(parsed[1].first_start, None);
        assert_eq!(parsed[0].first_start, Some(5.0));
    }

    #[test]
    fn bad_inputs_are_rejected_with_line_numbers() {
        assert!(records_from_csv("nonsense\n").is_err());
        let bad_fields = format!("{RECORDS_HEADER}\n1,2,3\n");
        match records_from_csv(&bad_fields) {
            Err(CoreError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_number = format!("{RECORDS_HEADER}\n1,x,,4,5,6,7,8,9,0\n");
        assert!(records_from_csv(&bad_number).is_err());
    }

    #[test]
    fn summary_line_contains_key_metrics() {
        let s = summary_line(&sample_outcome());
        assert!(s.contains("max_stretch"));
        assert!(s.contains("jobs=2"));
    }

    #[test]
    fn empty_outcome_round_trips() {
        let o = SimOutcome::default();
        let parsed = records_from_csv(&records_to_csv(&o)).unwrap();
        assert!(parsed.is_empty());
    }
}
