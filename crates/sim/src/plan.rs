//! The scheduler interface: events in, plans out.
//!
//! A scheduler is a pure policy. It never mutates simulation state
//! directly; it inspects the read-only [`SimState`] and returns a
//! [`Plan`], which the engine validates, applies, and accounts for
//! (preemption/migration counting, penalty charging, bandwidth metering).
//! This keeps every algorithm honest: the only way to affect the world is
//! through auditable plan entries.

use dfrs_core::ids::{JobId, NodeId};

use crate::state::SimState;

/// Why the scheduler is being invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// `job` just arrived.
    Submit(JobId),
    /// `job` just completed (already removed from its nodes).
    Complete(JobId),
    /// A timer previously requested for `job` fired (backoff retry). Only
    /// delivered while the job is still `Pending`.
    Timer(JobId),
    /// Periodic scheduling event ([`Scheduler::period`]).
    Tick,
    /// `node` just failed. The engine has already taken it out of
    /// service and evicted its resident jobs under the configured
    /// [`crate::FailurePolicy`] — victims are `Pending` (progress lost)
    /// or `Paused` (progress preserved) in the state the scheduler sees.
    NodeDown(NodeId),
    /// `node` was just repaired and is back in service (idle).
    NodeUp(NodeId),
    /// `job` is being taken away from this scheduler's jurisdiction by
    /// an outer coordinator (shard rebalancing): forget any queued or
    /// per-job state for it. Only ever `Pending` or `Paused` jobs are
    /// withdrawn, and the engine itself never emits this event — it is
    /// delivered by composite schedulers (see `dfrs_sched`'s sharded
    /// coordinator) to their inner instances.
    Withdraw(JobId),
}

/// One desired state change.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanEntry {
    /// Ensure `job` runs with this placement (one node per task, same
    /// order as task indices) and yield. Covers first starts, resumes,
    /// migrations, and pure yield adjustments; the engine diffs against
    /// the current state to classify and account.
    Run {
        /// Target job.
        job: JobId,
        /// Hosting node per task.
        placement: Vec<NodeId>,
        /// Yield in `(0, 1]`.
        yld: f64,
    },
    /// Evict a running job from its nodes, preserving its virtual time.
    Pause {
        /// Target job.
        job: JobId,
    },
}

/// The scheduler's response to one event.
///
/// The engine applies **all pauses first**, then runs in the order given
/// (so a plan may move job B into memory freed by pausing job A). Jobs
/// not mentioned keep their current placement and yield.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    /// State changes.
    pub entries: Vec<PlanEntry>,
    /// Absolute times at which to deliver [`SchedEvent::Timer`] for a job
    /// (used for bounded exponential backoff).
    pub timers: Vec<(JobId, f64)>,
}

impl Plan {
    /// A plan that changes nothing.
    pub fn noop() -> Self {
        Plan::default()
    }

    /// Add a run entry (builder style).
    pub fn run(mut self, job: JobId, placement: Vec<NodeId>, yld: f64) -> Self {
        self.entries.push(PlanEntry::Run {
            job,
            placement,
            yld,
        });
        self
    }

    /// Add a pause entry (builder style).
    pub fn pause(mut self, job: JobId) -> Self {
        self.entries.push(PlanEntry::Pause { job });
        self
    }

    /// Add a timer (builder style).
    pub fn timer(mut self, job: JobId, at: f64) -> Self {
        self.timers.push((job, at));
        self
    }
}

/// Warm-start accounting a scheduler can expose after a run (the
/// `DynMCB8*` family reports its repack-memo counters through this; see
/// `dfrs_packing::RepackMemo`). Purely observational: the values never
/// influence scheduling decisions or outcomes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RepackStats {
    /// Allocation searches the scheduler ran.
    pub searches: u64,
    /// Searches answered entirely from warm state (zero packs).
    pub search_hits: u64,
    /// Packer invocations actually executed.
    pub packs: u64,
    /// Packer invocations avoided by warm-start replay.
    pub packs_saved: u64,
}

/// A scheduling policy driven by the simulation engine.
///
/// `Send` is a supertrait so composite schedulers (the sharded
/// coordinator, [`dfrs_scenario`-style campaign runners]) can fan
/// instances out across scoped threads; every scheduler in the tree is
/// plain owned data, so this costs implementors nothing.
pub trait Scheduler: Send {
    /// Display name (used in tables; e.g. `"DynMCB8-asap-per 600"`).
    fn name(&self) -> String;

    /// If `Some(T)`, the engine delivers [`SchedEvent::Tick`] every `T`
    /// seconds starting at `T`.
    fn period(&self) -> Option<f64> {
        None
    }

    /// React to an event. `state` reflects the world *after* the event's
    /// bookkeeping (e.g. a completed job is already off its nodes).
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan;

    /// Warm-start accounting accumulated so far, if this scheduler
    /// keeps any (the engine copies it into
    /// [`SimOutcome::repack`](crate::SimOutcome::repack) after a run).
    fn repack_stats(&self) -> Option<RepackStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_entries_in_order() {
        let p = Plan::noop()
            .pause(JobId(1))
            .run(JobId(2), vec![NodeId(0)], 1.0)
            .timer(JobId(3), 42.0);
        assert_eq!(p.entries.len(), 2);
        assert!(matches!(p.entries[0], PlanEntry::Pause { job: JobId(1) }));
        assert!(matches!(p.entries[1], PlanEntry::Run { job: JobId(2), .. }));
        assert_eq!(p.timers, vec![(JobId(3), 42.0)]);
    }

    #[test]
    fn noop_is_empty() {
        let p = Plan::noop();
        assert!(p.entries.is_empty() && p.timers.is_empty());
    }
}
