//! Typed engine failures.
//!
//! The materialized entry point ([`crate::simulate`]) still panics on
//! these — a batch run that deadlocks or runs away is a bug and should
//! abort the test — but the streaming entry points
//! ([`crate::try_simulate`], [`crate::simulate_stream`], and the
//! long-lived [`crate::SimSession`]) surface them as values so a daemon
//! can refuse the offending input and keep serving.

use std::fmt;

use dfrs_core::ids::{JobId, NodeId};

use crate::state::JobStatus;

/// Why a simulation could not make progress or accept an input.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The runaway-scheduler guard tripped: more engine iterations than
    /// [`crate::SimConfig::max_events`] allows.
    EventCapExceeded {
        /// The configured cap.
        max_events: u64,
    },
    /// No pending events, no running jobs, and jobs still in the
    /// system: nothing can ever make progress again.
    Deadlock {
        /// Simulation time at which progress stopped.
        now: f64,
        /// The stuck jobs and their statuses.
        stuck: Vec<(JobId, JobStatus)>,
    },
    /// The submission source yielded a job whose id is not the next
    /// dense id.
    NonDenseSubmission {
        /// The id the engine expected.
        expected: JobId,
        /// The id the source produced.
        got: JobId,
    },
    /// A submission's time is in the past (sources must yield
    /// non-decreasing, finite, non-negative submit times).
    SubmissionOutOfOrder {
        /// Offending job.
        job: JobId,
        /// Its submit time.
        time: f64,
        /// The simulation clock when it arrived.
        now: f64,
    },
    /// A session command referenced a node outside the cluster.
    UnknownNode {
        /// The nonexistent node.
        node: NodeId,
        /// Cluster size.
        nodes: u32,
    },
    /// A session command carried a time before the simulation clock.
    CommandInPast {
        /// Requested time.
        time: f64,
        /// Current simulation time.
        now: f64,
    },
    /// A snapshot was requested while jobs were still in the system
    /// (snapshots are only defined at quiescence; see DESIGN.md §11).
    NotQuiescent {
        /// Jobs still in the system.
        live: usize,
    },
    /// A snapshot document handed to [`crate::SimSession::restore`] was
    /// not a well-formed `dfrs-snapshot-v1` snapshot.
    SnapshotMalformed {
        /// What was wrong with the document.
        detail: String,
    },
    /// A session command referenced a job that has never been
    /// submitted (or whose record has already been drained).
    UnknownJob {
        /// The nonexistent job.
        job: JobId,
    },
    /// A cancel referenced a job that is no longer in the system.
    NotCancelable {
        /// The job.
        job: JobId,
        /// Its status at the time of the cancel.
        status: JobStatus,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the two legacy messages byte-compatible with the old
            // engine panics: tests assert on these substrings.
            SimError::EventCapExceeded { max_events } => {
                write!(f, "event cap exceeded ({max_events}) — runaway scheduler?")
            }
            SimError::Deadlock { now, stuck } => {
                let list: Vec<String> = stuck
                    .iter()
                    .map(|(id, st)| format!("{id}({st:?})"))
                    .collect();
                write!(
                    f,
                    "simulation deadlock at t={now}: no events, no running jobs, {} jobs stuck: {}",
                    list.len(),
                    list.join(", ")
                )
            }
            SimError::NonDenseSubmission { expected, got } => {
                write!(
                    f,
                    "submission source yielded {got} where {expected} was expected (ids must be dense, in order)"
                )
            }
            SimError::SubmissionOutOfOrder { job, time, now } => {
                write!(
                    f,
                    "submission of {job} at t={time} is in the past (clock is at {now}); sources must yield non-decreasing submit times"
                )
            }
            SimError::UnknownNode { node, nodes } => {
                write!(f, "{node} does not exist (cluster has {nodes} nodes)")
            }
            SimError::CommandInPast { time, now } => {
                write!(f, "command time {time} is in the past (clock is at {now})")
            }
            SimError::NotQuiescent { live } => {
                write!(
                    f,
                    "snapshot requires quiescence, but {live} jobs are still in the system"
                )
            }
            // Details carry their own "snapshot:" prefix.
            SimError::SnapshotMalformed { detail } => write!(f, "{detail}"),
            SimError::UnknownJob { job } => {
                write!(
                    f,
                    "{job} does not exist (never submitted, or already drained)"
                )
            }
            SimError::NotCancelable { job, status } => {
                write!(f, "{job} cannot be canceled: status is {status:?}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_messages_are_preserved() {
        let e = SimError::EventCapExceeded { max_events: 1000 };
        assert_eq!(
            e.to_string(),
            "event cap exceeded (1000) — runaway scheduler?"
        );
        let d = SimError::Deadlock {
            now: 5.0,
            stuck: vec![(JobId(3), JobStatus::Pending)],
        };
        assert_eq!(
            d.to_string(),
            "simulation deadlock at t=5: no events, no running jobs, 1 jobs stuck: j3(Pending)"
        );
    }

    #[test]
    fn source_errors_render() {
        let e = SimError::NonDenseSubmission {
            expected: JobId(2),
            got: JobId(5),
        };
        assert!(e.to_string().contains("j5"));
        assert!(e.to_string().contains("j2"));
        let o = SimError::SubmissionOutOfOrder {
            job: JobId(1),
            time: 3.0,
            now: 9.0,
        };
        assert!(o.to_string().contains("non-decreasing"));
    }
}
