//! Whole-state invariant checking.
//!
//! The engine keeps per-node aggregates incrementally; this module
//! recomputes everything from scratch from the job placements and
//! cross-checks. Tests run it after every plan application
//! (`SimConfig::validate`), so any drift or bookkeeping bug surfaces at
//! the first event that introduces it.

use dfrs_core::approx;

use crate::state::{JobStatus, NodeState, SimState};

/// Tolerance for comparing incrementally maintained sums against
/// recomputed ones (looser than [`approx::EPS`]: thousands of add/remove
/// pairs accumulate rounding).
const SUM_TOLERANCE: f64 = 1e-6;

/// Check every engine invariant; returns a description of the first
/// violation.
pub fn check_invariants(state: &SimState) -> Result<(), String> {
    let n_nodes = state.cluster.nodes().len();
    let mut recomputed = vec![NodeState::default(); n_nodes];

    for j in &state.jobs {
        match j.status {
            JobStatus::Running => {
                if j.placement.len() != j.spec.tasks as usize {
                    return Err(format!(
                        "{} running with {} placed tasks of {}",
                        j.spec.id,
                        j.placement.len(),
                        j.spec.tasks
                    ));
                }
                if !(j.yld > 0.0 && j.yld <= 1.0 + approx::EPS) {
                    return Err(format!("{} running with yield {}", j.spec.id, j.yld));
                }
                for &node in &j.placement {
                    let Some(ns) = recomputed.get_mut(node.index()) else {
                        return Err(format!("{} placed on nonexistent {node}", j.spec.id));
                    };
                    ns.cpu_load += j.spec.cpu_need;
                    ns.cpu_alloc += j.spec.cpu_need * j.yld;
                    ns.mem_used += j.spec.mem_req;
                    ns.task_count += 1;
                }
            }
            JobStatus::Pending | JobStatus::Paused | JobStatus::Unsubmitted => {
                if !j.placement.is_empty() {
                    return Err(format!(
                        "{} is {:?} but holds a placement",
                        j.spec.id, j.status
                    ));
                }
            }
            JobStatus::Completed => {
                if !j.placement.is_empty() {
                    return Err(format!("{} completed but holds a placement", j.spec.id));
                }
                if j.completion.is_none() {
                    return Err(format!("{} completed without a completion time", j.spec.id));
                }
            }
        }
        if j.virtual_time > j.spec.oracle_runtime() + 1e-3 {
            return Err(format!(
                "{} overshot its runtime: vt={} runtime={}",
                j.spec.id,
                j.virtual_time,
                j.spec.oracle_runtime()
            ));
        }
    }

    let mut busy = 0u32;
    for (i, (got, want)) in state
        .cluster
        .nodes()
        .iter()
        .zip(recomputed.iter())
        .enumerate()
    {
        if want.mem_used > 1.0 + SUM_TOLERANCE {
            return Err(format!("node n{i} memory overcommitted: {}", want.mem_used));
        }
        if want.cpu_alloc > 1.0 + SUM_TOLERANCE {
            return Err(format!("node n{i} CPU overallocated: {}", want.cpu_alloc));
        }
        if (got.cpu_load - want.cpu_load).abs() > SUM_TOLERANCE
            || (got.cpu_alloc - want.cpu_alloc).abs() > SUM_TOLERANCE
            || (got.mem_used - want.mem_used).abs() > SUM_TOLERANCE
            || got.task_count != want.task_count
        {
            return Err(format!(
                "node n{i} bookkeeping drift: engine {got:?} vs recomputed {want:?}"
            ));
        }
        if want.task_count > 0 {
            busy += 1;
        }
    }
    if busy != state.cluster.busy_nodes() {
        return Err(format!(
            "busy-node count drift: engine {} vs recomputed {busy}",
            state.cluster.busy_nodes()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ClusterState, JobState};
    use dfrs_core::ids::{JobId, NodeId};
    use dfrs_core::{ClusterSpec, JobSpec};

    fn base_state() -> SimState {
        SimState {
            now: 0.0,
            cluster: ClusterState::new(ClusterSpec::new(2, 4, 8.0).unwrap()),
            jobs: vec![JobState::new(
                JobSpec::new(JobId(0), 0.0, 2, 0.5, 0.4, 100.0).unwrap(),
            )],
        }
    }

    #[test]
    fn clean_state_passes() {
        assert!(check_invariants(&base_state()).is_ok());
    }

    #[test]
    fn consistent_running_job_passes() {
        let mut s = base_state();
        s.jobs[0].status = JobStatus::Running;
        s.jobs[0].yld = 0.5;
        s.jobs[0].placement = vec![NodeId(0), NodeId(1)];
        s.cluster.add_task(NodeId(0), 0.5, 0.4, 0.5);
        s.cluster.add_task(NodeId(1), 0.5, 0.4, 0.5);
        assert!(check_invariants(&s).is_ok());
    }

    #[test]
    fn detects_placement_count_mismatch() {
        let mut s = base_state();
        s.jobs[0].status = JobStatus::Running;
        s.jobs[0].yld = 1.0;
        s.jobs[0].placement = vec![NodeId(0)]; // needs 2 tasks
        let err = check_invariants(&s).unwrap_err();
        assert!(err.contains("placed tasks"), "{err}");
    }

    #[test]
    fn detects_bookkeeping_drift() {
        let mut s = base_state();
        s.jobs[0].status = JobStatus::Running;
        s.jobs[0].yld = 1.0;
        s.jobs[0].placement = vec![NodeId(0), NodeId(1)];
        // Engine side not updated -> drift.
        let err = check_invariants(&s).unwrap_err();
        assert!(err.contains("drift"), "{err}");
    }

    #[test]
    fn detects_phantom_placement_on_paused_job() {
        let mut s = base_state();
        s.jobs[0].status = JobStatus::Paused;
        s.jobs[0].placement = vec![NodeId(0), NodeId(1)];
        assert!(check_invariants(&s).is_err());
    }

    #[test]
    fn detects_vt_overshoot() {
        let mut s = base_state();
        s.jobs[0].virtual_time = 200.0; // runtime is 100
        assert!(check_invariants(&s).unwrap_err().contains("overshot"));
    }

    #[test]
    fn detects_bad_yield() {
        let mut s = base_state();
        s.jobs[0].status = JobStatus::Running;
        s.jobs[0].yld = 0.0;
        s.jobs[0].placement = vec![NodeId(0), NodeId(1)];
        s.cluster.add_task(NodeId(0), 0.5, 0.4, 0.0);
        s.cluster.add_task(NodeId(1), 0.5, 0.4, 0.0);
        assert!(check_invariants(&s).unwrap_err().contains("yield"));
    }
}
