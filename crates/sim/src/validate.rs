//! Whole-state invariant checking and plan pre-validation, with typed
//! error variants.
//!
//! The engine keeps per-node aggregates incrementally; this module
//! recomputes everything from scratch from the job placements and
//! cross-checks. Tests run it around every plan application
//! (`SimConfig::validate`), so any drift or bookkeeping bug surfaces at
//! the first event that introduces it. [`check_plan`] additionally
//! rejects malformed plans *before* they are applied — unknown job ids,
//! duplicate mentions, wrong task counts, bad yields, unknown nodes,
//! and over-capacity placements all come back as a specific
//! [`PlanError`] variant instead of a panic mid-application.

use std::fmt;

use dfrs_core::approx;
use dfrs_core::ids::{JobId, NodeId};

use crate::plan::{Plan, PlanEntry};
use crate::state::{JobStatus, NodeState, SimState};

/// Tolerance for comparing incrementally maintained sums against
/// recomputed ones (looser than [`approx::EPS`]: thousands of add/remove
/// pairs accumulate rounding).
const SUM_TOLERANCE: f64 = 1e-6;

/// A violated engine invariant (state-level; see [`PlanError`] for
/// plan-level rejections).
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A running job's yield is outside `(0, 1]`.
    BadYield {
        /// Offending job.
        job: JobId,
        /// Its yield.
        yld: f64,
    },
    /// A placement references a node outside the cluster.
    UnknownNode {
        /// Offending job.
        job: JobId,
        /// The nonexistent node.
        node: NodeId,
    },
    /// A running job holds a task on a node that is out of service.
    TaskOnDownNode {
        /// Offending job.
        job: JobId,
        /// The down node.
        node: NodeId,
    },
    /// A completed job has no completion timestamp.
    MissingCompletion {
        /// Offending job.
        job: JobId,
    },
    /// A job's virtual time exceeds its runtime beyond tolerance.
    VirtualTimeOvershoot {
        /// Offending job.
        job: JobId,
        /// Accrued virtual time.
        virtual_time: f64,
        /// Its dedicated runtime.
        runtime: f64,
    },
    /// A node's recomputed memory use exceeds capacity.
    MemoryOvercommitted {
        /// Offending node.
        node: NodeId,
        /// Recomputed memory use.
        mem_used: f64,
    },
    /// A node's recomputed CPU allocation exceeds capacity.
    CpuOverallocated {
        /// Offending node.
        node: NodeId,
        /// Recomputed CPU allocation.
        cpu_alloc: f64,
    },
    /// A node's recomputed GPU allocation exceeds capacity.
    GpuOverallocated {
        /// Offending node.
        node: NodeId,
        /// Recomputed GPU allocation.
        gpu_alloc: f64,
    },
    /// Incrementally maintained node state drifted from the recomputed
    /// truth.
    BookkeepingDrift {
        /// Offending node.
        node: NodeId,
        /// What the engine carries.
        engine: NodeState,
        /// What the placements imply.
        recomputed: NodeState,
    },
    /// The busy-node counter disagrees with the recomputed value.
    BusyCountDrift {
        /// Engine counter.
        engine: u32,
        /// Recomputed count.
        recomputed: u32,
    },
    /// The live/running indexes disagree with job statuses.
    IndexDrift {
        /// Which index.
        index: &'static str,
        /// Engine index size.
        engine: usize,
        /// Recomputed size.
        recomputed: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadYield { job, yld } => {
                write!(f, "{job} running with yield {yld}")
            }
            ValidationError::UnknownNode { job, node } => {
                write!(f, "{job} placed on nonexistent {node}")
            }
            ValidationError::TaskOnDownNode { job, node } => {
                write!(f, "{job} holds a task on out-of-service {node}")
            }
            ValidationError::MissingCompletion { job } => {
                write!(f, "{job} completed without a completion time")
            }
            ValidationError::VirtualTimeOvershoot {
                job,
                virtual_time,
                runtime,
            } => write!(
                f,
                "{job} overshot its runtime: vt={virtual_time} runtime={runtime}"
            ),
            ValidationError::MemoryOvercommitted { node, mem_used } => {
                write!(f, "{node} memory overcommitted: {mem_used}")
            }
            ValidationError::CpuOverallocated { node, cpu_alloc } => {
                write!(f, "{node} CPU overallocated: {cpu_alloc}")
            }
            ValidationError::GpuOverallocated { node, gpu_alloc } => {
                write!(f, "{node} GPU overallocated: {gpu_alloc}")
            }
            ValidationError::BookkeepingDrift {
                node,
                engine,
                recomputed,
            } => write!(
                f,
                "{node} bookkeeping drift: engine {engine:?} vs recomputed {recomputed:?}"
            ),
            ValidationError::BusyCountDrift { engine, recomputed } => {
                write!(
                    f,
                    "busy-node count drift: engine {engine} vs recomputed {recomputed}"
                )
            }
            ValidationError::IndexDrift {
                index,
                engine,
                recomputed,
            } => write!(
                f,
                "{index} index drift: engine tracks {engine} jobs, statuses imply {recomputed}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check every engine invariant; returns the first violation.
pub fn check_invariants(state: &SimState) -> Result<(), ValidationError> {
    let n_nodes = state.cluster.nodes().len();
    let mut recomputed = vec![NodeState::default(); n_nodes];

    let (mut live, mut running) = (0usize, 0usize);
    for j in &state.jobs {
        if j.in_system() {
            live += 1;
        }
        match j.status {
            JobStatus::Running => {
                running += 1;
                if !(j.yld > 0.0 && j.yld <= 1.0 + approx::EPS) {
                    return Err(ValidationError::BadYield {
                        job: j.spec.id,
                        yld: j.yld,
                    });
                }
                for &node in state.placement(j.spec.id) {
                    let Some(ns) = recomputed.get_mut(node.index()) else {
                        return Err(ValidationError::UnknownNode {
                            job: j.spec.id,
                            node,
                        });
                    };
                    if !state.cluster.is_up(node) {
                        return Err(ValidationError::TaskOnDownNode {
                            job: j.spec.id,
                            node,
                        });
                    }
                    ns.cpu_load += j.spec.cpu_need;
                    ns.cpu_alloc += j.spec.cpu_need * j.yld;
                    ns.gpu_alloc += j.spec.gpu_need * j.yld;
                    ns.mem_used += j.spec.mem_req;
                    ns.task_count += 1;
                }
            }
            JobStatus::Pending | JobStatus::Paused | JobStatus::Unsubmitted => {}
            JobStatus::Completed => {
                if j.completion.is_none() {
                    return Err(ValidationError::MissingCompletion { job: j.spec.id });
                }
            }
        }
        if j.virtual_time > j.spec.oracle_runtime() + 1e-3 {
            return Err(ValidationError::VirtualTimeOvershoot {
                job: j.spec.id,
                virtual_time: j.virtual_time,
                runtime: j.spec.oracle_runtime(),
            });
        }
    }

    if live != state.jobs_in_system().count() {
        return Err(ValidationError::IndexDrift {
            index: "live",
            engine: state.jobs_in_system().count(),
            recomputed: live,
        });
    }
    if running != state.running_jobs().count() {
        return Err(ValidationError::IndexDrift {
            index: "running",
            engine: state.running_jobs().count(),
            recomputed: running,
        });
    }

    let mut busy = 0u32;
    for (i, (got, want)) in state
        .cluster
        .nodes()
        .iter()
        .zip(recomputed.iter())
        .enumerate()
    {
        let node = NodeId(i as u32);
        if want.mem_used > 1.0 + SUM_TOLERANCE {
            return Err(ValidationError::MemoryOvercommitted {
                node,
                mem_used: want.mem_used,
            });
        }
        if want.cpu_alloc > 1.0 + SUM_TOLERANCE {
            return Err(ValidationError::CpuOverallocated {
                node,
                cpu_alloc: want.cpu_alloc,
            });
        }
        if want.gpu_alloc > 1.0 + SUM_TOLERANCE {
            return Err(ValidationError::GpuOverallocated {
                node,
                gpu_alloc: want.gpu_alloc,
            });
        }
        if (got.cpu_load - want.cpu_load).abs() > SUM_TOLERANCE
            || (got.cpu_alloc - want.cpu_alloc).abs() > SUM_TOLERANCE
            || (got.gpu_alloc - want.gpu_alloc).abs() > SUM_TOLERANCE
            || (got.mem_used - want.mem_used).abs() > SUM_TOLERANCE
            || got.task_count != want.task_count
        {
            return Err(ValidationError::BookkeepingDrift {
                node,
                engine: *got,
                recomputed: *want,
            });
        }
        if want.task_count > 0 {
            busy += 1;
        }
    }
    if busy != state.cluster.busy_nodes() {
        return Err(ValidationError::BusyCountDrift {
            engine: state.cluster.busy_nodes(),
            recomputed: busy,
        });
    }
    Ok(())
}

/// Why a plan was rejected before application.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// An entry names a job id outside the trace.
    UnknownJob {
        /// The nonexistent id.
        job: JobId,
    },
    /// A job appears in more than one entry (pause + run, duplicate
    /// run, or duplicate pause).
    DuplicateJob {
        /// The twice-mentioned job.
        job: JobId,
    },
    /// A run entry's placement length differs from the job's task count.
    WrongTaskCount {
        /// Target job.
        job: JobId,
        /// Placement entries supplied.
        placed: usize,
        /// Tasks the job has.
        tasks: u32,
    },
    /// A run entry's yield is outside `(0, 1]`.
    InvalidYield {
        /// Target job.
        job: JobId,
        /// The bad yield.
        yld: f64,
    },
    /// A placement references a node outside the cluster.
    UnknownNode {
        /// Target job.
        job: JobId,
        /// The nonexistent node.
        node: NodeId,
    },
    /// A placement references a node that is out of service (failed,
    /// not yet repaired). Schedulers must consume the available-node
    /// view ([`crate::ClusterState::available_nodes`]).
    NodeUnavailable {
        /// Target job.
        job: JobId,
        /// The down node.
        node: NodeId,
    },
    /// The entry runs a job that is unsubmitted or completed.
    InvalidStatus {
        /// Target job.
        job: JobId,
        /// Its current status.
        status: JobStatus,
    },
    /// The entry pauses a job that is not running.
    PauseNotRunning {
        /// Target job.
        job: JobId,
        /// Its current status.
        status: JobStatus,
    },
    /// Applying the plan would exceed a node's memory capacity.
    OverCapacityMemory {
        /// Overflowing node.
        node: NodeId,
        /// Its memory use after the plan.
        mem_used: f64,
    },
    /// Applying the plan would exceed a node's CPU capacity.
    OverCapacityCpu {
        /// Overflowing node.
        node: NodeId,
        /// Its CPU allocation after the plan.
        cpu_alloc: f64,
    },
    /// Applying the plan would exceed a node's GPU capacity.
    OverCapacityGpu {
        /// Overflowing node.
        node: NodeId,
        /// Its GPU allocation after the plan.
        gpu_alloc: f64,
    },
    /// A timer is scheduled in the past.
    TimerInPast {
        /// Target job.
        job: JobId,
        /// Requested fire time.
        at: f64,
        /// Current simulation time.
        now: f64,
    },
}

impl PlanError {
    /// The job the violation is attributable to, when the variant names
    /// one. The over-capacity variants name only the overflowing node —
    /// attribution there needs a scan of the plan's entries (the serve
    /// layer's quarantine does exactly that).
    pub fn job(&self) -> Option<JobId> {
        match self {
            PlanError::UnknownJob { job }
            | PlanError::DuplicateJob { job }
            | PlanError::WrongTaskCount { job, .. }
            | PlanError::InvalidYield { job, .. }
            | PlanError::UnknownNode { job, .. }
            | PlanError::NodeUnavailable { job, .. }
            | PlanError::InvalidStatus { job, .. }
            | PlanError::PauseNotRunning { job, .. }
            | PlanError::TimerInPast { job, .. } => Some(*job),
            PlanError::OverCapacityMemory { .. }
            | PlanError::OverCapacityCpu { .. }
            | PlanError::OverCapacityGpu { .. } => None,
        }
    }

    /// The node the violation names, for the capacity variants.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            PlanError::OverCapacityMemory { node, .. }
            | PlanError::OverCapacityCpu { node, .. }
            | PlanError::OverCapacityGpu { node, .. } => Some(*node),
            _ => None,
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownJob { job } => write!(f, "plan references unknown {job}"),
            PlanError::DuplicateJob { job } => {
                write!(f, "plan mentions {job} more than once")
            }
            PlanError::WrongTaskCount { job, placed, tasks } => {
                write!(f, "plan places {placed} tasks for {job} ({tasks} expected)")
            }
            PlanError::InvalidYield { job, yld } => {
                write!(f, "plan sets invalid yield {yld} for {job}")
            }
            PlanError::UnknownNode { job, node } => {
                write!(f, "plan places {job} on nonexistent {node}")
            }
            PlanError::NodeUnavailable { job, node } => {
                write!(f, "plan places {job} on out-of-service {node}")
            }
            PlanError::InvalidStatus { job, status } => {
                write!(f, "plan runs {job} in status {status:?}")
            }
            PlanError::PauseNotRunning { job, status } => {
                write!(f, "plan pauses {job} in status {status:?}")
            }
            PlanError::OverCapacityMemory { node, mem_used } => {
                write!(f, "plan overcommits {node} memory: {mem_used}")
            }
            PlanError::OverCapacityCpu { node, cpu_alloc } => {
                write!(f, "plan overallocates {node} CPU: {cpu_alloc}")
            }
            PlanError::OverCapacityGpu { node, gpu_alloc } => {
                write!(f, "plan overallocates {node} GPU: {gpu_alloc}")
            }
            PlanError::TimerInPast { job, at, now } => {
                write!(f, "plan sets timer for {job} in the past ({at} < {now})")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Validate `plan` against `state` without applying it: structural
/// checks first (ids, duplicates, task counts, yields, statuses,
/// nodes), then a two-phase capacity simulation mirroring the engine's
/// removals-before-additions application order. Returns the first
/// violation as a typed [`PlanError`].
pub fn check_plan(state: &SimState, plan: &Plan) -> Result<(), PlanError> {
    let n_jobs = state.jobs.len();
    let n_nodes = state.cluster.nodes().len();
    // Duplicate tracking is window-relative so validation memory stays
    // bounded on streamed runs; evicted ids (always completed) fail the
    // status checks below before duplicate tracking matters.
    let base = state.jobs.first_resident();
    let mut seen = vec![false; state.jobs.resident()];

    let mut check_job = |job: JobId| -> Result<(), PlanError> {
        if job.index() >= n_jobs {
            return Err(PlanError::UnknownJob { job });
        }
        if let Some(k) = job.index().checked_sub(base) {
            if seen[k] {
                return Err(PlanError::DuplicateJob { job });
            }
            seen[k] = true;
        }
        Ok(())
    };

    for e in &plan.entries {
        match e {
            PlanEntry::Pause { job } => {
                check_job(*job)?;
                // An evicted id is a completed job streamed out already.
                let status = state
                    .jobs
                    .get(job.index())
                    .map_or(JobStatus::Completed, |j| j.status);
                if status != JobStatus::Running {
                    return Err(PlanError::PauseNotRunning { job: *job, status });
                }
            }
            PlanEntry::Run {
                job,
                placement,
                yld,
            } => {
                check_job(*job)?;
                let Some(j) = state.jobs.get(job.index()) else {
                    return Err(PlanError::InvalidStatus {
                        job: *job,
                        status: JobStatus::Completed,
                    });
                };
                if matches!(j.status, JobStatus::Unsubmitted | JobStatus::Completed) {
                    return Err(PlanError::InvalidStatus {
                        job: *job,
                        status: j.status,
                    });
                }
                if placement.len() != j.spec.tasks as usize {
                    return Err(PlanError::WrongTaskCount {
                        job: *job,
                        placed: placement.len(),
                        tasks: j.spec.tasks,
                    });
                }
                if !(*yld > 0.0 && *yld <= 1.0 + approx::EPS) {
                    return Err(PlanError::InvalidYield {
                        job: *job,
                        yld: *yld,
                    });
                }
                if let Some(&node) = placement.iter().find(|n| n.index() >= n_nodes) {
                    return Err(PlanError::UnknownNode { job: *job, node });
                }
                if let Some(&node) = placement.iter().find(|&&n| !state.cluster.is_up(n)) {
                    return Err(PlanError::NodeUnavailable { job: *job, node });
                }
            }
        }
    }

    for &(job, at) in &plan.timers {
        if job.index() >= n_jobs {
            return Err(PlanError::UnknownJob { job });
        }
        if at + approx::EPS < state.now {
            return Err(PlanError::TimerInPast {
                job,
                at,
                now: state.now,
            });
        }
    }

    // Capacity simulation, mirroring the engine's two-phase order:
    // every mentioned running job's tasks leave first, then the final
    // placements land. Jobs not mentioned keep their allocation. The
    // rejection threshold is the engine's own `approx::EPS` (the same
    // tolerance its capacity assertions use), so a plan this check
    // accepts cannot trip those assertions beyond summation-order
    // rounding (this recomputes sums fresh; the engine accumulates
    // incrementally — the disagreement window is a few ulps).
    let mut mem = vec![0.0f64; n_nodes];
    let mut cpu = vec![0.0f64; n_nodes];
    let mut gpu = vec![0.0f64; n_nodes];
    for j in state.running_jobs() {
        let touched = seen[j.spec.id.index() - base];
        for &node in state.placement(j.spec.id) {
            if !touched {
                mem[node.index()] += j.spec.mem_req;
                cpu[node.index()] += j.spec.cpu_need * j.yld;
                gpu[node.index()] += j.spec.gpu_need * j.yld;
            }
        }
    }
    for e in &plan.entries {
        if let PlanEntry::Run {
            job,
            placement,
            yld,
        } = e
        {
            let spec = &state.job(*job).spec;
            for &node in placement {
                let m = &mut mem[node.index()];
                *m += spec.mem_req;
                if !approx::le(*m, 1.0) {
                    return Err(PlanError::OverCapacityMemory { node, mem_used: *m });
                }
                let c = &mut cpu[node.index()];
                *c += spec.cpu_need * yld.min(1.0);
                if !approx::le(*c, 1.0) {
                    return Err(PlanError::OverCapacityCpu {
                        node,
                        cpu_alloc: *c,
                    });
                }
                let g = &mut gpu[node.index()];
                *g += spec.gpu_need * yld.min(1.0);
                if !approx::le(*g, 1.0) {
                    return Err(PlanError::OverCapacityGpu {
                        node,
                        gpu_alloc: *g,
                    });
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SimState;
    use dfrs_core::ids::{JobId, NodeId};
    use dfrs_core::{ClusterSpec, JobSpec};

    fn base_state() -> SimState {
        SimState::new(
            ClusterSpec::new(2, 4, 8.0).unwrap(),
            &[JobSpec::new(JobId(0), 0.0, 2, 0.5, 0.4, 100.0).unwrap()],
        )
    }

    /// Drive job 0 of `s` into a consistent running state.
    fn run_job0(s: &mut SimState, yld: f64) {
        s.jobs[0].status = JobStatus::Pending;
        s.index_transition(JobId(0), JobStatus::Unsubmitted, JobStatus::Pending);
        s.jobs[0].status = JobStatus::Running;
        s.jobs[0].yld = yld;
        s.index_transition(JobId(0), JobStatus::Pending, JobStatus::Running);
        s.placement_slot(JobId(0))
            .copy_from_slice(&[NodeId(0), NodeId(1)]);
        s.cluster.add_task(NodeId(0), 0.5, 0.4, 0.0, yld);
        s.cluster.add_task(NodeId(1), 0.5, 0.4, 0.0, yld);
    }

    #[test]
    fn clean_state_passes() {
        assert!(check_invariants(&base_state()).is_ok());
    }

    #[test]
    fn consistent_running_job_passes() {
        let mut s = base_state();
        run_job0(&mut s, 0.5);
        assert!(check_invariants(&s).is_ok());
    }

    #[test]
    fn detects_bookkeeping_drift() {
        let mut s = base_state();
        run_job0(&mut s, 1.0);
        // Engine-side allocation silently dropped -> drift.
        s.cluster.remove_task(NodeId(0), 0.5, 0.4, 0.0, 1.0);
        let err = check_invariants(&s).unwrap_err();
        assert!(
            matches!(err, ValidationError::BookkeepingDrift { node, .. } if node == NodeId(0)),
            "{err}"
        );
    }

    #[test]
    fn detects_vt_overshoot() {
        let mut s = base_state();
        s.jobs[0].virtual_time = 200.0; // runtime is 100
        assert!(matches!(
            check_invariants(&s).unwrap_err(),
            ValidationError::VirtualTimeOvershoot { job, .. } if job == JobId(0)
        ));
    }

    #[test]
    fn detects_bad_yield() {
        let mut s = base_state();
        run_job0(&mut s, 0.5);
        s.jobs[0].yld = 0.0;
        let err = check_invariants(&s).unwrap_err();
        assert!(matches!(err, ValidationError::BadYield { .. }), "{err}");
    }

    #[test]
    fn errors_render_readably() {
        let e = ValidationError::BusyCountDrift {
            engine: 3,
            recomputed: 2,
        };
        assert!(e.to_string().contains("busy-node count drift"));
        let p = PlanError::UnknownJob { job: JobId(9) };
        assert!(p.to_string().contains("unknown"));
    }
}
