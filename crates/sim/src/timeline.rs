//! Allocation timelines: an optional, ordered log of every allocation
//! decision the engine applies, for debugging, visualization, and
//! fine-grained tests.
//!
//! Enable with [`crate::SimConfig::record_timeline`]; the log appears in
//! [`crate::SimOutcome::timeline`]. Each entry is one (time, job, what)
//! triple; [`Timeline::utilization_profile`] and [`Timeline::render_ascii`]
//! derive useful views.

use dfrs_core::ids::{JobId, NodeId};

/// What happened to a job at a decision point.
#[derive(Debug, Clone, PartialEq)]
pub enum AllocEvent {
    /// First placement.
    Start {
        /// Hosting node per task.
        nodes: Vec<NodeId>,
        /// Assigned yield.
        yld: f64,
    },
    /// Yield changed, placement untouched.
    Adjust {
        /// New yield.
        yld: f64,
    },
    /// Placement changed while running.
    Migrate {
        /// New hosting nodes.
        nodes: Vec<NodeId>,
        /// New yield.
        yld: f64,
        /// Tasks that changed nodes.
        moved: usize,
    },
    /// Evicted from the cluster.
    Pause,
    /// Killed by a node failure under
    /// [`crate::FailurePolicy::Restart`]: progress discarded, job
    /// resubmitted.
    Kill,
    /// Returned from a pause.
    Resume {
        /// Hosting node per task.
        nodes: Vec<NodeId>,
        /// Assigned yield.
        yld: f64,
    },
    /// Finished.
    Complete,
    /// Removed from the system without completing (quarantined by the
    /// serve layer, or withdrawn by an operator). Unlike [`Kill`], the
    /// job does not come back.
    ///
    /// [`Kill`]: AllocEvent::Kill
    Cancel {
        /// Whether the job held cluster resources when canceled (the
        /// running-job count drops only in that case).
        was_running: bool,
    },
}

/// One timeline record.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Simulation time of the decision.
    pub time: f64,
    /// The job affected.
    pub job: JobId,
    /// What happened.
    pub event: AllocEvent,
}

/// The full decision log of one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Entries in application order (time-ordered; FIFO within an
    /// instant).
    pub entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Record an entry (engine-internal).
    pub(crate) fn push(&mut self, time: f64, job: JobId, event: AllocEvent) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.time <= time + 1e-9),
            "timeline went backwards"
        );
        self.entries.push(TimelineEntry { time, job, event });
    }

    /// Drain every entry, leaving the timeline empty (the serve daemon
    /// pulls decision events out between commands so a long-lived
    /// session never accumulates an unbounded log).
    pub fn take_entries(&mut self) -> Vec<TimelineEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries affecting one job, in order.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &TimelineEntry> {
        self.entries.iter().filter(move |e| e.job == job)
    }

    /// Piecewise-constant count of running jobs over time:
    /// `(time, running_after_time)` breakpoints.
    pub fn utilization_profile(&self) -> Vec<(f64, u32)> {
        let mut running: i64 = 0;
        let mut out: Vec<(f64, u32)> = Vec::new();
        for e in &self.entries {
            let delta = match e.event {
                AllocEvent::Start { .. } | AllocEvent::Resume { .. } => 1,
                AllocEvent::Pause | AllocEvent::Complete | AllocEvent::Kill => -1,
                AllocEvent::Cancel { was_running: true } => -1,
                _ => 0,
            };
            if delta == 0 {
                continue;
            }
            running += delta;
            debug_assert!(running >= 0);
            match out.last_mut() {
                Some((t, r)) if *t == e.time => *r = running as u32,
                _ => out.push((e.time, running as u32)),
            }
        }
        out
    }

    /// Render a compact ASCII lane chart: one row per job, `columns`
    /// buckets over `[0, horizon]`. `#` running, `.` paused, space =
    /// not in the system. Intended for small examples and debugging.
    pub fn render_ascii(&self, horizon: f64, columns: usize) -> String {
        assert!(horizon > 0.0 && columns > 0);
        let jobs: Vec<JobId> = {
            let mut v: Vec<JobId> = self.entries.iter().map(|e| e.job).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut out = String::new();
        for job in jobs {
            let mut lane = vec![b' '; columns];
            let mut state = b' ';
            let mut prev_col = 0usize;
            for e in self.for_job(job) {
                let col = ((e.time / horizon) * columns as f64).floor() as usize;
                let col = col.min(columns - 1);
                for c in lane.iter_mut().take(col).skip(prev_col) {
                    *c = state;
                }
                state = match e.event {
                    AllocEvent::Start { .. }
                    | AllocEvent::Resume { .. }
                    | AllocEvent::Migrate { .. }
                    | AllocEvent::Adjust { .. } => b'#',
                    AllocEvent::Pause => b'.',
                    // A killed job is back to waiting (its progress is
                    // gone), rendered like the pre-start gap.
                    AllocEvent::Kill => b' ',
                    AllocEvent::Complete | AllocEvent::Cancel { .. } => b' ',
                };
                prev_col = col;
            }
            for c in lane.iter_mut().skip(prev_col) {
                *c = state;
            }
            out.push_str(&format!(
                "{:>6} |{}|\n",
                job.to_string(),
                String::from_utf8(lane).unwrap()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    fn sample() -> Timeline {
        let mut t = Timeline::default();
        t.push(
            0.0,
            JobId(0),
            AllocEvent::Start {
                nodes: n(&[0]),
                yld: 1.0,
            },
        );
        t.push(
            10.0,
            JobId(1),
            AllocEvent::Start {
                nodes: n(&[1]),
                yld: 1.0,
            },
        );
        t.push(10.0, JobId(0), AllocEvent::Adjust { yld: 0.5 });
        t.push(20.0, JobId(0), AllocEvent::Pause);
        t.push(30.0, JobId(1), AllocEvent::Complete);
        t.push(
            30.0,
            JobId(0),
            AllocEvent::Resume {
                nodes: n(&[1]),
                yld: 1.0,
            },
        );
        t.push(50.0, JobId(0), AllocEvent::Complete);
        t
    }

    #[test]
    fn per_job_filtering() {
        let t = sample();
        assert_eq!(t.for_job(JobId(0)).count(), 5);
        assert_eq!(t.for_job(JobId(1)).count(), 2);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn utilization_profile_counts_running_jobs() {
        let t = sample();
        let profile = t.utilization_profile();
        // t=0: 1 running; t=10: 2; t=20: 1 (pause); t=30: complete then
        // resume → net 1; t=50: 0.
        assert_eq!(
            profile,
            vec![(0.0, 1), (10.0, 2), (20.0, 1), (30.0, 1), (50.0, 0)]
        );
    }

    #[test]
    fn ascii_render_shape() {
        let t = sample();
        let art = t.render_ascii(50.0, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("j0"));
        // Job 0: runs 0-20 (cols 0-3), paused 20-30 (cols 4-5), runs
        // 30-50 (cols 6-9).
        let lane0 = lines[0].split('|').nth(1).unwrap();
        assert_eq!(lane0.len(), 10);
        assert!(lane0.starts_with("####"));
        assert!(lane0.contains('.'));
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::default();
        assert!(t.is_empty());
        assert!(t.utilization_profile().is_empty());
        assert_eq!(t.render_ascii(10.0, 5), "");
    }
}
