//! Engine stress test: a randomized scheduler that emits arbitrary
//! *valid* plans — random pauses, placements, migrations, and yield
//! reshuffles — with full invariant validation after every event, plus
//! cross-checks between the accounting counters and the timeline.

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sim::{simulate, AllocEvent, JobStatus, Plan, SchedEvent, Scheduler, SimConfig, SimState};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Emits random valid plans; guarantees progress by starting everything
/// it can at every tick.
struct ChaosScheduler {
    rng: SmallRng,
}

impl ChaosScheduler {
    fn new(seed: u64) -> Self {
        ChaosScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Greedy-fill pending/paused jobs onto randomly ordered nodes,
    /// giving everyone a safe equal-share yield.
    fn build_plan(&mut self, state: &SimState, chaos: bool) -> Plan {
        let n_nodes = state.cluster.nodes().len();
        let mut mem_free: Vec<f64> = state.cluster.nodes().iter().map(|n| n.mem_free()).collect();

        let mut plan_pauses: Vec<JobId> = Vec::new();
        let mut placements: Vec<(JobId, Vec<NodeId>)> = Vec::new();

        // Randomly pause some running jobs (chaos mode only).
        for j in state.running_jobs() {
            if chaos && self.rng.gen_bool(0.3) {
                plan_pauses.push(j.spec.id);
                for &n in state.placement(j.spec.id) {
                    mem_free[n.index()] += j.spec.mem_req;
                }
            }
        }

        // Try to (re)start everyone not running, in random-ish order.
        let mut waiting: Vec<JobId> = state
            .jobs
            .iter()
            .filter(|j| matches!(j.status, JobStatus::Pending | JobStatus::Paused))
            .map(|j| j.spec.id)
            .collect();
        if chaos {
            // Rotate by a random amount for variety (cheap shuffle).
            if !waiting.is_empty() {
                let k = self.rng.gen_range(0..waiting.len());
                waiting.rotate_left(k);
            }
        }
        for id in waiting {
            let spec = &state.job(id).spec;
            let mut nodes = Vec::with_capacity(spec.tasks as usize);
            let start = self.rng.gen_range(0..n_nodes);
            let mut scratch = mem_free.clone();
            for t in 0..spec.tasks as usize {
                let mut placed = false;
                for off in 0..n_nodes {
                    let n = (start + t + off) % n_nodes;
                    if scratch[n] + 1e-9 >= spec.mem_req {
                        scratch[n] -= spec.mem_req;
                        nodes.push(NodeId(n as u32));
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    break;
                }
            }
            if nodes.len() == spec.tasks as usize {
                mem_free = scratch;
                placements.push((id, nodes));
            }
        }

        // Occasionally migrate one running job (chaos mode only).
        if chaos && self.rng.gen_bool(0.4) {
            let candidates: Vec<JobId> = state
                .running_jobs()
                .map(|j| j.spec.id)
                .filter(|id| !plan_pauses.contains(id))
                .collect();
            if !candidates.is_empty() {
                let id = candidates[self.rng.gen_range(0..candidates.len())];
                let spec = &state.job(id).spec;
                // Free its current memory, then replace like above.
                for &n in state.placement(id) {
                    mem_free[n.index()] += spec.mem_req;
                }
                let start = self.rng.gen_range(0..n_nodes);
                let mut nodes = Vec::new();
                let mut scratch = mem_free.clone();
                for t in 0..spec.tasks as usize {
                    for off in 0..n_nodes {
                        let n = (start + t * 3 + off) % n_nodes;
                        if scratch[n] + 1e-9 >= spec.mem_req {
                            scratch[n] -= spec.mem_req;
                            nodes.push(NodeId(n as u32));
                            break;
                        }
                    }
                }
                if nodes.len() == spec.tasks as usize {
                    let _ = scratch; // migration bookkeeping ends here
                    placements.push((id, nodes));
                } else {
                    // Roll back the freeing.
                    for &n in state.placement(id) {
                        mem_free[n.index()] -= spec.mem_req;
                    }
                }
            }
        }

        // Safe uniform yield: 1/max(1, max CPU load) over the *planned*
        // configuration.
        let mut load = vec![0.0f64; n_nodes];
        let mut all_runs: Vec<(JobId, Vec<NodeId>)> = Vec::new();
        for j in state.running_jobs() {
            if plan_pauses.contains(&j.spec.id) || placements.iter().any(|(id, _)| *id == j.spec.id)
            {
                continue;
            }
            all_runs.push((j.spec.id, state.placement(j.spec.id).to_vec()));
        }
        all_runs.extend(placements);
        for (id, nodes) in &all_runs {
            for n in nodes {
                load[n.index()] += state.job(*id).spec.cpu_need;
            }
        }
        let yld = 1.0 / load.iter().copied().fold(1.0, f64::max);

        let mut plan = Plan::noop();
        for id in plan_pauses {
            plan = plan.pause(id);
        }
        for (id, nodes) in all_runs {
            plan = plan.run(id, nodes, yld);
        }
        plan
    }
}

impl Scheduler for ChaosScheduler {
    fn name(&self) -> String {
        "chaos".into()
    }
    fn period(&self) -> Option<f64> {
        Some(500.0)
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(_) => self.build_plan(state, true),
            // Progress guarantee: ticks and completions never pause.
            SchedEvent::Tick | SchedEvent::Complete(_) => self.build_plan(state, false),
            SchedEvent::Timer(_)
            | SchedEvent::NodeDown(_)
            | SchedEvent::NodeUp(_)
            | SchedEvent::Withdraw(_) => Plan::noop(),
        }
    }
}

fn jobs_from_seed(seed: u64, n: usize) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    (0..n)
        .map(|i| {
            JobSpec::new(
                JobId(i as u32),
                rng.gen_range(0.0..5_000.0),
                rng.gen_range(1..5),
                [0.25, 0.5, 1.0][rng.gen_range(0..3usize)],
                0.1 * rng.gen_range(1..8) as f64,
                rng.gen_range(10.0..2_000.0),
            )
            .unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random plans, random workloads, both penalty settings: every job
    /// completes, invariants hold at every event, and the timeline
    /// agrees with the counters.
    #[test]
    fn chaos_scheduling_is_always_accounted_consistently(
        seed in 0u64..100_000,
        n in 5usize..20,
        penalty in prop::sample::select(vec![0.0, 300.0]),
    ) {
        let mut jobs = jobs_from_seed(seed, n);
        jobs.sort_by(|a, b| a.submit_time.total_cmp(&b.submit_time));
        let jobs: Vec<JobSpec> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, j)| {
                JobSpec::new(
                    JobId(i as u32),
                    j.submit_time,
                    j.tasks,
                    j.cpu_need,
                    j.mem_req,
                    j.oracle_runtime(),
                )
                .unwrap()
            })
            .collect();
        let cluster = ClusterSpec::new(6, 4, 8.0).unwrap();
        let cfg = SimConfig {
            penalty,
            validate: true,
            record_timeline: true,
            ..SimConfig::default()
        };
        let out = simulate(cluster, &jobs, &mut ChaosScheduler::new(seed), &cfg);
        prop_assert_eq!(out.records.len(), jobs.len());

        // Timeline ↔ counter cross-checks.
        let mut pauses = 0u64;
        let mut migrations = 0u64;
        let mut completes = 0usize;
        for e in &out.timeline.entries {
            match e.event {
                AllocEvent::Pause => pauses += 1,
                AllocEvent::Migrate { .. } => migrations += 1,
                AllocEvent::Complete => completes += 1,
                _ => {}
            }
        }
        prop_assert_eq!(pauses, out.preemption_count);
        prop_assert_eq!(migrations, out.migration_count);
        prop_assert_eq!(completes, jobs.len());
        // Per-job counters sum to the totals.
        let per_job_p: u64 = out.records.iter().map(|r| r.preemptions as u64).sum();
        let per_job_m: u64 = out.records.iter().map(|r| r.migrations as u64).sum();
        prop_assert_eq!(per_job_p, out.preemption_count);
        prop_assert_eq!(per_job_m, out.migration_count);
        // Bytes only flow when events happened.
        if out.preemption_count == 0 {
            prop_assert_eq!(out.preemption_gb, 0.0);
        }
        if out.migration_count == 0 {
            prop_assert_eq!(out.migration_gb, 0.0);
        }
        // Stretches are sane.
        for r in &out.records {
            prop_assert!(r.stretch >= 1.0);
            prop_assert!(r.completion >= r.submit);
        }
    }
}
