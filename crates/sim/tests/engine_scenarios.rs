//! Hand-traced engine scenarios with exact expected numbers.
//!
//! Each test drives the engine with a small scripted scheduler so that
//! completions, stretches, penalties, and Table-II accounting can be
//! checked against arithmetic done by hand.

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sim::{simulate, Plan, SchedEvent, Scheduler, SimConfig, SimState};

fn cluster() -> ClusterSpec {
    ClusterSpec::new(4, 4, 8.0).unwrap()
}

fn job(id: u32, submit: f64, tasks: u32, runtime: f64) -> JobSpec {
    JobSpec::new(JobId(id), submit, tasks, 1.0, 0.5, runtime).unwrap()
}

/// Starts every arriving job immediately, one task per node `0..tasks`,
/// at yield 1.0. Valid as long as jobs don't overlap.
struct ImmediateFull;

impl Scheduler for ImmediateFull {
    fn name(&self) -> String {
        "immediate-full".into()
    }
    fn on_event(&mut self, ev: SchedEvent, _state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(j) => {
                let tasks = _state.job(j).spec.tasks;
                let placement = (0..tasks).map(NodeId).collect();
                Plan::noop().run(j, placement, 1.0)
            }
            _ => Plan::noop(),
        }
    }
}

#[test]
fn dedicated_jobs_have_stretch_one() {
    let jobs = vec![job(0, 0.0, 2, 100.0), job(1, 200.0, 4, 50.0)];
    let out = simulate(
        cluster(),
        &jobs,
        &mut ImmediateFull,
        &SimConfig {
            validate: true,
            ..SimConfig::default()
        },
    );
    assert_eq!(out.records[0].completion, 100.0);
    assert_eq!(out.records[1].completion, 250.0);
    assert_eq!(out.max_stretch, 1.0);
    assert_eq!(out.preemption_count, 0);
    assert_eq!(out.migration_count, 0);
    assert_eq!(out.makespan, 250.0);
}

/// Runs every job on node 0 and rebalances all yields to an equal share
/// at every submit/complete event (a miniature GREEDY on one node).
struct OneNodeEqualShare;

impl Scheduler for OneNodeEqualShare {
    fn name(&self) -> String {
        "one-node-equal-share".into()
    }
    fn on_event(&mut self, _ev: SchedEvent, state: &SimState) -> Plan {
        let in_system: Vec<JobId> = state.jobs_in_system().map(|j| j.spec.id).collect();
        let share = (1.0 / in_system.len().max(1) as f64).min(1.0);
        let mut plan = Plan::noop();
        for id in in_system {
            plan = plan.run(id, vec![NodeId(0)], share);
        }
        plan
    }
}

#[test]
fn equal_share_time_sharing_doubles_runtimes() {
    // Two 100 s single-task jobs arrive together on one node at yield 0.5
    // each: job A finishes at 200; then B runs alone (yield 1) and
    // finishes at 250 (vt was 100 at t=200, 50 remaining... actually B
    // also reached vt=100 at t=200).
    // Careful: both progress at 0.5, both complete at exactly t=200.
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.3, 100.0).unwrap(),
        JobSpec::new(JobId(1), 0.0, 1, 1.0, 0.3, 100.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs,
        &mut OneNodeEqualShare,
        &SimConfig {
            validate: true,
            ..SimConfig::default()
        },
    );
    assert!((out.records[0].completion - 200.0).abs() < 1e-6);
    assert!((out.records[1].completion - 200.0).abs() < 1e-6);
    assert!((out.max_stretch - 2.0).abs() < 1e-6);
}

#[test]
fn unequal_lengths_yield_adjusts_at_completion() {
    // A: 100 s, B: 40 s, both at t=0 on node 0 with yield 1/2.
    // B completes at t=80 (vt 40). A has vt 40; then runs alone at yield 1,
    // completing at 80 + 60 = 140.
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.3, 100.0).unwrap(),
        JobSpec::new(JobId(1), 0.0, 1, 1.0, 0.3, 40.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs,
        &mut OneNodeEqualShare,
        &SimConfig::default(),
    );
    assert!((out.records[1].completion - 80.0).abs() < 1e-6);
    assert!((out.records[0].completion - 140.0).abs() < 1e-6);
    // Stretches: B: 80/40 = 2; A: 140/100 = 1.4.
    assert!((out.max_stretch - 2.0).abs() < 1e-6);
    assert!((out.mean_stretch - 1.7).abs() < 1e-6);
}

/// Scripted pause/resume: when job 1 arrives, pause job 0 and run job 1;
/// when job 1 completes, resume job 0 (same node).
struct PauseResume;

impl Scheduler for PauseResume {
    fn name(&self) -> String {
        "pause-resume".into()
    }
    fn on_event(&mut self, ev: SchedEvent, _state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(JobId(0)) => Plan::noop().run(JobId(0), vec![NodeId(0)], 1.0),
            SchedEvent::Submit(JobId(1)) => {
                Plan::noop()
                    .pause(JobId(0))
                    .run(JobId(1), vec![NodeId(0)], 1.0)
            }
            SchedEvent::Complete(JobId(1)) => Plan::noop().run(JobId(0), vec![NodeId(0)], 1.0),
            _ => Plan::noop(),
        }
    }
}

#[test]
fn pause_resume_without_penalty() {
    // Job 0: 100 s from t=0. Job 1: 50 s arriving at t=30 → job 0 paused
    // with vt=30, job 1 runs 30..80, job 0 resumes at 80 with 70 left →
    // completes at 150.
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.8, 100.0).unwrap(),
        JobSpec::new(JobId(1), 30.0, 1, 1.0, 0.8, 50.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs,
        &mut PauseResume,
        &SimConfig {
            validate: true,
            ..SimConfig::default()
        },
    );
    assert!((out.records[1].completion - 80.0).abs() < 1e-6);
    assert!((out.records[0].completion - 150.0).abs() < 1e-6);
    assert_eq!(out.preemption_count, 1);
    assert_eq!(out.records[0].preemptions, 1);
    // Bandwidth: 1 task × 0.8 × 8 GB saved + same restored = 12.8 GB.
    assert!((out.preemption_gb - 12.8).abs() < 1e-9);
    assert_eq!(out.migration_count, 0);
}

#[test]
fn pause_resume_with_penalty_delays_completion() {
    // Same as above with a 300 s penalty: job 0 resumes at t=80 but only
    // progresses from t=380 → completes at 450.
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.8, 100.0).unwrap(),
        JobSpec::new(JobId(1), 30.0, 1, 1.0, 0.8, 50.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs,
        &mut PauseResume,
        &SimConfig {
            penalty: 300.0,
            validate: true,
            ..SimConfig::default()
        },
    );
    assert!(
        (out.records[1].completion - 80.0).abs() < 1e-6,
        "job 1 start is penalty-free"
    );
    assert!((out.records[0].completion - 450.0).abs() < 1e-6);
    // Stretch of job 0: 450/100 = 4.5.
    assert!((out.max_stretch - 4.5).abs() < 1e-6);
}

/// Scripted migration: moves job 0 from node 0 to node 1 when job 1
/// arrives (job 1 takes node 0).
struct MigrateOnArrival;

impl Scheduler for MigrateOnArrival {
    fn name(&self) -> String {
        "migrate-on-arrival".into()
    }
    fn on_event(&mut self, ev: SchedEvent, _state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(JobId(0)) => Plan::noop().run(JobId(0), vec![NodeId(0)], 1.0),
            SchedEvent::Submit(JobId(1)) => {
                Plan::noop()
                    .run(JobId(0), vec![NodeId(1)], 1.0)
                    .run(JobId(1), vec![NodeId(0)], 1.0)
            }
            _ => Plan::noop(),
        }
    }
}

#[test]
fn migration_charges_penalty_and_double_bandwidth() {
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.5, 100.0).unwrap(),
        JobSpec::new(JobId(1), 40.0, 1, 1.0, 0.5, 10.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs,
        &mut MigrateOnArrival,
        &SimConfig {
            penalty: 300.0,
            validate: true,
            ..SimConfig::default()
        },
    );
    // Job 0: vt=40 at migration, frozen 40..340, finishes at 340+60=400.
    assert!((out.records[0].completion - 400.0).abs() < 1e-6);
    assert_eq!(out.migration_count, 1);
    assert_eq!(out.records[0].migrations, 1);
    // 1 task moved × 0.5 × 8 GB × 2 (save+restore) = 8 GB.
    assert!((out.migration_gb - 8.0).abs() < 1e-9);
    assert_eq!(out.preemption_count, 0);
    // Job 1 unaffected: 40..50.
    assert!((out.records[1].completion - 50.0).abs() < 1e-6);
}

#[test]
fn yield_only_replan_is_not_a_migration() {
    // OneNodeEqualShare re-issues Run entries with identical placements at
    // every event; none of those may count as migrations.
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.3, 100.0).unwrap(),
        JobSpec::new(JobId(1), 10.0, 1, 1.0, 0.3, 100.0).unwrap(),
        JobSpec::new(JobId(2), 20.0, 1, 1.0, 0.3, 100.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs,
        &mut OneNodeEqualShare,
        &SimConfig {
            penalty: 300.0,
            validate: true,
            ..SimConfig::default()
        },
    );
    assert_eq!(out.migration_count, 0);
    assert_eq!(out.preemption_count, 0);
    assert_eq!(out.migration_gb, 0.0);
}

/// Uses a timer to postpone a job: the job arriving at 0 is ignored until
/// the timer at t=500 fires.
struct TimerStart;

impl Scheduler for TimerStart {
    fn name(&self) -> String {
        "timer-start".into()
    }
    fn on_event(&mut self, ev: SchedEvent, _state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(j) => Plan::noop().timer(j, 500.0),
            SchedEvent::Timer(j) => Plan::noop().run(j, vec![NodeId(2)], 1.0),
            _ => Plan::noop(),
        }
    }
}

#[test]
fn timers_fire_at_requested_times() {
    let jobs = vec![JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.5, 60.0).unwrap()];
    let out = simulate(cluster(), &jobs, &mut TimerStart, &SimConfig::default());
    assert!((out.records[0].first_start.unwrap() - 500.0).abs() < 1e-9);
    assert!((out.records[0].completion - 560.0).abs() < 1e-6);
    // Stretch: max(560,30)/max(60,30) = 9.333…
    assert!((out.max_stretch - 560.0 / 60.0).abs() < 1e-6);
}

/// Periodic scheduler: starts all pending jobs at each tick, never at
/// submit time.
struct TickStarter;

impl Scheduler for TickStarter {
    fn name(&self) -> String {
        "tick-starter".into()
    }
    fn period(&self) -> Option<f64> {
        Some(600.0)
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        match ev {
            SchedEvent::Tick => {
                let mut plan = Plan::noop();
                let mut node = 0u32;
                for j in state.jobs_in_system() {
                    if j.status == dfrs_sim::JobStatus::Pending {
                        plan = plan.run(j.spec.id, vec![NodeId(node)], 1.0);
                        node += 1;
                    }
                }
                plan
            }
            _ => Plan::noop(),
        }
    }
}

#[test]
fn ticks_arrive_every_period() {
    // Jobs at t=10 and t=700 start at ticks 600 and 1200.
    let jobs = vec![
        JobSpec::new(JobId(0), 10.0, 1, 1.0, 0.5, 100.0).unwrap(),
        JobSpec::new(JobId(1), 700.0, 1, 1.0, 0.5, 100.0).unwrap(),
    ];
    let out = simulate(cluster(), &jobs, &mut TickStarter, &SimConfig::default());
    assert!((out.records[0].first_start.unwrap() - 600.0).abs() < 1e-9);
    assert!((out.records[1].first_start.unwrap() - 1200.0).abs() < 1e-9);
}

struct NeverStarts;

impl Scheduler for NeverStarts {
    fn name(&self) -> String {
        "never-starts".into()
    }
    fn on_event(&mut self, _ev: SchedEvent, _state: &SimState) -> Plan {
        Plan::noop()
    }
}

#[test]
#[should_panic(expected = "deadlock")]
fn abandoning_jobs_is_detected_as_deadlock() {
    let jobs = vec![JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.5, 60.0).unwrap()];
    simulate(cluster(), &jobs, &mut NeverStarts, &SimConfig::default());
}

#[test]
fn outcomes_are_deterministic() {
    let jobs: Vec<JobSpec> = (0..20)
        .map(|i| JobSpec::new(JobId(i), i as f64 * 13.0, 1, 1.0, 0.04, 50.0 + i as f64).unwrap())
        .collect();
    let a = simulate(
        cluster(),
        &jobs,
        &mut OneNodeEqualShare,
        &SimConfig::default(),
    );
    let b = simulate(
        cluster(),
        &jobs,
        &mut OneNodeEqualShare,
        &SimConfig::default(),
    );
    assert_eq!(a.records, b.records);
    assert_eq!(a.max_stretch, b.max_stretch);
}

#[test]
fn idle_and_busy_integrals_account_time() {
    // One 1-task job, 100 s at yield 1 on a 4-node cluster: busy integral
    // = 100 node-seconds (cpu_need 1.0 × yield 1.0), idle = 3 nodes × 100 s.
    let jobs = vec![JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.5, 100.0).unwrap()];
    let out = simulate(cluster(), &jobs, &mut ImmediateFull, &SimConfig::default());
    assert!((out.busy_node_seconds - 100.0).abs() < 1e-6);
    assert!((out.idle_node_seconds - 300.0).abs() < 1e-6);
}

#[test]
fn timeline_records_the_full_story() {
    // Pause/resume scenario from above, with the timeline enabled.
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.8, 100.0).unwrap(),
        JobSpec::new(JobId(1), 30.0, 1, 1.0, 0.8, 50.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs,
        &mut PauseResume,
        &SimConfig {
            record_timeline: true,
            ..SimConfig::default()
        },
    );
    use dfrs_sim::AllocEvent;
    let kinds: Vec<&AllocEvent> = out.timeline.for_job(JobId(0)).map(|e| &e.event).collect();
    assert!(matches!(kinds[0], AllocEvent::Start { .. }));
    assert!(matches!(kinds[1], AllocEvent::Pause));
    assert!(matches!(kinds[2], AllocEvent::Resume { .. }));
    assert!(matches!(kinds[3], AllocEvent::Complete));
    // Profile: 1 running at 0, still 1 at 30 (pause+start same instant),
    // 1 at 80 (complete+resume), 0 at 150.
    let profile = out.timeline.utilization_profile();
    assert_eq!(*profile.last().unwrap(), (150.0, 0));
    // Disabled by default:
    let out2 = simulate(cluster(), &jobs, &mut PauseResume, &SimConfig::default());
    assert!(out2.timeline.is_empty());
}

#[test]
fn timeline_records_migrations_with_moved_counts() {
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.5, 100.0).unwrap(),
        JobSpec::new(JobId(1), 40.0, 1, 1.0, 0.5, 10.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs,
        &mut MigrateOnArrival,
        &SimConfig {
            record_timeline: true,
            ..SimConfig::default()
        },
    );
    use dfrs_sim::AllocEvent;
    let migr = out
        .timeline
        .for_job(JobId(0))
        .find(|e| matches!(e.event, AllocEvent::Migrate { .. }))
        .expect("job 0 migrates");
    assert_eq!(migr.time, 40.0);
    match &migr.event {
        AllocEvent::Migrate { moved, .. } => assert_eq!(*moved, 1),
        _ => unreachable!(),
    }
}

#[test]
fn live_migration_halves_bytes_and_shortens_freeze() {
    use dfrs_sim::MigrationMode;
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.5, 100.0).unwrap(),
        JobSpec::new(JobId(1), 40.0, 1, 1.0, 0.5, 10.0).unwrap(),
    ];
    let live = simulate(
        cluster(),
        &jobs,
        &mut MigrateOnArrival,
        &SimConfig {
            penalty: 300.0,
            migration_mode: MigrationMode::Live { freeze_secs: 5.0 },
            validate: true,
            ..SimConfig::default()
        },
    );
    // Stop-and-copy (earlier test): completion 400, 8 GB. Live: the job
    // freezes 40..45 then finishes its remaining 60 s at 105; one copy
    // of 0.5 × 8 GB = 4 GB.
    assert!((live.records[0].completion - 105.0).abs() < 1e-6);
    assert!((live.migration_gb - 4.0).abs() < 1e-9);
    assert_eq!(live.migration_count, 1);
    // Pause/resume penalties are NOT affected by the migration mode.
    let jobs2 = vec![
        JobSpec::new(JobId(0), 0.0, 1, 1.0, 0.8, 100.0).unwrap(),
        JobSpec::new(JobId(1), 30.0, 1, 1.0, 0.8, 50.0).unwrap(),
    ];
    let out = simulate(
        cluster(),
        &jobs2,
        &mut PauseResume,
        &SimConfig {
            penalty: 300.0,
            migration_mode: MigrationMode::Live { freeze_secs: 5.0 },
            validate: true,
            ..SimConfig::default()
        },
    );
    assert!(
        (out.records[0].completion - 450.0).abs() < 1e-6,
        "resume penalty unchanged"
    );
}
