//! Engine-level platform-dynamics tests: node failures and repairs as
//! external events, the two failure policies, the down-node guards in
//! plan validation, and determinism of churn runs. Scheduler-specific
//! failure behavior is tested in `dfrs_sched`.

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sim::{
    check_plan, simulate, FailurePolicy, NodeEvent, Plan, PlanError, SchedEvent, Scheduler,
    SimConfig, SimState,
};

fn cluster(n: u32) -> ClusterSpec {
    ClusterSpec::new(n, 4, 8.0).unwrap()
}

fn job(id: u32, submit: f64, tasks: u32, rt: f64) -> JobSpec {
    JobSpec::new(JobId(id), submit, tasks, 0.5, 0.3, rt).unwrap()
}

fn churn_cfg(events: Vec<NodeEvent>, policy: FailurePolicy) -> SimConfig {
    SimConfig {
        validate: true,
        record_timeline: true,
        failure_policy: policy,
        node_events: events,
        ..SimConfig::default()
    }
}

fn down(time: f64, node: u32) -> NodeEvent {
    NodeEvent {
        time,
        node: NodeId(node),
        up: false,
    }
}

fn up(time: f64, node: u32) -> NodeEvent {
    NodeEvent {
        time,
        node: NodeId(node),
        up: true,
    }
}

/// Pin-every-task-on-its-id scheduler: job `i` runs on node `i` at
/// yield 1; killed jobs are restarted on the node again once it is up,
/// paused jobs resumed likewise. Minimal but failure-aware.
struct PinById;

impl PinById {
    fn replace(&self, state: &SimState) -> Plan {
        let mut plan = Plan::noop();
        for j in state.jobs_in_system() {
            let node = NodeId(j.spec.id.0);
            let placeable = matches!(
                j.status,
                dfrs_sim::JobStatus::Pending | dfrs_sim::JobStatus::Paused
            );
            if placeable && state.cluster.is_up(node) {
                plan = plan.run(j.spec.id, vec![node; j.spec.tasks as usize], 1.0);
            }
        }
        plan
    }
}

impl Scheduler for PinById {
    fn name(&self) -> String {
        "pin-by-id".into()
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(_)
            | SchedEvent::Complete(_)
            | SchedEvent::NodeDown(_)
            | SchedEvent::NodeUp(_) => self.replace(state),
            _ => Plan::noop(),
        }
    }
}

#[test]
fn restart_policy_discards_progress_and_meters_it() {
    let jobs = vec![job(0, 0.0, 1, 100.0)];
    let cfg = churn_cfg(vec![down(40.0, 0), up(70.0, 0)], FailurePolicy::Restart);
    let out = simulate(cluster(2), &jobs, &mut PinById, &cfg);
    assert_eq!(out.restart_count, 1);
    assert_eq!(out.records[0].restarts, 1);
    assert!((out.lost_virtual_seconds - 40.0).abs() < 1e-9);
    // Restarted at the repair: 70 + 100.
    assert!((out.records[0].completion - 170.0).abs() < 1e-6);
    // The kill is not a preemption and moves nothing through storage.
    assert_eq!(out.preemption_count, 0);
    assert_eq!(out.preemption_gb, 0.0);
    // 30 s with one node down.
    assert!((out.down_node_seconds - 30.0).abs() < 1e-9);
    assert!(out
        .timeline
        .entries
        .iter()
        .any(|e| matches!(e.event, dfrs_sim::AllocEvent::Kill)));
}

#[test]
fn pause_preserve_policy_reuses_pause_bookkeeping() {
    let jobs = vec![job(0, 0.0, 1, 100.0)];
    let cfg = churn_cfg(
        vec![down(40.0, 0), up(70.0, 0)],
        FailurePolicy::PausePreserve,
    );
    let out = simulate(cluster(2), &jobs, &mut PinById, &cfg);
    assert_eq!(out.restart_count, 0);
    assert_eq!(out.lost_virtual_seconds, 0.0);
    assert_eq!(out.preemption_count, 1, "failure pause is a preemption");
    assert!(out.preemption_gb > 0.0, "checkpoint traffic is metered");
    // 40 s of progress kept: resumes at 70, 60 s remain.
    assert!((out.records[0].completion - 130.0).abs() < 1e-6);
}

#[test]
fn only_resident_jobs_are_struck() {
    // Job 0 on node 0, job 1 on node 1; node 1 fails.
    let jobs = vec![job(0, 0.0, 1, 100.0), job(1, 0.0, 1, 100.0)];
    let cfg = churn_cfg(vec![down(10.0, 1), up(20.0, 1)], FailurePolicy::Restart);
    let out = simulate(cluster(2), &jobs, &mut PinById, &cfg);
    assert_eq!(out.records[0].restarts, 0, "job 0's node never failed");
    assert_eq!(out.records[1].restarts, 1);
    assert!((out.records[0].completion - 100.0).abs() < 1e-6);
    assert!((out.records[1].completion - 120.0).abs() < 1e-6);
}

#[test]
fn duplicate_transitions_are_dropped() {
    let jobs = vec![job(0, 0.0, 1, 50.0)];
    // Double-down and double-up around a single real outage.
    let cfg = churn_cfg(
        vec![down(10.0, 0), down(12.0, 0), up(20.0, 0), up(22.0, 0)],
        FailurePolicy::Restart,
    );
    let out = simulate(cluster(2), &jobs, &mut PinById, &cfg);
    assert_eq!(out.restart_count, 1, "the second down strikes nothing");
    assert!((out.down_node_seconds - 10.0).abs() < 1e-9);
    assert!((out.records[0].completion - 70.0).abs() < 1e-6);
}

#[test]
fn plans_may_not_place_on_down_nodes() {
    let jobs = vec![job(0, 0.0, 1, 50.0)];
    let mut state = SimState::new(cluster(2), &jobs);
    state.cluster.set_node_up(NodeId(1), false);
    // A submit must happen for the job to be placeable; drive the state
    // manually through the public check_plan only.
    let plan = Plan::noop().run(JobId(0), vec![NodeId(1)], 1.0);
    // Job is unsubmitted, so that error fires first; flip to a pending
    // check by using a plan against node 0 first to confirm baseline.
    let err = check_plan(&state, &plan).unwrap_err();
    assert!(matches!(err, PlanError::InvalidStatus { .. }));
    // Now with a pending job: rejected specifically for the down node
    // (submit at t=5, strictly after the failure at t=0).
    let jobs2 = vec![job(0, 5.0, 1, 50.0)];
    let cfg = SimConfig {
        validate: true,
        node_events: vec![down(0.0, 1)],
        ..SimConfig::default()
    };
    struct PlaceOnDown;
    impl Scheduler for PlaceOnDown {
        fn name(&self) -> String {
            "place-on-down".into()
        }
        fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
            match ev {
                SchedEvent::Submit(id) => {
                    let err =
                        check_plan(state, &Plan::noop().run(id, vec![NodeId(1)], 1.0)).unwrap_err();
                    assert!(
                        matches!(err, PlanError::NodeUnavailable { node, .. } if node == NodeId(1)),
                        "{err}"
                    );
                    Plan::noop().run(id, vec![NodeId(0)], 1.0)
                }
                _ => Plan::noop(),
            }
        }
    }
    let out = simulate(cluster(2), &jobs2, &mut PlaceOnDown, &cfg);
    assert_eq!(out.records.len(), 1);
}

#[test]
fn churn_runs_are_deterministic() {
    let jobs: Vec<JobSpec> = (0..3).map(|i| job(i, i as f64 * 5.0, 1, 80.0)).collect();
    let events = vec![down(30.0, 1), up(90.0, 1), down(120.0, 2), up(150.0, 2)];
    let run = || {
        let cfg = churn_cfg(events.clone(), FailurePolicy::Restart);
        let out = simulate(cluster(4), &jobs, &mut PinById, &cfg);
        out.records
            .iter()
            .map(|r| (r.completion.to_bits(), r.restarts))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
