//! The engine must catch scheduler protocol violations loudly: a bad
//! plan is a bug, never silently absorbed.

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sim::{simulate, Plan, SchedEvent, Scheduler, SimConfig, SimState};

fn cluster() -> ClusterSpec {
    ClusterSpec::new(2, 4, 8.0).unwrap()
}

fn one_job() -> Vec<JobSpec> {
    vec![JobSpec::new(JobId(0), 0.0, 2, 0.5, 0.4, 100.0).unwrap()]
}

/// Scheduler that emits one fixed plan at the first submit.
struct OnePlan(Option<Plan>);

impl Scheduler for OnePlan {
    fn name(&self) -> String {
        "one-plan".into()
    }
    fn on_event(&mut self, ev: SchedEvent, _state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(_) => self.0.take().unwrap_or_default(),
            _ => Plan::noop(),
        }
    }
}

fn run_with(plan: Plan) {
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    simulate(cluster(), &one_job(), &mut OnePlan(Some(plan)), &cfg);
}

#[test]
#[should_panic(expected = "tasks")]
fn wrong_placement_arity_panics() {
    // 2-task job, 1 node given.
    run_with(Plan::noop().run(JobId(0), vec![NodeId(0)], 1.0));
}

#[test]
#[should_panic(expected = "invalid yield")]
fn zero_yield_panics() {
    run_with(Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(1)], 0.0));
}

#[test]
#[should_panic(expected = "invalid yield")]
fn oversized_yield_panics() {
    run_with(Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(1)], 1.5));
}

#[test]
#[should_panic(expected = "pauses j0")]
fn pausing_a_pending_job_panics() {
    run_with(Plan::noop().pause(JobId(0)));
}

#[test]
#[should_panic]
fn memory_overcommit_is_caught() {
    // Both 0.4-memory tasks on the same node is fine (0.8), but three
    // jobs' worth is not — emulate by a job with mem 0.6 × 2 tasks on
    // one node: 1.2 > 1.
    let jobs = vec![JobSpec::new(JobId(0), 0.0, 2, 0.5, 0.6, 100.0).unwrap()];
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    let plan = Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(0)], 1.0);
    simulate(cluster(), &jobs, &mut OnePlan(Some(plan)), &cfg);
}

#[test]
#[should_panic]
fn cpu_overallocation_is_caught() {
    // Two full-CPU tasks at yield 1.0 on one node: alloc 2.0 > 1.
    let jobs = vec![JobSpec::new(JobId(0), 0.0, 2, 1.0, 0.2, 100.0).unwrap()];
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    let plan = Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(0)], 1.0);
    simulate(cluster(), &jobs, &mut OnePlan(Some(plan)), &cfg);
}

#[test]
#[should_panic(expected = "timer")]
fn timer_in_the_past_panics() {
    let jobs = vec![JobSpec::new(JobId(0), 100.0, 1, 0.5, 0.2, 50.0).unwrap()];
    let cfg = SimConfig::default();
    // Timer at t=10 requested at t=100.
    let plan = Plan::noop()
        .run(JobId(0), vec![NodeId(0)], 1.0)
        .timer(JobId(0), 10.0);
    simulate(cluster(), &jobs, &mut OnePlan(Some(plan)), &cfg);
}

#[test]
#[should_panic(expected = "event cap")]
fn runaway_event_loops_hit_the_cap() {
    /// Re-arms a timer forever without ever starting the job.
    struct TimerLoop;
    impl Scheduler for TimerLoop {
        fn name(&self) -> String {
            "timer-loop".into()
        }
        fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
            match ev {
                SchedEvent::Submit(j) | SchedEvent::Timer(j) => {
                    Plan::noop().timer(j, state.now + 1.0)
                }
                _ => Plan::noop(),
            }
        }
    }
    let cfg = SimConfig {
        max_events: 1_000,
        ..SimConfig::default()
    };
    simulate(cluster(), &one_job(), &mut TimerLoop, &cfg);
}

#[test]
fn valid_plan_on_the_same_shapes_succeeds() {
    // Sanity twin of the panicking tests: the same job runs fine with a
    // correct plan.
    let cfg = SimConfig {
        validate: true,
        ..SimConfig::default()
    };
    let plan = Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(1)], 1.0);
    let out = simulate(cluster(), &one_job(), &mut OnePlan(Some(plan)), &cfg);
    assert_eq!(out.max_stretch, 1.0);
}
