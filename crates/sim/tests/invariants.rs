//! Engine invariant proptests over random crafted scenarios.
//!
//! A seeded scheduler (greedy placement plus periodic forced
//! reshuffles, so pauses, resumes, and migrations all occur) drives the
//! engine with `validate` on, and an **independent timeline replay**
//! re-derives the whole history to check:
//!
//! * no node ever exceeds capacity in any dimension, at any event;
//! * every submitted job terminates exactly once;
//! * pause/resume pairs balance for every job;
//! * every job's cumulative yield covers its dedicated runtime (with
//!   zero penalty the integral matches exactly; penalties only freeze
//!   progress, so the wall-clock integral can only overestimate);
//! * yields stay within `(0, 1]` whenever a job runs.

use std::collections::HashMap;

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sim::{
    simulate, AllocEvent, Plan, SchedEvent, Scheduler, SimConfig, SimOutcome, SimState,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-6;

/// Greedy filler with a seeded urge to reshuffle: every few events it
/// pauses low-id running jobs or re-places one, so the preemption and
/// migration paths get exercised without violating the protocol.
struct Shuffler {
    rng: SmallRng,
}

impl Shuffler {
    fn plan(&mut self, state: &SimState, allow_shuffle: bool) -> Plan {
        let n_nodes = state.cluster.nodes().len();
        let mut mem_free: Vec<f64> = state.cluster.nodes().iter().map(|n| n.mem_free()).collect();

        // Sometimes evict the lowest-id running job to force pauses.
        let mut pauses: Vec<JobId> = Vec::new();
        if allow_shuffle && self.rng.gen_bool(0.35) {
            if let Some(j) = state.running_jobs().next() {
                pauses.push(j.spec.id);
                for &n in state.placement(j.spec.id) {
                    mem_free[n.index()] += j.spec.mem_req;
                }
            }
        }

        // Sometimes migrate the highest-id running job one node over.
        let mut migrations: Vec<(JobId, Vec<NodeId>)> = Vec::new();
        if allow_shuffle && self.rng.gen_bool(0.3) {
            if let Some(j) = state
                .running_jobs()
                .last()
                .filter(|j| !pauses.contains(&j.spec.id))
            {
                let old = state.placement(j.spec.id);
                for &n in old {
                    mem_free[n.index()] += j.spec.mem_req;
                }
                let shifted: Vec<NodeId> = old
                    .iter()
                    .map(|n| NodeId(((n.index() + 1) % n_nodes) as u32))
                    .collect();
                let mut ok = true;
                let mut scratch = mem_free.clone();
                for &n in &shifted {
                    scratch[n.index()] -= j.spec.mem_req;
                    if scratch[n.index()] < -TOL {
                        ok = false;
                    }
                }
                if ok {
                    mem_free = scratch;
                    migrations.push((j.spec.id, shifted));
                } else {
                    for &n in old {
                        mem_free[n.index()] -= j.spec.mem_req;
                    }
                }
            }
        }

        // Greedy-place everything waiting.
        let mut starts: Vec<(JobId, Vec<NodeId>)> = Vec::new();
        for j in state.jobs_in_system() {
            let id = j.spec.id;
            if pauses.contains(&id)
                || migrations.iter().any(|(m, _)| *m == id)
                || j.status == dfrs_sim::JobStatus::Running
            {
                continue;
            }
            let mut nodes = Vec::with_capacity(j.spec.tasks as usize);
            let offset = self.rng.gen_range(0..n_nodes);
            let mut scratch = mem_free.clone();
            for t in 0..j.spec.tasks as usize {
                let mut placed = false;
                for k in 0..n_nodes {
                    let n = (offset + t + k) % n_nodes;
                    if scratch[n] + TOL >= j.spec.mem_req {
                        scratch[n] -= j.spec.mem_req;
                        nodes.push(NodeId(n as u32));
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    break;
                }
            }
            if nodes.len() == j.spec.tasks as usize {
                mem_free = scratch;
                starts.push((id, nodes));
            }
        }

        // Equal-share yield over the planned configuration.
        let mut load = vec![0.0f64; n_nodes];
        let mut runs: Vec<(JobId, Vec<NodeId>)> = Vec::new();
        for j in state.running_jobs() {
            let id = j.spec.id;
            if pauses.contains(&id) || migrations.iter().any(|(m, _)| *m == id) {
                continue;
            }
            runs.push((id, state.placement(id).to_vec()));
        }
        runs.extend(migrations);
        runs.extend(starts);
        for (id, nodes) in &runs {
            for n in nodes {
                load[n.index()] += state.job(*id).spec.cpu_need;
            }
        }
        let yld = 1.0 / load.iter().copied().fold(1.0, f64::max);

        let mut plan = Plan::noop();
        for id in pauses {
            plan = plan.pause(id);
        }
        for (id, nodes) in runs {
            plan = plan.run(id, nodes, yld);
        }
        plan
    }
}

impl Scheduler for Shuffler {
    fn name(&self) -> String {
        "shuffler".into()
    }
    fn period(&self) -> Option<f64> {
        Some(400.0)
    }
    fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
        match ev {
            SchedEvent::Submit(_) => self.plan(state, true),
            // Progress guarantee: completions and ticks never shuffle,
            // so stuck jobs always get a clean start attempt.
            SchedEvent::Complete(_) | SchedEvent::Tick => self.plan(state, false),
            SchedEvent::Timer(_)
            | SchedEvent::NodeDown(_)
            | SchedEvent::NodeUp(_)
            | SchedEvent::Withdraw(_) => Plan::noop(),
        }
    }
}

fn crafted_jobs(seed: u64, n: usize) -> Vec<JobSpec> {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E3779B9).wrapping_add(1));
    let mut raw: Vec<(f64, u32, f64, f64, f64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..4_000.0),
                rng.gen_range(1..5),
                [0.25, 0.5, 1.0][rng.gen_range(0..3usize)],
                // ≤ 0.5 so the widest job (4 tasks) always fits an
                // empty 3-node cluster — no unschedulable deadlocks.
                0.1 * rng.gen_range(1..6) as f64,
                rng.gen_range(20.0..1_500.0),
            )
        })
        .collect();
    raw.sort_by(|a, b| a.0.total_cmp(&b.0));
    raw.into_iter()
        .enumerate()
        .map(|(i, (submit, tasks, cpu, mem, rt))| {
            JobSpec::new(JobId(i as u32), submit, tasks, cpu, mem, rt).unwrap()
        })
        .collect()
}

/// Independent replay of the recorded timeline: re-derives node loads,
/// job states, and virtual-time integrals from the event log alone and
/// cross-checks every invariant the engine is supposed to maintain.
fn replay_and_check(jobs: &[JobSpec], out: &SimOutcome, penalty: f64) {
    #[derive(Clone)]
    struct Running {
        nodes: Vec<NodeId>,
        yld: f64,
        since: f64,
    }
    let mut mem = HashMap::<usize, f64>::new();
    let mut alloc = HashMap::<usize, f64>::new();
    let mut running: HashMap<JobId, Running> = HashMap::new();
    let mut vt: HashMap<JobId, f64> = HashMap::new();
    let mut pauses: HashMap<JobId, u32> = HashMap::new();
    let mut resumes: HashMap<JobId, u32> = HashMap::new();
    let mut completions: HashMap<JobId, u32> = HashMap::new();

    let spec_of = |id: JobId| &jobs[id.index()];
    let integrate = |running: &mut HashMap<JobId, Running>,
                     vt: &mut HashMap<JobId, f64>,
                     id: JobId,
                     until: f64| {
        if let Some(r) = running.get_mut(&id) {
            *vt.entry(id).or_insert(0.0) += r.yld * (until - r.since);
            r.since = until;
        }
    };

    for e in &out.timeline.entries {
        let id = e.job;
        let spec = spec_of(id);
        type Leave = Option<(Vec<NodeId>, f64)>;
        type Arrive = Option<(Vec<NodeId>, f64)>;
        let (leave, arrive): (Leave, Arrive) = match &e.event {
            AllocEvent::Start { nodes, yld } | AllocEvent::Resume { nodes, yld } => {
                if matches!(e.event, AllocEvent::Resume { .. }) {
                    *resumes.entry(id).or_insert(0) += 1;
                    assert!(
                        pauses.get(&id).copied().unwrap_or(0) >= resumes[&id],
                        "{id}: resume without a prior pause"
                    );
                }
                assert!(
                    !running.contains_key(&id),
                    "{id}: started while already running"
                );
                (None, Some((nodes.clone(), *yld)))
            }
            AllocEvent::Adjust { yld } => {
                integrate(&mut running, &mut vt, id, e.time);
                let r = running.get_mut(&id).expect("adjust of a non-running job");
                // Retarget allocation only.
                for n in &r.nodes {
                    *alloc.get_mut(&n.index()).unwrap() += spec.cpu_need * (yld - r.yld);
                }
                r.yld = *yld;
                assert!(*yld > 0.0 && *yld <= 1.0 + TOL, "{id}: yield {yld}");
                (None, None)
            }
            AllocEvent::Migrate { nodes, yld, .. } => {
                integrate(&mut running, &mut vt, id, e.time);
                let old = running.remove(&id).expect("migrate of a non-running job");
                (Some((old.nodes, old.yld)), Some((nodes.clone(), *yld)))
            }
            AllocEvent::Pause => {
                *pauses.entry(id).or_insert(0) += 1;
                integrate(&mut running, &mut vt, id, e.time);
                let old = running.remove(&id).expect("pause of a non-running job");
                (Some((old.nodes, old.yld)), None)
            }
            AllocEvent::Complete => {
                *completions.entry(id).or_insert(0) += 1;
                integrate(&mut running, &mut vt, id, e.time);
                let old = running
                    .remove(&id)
                    .expect("completion of a non-running job");
                (Some((old.nodes, old.yld)), None)
            }
            AllocEvent::Kill => {
                // Node failure under the restart policy: the job leaves
                // the cluster and its accrued virtual time is discarded.
                integrate(&mut running, &mut vt, id, e.time);
                let old = running.remove(&id).expect("kill of a non-running job");
                vt.insert(id, 0.0);
                (Some((old.nodes, old.yld)), None)
            }
            AllocEvent::Cancel { was_running } => {
                // Operator/quarantine cancel: the job leaves for good.
                // Only a running cancel releases resources.
                if *was_running {
                    integrate(&mut running, &mut vt, id, e.time);
                    let old = running.remove(&id).expect("cancel of a non-running job");
                    (Some((old.nodes, old.yld)), None)
                } else {
                    assert!(
                        !running.contains_key(&id),
                        "{id}: non-running cancel while running"
                    );
                    (None, None)
                }
            }
        };
        if let Some((nodes, old_yld)) = leave {
            for n in nodes {
                *mem.get_mut(&n.index()).unwrap() -= spec.mem_req;
                *alloc.get_mut(&n.index()).unwrap() -= spec.cpu_need * old_yld;
            }
        }
        if let Some((nodes, yld)) = arrive {
            assert!(yld > 0.0 && yld <= 1.0 + TOL, "{id}: yield {yld}");
            assert_eq!(nodes.len(), spec.tasks as usize, "{id}: task count");
            for &n in &nodes {
                let m = mem.entry(n.index()).or_insert(0.0);
                *m += spec.mem_req;
                assert!(*m <= 1.0 + TOL, "node {n} memory over capacity: {m}");
                let c = alloc.entry(n.index()).or_insert(0.0);
                *c += spec.cpu_need * yld;
                assert!(*c <= 1.0 + TOL, "node {n} CPU over capacity: {c}");
            }
            integrate(&mut running, &mut vt, id, e.time);
            running.insert(
                id,
                Running {
                    nodes,
                    yld,
                    since: e.time,
                },
            );
        }
    }

    // Termination exactly once, for every job.
    assert_eq!(out.records.len(), jobs.len());
    for j in jobs {
        assert_eq!(
            completions.get(&j.id).copied().unwrap_or(0),
            1,
            "{}: must complete exactly once",
            j.id
        );
    }
    assert!(running.is_empty(), "jobs left running after the last event");

    // Pause/resume balance: every pause of a completed job was resumed.
    for j in jobs {
        let p = pauses.get(&j.id).copied().unwrap_or(0);
        let r = resumes.get(&j.id).copied().unwrap_or(0);
        assert_eq!(p, r, "{}: {p} pauses vs {r} resumes", j.id);
    }

    // Cumulative yield covers the dedicated runtime. The replay
    // integral ignores penalty freezes, so it can only overestimate;
    // with zero penalty it must match exactly.
    for j in jobs {
        let got = vt.get(&j.id).copied().unwrap_or(0.0);
        let want = j.oracle_runtime();
        let slack = want * 1e-6 + 1e-3;
        if penalty == 0.0 {
            assert!(
                (got - want).abs() <= slack,
                "{}: integrated vt {got} vs runtime {want}",
                j.id
            );
        } else {
            assert!(
                got + slack >= want,
                "{}: integrated vt {got} below runtime {want}",
                j.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn engine_invariants_hold_for_random_crafted_scenarios(
        seed in 0u64..50_000,
        n in 4usize..16,
        penalty in prop::sample::select(vec![0.0, 300.0]),
    ) {
        let jobs = crafted_jobs(seed, n);
        let cluster = ClusterSpec::new(5, 4, 8.0).unwrap();
        let cfg = SimConfig {
            penalty,
            validate: true, // engine-side invariant check at every event
            record_timeline: true,
            ..SimConfig::default()
        };
        let out = simulate(cluster, &jobs, &mut Shuffler { rng: SmallRng::seed_from_u64(seed) }, &cfg);
        replay_and_check(&jobs, &out, penalty);
    }

    /// The exercised paths must actually include preemptions and
    /// migrations, otherwise the suite proves nothing about them.
    #[test]
    fn shuffler_actually_preempts_and_migrates(seed in 0u64..200) {
        let jobs = crafted_jobs(seed, 12);
        let cluster = ClusterSpec::new(3, 4, 8.0).unwrap();
        let cfg = SimConfig {
            validate: true,
            record_timeline: true,
            ..SimConfig::default()
        };
        let out = simulate(cluster, &jobs, &mut Shuffler { rng: SmallRng::seed_from_u64(seed) }, &cfg);
        // Not every seed shuffles, but the counters must be consistent
        // when it does (coverage across the 200 seeds is checked by the
        // aggregate below being reachable — at least some preempt).
        prop_assert_eq!(
            out.preemption_count,
            out.records.iter().map(|r| r.preemptions as u64).sum::<u64>()
        );
        prop_assert_eq!(
            out.migration_count,
            out.records.iter().map(|r| r.migrations as u64).sum::<u64>()
        );
    }
}

/// Deterministic companion to the proptests: one seed known to hit
/// pauses, resumes, and migrations, so path coverage cannot silently
/// rot.
#[test]
fn known_seed_covers_pause_resume_migrate() {
    let jobs = crafted_jobs(7, 14);
    let cluster = ClusterSpec::new(3, 4, 8.0).unwrap();
    let cfg = SimConfig {
        validate: true,
        record_timeline: true,
        ..SimConfig::default()
    };
    let out = simulate(
        cluster,
        &jobs,
        &mut Shuffler {
            rng: SmallRng::seed_from_u64(7),
        },
        &cfg,
    );
    assert!(
        out.preemption_count > 0,
        "seed 7 no longer produces preemptions; pick a new seed"
    );
    assert!(
        out.migration_count > 0,
        "seed 7 no longer produces migrations; pick a new seed"
    );
    replay_and_check(&jobs, &out, 0.0);
}
