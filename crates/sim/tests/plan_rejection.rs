//! Negative-path tests for plan validation: crafted *invalid* plans
//! must be rejected by `dfrs_sim::check_plan` with the specific typed
//! error variant — never a panic, never a generic string.

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sim::{check_plan, Plan, PlanError, SchedEvent, Scheduler, SimConfig, SimState};

/// Run a small simulation and hand the live `SimState` (at the first
/// submit event) to `check`, so plans are validated against real
/// engine state.
fn validate_at_submit(jobs: Vec<JobSpec>, check: impl FnMut(&SimState) + Send) {
    struct Probe<F: FnMut(&SimState) + Send> {
        check: Option<F>,
    }
    impl<F: FnMut(&SimState) + Send> Scheduler for Probe<F> {
        fn name(&self) -> String {
            "probe".into()
        }
        fn on_event(&mut self, ev: SchedEvent, state: &SimState) -> Plan {
            if let SchedEvent::Submit(id) = ev {
                if let Some(mut check) = self.check.take() {
                    check(state);
                }
                // Keep the simulation finite: a valid round-robin
                // placement (the crafted jobs all fit one task per
                // node at full yield).
                let tasks = state.job(id).spec.tasks as usize;
                let n_nodes = state.cluster.nodes().len();
                let nodes = (0..tasks).map(|t| NodeId((t % n_nodes) as u32)).collect();
                return Plan::noop().run(id, nodes, 1.0);
            }
            Plan::noop()
        }
    }
    let cluster = ClusterSpec::new(2, 4, 8.0).unwrap();
    let mut probe = Probe { check: Some(check) };
    dfrs_sim::simulate(cluster, &jobs, &mut probe, &SimConfig::default());
}

fn one_job() -> Vec<JobSpec> {
    vec![JobSpec::new(JobId(0), 0.0, 2, 0.5, 0.4, 100.0).unwrap()]
}

#[test]
fn unknown_job_id_is_rejected() {
    validate_at_submit(one_job(), |state| {
        let plan = Plan::noop().run(JobId(7), vec![NodeId(0)], 1.0);
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::UnknownJob { job: JobId(7) })
        );
        // Same for timers.
        let plan = Plan::noop().timer(JobId(9), 50.0);
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::UnknownJob { job: JobId(9) })
        );
    });
}

#[test]
fn duplicate_mention_is_rejected() {
    validate_at_submit(one_job(), |state| {
        // Run + run.
        let plan = Plan::noop()
            .run(JobId(0), vec![NodeId(0), NodeId(1)], 1.0)
            .run(JobId(0), vec![NodeId(0), NodeId(1)], 0.5);
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::DuplicateJob { job: JobId(0) })
        );
        // Run + pause.
        let plan = Plan::noop()
            .run(JobId(0), vec![NodeId(0), NodeId(1)], 1.0)
            .pause(JobId(0));
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::DuplicateJob { job: JobId(0) })
        );
    });
}

#[test]
fn over_capacity_memory_is_rejected() {
    // Two tasks of 0.6 memory on the same node: 1.2 > 1.
    let jobs = vec![JobSpec::new(JobId(0), 0.0, 2, 0.25, 0.6, 100.0).unwrap()];
    validate_at_submit(jobs, |state| {
        let plan = Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(0)], 0.5);
        match check_plan(state, &plan) {
            Err(PlanError::OverCapacityMemory { node, mem_used }) => {
                assert_eq!(node, NodeId(0));
                assert!(mem_used > 1.0, "{mem_used}");
            }
            other => panic!("expected OverCapacityMemory, got {other:?}"),
        }
        // The same jobs spread across nodes pass.
        let plan = Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(1)], 0.5);
        assert_eq!(check_plan(state, &plan), Ok(()));
    });
}

#[test]
fn over_capacity_cpu_is_rejected() {
    // Two full-CPU tasks at yield 1.0 on one node: allocation 2 > 1.
    let jobs = vec![JobSpec::new(JobId(0), 0.0, 2, 1.0, 0.1, 100.0).unwrap()];
    validate_at_submit(jobs, |state| {
        let plan = Plan::noop().run(JobId(0), vec![NodeId(1), NodeId(1)], 1.0);
        match check_plan(state, &plan) {
            Err(PlanError::OverCapacityCpu { node, cpu_alloc }) => {
                assert_eq!(node, NodeId(1));
                assert!(cpu_alloc > 1.0, "{cpu_alloc}");
            }
            other => panic!("expected OverCapacityCpu, got {other:?}"),
        }
        // Halving the yield makes it fit.
        let plan = Plan::noop().run(JobId(0), vec![NodeId(1), NodeId(1)], 0.5);
        assert_eq!(check_plan(state, &plan), Ok(()));
    });
}

#[test]
fn wrong_task_count_is_rejected() {
    validate_at_submit(one_job(), |state| {
        let plan = Plan::noop().run(JobId(0), vec![NodeId(0)], 1.0); // needs 2
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::WrongTaskCount {
                job: JobId(0),
                placed: 1,
                tasks: 2
            })
        );
    });
}

#[test]
fn invalid_yields_are_rejected() {
    validate_at_submit(one_job(), |state| {
        for bad in [0.0, -0.5, 1.5] {
            let plan = Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(1)], bad);
            assert_eq!(
                check_plan(state, &plan),
                Err(PlanError::InvalidYield {
                    job: JobId(0),
                    yld: bad
                }),
                "yield {bad}"
            );
        }
    });
}

#[test]
fn unknown_node_is_rejected() {
    validate_at_submit(one_job(), |state| {
        let plan = Plan::noop().run(JobId(0), vec![NodeId(0), NodeId(5)], 1.0);
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::UnknownNode {
                job: JobId(0),
                node: NodeId(5)
            })
        );
    });
}

#[test]
fn pausing_a_non_running_job_is_rejected() {
    validate_at_submit(one_job(), |state| {
        // Job 0 is Pending at its own submit event.
        let plan = Plan::noop().pause(JobId(0));
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::PauseNotRunning {
                job: JobId(0),
                status: dfrs_sim::JobStatus::Pending
            })
        );
    });
}

#[test]
fn timer_in_the_past_is_rejected() {
    let jobs = vec![JobSpec::new(JobId(0), 100.0, 2, 0.5, 0.4, 50.0).unwrap()];
    validate_at_submit(jobs, |state| {
        assert_eq!(state.now, 100.0);
        let plan = Plan::noop().timer(JobId(0), 10.0);
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::TimerInPast {
                job: JobId(0),
                at: 10.0,
                now: 100.0
            })
        );
    });
}

#[test]
fn running_a_future_job_is_rejected() {
    let jobs = vec![
        JobSpec::new(JobId(0), 0.0, 1, 0.5, 0.2, 50.0).unwrap(),
        JobSpec::new(JobId(1), 500.0, 1, 0.5, 0.2, 50.0).unwrap(),
    ];
    validate_at_submit(jobs, |state| {
        // At job 0's submit, job 1 has not arrived: the streaming
        // engine has not even pulled it from the source, so its id is
        // simply unknown (jobs no longer pre-exist as `Unsubmitted`).
        let plan = Plan::noop().run(JobId(1), vec![NodeId(0)], 1.0);
        assert_eq!(
            check_plan(state, &plan),
            Err(PlanError::UnknownJob { job: JobId(1) })
        );
    });
}

#[test]
fn valid_plans_pass_and_errors_render() {
    validate_at_submit(one_job(), |state| {
        let plan = Plan::noop()
            .run(JobId(0), vec![NodeId(0), NodeId(1)], 1.0)
            .timer(JobId(0), 10.0);
        assert_eq!(check_plan(state, &plan), Ok(()));
        assert_eq!(check_plan(state, &Plan::noop()), Ok(()));
    });
    // Display strings are readable.
    let e = PlanError::OverCapacityMemory {
        node: NodeId(3),
        mem_used: 1.4,
    };
    assert!(e.to_string().contains("overcommits"), "{e}");
}
