//! Boundary cases of the per-node time integrals (`idle_node_seconds`,
//! `busy_node_seconds`, `down_node_seconds`): node events landing
//! exactly at the simulation end or exactly on a tick boundary, and
//! failures whose repair never happens before the run drains.
//!
//! The engine integrates over `[now, t]` *before* applying the events
//! due at `t`, and the run loop returns as soon as the job set drains —
//! same-instant queue events after the final completion are never
//! processed. These tests pin those conventions.

use dfrs_core::ids::{JobId, NodeId};
use dfrs_core::{ClusterSpec, JobSpec};
use dfrs_sim::{simulate, JobStatus, NodeEvent, Plan, SchedEvent, Scheduler, SimConfig};

fn cluster(n: u32) -> ClusterSpec {
    ClusterSpec::new(n, 4, 8.0).unwrap()
}

/// Single-task job with CPU need 1.0 so `busy_node_seconds` reads
/// directly as seconds of occupied node.
fn job(id: u32, submit: f64, rt: f64) -> JobSpec {
    JobSpec::new(JobId(id), submit, 1, 1.0, 0.3, rt).unwrap()
}

fn down(time: f64, node: u32) -> NodeEvent {
    NodeEvent {
        time,
        node: NodeId(node),
        up: false,
    }
}

fn up(time: f64, node: u32) -> NodeEvent {
    NodeEvent {
        time,
        node: NodeId(node),
        up: true,
    }
}

fn cfg(events: Vec<NodeEvent>) -> SimConfig {
    SimConfig {
        validate: true,
        node_events: events,
        ..SimConfig::default()
    }
}

/// Pins job `i` to node `i` at yield 1 and logs every event delivery as
/// `(time, tag)` so tests can assert same-instant ordering.
#[derive(Default)]
struct PinLogger {
    log: Vec<(f64, &'static str)>,
    period: Option<f64>,
}

impl PinLogger {
    fn with_period(period: f64) -> Self {
        PinLogger {
            log: Vec::new(),
            period: Some(period),
        }
    }

    fn place_all(&self, state: &dfrs_sim::SimState) -> Plan {
        let mut plan = Plan::noop();
        for j in state.jobs_in_system() {
            let node = NodeId(j.spec.id.0);
            let placeable = matches!(j.status, JobStatus::Pending | JobStatus::Paused);
            if placeable && state.cluster.is_up(node) {
                plan = plan.run(j.spec.id, vec![node], 1.0);
            }
        }
        plan
    }
}

impl Scheduler for PinLogger {
    fn name(&self) -> String {
        "pin-logger".into()
    }
    fn period(&self) -> Option<f64> {
        self.period
    }
    fn on_event(&mut self, ev: SchedEvent, state: &dfrs_sim::SimState) -> Plan {
        let tag = match ev {
            SchedEvent::Submit(_) => "submit",
            SchedEvent::Complete(_) => "complete",
            SchedEvent::Tick => "tick",
            SchedEvent::Timer(_) => "timer",
            SchedEvent::NodeDown(_) => "down",
            SchedEvent::NodeUp(_) => "up",
            SchedEvent::Withdraw(_) => "withdraw",
        };
        self.log.push((state.now, tag));
        match ev {
            SchedEvent::Submit(_)
            | SchedEvent::Complete(_)
            | SchedEvent::Tick
            | SchedEvent::NodeDown(_)
            | SchedEvent::NodeUp(_) => self.place_all(state),
            _ => Plan::noop(),
        }
    }
}

#[test]
fn unrepaired_failure_accrues_down_time_until_the_run_drains() {
    // Node 1 (never hosting anything) fails at t=30; the repair at
    // t=500 is queued far past the last completion at t=100, so the
    // integrals stop at the makespan: down is exactly 100 − 30.
    let jobs = vec![job(0, 0.0, 100.0)];
    let mut s = PinLogger::default();
    let out = simulate(
        cluster(2),
        &jobs,
        &mut s,
        &cfg(vec![down(30.0, 1), up(500.0, 1)]),
    );
    assert_eq!(out.makespan, 100.0);
    assert_eq!(out.down_node_seconds, 70.0);
    // Node 1 was idle for [0, 30) and down afterwards; node 0 was busy
    // throughout, so it never contributes idle time.
    assert_eq!(out.idle_node_seconds, 30.0);
    assert_eq!(out.busy_node_seconds, 100.0);
    // The repair was never delivered.
    assert!(!s.log.iter().any(|&(_, tag)| tag == "up"), "{:?}", s.log);
}

#[test]
fn failure_exactly_at_simulation_end_accrues_nothing() {
    // The down event and the final completion share t=100. Completions
    // settle first and drain the run, so the failure is never processed:
    // zero down seconds, and the scheduler never hears about it.
    let jobs = vec![job(0, 0.0, 100.0)];
    let mut s = PinLogger::default();
    let out = simulate(cluster(2), &jobs, &mut s, &cfg(vec![down(100.0, 1)]));
    assert_eq!(out.makespan, 100.0);
    assert_eq!(out.down_node_seconds, 0.0);
    assert_eq!(out.idle_node_seconds, 100.0);
    assert!(!s.log.iter().any(|&(_, tag)| tag == "down"), "{:?}", s.log);
}

#[test]
fn down_up_window_is_exact() {
    // Failure at 25, repair at 75, run ends at 100: the spectator node
    // contributes exactly 50 down seconds and 50 idle seconds.
    let jobs = vec![job(0, 0.0, 100.0)];
    let mut s = PinLogger::default();
    let out = simulate(
        cluster(2),
        &jobs,
        &mut s,
        &cfg(vec![down(25.0, 1), up(75.0, 1)]),
    );
    assert_eq!(out.down_node_seconds, 50.0);
    assert_eq!(out.idle_node_seconds, 50.0);
    assert_eq!(out.busy_node_seconds, 100.0);
    let downs: Vec<_> = s.log.iter().filter(|&&(_, t)| t == "down").collect();
    let ups: Vec<_> = s.log.iter().filter(|&&(_, t)| t == "up").collect();
    assert_eq!((downs.len(), ups.len()), (1, 1));
}

#[test]
fn failure_on_a_tick_boundary_keeps_the_integrals_exact() {
    // A periodic scheduler ticks at 50, 100, …; node 1 fails exactly at
    // t=50 and repairs exactly at t=150 (both tick instants). The
    // integration happens once per advance regardless of how many
    // same-instant events fire, so the window is exactly 100 s and
    // nothing is double-counted.
    let jobs = vec![job(0, 0.0, 200.0)];
    let mut s = PinLogger::with_period(50.0);
    let out = simulate(
        cluster(2),
        &jobs,
        &mut s,
        &cfg(vec![down(50.0, 1), up(150.0, 1)]),
    );
    assert_eq!(out.makespan, 200.0);
    assert_eq!(out.down_node_seconds, 100.0);
    assert_eq!(out.idle_node_seconds, 100.0);
    assert_eq!(out.busy_node_seconds, 200.0);
    // Both boundary events were delivered, at exactly their tick times.
    assert!(s.log.contains(&(50.0, "down")), "{:?}", s.log);
    assert!(s.log.contains(&(150.0, "up")), "{:?}", s.log);

    // Same-instant ordering is deterministic: a second run produces the
    // identical delivery log.
    let mut s2 = PinLogger::with_period(50.0);
    let out2 = simulate(
        cluster(2),
        &jobs,
        &mut s2,
        &cfg(vec![down(50.0, 1), up(150.0, 1)]),
    );
    assert_eq!(s.log, s2.log);
    assert_eq!(out.down_node_seconds, out2.down_node_seconds);
}

#[test]
fn integrals_partition_node_time() {
    // Across a churny run, every node second is exactly one of busy
    // (here yield 1 × cpu 1 jobs, so busy ≡ occupied), idle, or down.
    let jobs = vec![job(0, 0.0, 80.0), job(1, 10.0, 120.0)];
    let events = vec![down(20.0, 2), up(60.0, 2), down(90.0, 3)];
    let mut s = PinLogger::default();
    let out = simulate(cluster(4), &jobs, &mut s, &cfg(events));
    let total = 4.0 * out.makespan;
    let accounted = out.busy_node_seconds + out.idle_node_seconds + out.down_node_seconds;
    assert!(
        (total - accounted).abs() < 1e-9,
        "total {total} != accounted {accounted}"
    );
}
