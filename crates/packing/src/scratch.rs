//! Reusable scratch buffers for the packing hot path.
//!
//! Every `DynMCB8*` scheduling decision runs a binary search whose each
//! probe expands jobs into task items and packs them. Naively that is
//! five heap allocations per probe (item list, two dominance lists, the
//! liveness links, the output); at ~10 probes per decision and one
//! decision per event this dominated the allocator profile. Callers
//! that decide repeatedly hold one [`SearchScratch`] (schedulers keep
//! it across events) and every probe reuses the same buffers.

use crate::item::PackItem;

/// Buffers reused by a single packer invocation ([`crate::VectorPacker::pack_into`]).
///
/// Contents between calls are unspecified; the packer rebuilds what it
/// needs. Holding one per repeated caller turns per-probe allocations
/// into amortized-free buffer reuse.
#[derive(Debug, Default, Clone)]
pub struct PackScratch {
    /// CPU-dominant items, sorted by the MCB8 comparator.
    pub(crate) cpu_dom: Vec<PackItem>,
    /// Memory-dominant items, sorted by the MCB8 comparator.
    pub(crate) mem_dom: Vec<PackItem>,
    /// Path-compressed liveness skips of the CPU-dominant list.
    pub(crate) skip_cpu: Vec<u32>,
    /// Path-compressed liveness skips of the memory-dominant list.
    pub(crate) skip_mem: Vec<u32>,
    /// Secondary requirement (memory) of each sorted CPU-dominant item.
    pub(crate) sec_cpu: Vec<f64>,
    /// Secondary requirement (CPU) of each sorted memory-dominant item.
    pub(crate) sec_mem: Vec<f64>,
    /// Suffix minima of `sec_cpu` (over all items, removed included —
    /// a sound lower bound for the alive suffix).
    pub(crate) sufmin_cpu: Vec<f64>,
    /// Suffix minima of `sec_mem`.
    pub(crate) sufmin_mem: Vec<f64>,
    /// `run_cpu[i]` = end (exclusive) of the maximal run of items
    /// identical to item `i` in the sorted CPU-dominant list (a job's
    /// tasks are identical and adjacent; one failed fit rules out the
    /// whole run).
    pub(crate) run_cpu: Vec<u32>,
    /// Run ends of the memory-dominant list.
    pub(crate) run_mem: Vec<u32>,
    /// Input compressed to `(first item, count)` runs of identical
    /// items with consecutive ids — sorting happens at run level
    /// (one entry per job instead of one per task).
    pub(crate) cpu_runs: Vec<(PackItem, u32)>,
    /// Memory-dominant runs.
    pub(crate) mem_runs: Vec<(PackItem, u32)>,
    /// Run buffer for the item-slice compatibility path
    /// ([`crate::VectorPacker::pack_into`]).
    pub(crate) input_runs: Vec<(PackItem, u32)>,
    /// Output: bin of the item with id `i`, `u32::MAX` while unplaced.
    pub(crate) bin_of: Vec<u32>,
}

impl PackScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        PackScratch::default()
    }

    /// The bin assignment left by the last successful
    /// [`crate::VectorPacker::pack_into`]: `bin_of()[i]` is the bin of
    /// the item with id `i`.
    pub fn bin_of(&self) -> &[u32] {
        &self.bin_of
    }
}

/// One self-contained probe evaluation slot: its own runs buffer and
/// packer scratch, so speculative bisection probes can pack
/// concurrently without sharing mutable state (`yield_search` submits
/// the two possible successors of the current probe to the worker pool
/// while the caller packs the probe itself).
#[derive(Debug, Default, Clone)]
pub struct ProbeSlot {
    /// Per-job item runs of this slot's probe.
    pub(crate) runs: Vec<(PackItem, u32)>,
    /// Packer-internal buffers of this slot.
    pub(crate) pack: PackScratch,
    /// Verdict of this slot's probe.
    pub(crate) ok: bool,
}

/// Buffers for one binary-search caller (yield or stretch search):
/// the expanded task items, the packer scratch, and the best feasible
/// assignment found so far.
#[derive(Debug, Default, Clone)]
pub struct SearchScratch {
    /// Per-job item runs; only the `cpu` column varies across probes.
    pub(crate) runs: Vec<(PackItem, u32)>,
    /// Packer-internal buffers.
    pub(crate) pack: PackScratch,
    /// Speculative side-probe slots (left and right successors of the
    /// current bisection probe), used only when the worker pool has
    /// parallelism to offer.
    pub(crate) side: [ProbeSlot; 2],
    /// `bin_of` of the best feasible probe so far.
    pub(crate) best: Vec<u32>,
    /// Runs of the most recent *feasible* probe (stretch search:
    /// clamping makes distinct targets produce identical instances, so
    /// an equality check can reuse the cached verdict instead of
    /// packing again).
    pub(crate) last_ok: Vec<(PackItem, u32)>,
    /// Runs of the most recent *infeasible* probe.
    pub(crate) last_fail: Vec<(PackItem, u32)>,
    /// Monotone count of packer invocations made through this scratch —
    /// the denominator of the warm-start accounting in
    /// [`crate::RepackMemo`]. Never read by the searches themselves.
    pub(crate) packs: u64,
}

impl SearchScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        SearchScratch::default()
    }
}
