//! Binary search for the maximized minimum **dominant share** (DRF).
//!
//! Dominant Resource Fairness (Ghodsi et al., NSDI 2011) generalizes
//! max-min fairness to multiple resources: equalize every job's share
//! of its *dominant* resource — the resource it demands the largest
//! fraction of. In the DFRS setting the fluid resources are CPU and
//! GPU (allocations scale with the yield); memory is rigid and enters
//! only through packing feasibility, exactly as in the paper's
//! two-resource model.
//!
//! A job with per-task needs `(cpu, mem, gpu)` running at yield `y`
//! holds `cpu·y` CPU and `gpu·y` GPU per task, so its dominant share is
//! `d·y` with `d = max(cpu, gpu)`
//! ([`dfrs_core::yield_math::dominant_share`]). Fixing a target share
//! `S` therefore fixes every job's yield at `y_i = min(1, S/d_i)`
//! ([`dfrs_core::yield_math::yield_for_dominant_share`]) and reduces
//! allocation to three-dimensional vector packing, handled by
//! [`McbVec`]. The largest feasible `S` is located by bisection with
//! the paper's 0.01 accuracy, mirroring the yield search in
//! `yield_search.rs`.
//!
//! The floor probe fixes every yield at `min_yield` uniformly (not at a
//! share target): a job must never sit at yield 0 holding memory, and
//! this is the weakest demand profile any share target can induce, so
//! its failure proves infeasibility at every `S` — the same role the
//! `min_yield` probe plays in the yield search. When the returned
//! bracket end lies below the smallest job's floor share, yields clamp
//! up to `min_yield`, so the reported minimum dominant share can exceed
//! the bracket (it is reported exactly as achieved).

use dfrs_core::ids::JobId;
use dfrs_core::yield_math::yield_for_dominant_share;

use crate::vecpack::{McbVec, VecItem, VecPackScratch};

/// Resource dimensionality of the DRF instance (CPU, memory, GPU).
pub const DRF_DIMS: usize = 3;

/// Aggregate demand of one job for the DRF search: `tasks` identical
/// tasks with a three-resource per-task demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrfJob {
    /// The job this load belongs to (carried through to the result).
    pub job: JobId,
    /// Number of tasks.
    pub tasks: u32,
    /// Per-task CPU need in `(0, 1]` (fluid).
    pub cpu_need: f64,
    /// Per-task memory requirement in `(0, 1]` (rigid).
    pub mem_req: f64,
    /// Per-task GPU need in `[0, 1]` (fluid; 0 = no GPU demand).
    pub gpu_need: f64,
}

impl DrfJob {
    /// The job's dominant fluid demand `max(cpu, gpu)` — the
    /// denominator of its dominant share.
    #[inline]
    pub fn dominant_need(&self) -> f64 {
        self.cpu_need.max(self.gpu_need)
    }
}

/// Result of the DRF maximization: per-job yields (no longer uniform —
/// each job's yield is set by the common share target) and placements.
#[derive(Debug, Clone, PartialEq)]
pub struct DrfAllocation {
    /// The achieved minimum dominant share `min_i d_i·y_i`. This can
    /// sit below [`target_share`](Self::target_share) when the minimum
    /// comes from a job already at full speed (its share caps at its
    /// own demand), and above it when the yield floor lifts a heavy
    /// job's share past the target.
    pub min_dominant_share: f64,
    /// The feasible share target the allocation was packed at (the
    /// bisection's `lo`, or the full-speed demand on the fast path).
    pub target_share: f64,
    /// The terminal infeasible share target — at most `accuracy` above
    /// [`target_share`](Self::target_share); `None` when the full-speed
    /// fast path succeeded and no infeasible target exists. This is the
    /// certificate the maximality proptest checks.
    pub infeasible_share: Option<f64>,
    /// `allocations[i]` = `(job, yield, node of each task)` for input
    /// job `i` (same order).
    pub allocations: Vec<(JobId, f64, Vec<u32>)>,
}

/// One self-contained DRF probe slot: its own runs, yields and packer
/// scratch, so speculative bisection probes can pack concurrently (see
/// [`crate::scratch::ProbeSlot`] for the two-dimensional analog).
#[derive(Debug, Clone, Default)]
struct DrfProbeSlot {
    runs: Vec<(VecItem<DRF_DIMS>, u32)>,
    yields: Vec<f64>,
    pack: VecPackScratch<DRF_DIMS>,
    ok: bool,
}

/// Buffers for one DRF search caller.
#[derive(Debug, Clone, Default)]
pub struct DrfSearchScratch {
    runs: Vec<(VecItem<DRF_DIMS>, u32)>,
    pack: VecPackScratch<DRF_DIMS>,
    caps: Vec<[f64; DRF_DIMS]>,
    best: Vec<u32>,
    yields: Vec<f64>,
    best_yields: Vec<f64>,
    /// Speculative side-probe slots (left and right successors of the
    /// current bisection probe).
    side: [DrfProbeSlot; 2],
    /// Monotone count of packer invocations (bench accounting).
    pub packs: u64,
}

impl DrfSearchScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        DrfSearchScratch::default()
    }
}

/// Fill `runs` (and `yields`) with the demand profile at share target
/// `share`: each job's yield is `clamp(share/d_i, min_yield, 1)` and
/// its fluid requirements scale with it. Item ids number tasks densely
/// in input order.
fn fill_runs_at_share(
    jobs: &[DrfJob],
    share: f64,
    min_yield: f64,
    runs: &mut Vec<(VecItem<DRF_DIMS>, u32)>,
    yields: &mut Vec<f64>,
) {
    runs.clear();
    yields.clear();
    let mut id = 0u32;
    for j in jobs {
        let y = yield_for_dominant_share(j.dominant_need(), share).max(min_yield);
        yields.push(y);
        runs.push((
            VecItem {
                id,
                req: [
                    (j.cpu_need * y).min(1.0),
                    j.mem_req,
                    (j.gpu_need * y).min(1.0),
                ],
            },
            j.tasks,
        ));
        id += j.tasks;
    }
}

/// Maximize the minimum dominant share over all jobs.
///
/// * `jobs` — demands; order fixes deterministic tie-breaking.
/// * `nodes` — cluster size (unit capacity in every dimension).
/// * `accuracy` — bisection stops when the share bracket is narrower
///   than this (0.01, like the yield search).
/// * `min_yield` — smallest admissible yield (see module docs).
///
/// Returns `None` when even the `min_yield` floor cannot be packed
/// (the caller evicts the job with the largest dominant-share demand
/// and retries — the DRF preemption ordering), otherwise the best
/// allocation found.
pub fn max_min_dominant_share(
    jobs: &[DrfJob],
    nodes: usize,
    accuracy: f64,
    min_yield: f64,
    scratch: &mut DrfSearchScratch,
) -> Option<DrfAllocation> {
    max_min_dominant_share_on(
        jobs,
        nodes,
        accuracy,
        min_yield,
        scratch,
        dfrs_core::pool::global(),
    )
}

/// [`max_min_dominant_share`] on an explicit worker pool (tests inject
/// a multi-worker pool to exercise the speculative path on any host).
pub(crate) fn max_min_dominant_share_on(
    jobs: &[DrfJob],
    nodes: usize,
    accuracy: f64,
    min_yield: f64,
    scratch: &mut DrfSearchScratch,
    pool: &dfrs_core::pool::WorkerPool,
) -> Option<DrfAllocation> {
    debug_assert!(accuracy > 0.0 && min_yield > 0.0 && min_yield <= 1.0);
    if jobs.is_empty() {
        return Some(DrfAllocation {
            min_dominant_share: 1.0,
            target_share: 1.0,
            infeasible_share: None,
            allocations: Vec::new(),
        });
    }

    scratch.caps.clear();
    scratch.caps.resize(nodes, [1.0; DRF_DIMS]);
    let DrfSearchScratch {
        runs,
        pack,
        caps,
        best,
        yields,
        best_yields,
        side,
        packs,
    } = scratch;
    fn probe(
        jobs: &[DrfJob],
        share: f64,
        min_yield: f64,
        caps: &[[f64; DRF_DIMS]],
        runs: &mut Vec<(VecItem<DRF_DIMS>, u32)>,
        yields: &mut Vec<f64>,
        pack: &mut VecPackScratch<DRF_DIMS>,
    ) -> bool {
        fill_runs_at_share(jobs, share, min_yield, runs, yields);
        McbVec::<DRF_DIMS>.pack_runs_into(runs, caps, pack)
    }

    // The largest meaningful target: every job at full speed.
    let d_max = jobs
        .iter()
        .map(|j| j.dominant_need())
        .fold(0.0f64, f64::max);

    // Fast path: everything fits at full speed.
    *packs += 1;
    if probe(jobs, d_max, min_yield, caps, runs, yields, pack) {
        let min_share = min_achieved_share(jobs, yields);
        return Some(DrfAllocation {
            min_dominant_share: min_share,
            target_share: d_max,
            infeasible_share: None,
            allocations: allocations_from(jobs, yields, pack.bin_of()),
        });
    }

    // The floor probe (share 0 → every yield clamps to `min_yield`)
    // doubles as the memory-feasibility check.
    *packs += 1;
    if !probe(jobs, 0.0, min_yield, caps, runs, yields, pack) {
        return None;
    }
    best.clear();
    best.extend_from_slice(pack.bin_of());
    best_yields.clone_from(yields);
    let mut lo = 0.0;
    let mut hi = d_max;
    // Speculative parallel bisection, mirroring `yield_search`: the
    // caller packs `mid` while the pool packs both possible successors;
    // targets use the exact sequential arithmetic, the unused successor
    // is discarded, and `packs` counts only sequential-equivalent
    // probes, so the result is bit-identical to the sequential search.
    let speculate =
        jobs.len() >= crate::yield_search::PARALLEL_PROBE_MIN_JOBS && pool.workers() >= 2;
    while hi - lo > accuracy {
        let mid = 0.5 * (lo + hi);
        if !speculate {
            *packs += 1;
            if probe(jobs, mid, min_yield, caps, runs, yields, pack) {
                best.clear();
                best.extend_from_slice(pack.bin_of());
                best_yields.clone_from(yields);
                lo = mid;
            } else {
                hi = mid;
            }
            continue;
        }
        let left = 0.5 * (lo + mid);
        let right = 0.5 * (mid + hi);
        let [sl, sr] = side;
        let mid_ok = pool.scope(|s| {
            s.execute(|| {
                sl.ok = probe(
                    jobs,
                    left,
                    min_yield,
                    caps,
                    &mut sl.runs,
                    &mut sl.yields,
                    &mut sl.pack,
                );
            });
            s.execute(|| {
                sr.ok = probe(
                    jobs,
                    right,
                    min_yield,
                    caps,
                    &mut sr.runs,
                    &mut sr.yields,
                    &mut sr.pack,
                );
            });
            probe(jobs, mid, min_yield, caps, runs, yields, pack)
        });
        *packs += 1;
        if mid_ok {
            best.clear();
            best.extend_from_slice(pack.bin_of());
            best_yields.clone_from(yields);
            lo = mid;
            if hi - lo <= accuracy {
                break;
            }
            *packs += 1;
            if sr.ok {
                best.clear();
                best.extend_from_slice(sr.pack.bin_of());
                best_yields.clone_from(&sr.yields);
                lo = right;
            } else {
                hi = right;
            }
        } else {
            hi = mid;
            if hi - lo <= accuracy {
                break;
            }
            *packs += 1;
            if sl.ok {
                best.clear();
                best.extend_from_slice(sl.pack.bin_of());
                best_yields.clone_from(&sl.yields);
                lo = left;
            } else {
                hi = left;
            }
        }
    }
    let min_share = min_achieved_share(jobs, best_yields);
    Some(DrfAllocation {
        min_dominant_share: min_share,
        target_share: lo,
        infeasible_share: Some(hi),
        allocations: allocations_from(jobs, best_yields, best),
    })
}

/// Whether the demand profile at share target `share` packs — exposed
/// so tests can certify the returned share is maximal within tolerance.
pub fn drf_feasible_at_share(jobs: &[DrfJob], nodes: usize, share: f64, min_yield: f64) -> bool {
    let mut scratch = DrfSearchScratch::new();
    scratch.caps.resize(nodes, [1.0; DRF_DIMS]);
    fill_runs_at_share(
        jobs,
        share,
        min_yield,
        &mut scratch.runs,
        &mut scratch.yields,
    );
    McbVec::<DRF_DIMS>.pack_runs_into(&scratch.runs, &scratch.caps, &mut scratch.pack)
}

fn min_achieved_share(jobs: &[DrfJob], yields: &[f64]) -> f64 {
    jobs.iter()
        .zip(yields.iter())
        .map(|(j, y)| j.dominant_need() * y)
        .fold(f64::INFINITY, f64::min)
}

fn allocations_from(
    jobs: &[DrfJob],
    yields: &[f64],
    bin_of: &[u32],
) -> Vec<(JobId, f64, Vec<u32>)> {
    let mut out = Vec::with_capacity(jobs.len());
    let mut cursor = 0usize;
    for (j, &y) in jobs.iter().zip(yields.iter()) {
        let nodes = bin_of[cursor..cursor + j.tasks as usize].to_vec();
        cursor += j.tasks as usize;
        out.push((j.job, y, nodes));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, tasks: u32, cpu: f64, mem: f64, gpu: f64) -> DrfJob {
        DrfJob {
            job: JobId(id),
            tasks,
            cpu_need: cpu,
            mem_req: mem,
            gpu_need: gpu,
        }
    }

    fn run(jobs: &[DrfJob], nodes: usize) -> Option<DrfAllocation> {
        max_min_dominant_share(jobs, nodes, 0.01, 0.01, &mut DrfSearchScratch::new())
    }

    #[test]
    fn empty_system_is_trivially_fair() {
        let a = run(&[], 4).unwrap();
        assert_eq!(a.min_dominant_share, 1.0);
        assert!(a.allocations.is_empty());
    }

    #[test]
    fn underloaded_cluster_runs_everyone_at_full_speed() {
        let a = run(&[job(0, 2, 0.3, 0.1, 0.0), job(1, 1, 0.2, 0.1, 0.7)], 4).unwrap();
        for (_, y, _) in &a.allocations {
            assert_eq!(*y, 1.0);
        }
        // Min dominant share = min(0.3, 0.7) at full speed.
        assert!((a.min_dominant_share - 0.3).abs() < 1e-12);
    }

    #[test]
    fn contended_gpu_equalizes_dominant_shares() {
        // Two single-task jobs both needing the whole GPU of one node:
        // DRF splits the GPU, shares ≈ 0.5 each.
        let jobs = [job(0, 1, 0.2, 0.3, 1.0), job(1, 1, 0.2, 0.3, 1.0)];
        let a = run(&jobs, 1).unwrap();
        assert!(a.min_dominant_share <= 0.5 + 1e-9);
        assert!(a.min_dominant_share >= 0.5 - 0.01 - 1e-9);
        for (_, y, _) in &a.allocations {
            assert!((*y - a.min_dominant_share).abs() < 0.011, "d=1 → y = share");
        }
    }

    #[test]
    fn asymmetric_demands_get_asymmetric_yields() {
        // Job 0 is CPU-dominant (d=1.0), job 1 GPU-dominant (d=0.5),
        // both on one node. At share S: y0 = S, y1 = min(1, 2S).
        // CPU binds: S + 0.2·min(1,2S) ≤ 1 and GPU: 0.5·min(1,2S) ≤ 1.
        // For S ≤ 0.5: cpu = S + 0.4S = 1.4S ≤ 1 → S ≈ 0.714? But then
        // 2S > 1, so y1 = 1 and cpu = S + 0.2 ≤ 1 → S ≈ 0.8.
        let jobs = [job(0, 1, 1.0, 0.3, 0.0), job(1, 1, 0.2, 0.3, 0.5)];
        let a = run(&jobs, 1).unwrap();
        let y0 = a.allocations[0].1;
        let y1 = a.allocations[1].1;
        assert_eq!(y1, 1.0, "small job saturates at full speed");
        assert!(y0 >= 0.8 - 0.011, "big job gets the remaining CPU: {y0}");
        assert!(y0 <= 0.8 + 1e-9);
        // Job 1 at full speed caps its own dominant share at d=0.5, so
        // the reported minimum is 0.5 even as job 0 climbs past it.
        assert!((a.min_dominant_share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn memory_infeasibility_returns_none() {
        // Three 60%-memory tasks cannot fit two nodes at any share.
        assert!(run(&[job(0, 3, 0.1, 0.6, 0.0)], 2).is_none());
    }

    #[test]
    fn returned_share_is_maximal_within_tolerance() {
        let jobs = [
            job(0, 2, 0.8, 0.2, 0.0),
            job(1, 1, 0.3, 0.3, 0.9),
            job(2, 3, 0.5, 0.1, 0.2),
        ];
        let a = run(&jobs, 2).unwrap();
        // The bracket certificate: the target packs, the terminal
        // infeasible share does not, and they differ by at most the
        // accuracy.
        assert!(drf_feasible_at_share(&jobs, 2, a.target_share, 0.01));
        if let Some(hi) = a.infeasible_share {
            assert!(!drf_feasible_at_share(&jobs, 2, hi, 0.01));
            assert!(hi - a.target_share <= 0.01 + 1e-12);
        }
    }

    #[test]
    fn yields_never_fall_below_the_floor() {
        // Heavy contention: 8 single-task full-CPU jobs on one node.
        let jobs: Vec<_> = (0..8).map(|i| job(i, 1, 1.0, 0.1, 0.0)).collect();
        let a = run(&jobs, 1).unwrap();
        for (_, y, _) in &a.allocations {
            assert!(*y >= 0.01);
            assert!(*y <= 0.125 + 1e-9);
        }
    }

    mod speculative_parity {
        use super::*;
        use dfrs_core::pool::WorkerPool;
        use proptest::prelude::*;

        fn search_on(
            jobs: &[DrfJob],
            nodes: usize,
            pool: &WorkerPool,
        ) -> (Option<DrfAllocation>, u64) {
            let mut scratch = DrfSearchScratch::new();
            let out = max_min_dominant_share_on(jobs, nodes, 0.01, 0.01, &mut scratch, pool);
            (out, scratch.packs)
        }

        fn assert_parity(jobs: &[DrfJob], nodes: usize) {
            let serial = WorkerPool::new(1);
            let parallel = WorkerPool::new(4);
            assert!(serial.workers() == 0 && parallel.workers() >= 2);
            let (a, packs_a) = search_on(jobs, nodes, &serial);
            let (b, packs_b) = search_on(jobs, nodes, &parallel);
            assert_eq!(packs_a, packs_b, "pack counters diverged");
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(
                        x.target_share.to_bits(),
                        y.target_share.to_bits(),
                        "target share bits diverged"
                    );
                    assert_eq!(x.infeasible_share, y.infeasible_share);
                    assert_eq!(
                        x.min_dominant_share.to_bits(),
                        y.min_dominant_share.to_bits()
                    );
                    assert_eq!(x.allocations, y.allocations, "allocations diverged");
                }
                (a, b) => panic!(
                    "feasibility diverged: {:?} vs {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }

        #[test]
        fn speculative_search_is_bit_identical_to_sequential() {
            let jobs: Vec<_> = (0..96)
                .map(|i| {
                    let c = 0.1 + 0.85 * f64::from((i * 37) % 11) / 11.0;
                    let m = 0.02 + 0.3 * f64::from((i * 17) % 7) / 7.0;
                    let g = if i % 3 == 0 {
                        0.2 + 0.7 * f64::from((i * 5) % 9) / 9.0
                    } else {
                        0.0
                    };
                    job(i, 1 + i % 3, c, m, g)
                })
                .collect();
            for nodes in [9, 23, 48] {
                assert_parity(&jobs, nodes);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn prop_speculative_equals_sequential(
                raw in proptest::collection::vec(
                    (1u32..4, 0.05f64..1.0, 0.02f64..0.55, 0.0f64..1.0),
                    crate::yield_search::PARALLEL_PROBE_MIN_JOBS..120,
                ),
                nodes in 1usize..24,
            ) {
                let jobs: Vec<DrfJob> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &(t, c, m, g))| job(i as u32, t, c, m, g))
                    .collect();
                assert_parity(&jobs, nodes);
            }
        }
    }

    #[test]
    fn zero_gpu_instance_matches_uniform_yield_search_shape() {
        // Without GPU demand and with equal CPU needs, DRF degenerates
        // to the uniform yield search: equal shares mean equal yields.
        let jobs = [job(0, 1, 1.0, 0.4, 0.0), job(1, 1, 1.0, 0.4, 0.0)];
        let a = run(&jobs, 1).unwrap();
        let y0 = a.allocations[0].1;
        let y1 = a.allocations[1].1;
        assert_eq!(y0, y1);
        assert!((0.5 - 0.011..=0.5 + 1e-9).contains(&y0));
    }
}
