//! Items, bins, and the packer interface.

use dfrs_core::approx;

/// One task to place: a point in the (CPU, memory) requirement plane.
///
/// `id` is an opaque caller-assigned index (the schedulers use a dense
/// task index and map ranges of ids back to jobs). Ids must be unique
/// within one `pack` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackItem {
    /// Caller-assigned unique id.
    pub id: u32,
    /// CPU requirement in `[0, 1]` (a *requirement*, i.e. need × yield).
    pub cpu: f64,
    /// Memory requirement in `(0, 1]`.
    pub mem: f64,
}

impl PackItem {
    /// The larger of the two requirements — MCB8's sort key.
    #[inline]
    pub fn max_component(&self) -> f64 {
        self.cpu.max(self.mem)
    }

    /// True when the CPU requirement strictly dominates memory.
    #[inline]
    pub fn cpu_dominant(&self) -> bool {
        self.cpu > self.mem
    }
}

/// Running state of one node while packing.
///
/// Bins carry an **explicit capacity vector**: nothing in `fits`/`place`
/// assumes unit capacity, so heterogeneous nodes pack through the same
/// code path. [`Bin::empty`] yields the paper's normalized unit bin
/// (both capacities exactly `1.0`), keeping the historical arithmetic
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// CPU already committed.
    pub cpu_used: f64,
    /// Memory already committed.
    pub mem_used: f64,
    /// CPU capacity of this bin.
    pub cpu_cap: f64,
    /// Memory capacity of this bin.
    pub mem_cap: f64,
}

impl Bin {
    /// Fresh empty bin with the paper's normalized unit capacities.
    #[inline]
    pub fn empty() -> Self {
        Bin::with_caps(1.0, 1.0)
    }

    /// Fresh empty bin with explicit capacities.
    #[inline]
    pub fn with_caps(cpu_cap: f64, mem_cap: f64) -> Self {
        debug_assert!(cpu_cap >= 0.0 && mem_cap >= 0.0);
        Bin {
            cpu_used: 0.0,
            mem_used: 0.0,
            cpu_cap,
            mem_cap,
        }
    }

    /// Remaining CPU capacity.
    #[inline]
    pub fn cpu_free(&self) -> f64 {
        self.cpu_cap - self.cpu_used
    }

    /// Remaining memory capacity.
    #[inline]
    pub fn mem_free(&self) -> f64 {
        self.mem_cap - self.mem_used
    }

    /// Whether `item` fits within both remaining capacities (tolerant
    /// comparison).
    #[inline]
    pub fn fits(&self, item: &PackItem) -> bool {
        approx::le(self.cpu_used + item.cpu, self.cpu_cap)
            && approx::le(self.mem_used + item.mem, self.mem_cap)
    }

    /// Commit `item` into the bin.
    #[inline]
    pub fn place(&mut self, item: &PackItem) {
        debug_assert!(self.fits(item));
        self.cpu_used += item.cpu;
        self.mem_used += item.mem;
    }
}

/// A successful packing: for every input item, the bin that hosts it.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    /// `bin_of[i]` is the bin index of the item with id `i`.
    ///
    /// Indexed by item **id**, so callers can hand items in any order as
    /// long as ids are dense `0..n`.
    pub bin_of: Vec<u32>,
}

impl Packing {
    /// Verify that this packing places every item exactly once without
    /// exceeding any bin capacity — used by tests and debug assertions.
    pub fn is_valid(&self, items: &[PackItem], bins: usize) -> bool {
        if self.bin_of.len() != items.len() {
            return false;
        }
        let mut state = vec![Bin::empty(); bins];
        for item in items {
            let Some(&b) = self.bin_of.get(item.id as usize) else {
                return false;
            };
            let b = b as usize;
            if b >= bins {
                return false;
            }
            state[b].cpu_used += item.cpu;
            state[b].mem_used += item.mem;
        }
        state
            .iter()
            .all(|b| approx::le(b.cpu_used, b.cpu_cap) && approx::le(b.mem_used, b.mem_cap))
    }
}

/// A bi-dimensional vector-packing heuristic: place all `items` into
/// `bins` unit bins, or report failure (`None`). Heuristics are
/// incomplete: `None` does not prove infeasibility.
/// `Send + Sync` is a supertrait requirement: packers are stateless
/// configuration shared by `&'static` reference from scheduler
/// instances, and schedulers must be `Send` so composite runners (the
/// sharded coordinator, campaign thread pools) can fan them out across
/// scoped threads.
pub trait VectorPacker: Send + Sync {
    /// Human-readable name for reports and benches.
    fn name(&self) -> &'static str;

    /// Attempt to place every item. Item ids must be dense `0..items.len()`.
    fn pack(&self, items: &[PackItem], bins: usize) -> Option<Packing>;

    /// Allocation-free variant of [`pack`](Self::pack): reuse `scratch`
    /// buffers and leave the assignment in
    /// [`PackScratch::bin_of`](crate::PackScratch::bin_of). Returns
    /// whether every item was placed. The default falls back to `pack`;
    /// hot-path packers override it.
    fn pack_into(
        &self,
        items: &[PackItem],
        bins: usize,
        scratch: &mut crate::scratch::PackScratch,
    ) -> bool {
        match self.pack(items, bins) {
            Some(p) => {
                scratch.bin_of.clear();
                scratch.bin_of.extend_from_slice(&p.bin_of);
                true
            }
            None => {
                scratch.bin_of.clear();
                false
            }
        }
    }

    /// [`pack_into`](Self::pack_into) over pre-compressed runs: each
    /// `(first, count)` entry stands for `count` identical items with
    /// consecutive ids starting at `first.id` (a job's tasks). Repeated
    /// callers build runs directly — O(jobs) per probe instead of
    /// O(tasks). The default expands and delegates.
    fn pack_runs_into(
        &self,
        runs: &[(PackItem, u32)],
        bins: usize,
        scratch: &mut crate::scratch::PackScratch,
    ) -> bool {
        let items: Vec<PackItem> = runs
            .iter()
            .flat_map(|&(it, count)| {
                (0..count).map(move |k| PackItem {
                    id: it.id + k,
                    cpu: it.cpu,
                    mem: it.mem,
                })
            })
            .collect();
        self.pack_into(&items, bins, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_fits_is_tolerant_at_capacity() {
        let mut b = Bin::empty();
        let half = PackItem {
            id: 0,
            cpu: 0.5,
            mem: 0.5,
        };
        b.place(&half);
        assert!(b.fits(&half));
        b.place(&half);
        assert!(!b.fits(&PackItem {
            id: 1,
            cpu: 1e-6,
            mem: 0.0
        }));
        // Tolerates rounding noise.
        assert!(b.fits(&PackItem {
            id: 2,
            cpu: 1e-12,
            mem: 0.0
        }));
    }

    #[test]
    fn explicit_caps_govern_fits_and_place() {
        // A bin with a non-unit memory capacity: the old hardcoded-1.0
        // check would wrongly accept items that overflow it.
        let mut b = Bin::with_caps(2.0, 0.5);
        let item = PackItem {
            id: 0,
            cpu: 1.5,
            mem: 0.5,
        };
        // Exactly at capacity in the non-CPU dimension: the approx::le
        // boundary accepts it.
        assert!(b.fits(&item));
        b.place(&item);
        assert_eq!(b.cpu_free(), 0.5);
        assert_eq!(b.mem_free(), 0.0);
        // One epsilon over (beyond the approx tolerance) does not fit.
        let over = PackItem {
            id: 1,
            cpu: 0.0,
            mem: 1e-6,
        };
        assert!(!b.fits(&over));
        // Unit bins reject what only the larger capacity admitted.
        assert!(!Bin::empty().fits(&PackItem {
            id: 2,
            cpu: 1.5,
            mem: 0.1
        }));
    }

    #[test]
    fn at_capacity_boundary_in_memory_dimension() {
        // Negative-path pair for the capacity bugfix: an item landing
        // *exactly* at a fractional memory capacity places; an epsilon
        // beyond the tolerance is refused.
        let cap = 0.7;
        let b = Bin::with_caps(1.0, cap);
        let exact = PackItem {
            id: 0,
            cpu: 0.1,
            mem: cap,
        };
        assert!(b.fits(&exact), "exact boundary must pass approx::le");
        let sliver = PackItem {
            id: 1,
            cpu: 0.1,
            mem: cap + 1e-6,
        };
        assert!(!b.fits(&sliver), "an epsilon over must not fit");
    }

    #[test]
    fn max_component_and_dominance() {
        let i = PackItem {
            id: 0,
            cpu: 0.7,
            mem: 0.3,
        };
        assert_eq!(i.max_component(), 0.7);
        assert!(i.cpu_dominant());
        let j = PackItem {
            id: 1,
            cpu: 0.3,
            mem: 0.3,
        };
        assert!(!j.cpu_dominant(), "ties are memory-dominant");
    }

    #[test]
    fn packing_validity_detects_overflow() {
        let items = vec![
            PackItem {
                id: 0,
                cpu: 0.6,
                mem: 0.1,
            },
            PackItem {
                id: 1,
                cpu: 0.6,
                mem: 0.1,
            },
        ];
        let ok = Packing { bin_of: vec![0, 1] };
        assert!(ok.is_valid(&items, 2));
        let bad = Packing { bin_of: vec![0, 0] };
        assert!(!bad.is_valid(&items, 2), "1.2 CPU in one bin");
        let out_of_range = Packing { bin_of: vec![0, 5] };
        assert!(!out_of_range.is_valid(&items, 2));
        let wrong_len = Packing { bin_of: vec![0] };
        assert!(!wrong_len.is_valid(&items, 2));
    }
}
