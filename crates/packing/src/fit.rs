//! First-fit and best-fit decreasing baselines.
//!
//! These are the classic one-pass heuristics the MCB family was designed
//! to beat on multi-capacity instances (Leinberger et al., ICPP 1999).
//! They exist here for ablation: `dfrs-bench` swaps them into the yield
//! binary search to quantify how much of DFRS's performance comes from the
//! balance-aware packer.

use crate::item::{Bin, PackItem, Packing, VectorPacker};

/// Sort items by non-increasing largest component (ties by id), then
/// place each into the **first** bin with room.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFitDecreasing;

/// Sort items by non-increasing largest component (ties by id), then
/// place each into the bin that leaves the **least total slack**
/// (sum of residual CPU and memory) after placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitDecreasing;

fn sorted_desc(items: &[PackItem]) -> Vec<PackItem> {
    let mut v = items.to_vec();
    v.sort_by(|a, b| {
        b.max_component()
            .total_cmp(&a.max_component())
            .then(a.id.cmp(&b.id))
    });
    v
}

fn finish(items: &[PackItem], bins: usize, bin_of: Vec<u32>) -> Option<Packing> {
    let packing = Packing { bin_of };
    debug_assert!(packing.is_valid(items, bins));
    Some(packing)
}

impl VectorPacker for FirstFitDecreasing {
    fn name(&self) -> &'static str {
        "first-fit-decreasing"
    }

    fn pack(&self, items: &[PackItem], bins: usize) -> Option<Packing> {
        let mut state = vec![Bin::empty(); bins];
        let mut bin_of = vec![u32::MAX; items.len()];
        for item in sorted_desc(items) {
            let slot = state.iter().position(|b| b.fits(&item))?;
            state[slot].place(&item);
            bin_of[item.id as usize] = slot as u32;
        }
        finish(items, bins, bin_of)
    }
}

impl VectorPacker for BestFitDecreasing {
    fn name(&self) -> &'static str {
        "best-fit-decreasing"
    }

    fn pack(&self, items: &[PackItem], bins: usize) -> Option<Packing> {
        let mut state = vec![Bin::empty(); bins];
        let mut bin_of = vec![u32::MAX; items.len()];
        for item in sorted_desc(items) {
            let mut best: Option<(usize, f64)> = None;
            for (i, b) in state.iter().enumerate() {
                if !b.fits(&item) {
                    continue;
                }
                let slack = (b.cpu_free() - item.cpu) + (b.mem_free() - item.mem);
                match best {
                    Some((_, s)) if s <= slack => {}
                    _ => best = Some((i, slack)),
                }
            }
            let (slot, _) = best?;
            state[slot].place(&item);
            bin_of[item.id as usize] = slot as u32;
        }
        finish(items, bins, bin_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcb8::Mcb8;

    fn items(reqs: &[(f64, f64)]) -> Vec<PackItem> {
        reqs.iter()
            .enumerate()
            .map(|(i, &(cpu, mem))| PackItem {
                id: i as u32,
                cpu,
                mem,
            })
            .collect()
    }

    #[test]
    fn ffd_packs_simple_instance() {
        let its = items(&[(0.5, 0.5), (0.5, 0.5), (0.5, 0.5), (0.5, 0.5)]);
        let p = FirstFitDecreasing.pack(&its, 2).unwrap();
        assert!(p.is_valid(&its, 2));
    }

    #[test]
    fn bfd_packs_simple_instance() {
        let its = items(&[(0.7, 0.2), (0.3, 0.2), (0.5, 0.2), (0.5, 0.2)]);
        let p = BestFitDecreasing.pack(&its, 2).unwrap();
        assert!(p.is_valid(&its, 2));
    }

    #[test]
    fn both_fail_on_impossible_instances() {
        let its = items(&[(1.0, 0.1), (1.0, 0.1)]);
        assert!(FirstFitDecreasing.pack(&its, 1).is_none());
        assert!(BestFitDecreasing.pack(&its, 1).is_none());
    }

    #[test]
    fn mcb8_solves_a_balance_instance_ffd_misses() {
        // 2 bins. FFD sorted order: all 0.66-max items first. FFD pairs
        // the two CPU-heavy items' complement wrongly and strands the
        // last item; MCB8's imbalance steering solves it.
        let its = items(&[
            (0.66, 0.34),
            (0.66, 0.34),
            (0.34, 0.66),
            (0.34, 0.66),
            (0.0, 0.0),
        ]);
        // (padding zero item keeps ids dense but is trivially placeable)
        let mcb = Mcb8.pack(&its, 2);
        assert!(mcb.is_some());
        // FFD may or may not solve this one; the ablation bench measures
        // the success-rate gap statistically. Here we only require MCB8
        // to succeed where the greedy order is fragile.
    }

    #[test]
    fn bfd_prefers_tighter_bin() {
        // First item opens bin 0 (0.8 CPU). Second (0.2, 0.2) should go to
        // bin 0 under best-fit (less slack) even though bin 1 also fits.
        let its = items(&[(0.8, 0.2), (0.2, 0.2)]);
        let p = BestFitDecreasing.pack(&its, 2).unwrap();
        assert_eq!(p.bin_of[0], p.bin_of[1]);
    }

    #[test]
    fn ffd_uses_first_available_bin() {
        let its = items(&[(0.8, 0.2), (0.2, 0.2)]);
        let p = FirstFitDecreasing.pack(&its, 2).unwrap();
        assert_eq!(p.bin_of[0], 0);
        assert_eq!(p.bin_of[1], 0, "first fit lands in bin 0 too");
    }
}
