//! Lower bounds for bi-dimensional vector packing.
//!
//! Heuristics like MCB8 are incomplete: a `None` answer proves nothing.
//! These bounds give the other direction — a certificate that an
//! instance *cannot* be packed into fewer than `lower_bound` bins — so
//! tests and benches can measure how close the heuristics get to
//! optimal, and the yield search can fail fast.

use crate::item::PackItem;

/// A valid lower bound on the number of unit bins any packing needs:
/// the maximum of
///
/// * `⌈Σ cpu⌉` — total CPU volume,
/// * `⌈Σ mem⌉` — total memory volume,
/// * the *pairwise-conflict* bound: items with `max component > 1/2`
///   cannot share a bin along that dimension, so each needs its own bin
///   among themselves (the classical L2-style argument specialized to
///   the > ½ class).
pub fn lower_bound_bins(items: &[PackItem]) -> usize {
    if items.is_empty() {
        return 0;
    }
    let cpu: f64 = items.iter().map(|i| i.cpu).sum();
    let mem: f64 = items.iter().map(|i| i.mem).sum();
    let volume = cpu.max(mem).ceil() as usize;
    // Items that conflict pairwise in one dimension: CPU > 1/2 or memory
    // > 1/2 (an item with either property excludes any other such item
    // *in the same dimension* from its bin).
    let big_cpu = items.iter().filter(|i| i.cpu > 0.5 + 1e-12).count();
    let big_mem = items.iter().filter(|i| i.mem > 0.5 + 1e-12).count();
    volume.max(big_cpu).max(big_mem).max(1)
}

/// True when `items` provably cannot fit in `bins` bins (the converse —
/// `false` — proves nothing).
pub fn provably_infeasible(items: &[PackItem], bins: usize) -> bool {
    lower_bound_bins(items) > bins
}

/// Smallest bin count at which a packer succeeds, found by scanning up
/// from the lower bound — used to measure heuristic quality in tests and
/// the ablation benches. Returns `None` if no success up to `max_bins`.
pub fn min_bins_with(
    packer: &dyn crate::item::VectorPacker,
    items: &[PackItem],
    max_bins: usize,
) -> Option<usize> {
    let lo = lower_bound_bins(items);
    (lo..=max_bins).find(|&b| packer.pack(items, b).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::FirstFitDecreasing;
    use crate::item::VectorPacker;
    use crate::mcb8::Mcb8;

    fn items(reqs: &[(f64, f64)]) -> Vec<PackItem> {
        reqs.iter()
            .enumerate()
            .map(|(i, &(cpu, mem))| PackItem {
                id: i as u32,
                cpu,
                mem,
            })
            .collect()
    }

    #[test]
    fn volume_bound() {
        // 10 × (0.5, 0.3): CPU volume 5, memory volume 3 → LB 5.
        assert_eq!(lower_bound_bins(&items(&[(0.5, 0.3); 10])), 5);
    }

    #[test]
    fn big_item_bound_dominates_volume() {
        // 4 items with cpu 0.6 but tiny memory: volume bound is ⌈2.4⌉ = 3
        // but the pairwise-conflict bound is 4.
        assert_eq!(lower_bound_bins(&items(&[(0.6, 0.05); 4])), 4);
    }

    #[test]
    fn memory_conflicts_counted_too() {
        assert_eq!(lower_bound_bins(&items(&[(0.05, 0.7); 3])), 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(lower_bound_bins(&[]), 0);
        assert_eq!(lower_bound_bins(&items(&[(0.1, 0.1)])), 1);
    }

    #[test]
    fn provably_infeasible_is_sound() {
        let its = items(&[(0.9, 0.1); 3]);
        assert!(provably_infeasible(&its, 2));
        assert!(!provably_infeasible(&its, 3));
        // And indeed MCB8 succeeds at the bound here.
        assert!(Mcb8.pack(&its, 3).is_some());
    }

    #[test]
    fn mcb8_hits_the_bound_on_complementary_instances() {
        // Perfectly complementary pairs: LB = 4, MCB8 must achieve 4.
        let its = items(&[
            (0.9, 0.1),
            (0.1, 0.9),
            (0.9, 0.1),
            (0.1, 0.9),
            (0.9, 0.1),
            (0.1, 0.9),
            (0.9, 0.1),
            (0.1, 0.9),
        ]);
        assert_eq!(min_bins_with(&Mcb8, &its, 16), Some(4));
    }

    #[test]
    fn heuristic_quality_within_factor_two_of_bound() {
        // Mixed synthetic instance: both heuristics must land within 2×
        // of the lower bound (a loose but absolute sanity band).
        let mut reqs = Vec::new();
        for i in 0..30 {
            reqs.push((0.1 + 0.025 * (i % 8) as f64, 0.3 - 0.03 * (i % 5) as f64));
        }
        let its = items(&reqs);
        let lb = lower_bound_bins(&its);
        for packer in [&Mcb8 as &dyn crate::item::VectorPacker, &FirstFitDecreasing] {
            let used = min_bins_with(packer, &its, 64).unwrap();
            assert!(used <= 2 * lb, "{}: {used} bins vs LB {lb}", packer.name());
        }
    }
}
