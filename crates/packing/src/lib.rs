//! # dfrs-packing
//!
//! Bi-dimensional vector packing for DFRS resource allocation
//! (Section III-B of the IPDPS 2010 paper).
//!
//! The allocation problem — place tasks with a (CPU, memory) requirement
//! pair onto unit-capacity nodes — is *vector packing*. The paper's jobs
//! have **fluid CPU needs**, which is resolved by fixing a yield `Y`
//! (turning each CPU need into the requirement `need × Y`) and binary
//! searching for the largest feasible `Y`. This crate provides:
//!
//! * [`mcb8::Mcb8`] — the MCB8 multi-capacity bin-packing heuristic of
//!   Leinberger, Karypis and Kumar (ICPP 1999), as specialized by the
//!   paper: two lists split by dominant requirement, sorted by
//!   non-increasing largest component, placement steered *against* the
//!   current imbalance of the open node;
//! * [`fit::FirstFitDecreasing`] and [`fit::BestFitDecreasing`] — classic
//!   baselines used for ablation;
//! * [`yield_search::max_min_yield`] — the binary search on the yield
//!   (accuracy 0.01) returning the placement achieving the maximized
//!   minimum yield;
//! * [`stretch_search::min_max_estimated_stretch`] — the analogous binary
//!   search minimizing the estimated max stretch used by
//!   `DYNMCB8-STRETCH-PER`.
//!
//! Everything is deterministic; ties are broken by item order, which
//! callers fix (the schedulers pass tasks grouped by job id).
//!
//! ```
//! use dfrs_packing::{max_min_yield, JobLoad, Mcb8};
//! use dfrs_core::ids::JobId;
//!
//! // Two CPU-hungry single-task jobs sharing one node: the highest
//! // feasible uniform yield is ~0.5.
//! let jobs = vec![
//!     JobLoad { job: JobId(0), tasks: 1, cpu_need: 1.0, mem_req: 0.4 },
//!     JobLoad { job: JobId(1), tasks: 1, cpu_need: 1.0, mem_req: 0.4 },
//! ];
//! let alloc = max_min_yield(&jobs, 1, &Mcb8, 0.01, 0.01).unwrap();
//! assert!(alloc.yield_ <= 0.5 && alloc.yield_ > 0.48);
//! assert_eq!(alloc.placements.len(), 2);
//! ```

pub mod bounds;
pub mod drf_search;
pub mod fit;
pub mod item;
pub mod mcb8;
pub mod memo;
pub mod scratch;
pub mod stretch_search;
pub mod vecpack;
pub mod yield_search;

pub use bounds::{lower_bound_bins, min_bins_with, provably_infeasible};
pub use drf_search::{
    drf_feasible_at_share, max_min_dominant_share, DrfAllocation, DrfJob, DrfSearchScratch,
    DRF_DIMS,
};
pub use fit::{BestFitDecreasing, FirstFitDecreasing};
pub use item::{Bin, PackItem, Packing, VectorPacker};
pub use mcb8::Mcb8;
pub use memo::{
    max_min_yield_warm, min_max_estimated_stretch_warm, MemoStats, RepackMemo, UNIT_CAPS,
};
pub use scratch::{PackScratch, SearchScratch};
pub use stretch_search::{
    min_max_estimated_stretch, min_max_estimated_stretch_with, StretchAllocation, StretchJob,
};
pub use vecpack::{assignment_is_valid, McbVec, VecBin, VecItem, VecPackScratch};
pub use yield_search::{max_min_yield, max_min_yield_with, JobLoad, YieldAllocation};
