//! Cross-invocation warm-start memoization for the binary searches.
//!
//! The `DynMCB8*` schedulers re-run a full yield (or estimated-stretch)
//! binary search at every scheduling event even though consecutive
//! events usually differ by exactly one arrival or completion. This
//! module carries state across invocations in a [`RepackMemo`] so that
//! repeated structure is recognized and most of a search is skipped
//! before it starts.
//!
//! ## Why byte-identity holds
//!
//! Both searches — and the packer probes inside them — are
//! **deterministic pure functions** of their explicit inputs:
//!
//! * [`max_min_yield_with`] depends only on `(jobs, nodes, packer,
//!   accuracy, min_yield)`. Time never enters: the same job multiset in
//!   the same order yields bit-for-bit the same `(yield, placements)`
//!   (or the same infeasibility verdict).
//! * a single packer probe depends only on `(runs, nodes)`: the same
//!   expanded item instance produces the same verdict and, when
//!   feasible, the same `bin_of` assignment.
//!
//! The memo therefore only ever **replays** previously computed results
//! for *identical* inputs — it never extrapolates. A replay is
//! indistinguishable from re-running the computation, so every
//! `SimOutcome` downstream stays byte-identical to a cold run; the
//! `warm == cold` property tests in `tests/warm_equivalence.rs` machine-
//! check this for random arrival/completion deltas.
//!
//! A tempting stronger design — revalidating the previous placement as
//! a feasibility *certificate* and bisecting only the previous final
//! bracket — is **not** exact for a heuristic packer: a certificate
//! proves a packing *exists* at a yield, but the search's verdicts are
//! "does MCB8 *find* one", and MCB8 can fail feasible instances, so a
//! certificate-seeded bracket could diverge from the cold verdict path
//! (DESIGN.md §8). Replay-of-pure-functions is the strongest sound
//! shortcut, and it is what this module implements.
//!
//! ## Where the hits come from
//!
//! * **Yield search (whole-search memo).** The search input is the
//!   in-system job list, which only changes on arrivals, completions
//!   and evictions. Hits arrive whenever a job set *recurs*: periodic
//!   repacks under memory pressure (an eviction bumps the change epoch
//!   every tick, but the job set is unchanged until the next arrival or
//!   completion, so the whole eviction chain — including the cached
//!   **infeasible** verdict that drives victim selection — replays
//!   without a single pack), and event-driven repacks whenever a short
//!   job arrives and completes with no interleaved event (the set
//!   returns to one seen two events ago).
//! * **Stretch search (probe-level memo).** Its inputs include flow and
//!   virtual times, which drift every event, so whole searches never
//!   recur. But yield clamping saturates most of the bracket: at large
//!   targets every job sits at the 0.01 floor and the expanded item
//!   instance depends *only* on the job set. Those instances — and the
//!   partially saturated ones nearer the floor — recur across ticks
//!   while the set is stable, so a small ring of `(runs → verdict,
//!   assignment)` entries replays them.

use std::collections::VecDeque;

use crate::item::{PackItem, VectorPacker};
use crate::scratch::SearchScratch;
use crate::stretch_search::{
    fill_runs_at_target, search_with, StretchAllocation, StretchJob, StretchProbes,
};
use crate::yield_search::{max_min_yield_with, JobLoad, YieldAllocation};

/// Hit/miss/pack accounting of one [`RepackMemo`] (all monotone).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Warm search invocations.
    pub searches: u64,
    /// Searches answered entirely from the memo (zero packs).
    pub search_hits: u64,
    /// Packer invocations actually executed.
    pub packs: u64,
    /// Packer invocations avoided by replaying memoized results.
    pub packs_saved: u64,
    /// Stretch probes answered from the probe ring.
    pub probe_hits: u64,
}

impl MemoStats {
    /// Fraction of searches answered without packing (0 when none ran).
    pub fn search_hit_rate(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.search_hits as f64 / self.searches as f64
        }
    }
}

/// One memoized whole yield search: exact inputs, exact output, and how
/// many packs the cold computation spent (the savings of a replay).
///
/// The result is stored *flat* — the achieved yield plus the
/// concatenated per-task node assignment in input-job order — rather
/// than as a [`YieldAllocation`], so a miss costs one buffer copy
/// instead of one allocation per job; entry buffers are recycled
/// through LRU eviction, so steady-state misses allocate nothing.
#[derive(Debug, Clone, Default)]
struct YieldEntry {
    fingerprint: u64,
    nodes: usize,
    caps: u64,
    jobs: Vec<JobLoad>,
    /// `Some((yield, flat assignment))` when feasible, `None` when the
    /// search reported infeasibility.
    result: Option<(f64, Vec<u32>)>,
    packs: u64,
}

impl YieldEntry {
    /// Rebuild the public allocation (same shape the cold search
    /// returns; the per-job split is recovered from the task counts).
    fn unflatten(&self) -> Option<YieldAllocation> {
        let (yield_, flat) = self.result.as_ref()?;
        let mut placements = Vec::with_capacity(self.jobs.len());
        let mut cursor = 0usize;
        for j in &self.jobs {
            let nodes = flat[cursor..cursor + j.tasks as usize].to_vec();
            cursor += j.tasks as usize;
            placements.push((j.job, nodes));
        }
        Some(YieldAllocation {
            yield_: *yield_,
            placements,
        })
    }
}

/// One memoized stretch probe: exact expanded instance, verdict, and
/// (for feasible probes) the assignment. Only *fully clamped* instances
/// are stored (every yield on the 0.01 floor or the 1.0 cap) — those
/// are pure functions of the job set and actually recur across ticks;
/// partially clamped instances embed drifting flow/virtual times and
/// would only churn the ring.
#[derive(Debug, Clone, Default)]
struct ProbeEntry {
    fingerprint: u64,
    nodes: usize,
    caps: u64,
    runs: Vec<(PackItem, u32)>,
    ok: bool,
    bin_of: Vec<u32>,
}

/// Search parameters a memo is implicitly keyed under. One memo serves
/// one caller with fixed parameters; a change (packer swap, different
/// accuracy/floor/period) flushes every entry, so mixed use degrades to
/// cold rather than to wrong.
///
/// The packer is identified by its **address** (which the `&'static`
/// bound on the warm entry points makes stable for the program's
/// lifetime) plus its name: two differently configured instances of
/// the same packer type live at distinct `'static` addresses, so one
/// can never replay the other's results. The only indistinguishable
/// pair is two *zero-sized* packer types that report the same name and
/// happen to share a dangling address — zero-sized packers must use
/// distinct names (all built-ins do).
#[derive(Clone, Copy)]
struct MemoParams {
    accuracy: f64,
    floor_or_period: f64,
    packer: &'static dyn VectorPacker,
}

impl std::fmt::Debug for MemoParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoParams")
            .field("accuracy", &self.accuracy)
            .field("floor_or_period", &self.floor_or_period)
            .field("packer", &self.packer.name())
            .finish()
    }
}

impl PartialEq for MemoParams {
    fn eq(&self, other: &Self) -> bool {
        self.accuracy == other.accuracy
            && self.floor_or_period == other.floor_or_period
            && std::ptr::eq(
                self.packer as *const dyn VectorPacker as *const (),
                other.packer as *const dyn VectorPacker as *const (),
            )
            && self.packer.name() == other.packer.name()
    }
}

/// Cross-invocation warm-start state for the yield and stretch binary
/// searches: a small LRU of whole yield-search results, a ring of
/// stretch probe results, and the accounting the benchmarks report.
///
/// Exactness does not depend on invalidation — entries are keyed by
/// their complete inputs — so callers invalidate ([`clear`]) only for
/// hygiene (e.g. when a scheduler instance is reused for a fresh
/// simulation, detected via the engine's change-epoch machinery going
/// backwards).
///
/// [`clear`]: RepackMemo::clear
#[derive(Debug)]
pub struct RepackMemo {
    enabled: bool,
    yield_cap: usize,
    probe_cap: usize,
    yields: VecDeque<YieldEntry>,
    probes: VecDeque<ProbeEntry>,
    params: Option<MemoParams>,
    caps: u64,
    stats: MemoStats,
}

/// Default capacity of the whole-search LRU: deep enough to hold an
/// eviction chain plus the arrive/complete oscillation window.
const YIELD_CAP: usize = 64;
/// Default capacity of the stretch probe ring: one search touches at
/// most ~25 distinct instances, so this comfortably spans a search plus
/// the saturated instances that recur across ticks.
const PROBE_CAP: usize = 64;

impl Default for RepackMemo {
    fn default() -> Self {
        RepackMemo::new()
    }
}

impl RepackMemo {
    /// An enabled memo with the default capacities.
    pub fn new() -> Self {
        RepackMemo {
            enabled: true,
            yield_cap: YIELD_CAP,
            probe_cap: PROBE_CAP,
            yields: VecDeque::new(),
            probes: VecDeque::new(),
            params: None,
            caps: UNIT_CAPS,
            stats: MemoStats::default(),
        }
    }

    /// A memo that never hits (every search runs cold) but still counts
    /// searches and packs — the baseline side of warm-vs-cold benches.
    pub fn disabled() -> Self {
        RepackMemo {
            enabled: false,
            ..RepackMemo::new()
        }
    }

    /// Enable or disable memoization (stats keep accumulating either
    /// way). Disabling drops stored entries.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.yields.clear();
            self.probes.clear();
        }
    }

    /// Whether lookups are active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drop every stored entry (stats survive).
    pub fn clear(&mut self) {
        self.yields.clear();
        self.probes.clear();
    }

    /// Declare the **capacity identity** of the bins behind subsequent
    /// searches: a caller-computed hash of the available node *set* and
    /// each node's capacity vector (see [`RepackMemo::caps_identity`]).
    ///
    /// The memo keys every entry under this word in addition to the bin
    /// *count* that reaches the search signature, closing the latent
    /// hole where two different node sets (or capacity mixes) of equal
    /// size could replay each other's results. Entries stored under a
    /// different identity stay resident — they answer again when that
    /// identity returns (e.g. a node repairs) — so churn costs cold
    /// searches, never a flush.
    pub fn set_caps_identity(&mut self, caps: u64) {
        self.caps = caps;
    }

    /// The capacity identity currently in force (defaults to
    /// [`UNIT_CAPS`], the homogeneous all-nodes-up unit cluster).
    pub fn caps_identity_now(&self) -> u64 {
        self.caps
    }

    /// Hash a capacity description into an identity word: feed one
    /// `u64` per available node (its id, or its id plus capacity bits
    /// for heterogeneous clusters). Deterministic and order-sensitive —
    /// callers must feed nodes in a canonical (sorted) order.
    pub fn caps_identity(words: impl IntoIterator<Item = u64>) -> u64 {
        let mut h = Fnv::new();
        for w in words {
            h.word(w);
        }
        h.0
    }

    /// The accumulated accounting.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Flush if the caller's search parameters changed (see
    /// [`MemoParams`]).
    fn check_params(
        &mut self,
        accuracy: f64,
        floor_or_period: f64,
        packer: &'static dyn VectorPacker,
    ) {
        let params = MemoParams {
            accuracy,
            floor_or_period,
            packer,
        };
        if self.params != Some(params) {
            self.clear();
            self.params = Some(params);
        }
    }
}

/// Xor-multiply-rotate mix over a stream of words — cheap, deterministic,
/// and platform independent (used only to pre-filter exact comparisons, so
/// collisions cost a memcmp, never correctness). One multiply per word
/// instead of FNV's eight byte rounds; fingerprints live only in memory,
/// so the mixing function is free to change between builds.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    #[inline]
    fn word(&mut self, w: u64) {
        self.0 = (self.0 ^ w)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(26);
    }
}

/// Capacity identity of the default homogeneous unit cluster with every
/// node up — the state every memo starts in. Distinct from
/// `Fnv::new().0` only for documentation; any fixed word works because
/// identities only ever compare for equality.
pub const UNIT_CAPS: u64 = 0;

fn fingerprint_jobs(jobs: &[JobLoad], nodes: usize, caps: u64) -> u64 {
    let mut h = Fnv::new();
    h.word(nodes as u64);
    h.word(caps);
    for j in jobs {
        h.word(j.job.0 as u64);
        h.word(j.tasks as u64);
        h.word(j.cpu_need.to_bits());
        h.word(j.mem_req.to_bits());
    }
    h.0
}

fn fingerprint_runs(runs: &[(PackItem, u32)], nodes: usize, caps: u64) -> u64 {
    let mut h = Fnv::new();
    h.word(nodes as u64);
    h.word(caps);
    for (it, count) in runs {
        h.word(it.id as u64);
        h.word(*count as u64);
        h.word(it.cpu.to_bits());
        h.word(it.mem.to_bits());
    }
    h.0
}

/// [`max_min_yield_with`] with cross-invocation warm starting: when the
/// exact `(jobs, nodes)` input was searched before (the job set
/// recurred), the stored result — including the infeasible verdict the
/// eviction loop branches on — is replayed with zero packs. Misses run
/// the cold search and memoize it. Results are bit-for-bit identical to
/// the cold entry point (see the module docs for the argument).
pub fn max_min_yield_warm(
    jobs: &[JobLoad],
    nodes: usize,
    packer: &'static dyn VectorPacker,
    accuracy: f64,
    min_yield: f64,
    scratch: &mut SearchScratch,
    memo: &mut RepackMemo,
) -> Option<YieldAllocation> {
    memo.stats.searches += 1;
    memo.check_params(accuracy, min_yield, packer);
    if memo.enabled {
        let caps = memo.caps;
        let fingerprint = fingerprint_jobs(jobs, nodes, caps);
        let hit = memo
            .yields
            .iter()
            .position(|e| {
                e.fingerprint == fingerprint && e.nodes == nodes && e.caps == caps && e.jobs == jobs
            })
            .and_then(|i| memo.yields.remove(i));
        if let Some(entry) = hit {
            memo.stats.search_hits += 1;
            memo.stats.packs_saved += entry.packs;
            let result = entry.unflatten();
            memo.yields.push_front(entry); // LRU: refresh on hit
            return result;
        }
        let packs_before = scratch.packs;
        let result = max_min_yield_with(jobs, nodes, packer, accuracy, min_yield, scratch);
        let packs = scratch.packs - packs_before;
        memo.stats.packs += packs;
        // Recycle the evicted entry's buffers: steady-state misses
        // allocate nothing beyond what the cold search itself does. A
        // zero-cap memo recycles one slot forever instead of panicking.
        let mut entry = if memo.yields.len() >= memo.yield_cap {
            memo.yields.pop_back().unwrap_or_default()
        } else {
            YieldEntry::default()
        };
        entry.fingerprint = fingerprint;
        entry.nodes = nodes;
        entry.caps = caps;
        entry.jobs.clear();
        entry.jobs.extend_from_slice(jobs);
        entry.packs = packs;
        match (&result, &mut entry.result) {
            (Some(a), slot) => {
                let (y, flat) = slot.get_or_insert_with(|| (a.yield_, Vec::new()));
                *y = a.yield_;
                flat.clear();
                for (_, nodes_of) in &a.placements {
                    flat.extend_from_slice(nodes_of);
                }
            }
            (None, slot) => *slot = None,
        }
        memo.yields.push_front(entry);
        return result;
    }
    let packs_before = scratch.packs;
    let result = max_min_yield_with(jobs, nodes, packer, accuracy, min_yield, scratch);
    memo.stats.packs += scratch.packs - packs_before;
    result
}

/// The memo-backed probe oracle: identical instances replay their
/// stored verdict (and assignment); new instances are packed and
/// remembered across searches.
struct MemoProbes<'a> {
    packer: &'a dyn VectorPacker,
    runs: &'a mut Vec<(PackItem, u32)>,
    pack: &'a mut crate::scratch::PackScratch,
    packs: &'a mut u64,
    probes: &'a mut VecDeque<ProbeEntry>,
    probe_cap: usize,
    caps: u64,
    stats: &'a mut MemoStats,
}

impl StretchProbes for MemoProbes<'_> {
    fn probe(
        &mut self,
        jobs: &[StretchJob],
        target: f64,
        period: f64,
        nodes: usize,
        best: &mut Vec<u32>,
    ) -> bool {
        let fully_clamped = fill_runs_at_target(jobs, target, period, self.runs);
        // Only fully clamped instances are worth remembering: they are
        // pure functions of the job set (see `fill_runs_at_target`) and
        // recur across ticks, while every other instance embeds this
        // tick's flow/virtual times and can never be seen again.
        if !fully_clamped {
            *self.packs += 1;
            self.stats.packs += 1;
            let ok = self.packer.pack_runs_into(self.runs, nodes, self.pack);
            if ok {
                best.clear();
                best.extend_from_slice(self.pack.bin_of());
            }
            return ok;
        }
        let caps = self.caps;
        let fingerprint = fingerprint_runs(self.runs, nodes, caps);
        let hit = self
            .probes
            .iter()
            .position(|e| {
                e.fingerprint == fingerprint
                    && e.nodes == nodes
                    && e.caps == caps
                    && &e.runs == self.runs
            })
            .and_then(|i| self.probes.remove(i));
        if let Some(entry) = hit {
            self.stats.probe_hits += 1;
            self.stats.packs_saved += 1;
            let ok = entry.ok;
            if ok {
                best.clear();
                best.extend_from_slice(&entry.bin_of);
            }
            self.probes.push_front(entry);
            return ok;
        }
        *self.packs += 1;
        self.stats.packs += 1;
        let ok = self.packer.pack_runs_into(self.runs, nodes, self.pack);
        if ok {
            best.clear();
            best.extend_from_slice(self.pack.bin_of());
        }
        // Recycle the evicted entry's buffers (misses allocate nothing
        // at steady state); a zero probe cap recycles one slot forever.
        let mut entry = if self.probes.len() >= self.probe_cap {
            self.probes.pop_back().unwrap_or_default()
        } else {
            ProbeEntry::default()
        };
        entry.fingerprint = fingerprint;
        entry.nodes = nodes;
        entry.caps = caps;
        entry.runs.clone_from(self.runs);
        entry.ok = ok;
        entry.bin_of.clear();
        if ok {
            entry.bin_of.extend_from_slice(self.pack.bin_of());
        }
        self.probes.push_front(entry);
        ok
    }
}

/// [`min_max_estimated_stretch_with`] with cross-invocation warm
/// starting. Whole stretch searches never recur (their inputs include
/// flow and virtual times), so memoization happens per probe: the
/// clamp-saturated instances near the bracket's lax end depend only on
/// the job set and replay across ticks. Results are bit-for-bit
/// identical to the cold entry point.
///
/// [`min_max_estimated_stretch_with`]: crate::min_max_estimated_stretch_with
pub fn min_max_estimated_stretch_warm(
    jobs: &[StretchJob],
    nodes: usize,
    period: f64,
    packer: &'static dyn VectorPacker,
    accuracy: f64,
    scratch: &mut SearchScratch,
    memo: &mut RepackMemo,
) -> Option<StretchAllocation> {
    memo.stats.searches += 1;
    memo.check_params(accuracy, period, packer);
    if !memo.enabled {
        let packs_before = scratch.packs;
        let result =
            crate::min_max_estimated_stretch_with(jobs, nodes, period, packer, accuracy, scratch);
        memo.stats.packs += scratch.packs - packs_before;
        return result;
    }
    let SearchScratch {
        runs,
        pack,
        best,
        packs,
        ..
    } = scratch;
    let packs_before = *packs;
    let mut probes = MemoProbes {
        packer,
        runs,
        pack,
        packs,
        probes: &mut memo.probes,
        probe_cap: memo.probe_cap,
        caps: memo.caps,
        stats: &mut memo.stats,
    };
    let result = search_with(jobs, nodes, period, accuracy, &mut probes, best);
    if *packs == packs_before {
        memo.stats.search_hits += 1; // answered entirely from the ring
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcb8::Mcb8;
    use crate::{max_min_yield, min_max_estimated_stretch};
    use dfrs_core::ids::JobId;

    fn job(id: u32, tasks: u32, cpu: f64, mem: f64) -> JobLoad {
        JobLoad {
            job: JobId(id),
            tasks,
            cpu_need: cpu,
            mem_req: mem,
        }
    }

    fn sjob(id: u32, tasks: u32, cpu: f64, mem: f64, flow: f64, vt: f64) -> StretchJob {
        StretchJob {
            job: JobId(id),
            tasks,
            cpu_need: cpu,
            mem_req: mem,
            flow_time: flow,
            virtual_time: vt,
        }
    }

    #[test]
    fn warm_yield_matches_cold_and_hits_on_recurrence() {
        let jobs = vec![
            job(0, 3, 0.8, 0.2),
            job(1, 2, 1.0, 0.5),
            job(2, 1, 0.3, 0.4),
        ];
        let cold = max_min_yield(&jobs, 4, &Mcb8, 0.01, 0.01);
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        let first = max_min_yield_warm(&jobs, 4, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(first, cold);
        assert_eq!(memo.stats().search_hits, 0);
        let packs_after_first = memo.stats().packs;
        let second = max_min_yield_warm(&jobs, 4, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(second, cold);
        assert_eq!(memo.stats().search_hits, 1);
        assert_eq!(memo.stats().packs, packs_after_first, "hit must not pack");
    }

    #[test]
    fn warm_yield_caches_infeasible_verdicts() {
        // Three 60%-memory tasks cannot fit on two nodes at any yield.
        let jobs = vec![job(0, 3, 0.1, 0.6)];
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        assert!(max_min_yield_warm(&jobs, 2, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo).is_none());
        let packs = memo.stats().packs;
        assert!(max_min_yield_warm(&jobs, 2, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo).is_none());
        assert_eq!(memo.stats().packs, packs);
        assert_eq!(memo.stats().search_hits, 1);
    }

    #[test]
    fn warm_yield_distinguishes_node_counts_and_sets() {
        let jobs = vec![job(0, 2, 1.0, 0.3)];
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        let a = max_min_yield_warm(&jobs, 1, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        let b = max_min_yield_warm(&jobs, 4, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(memo.stats().search_hits, 0);
        assert_ne!(a.unwrap().yield_, b.unwrap().yield_);
        let more = vec![job(0, 2, 1.0, 0.3), job(1, 1, 0.5, 0.1)];
        let _ = max_min_yield_warm(&more, 4, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(memo.stats().search_hits, 0);
    }

    #[test]
    fn warm_stretch_matches_cold_and_reuses_saturated_probes() {
        // One node, four CPU-bound jobs: the bracket's lax end clamps
        // every job to the yield floor, so those probe instances depend
        // only on the set and recur across ticks.
        let base = [
            sjob(0, 1, 1.0, 0.2, 3_000.0, 500.0),
            sjob(1, 1, 1.0, 0.2, 900.0, 100.0),
            sjob(2, 1, 1.0, 0.2, 12_000.0, 200.0),
            sjob(3, 1, 0.8, 0.2, 40_000.0, 50.0),
        ];
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        // Two ticks 600 s apart: flow and virtual time drift, but the
        // clamp-saturated instances depend only on the set.
        for tick in 0..2 {
            let dt = tick as f64 * 600.0;
            let jobs: Vec<StretchJob> = base
                .iter()
                .map(|j| StretchJob {
                    flow_time: j.flow_time + dt,
                    virtual_time: j.virtual_time + 0.01 * dt,
                    ..*j
                })
                .collect();
            let cold = min_max_estimated_stretch(&jobs, 1, 600.0, &Mcb8, 0.01);
            let warm = min_max_estimated_stretch_warm(
                &jobs,
                1,
                600.0,
                &Mcb8,
                0.01,
                &mut scratch,
                &mut memo,
            );
            assert_eq!(warm, cold, "tick {tick}");
        }
        assert!(
            memo.stats().probe_hits > 0,
            "saturated probes should replay across ticks: {:?}",
            memo.stats()
        );
    }

    #[test]
    fn disabled_memo_never_hits_but_counts() {
        let jobs = vec![job(0, 2, 1.0, 0.3)];
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::disabled();
        let a = max_min_yield_warm(&jobs, 2, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        let b = max_min_yield_warm(&jobs, 2, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(a, b);
        assert_eq!(memo.stats().search_hits, 0);
        assert_eq!(memo.stats().searches, 2);
        assert!(memo.stats().packs > 0);
    }

    #[test]
    fn changed_params_flush_the_memo() {
        let jobs = vec![job(0, 2, 1.0, 0.3)];
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        let _ = max_min_yield_warm(&jobs, 2, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        // A different accuracy is a different search; the stale entry
        // must not answer it.
        let _ = max_min_yield_warm(&jobs, 2, &Mcb8, 0.001, 0.01, &mut scratch, &mut memo);
        assert_eq!(memo.stats().search_hits, 0);
    }

    #[test]
    fn caps_identity_keys_entries_not_just_node_count() {
        let jobs = vec![job(0, 2, 1.0, 0.3)];
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        let a = max_min_yield_warm(&jobs, 2, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        // Same node *count*, different node *set*: the entry stored
        // under the old identity must not answer.
        memo.set_caps_identity(RepackMemo::caps_identity([0u64, 3u64]));
        let b = max_min_yield_warm(&jobs, 2, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(a, b, "pure search: same count gives the same result");
        assert_eq!(memo.stats().search_hits, 0);
        // The original identity returning (node repaired) finds its
        // entry still resident — churn never flushes.
        memo.set_caps_identity(UNIT_CAPS);
        let c = max_min_yield_warm(&jobs, 2, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(c, a);
        assert_eq!(memo.stats().search_hits, 1);
    }

    #[test]
    fn zero_caps_degrade_gracefully() {
        // A zero-capacity memo must not panic on the recycle path: every
        // miss recycles the single resident slot and results stay
        // identical to the cold search.
        let jobs = vec![
            job(0, 2, 1.0, 0.3),
            job(1, 1, 0.5, 0.2),
            job(2, 3, 0.8, 0.1),
        ];
        let cold = max_min_yield(&jobs, 4, &Mcb8, 0.01, 0.01);
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        memo.yield_cap = 0;
        memo.probe_cap = 0;
        for _ in 0..3 {
            let warm = max_min_yield_warm(&jobs, 4, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
            assert_eq!(warm, cold);
        }
        assert!(memo.yields.len() <= 1, "zero cap keeps one recycled slot");
        let sjobs = [
            sjob(0, 1, 1.0, 0.2, 3_000.0, 500.0),
            sjob(1, 1, 1.0, 0.2, 900.0, 100.0),
        ];
        let cold_s = min_max_estimated_stretch(&sjobs, 1, 600.0, &Mcb8, 0.01);
        let warm_s =
            min_max_estimated_stretch_warm(&sjobs, 1, 600.0, &Mcb8, 0.01, &mut scratch, &mut memo);
        assert_eq!(warm_s, cold_s);
        assert!(memo.probes.len() <= 1);
    }

    #[test]
    fn lru_evicts_oldest_entry() {
        let mut scratch = SearchScratch::new();
        let mut memo = RepackMemo::new();
        memo.yield_cap = 2;
        let sets: Vec<Vec<JobLoad>> = (0..3).map(|i| vec![job(i, 1 + i, 0.5, 0.2)]).collect();
        for s in &sets {
            let _ = max_min_yield_warm(s, 4, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        }
        // Set 0 was evicted; sets 1 and 2 are still warm.
        let _ = max_min_yield_warm(&sets[0], 4, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(memo.stats().search_hits, 0);
        let _ = max_min_yield_warm(&sets[2], 4, &Mcb8, 0.01, 0.01, &mut scratch, &mut memo);
        assert_eq!(memo.stats().search_hits, 1);
    }
}
