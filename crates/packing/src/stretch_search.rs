//! Binary search minimizing the **estimated maximum stretch**, the
//! allocation rule of `DYNMCB8-STRETCH-PER` (Section III-B).
//!
//! At a scheduling event, with no knowledge of execution times, the best
//! estimate of a job's stretch is flow time over virtual time. Assuming a
//! job keeps yield `y` for the whole next period `T`, its estimate at the
//! next event is `(flow + T) / (vt + y·T)`. Given a candidate bound `S`
//! on that estimate, each job's required yield is obtained by inverting
//! the formula; clamping (non-positive → 0.01 so no job holds memory
//! without progress, above 1 → 1) turns the needs into concrete CPU
//! requirements, and MCB8 decides feasibility. Bisection finds the lowest
//! feasible `S`.

use dfrs_core::constants::MIN_STRETCH_PER_YIELD;
use dfrs_core::ids::JobId;
use dfrs_core::yield_math;

use crate::item::{PackItem, VectorPacker};
use crate::scratch::SearchScratch;

/// Per-job inputs to the estimated-stretch minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchJob {
    /// The job (carried through to the result).
    pub job: JobId,
    /// Number of tasks.
    pub tasks: u32,
    /// Per-task CPU need in `(0, 1]`.
    pub cpu_need: f64,
    /// Per-task memory requirement in `(0, 1]`.
    pub mem_req: f64,
    /// Seconds since submission.
    pub flow_time: f64,
    /// Accrued virtual time (seconds).
    pub virtual_time: f64,
}

/// Result: the achieved estimated-stretch bound, plus per-job yields and
/// task placements (aligned with the input order).
#[derive(Debug, Clone, PartialEq)]
pub struct StretchAllocation {
    /// The minimized bound on the estimated max stretch.
    pub target: f64,
    /// Per job: (job, assigned yield, node of each task).
    pub assignments: Vec<(JobId, f64, Vec<u32>)>,
}

/// The clamped yield a job needs to meet estimate bound `target`.
fn clamped_yield(j: &StretchJob, target: f64, period: f64) -> f64 {
    let y = yield_math::yield_for_target_stretch(j.flow_time, j.virtual_time, target, period);
    y.clamp(MIN_STRETCH_PER_YIELD, 1.0)
}

/// Expand jobs into per-job item runs at estimate bound `target`.
/// Returns whether every yield landed on a clamp boundary (the floor or
/// 1.0): such instances are pure functions of the job *set* — time
/// never enters — which is what makes them memoizable across events
/// ([`crate::memo`]).
pub(crate) fn fill_runs_at_target(
    jobs: &[StretchJob],
    target: f64,
    period: f64,
    runs: &mut Vec<(PackItem, u32)>,
) -> bool {
    runs.clear();
    let mut fully_clamped = true;
    let mut id = 0u32;
    for j in jobs {
        let y = clamped_yield(j, target, period);
        fully_clamped &= y == MIN_STRETCH_PER_YIELD || y == 1.0;
        let cpu = (j.cpu_need * y).min(1.0);
        runs.push((
            PackItem {
                id,
                cpu,
                mem: j.mem_req,
            },
            j.tasks,
        ));
        id += j.tasks;
    }
    fully_clamped
}

/// Minimize the estimated max stretch over the next period.
///
/// Returns `None` when memory alone makes the instance unpackable (caller
/// evicts the lowest-priority job and retries). `accuracy` is relative
/// (the search stops when the bracket is within `accuracy × max(1, lo)`),
/// mirroring the paper's 0.01 yield accuracy on a quantity that is
/// unbounded above.
pub fn min_max_estimated_stretch(
    jobs: &[StretchJob],
    nodes: usize,
    period: f64,
    packer: &dyn VectorPacker,
    accuracy: f64,
) -> Option<StretchAllocation> {
    min_max_estimated_stretch_with(
        jobs,
        nodes,
        period,
        packer,
        accuracy,
        &mut SearchScratch::new(),
    )
}

/// [`min_max_estimated_stretch`] with caller-provided scratch buffers;
/// repeated callers pay zero allocations for the probe loop. Results
/// are identical to [`min_max_estimated_stretch`].
pub fn min_max_estimated_stretch_with(
    jobs: &[StretchJob],
    nodes: usize,
    period: f64,
    packer: &dyn VectorPacker,
    accuracy: f64,
    scratch: &mut SearchScratch,
) -> Option<StretchAllocation> {
    let SearchScratch {
        runs,
        pack,
        best,
        last_ok,
        last_fail,
        packs,
        ..
    } = scratch;
    last_ok.clear();
    last_fail.clear();
    let mut probes = LocalProbes {
        packer,
        runs,
        pack,
        last_ok,
        last_fail,
        packs,
    };
    search_with(jobs, nodes, period, accuracy, &mut probes, best)
}

/// A probe oracle for [`search_with`]: the pack verdict of the item
/// instance a `(jobs, target)` pair expands to. The contract that keeps
/// every backend byte-identical to a pack-per-probe loop: the returned
/// verdict must equal what [`VectorPacker::pack_runs_into`] would return
/// on that instance, and after a `true` verdict `best` must hold exactly
/// the `bin_of` that pack would produce. Backends may replay cached
/// verdicts/assignments because the packer is a deterministic pure
/// function of `(runs, nodes)` — a replay is indistinguishable from a
/// fresh pack.
pub(crate) trait StretchProbes {
    /// Verdict at `target`; on `true`, leave the instance's assignment
    /// in `best`.
    fn probe(
        &mut self,
        jobs: &[StretchJob],
        target: f64,
        period: f64,
        nodes: usize,
        best: &mut Vec<u32>,
    ) -> bool;
}

/// The allocation-free single-search backend: packs every genuinely new
/// instance, short-circuiting only on the two most recent instances of
/// *this* search. Yield clamping (floor 0.01, cap 1) makes distinct
/// targets produce byte-identical item instances once every job
/// saturates, so the single-entry caches absorb most of the saturated
/// bracket end.
struct LocalProbes<'a> {
    packer: &'a dyn VectorPacker,
    runs: &'a mut Vec<(PackItem, u32)>,
    pack: &'a mut crate::scratch::PackScratch,
    last_ok: &'a mut Vec<(PackItem, u32)>,
    last_fail: &'a mut Vec<(PackItem, u32)>,
    packs: &'a mut u64,
}

impl StretchProbes for LocalProbes<'_> {
    fn probe(
        &mut self,
        jobs: &[StretchJob],
        target: f64,
        period: f64,
        nodes: usize,
        best: &mut Vec<u32>,
    ) -> bool {
        let _ = fill_runs_at_target(jobs, target, period, self.runs);
        if self.runs == self.last_ok {
            // The probe that populated `last_ok` already left this
            // instance's assignment in `best`.
            return true;
        }
        if self.runs == self.last_fail {
            return false;
        }
        *self.packs += 1;
        let ok = self.packer.pack_runs_into(self.runs, nodes, self.pack);
        if ok {
            self.last_ok.clone_from(self.runs);
            best.clear();
            best.extend_from_slice(self.pack.bin_of());
        } else {
            self.last_fail.clone_from(self.runs);
        }
        ok
    }
}

/// The bisection core shared by the cold and warm entry points.
pub(crate) fn search_with(
    jobs: &[StretchJob],
    nodes: usize,
    period: f64,
    accuracy: f64,
    probes: &mut dyn StretchProbes,
    best: &mut Vec<u32>,
) -> Option<StretchAllocation> {
    debug_assert!(period > 0.0 && accuracy > 0.0);
    if jobs.is_empty() {
        return Some(StretchAllocation {
            target: 1.0,
            assignments: Vec::new(),
        });
    }

    // Lowest conceivable bound: every job at yield 1.
    let s_min = jobs
        .iter()
        .map(|j| (j.flow_time + period) / (j.virtual_time + period))
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1.0);
    // Laxest useful bound: the bottleneck job at the yield floor — beyond
    // this every yield is clamped to the floor and feasibility is constant.
    let s_max = jobs
        .iter()
        .map(|j| (j.flow_time + period) / (j.virtual_time + MIN_STRETCH_PER_YIELD * period))
        .fold(f64::NEG_INFINITY, f64::max)
        .max(s_min);

    let build = |target: f64, bin_of: &[u32]| {
        let mut assignments = Vec::with_capacity(jobs.len());
        let mut cursor = 0usize;
        for j in jobs {
            let nodes_of = bin_of[cursor..cursor + j.tasks as usize].to_vec();
            cursor += j.tasks as usize;
            assignments.push((j.job, clamped_yield(j, target, period), nodes_of));
        }
        StretchAllocation {
            target,
            assignments,
        }
    };

    if probes.probe(jobs, s_min, period, nodes, best) {
        return Some(build(s_min, best));
    }
    if !probes.probe(jobs, s_max, period, nodes, best) {
        return None;
    }
    let mut hi = s_max; // feasible
    let mut lo = s_min; // infeasible
    while hi - lo > accuracy * lo.max(1.0) {
        let mid = 0.5 * (lo + hi);
        if probes.probe(jobs, mid, period, nodes, best) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(build(hi, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcb8::Mcb8;

    fn sjob(id: u32, tasks: u32, cpu: f64, mem: f64, flow: f64, vt: f64) -> StretchJob {
        StretchJob {
            job: JobId(id),
            tasks,
            cpu_need: cpu,
            mem_req: mem,
            flow_time: flow,
            virtual_time: vt,
        }
    }

    const T: f64 = 600.0;

    #[test]
    fn empty_input_is_trivial() {
        let a = min_max_estimated_stretch(&[], 4, T, &Mcb8, 0.01).unwrap();
        assert!(a.assignments.is_empty());
    }

    #[test]
    fn underloaded_jobs_get_full_yield() {
        let jobs = vec![sjob(0, 2, 0.5, 0.2, 100.0, 50.0)];
        let a = min_max_estimated_stretch(&jobs, 4, T, &Mcb8, 0.01).unwrap();
        assert_eq!(a.assignments[0].1, 1.0);
    }

    #[test]
    fn starved_job_outranks_fresh_job() {
        // Job 0 has waited 10 000 s with almost no progress; job 1 just
        // arrived. Sharing one node, job 0 must get the larger yield.
        let jobs = vec![
            sjob(0, 1, 1.0, 0.4, 10_000.0, 10.0),
            sjob(1, 1, 1.0, 0.4, 10.0, 0.0),
        ];
        let a = min_max_estimated_stretch(&jobs, 1, T, &Mcb8, 0.001).unwrap();
        let y0 = a.assignments[0].1;
        let y1 = a.assignments[1].1;
        assert!(y0 > y1, "starved job got y0={y0} <= fresh y1={y1}");
        assert!(y0 + y1 <= 1.0 + 1e-6, "node CPU overcommitted");
    }

    #[test]
    fn memory_infeasibility_returns_none() {
        let jobs = vec![sjob(0, 3, 0.1, 0.9, 10.0, 0.0)];
        assert!(min_max_estimated_stretch(&jobs, 2, T, &Mcb8, 0.01).is_none());
    }

    #[test]
    fn yields_respect_floor_and_cap() {
        let jobs = vec![
            sjob(0, 1, 1.0, 0.1, 50_000.0, 1.0),
            sjob(1, 1, 1.0, 0.1, 10.0, 5_000.0),
            sjob(2, 1, 1.0, 0.1, 10.0, 0.0),
        ];
        let a = min_max_estimated_stretch(&jobs, 1, T, &Mcb8, 0.01).unwrap();
        for (_, y, _) in &a.assignments {
            assert!(
                *y >= MIN_STRETCH_PER_YIELD - 1e-12 && *y <= 1.0,
                "yield {y}"
            );
        }
        // Job 1 already has lots of virtual time: it should be at the floor.
        assert!((a.assignments[1].1 - MIN_STRETCH_PER_YIELD).abs() < 1e-9);
    }

    #[test]
    fn achieved_target_bounds_all_estimates() {
        let jobs = vec![
            sjob(0, 2, 0.8, 0.3, 3_000.0, 500.0),
            sjob(1, 1, 0.6, 0.5, 900.0, 100.0),
            sjob(2, 3, 0.4, 0.2, 12_000.0, 200.0),
        ];
        let a = min_max_estimated_stretch(&jobs, 3, T, &Mcb8, 0.01).unwrap();
        for (j, (_, y, _)) in jobs.iter().zip(a.assignments.iter()) {
            let est =
                dfrs_core::yield_math::estimated_stretch_after(j.flow_time, j.virtual_time, *y, T);
            // Jobs clamped to the floor may exceed the target; others must
            // meet it (within search tolerance).
            if *y > MIN_STRETCH_PER_YIELD + 1e-12 {
                assert!(
                    est <= a.target * 1.02 + 1e-9,
                    "estimate {est} exceeds target {}",
                    a.target
                );
            }
        }
    }

    #[test]
    fn placements_are_within_cluster() {
        let jobs = vec![
            sjob(0, 5, 0.5, 0.3, 100.0, 10.0),
            sjob(1, 2, 0.9, 0.6, 700.0, 3.0),
        ];
        let a = min_max_estimated_stretch(&jobs, 4, T, &Mcb8, 0.01).unwrap();
        for (_, _, nodes) in &a.assignments {
            assert!(nodes.iter().all(|&n| n < 4));
        }
        assert_eq!(a.assignments[0].2.len(), 5);
        assert_eq!(a.assignments[1].2.len(), 2);
    }
}
