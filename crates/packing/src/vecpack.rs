//! The dimension-generic MCB packer: `McbVec<D>`.
//!
//! [`crate::Mcb8`] is the hand-specialized two-resource engine on the
//! golden hot path; this module is the same heuristic written against a
//! compile-time dimension count `D`, so the scheduling stack can pack
//! (CPU, memory, GPU) — or any future vector — through one code path:
//!
//! 1. split the tasks into `D` dominance lists, one per **dominant
//!    dimension** (the index of the largest requirement, ties toward
//!    the higher index — exactly MCB8's "CPU-dominant iff `cpu > mem`"
//!    split when `D = 2`);
//! 2. sort each list by non-increasing largest requirement;
//! 3. on the open bin, try the lists in order of the bin's residual
//!    capacities, **most-depleted dimension's opposing list first**
//!    (i.e. dimensions ordered by free capacity descending): picking an
//!    item whose dominant demand sits in the freest dimension steers
//!    every residual back toward balance, the generalization of MCB8's
//!    two-list imbalance rule.
//!
//! Bins carry an explicit capacity vector — heterogeneous nodes pack
//! through the same code, and the unit-capacity instance reproduces the
//! historical arithmetic exactly.
//!
//! ## Exactness of the accelerators
//!
//! Every `Mcb8` scan accelerator generalizes per-dimension with the
//! same arguments (see `mcb8.rs`):
//!
//! * each list is sorted by exactly its primary requirement (for items
//!   in list `d`, the max component *is* `req[d]`), so the items
//!   failing the primary-capacity check form a prefix a binary search
//!   with the same arithmetic skips;
//! * suffix minima are kept for every **secondary** dimension: when for
//!   any secondary dimension even the smallest requirement ahead
//!   overflows, no item ahead can fit and the walk stops;
//! * identical items produce identical verdicts, so one failure skips
//!   the whole run;
//! * bin capacities only shrink while a bin is open and `fits` is
//!   monotone, so a per-bin cursor resumes past known failures.
//!
//! ## Degeneracy
//!
//! `McbVec::<2>` is **byte-identical** to `Mcb8` on every instance (the
//! `vecpack_degenerate` proptests machine-check this): the split, the
//! sort comparator, the list preference order (free-capacity tie →
//! larger head → higher dimension index, reproducing "ties are
//! memory-dominant" and the `(None, _) => prefer mem` corner), the
//! early rejects and every capacity comparison use the same arithmetic
//! in the same sequence.

use dfrs_core::approx::EPS;
use dfrs_core::resources::dominant_dim;

/// One task to place: a point in the `D`-dimensional requirement space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VecItem<const D: usize> {
    /// Caller-assigned unique id, dense `0..n` within one pack call.
    pub id: u32,
    /// Per-dimension requirement, `req[d] ∈ [0, cap[d]]`.
    pub req: [f64; D],
}

impl<const D: usize> VecItem<D> {
    /// The largest requirement — the MCB sort key.
    #[inline]
    pub fn max_component(&self) -> f64 {
        let mut m = f64::NEG_INFINITY;
        for d in 0..D {
            m = m.max(self.req[d]);
        }
        m
    }

    /// The dominance-list index of this item (ties toward the higher
    /// dimension index; see [`dominant_dim`]).
    #[inline]
    pub fn dominant(&self) -> usize {
        dominant_dim(&self.req)
    }
}

/// Running state of one bin while packing: usage plus an explicit
/// capacity vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VecBin<const D: usize> {
    /// Committed per dimension.
    pub used: [f64; D],
    /// Capacity per dimension.
    pub cap: [f64; D],
}

impl<const D: usize> VecBin<D> {
    /// Fresh empty bin with the given capacities.
    #[inline]
    pub fn new(cap: [f64; D]) -> Self {
        VecBin {
            used: [0.0; D],
            cap,
        }
    }

    /// Remaining capacity in dimension `d`.
    #[inline]
    pub fn free(&self, d: usize) -> f64 {
        self.cap[d] - self.used[d]
    }

    /// Whether `item` fits in every dimension (the same `used + req <=
    /// cap + EPS` arithmetic as [`crate::Bin::fits`]).
    #[inline]
    pub fn fits(&self, item: &VecItem<D>) -> bool {
        for d in 0..D {
            if self.used[d] + item.req[d] > self.cap[d] + EPS {
                return false;
            }
        }
        true
    }

    /// Commit `item`.
    #[inline]
    pub fn place(&mut self, item: &VecItem<D>) {
        debug_assert!(self.fits(item));
        for d in 0..D {
            self.used[d] += item.req[d];
        }
    }
}

/// Per-dominance-list buffers, reused across packs.
#[derive(Debug, Clone)]
struct ListBufs<const D: usize> {
    /// Input runs `(first item, count)` whose dominant dimension is
    /// this list's.
    runs: Vec<(VecItem<D>, u32)>,
    /// Sorted expanded items.
    items: Vec<VecItem<D>>,
    /// Structure-of-arrays mirror of the requirements: `req_cols[d][i]
    /// = items[i].req[d]`. The hot `take_first_fit` scans touch one
    /// dimension at a time; a dense per-dimension column keeps those
    /// scans on sequential cache lines instead of striding through
    /// `D`-wide structs (values identical, so verdicts are too).
    req_cols: Vec<Vec<f64>>,
    /// Path-compressed liveness skips (`items.len() + 1` slots).
    skip: Vec<u32>,
    /// `sufmin[s][i] = min(req[s] over items[i..])`, one column per
    /// secondary dimension (the primary column stays empty).
    sufmin: Vec<Vec<f64>>,
    /// `run[i]` = end (exclusive) of the maximal run of items identical
    /// to item `i`.
    run: Vec<u32>,
    /// Alive-prefix cursor for the current bin.
    cursor: usize,
}

impl<const D: usize> Default for ListBufs<D> {
    fn default() -> Self {
        ListBufs {
            runs: Vec::new(),
            items: Vec::new(),
            req_cols: (0..D).map(|_| Vec::new()).collect(),
            skip: Vec::new(),
            sufmin: (0..D).map(|_| Vec::new()).collect(),
            run: Vec::new(),
            cursor: 0,
        }
    }
}

impl<const D: usize> ListBufs<D> {
    /// Sort this list's runs with the MCB comparator and rebuild the
    /// expanded arrays and accelerators (see `AliveList::build` in
    /// `mcb8.rs` for why run-level sorting equals task-level sorting).
    fn build(&mut self) {
        self.runs.sort_unstable_by(|a, b| {
            b.0.max_component()
                .total_cmp(&a.0.max_component())
                .then(a.0.id.cmp(&b.0.id))
        });
        self.items.clear();
        for &(it, count) in self.runs.iter() {
            for k in 0..count {
                self.items.push(VecItem {
                    id: it.id + k,
                    req: it.req,
                });
            }
        }
        let n = self.items.len();
        for (d, col) in self.req_cols.iter_mut().enumerate() {
            col.clear();
            col.extend(self.items.iter().map(|it| it.req[d]));
        }
        self.skip.clear();
        self.skip.extend(0..=n as u32);
        for col in self.sufmin.iter_mut() {
            col.clear();
            col.resize(n, f64::INFINITY);
        }
        self.run.clear();
        self.run.resize(n, 0);
        let mut acc = [f64::INFINITY; D];
        for i in (0..n).rev() {
            for (s, col) in self.sufmin.iter_mut().enumerate() {
                acc[s] = acc[s].min(self.items[i].req[s]);
                col[i] = acc[s];
            }
            let same_as_next = i + 1 < n && self.items[i].req == self.items[i + 1].req;
            self.run[i] = if same_as_next {
                self.run[i + 1]
            } else {
                i as u32 + 1
            };
        }
        self.cursor = 0;
    }

    /// First alive index `>= i`, with path compression.
    fn first_alive(&mut self, mut i: usize) -> usize {
        loop {
            let p = self.skip[i] as usize;
            if p == i {
                return i;
            }
            let gp = self.skip[p];
            self.skip[i] = gp;
            i = gp as usize;
        }
    }

    /// Largest alive item's max component, or `-inf` when empty — the
    /// head key of the balanced-bin tie-break.
    fn head_key(&mut self) -> f64 {
        let i = self.first_alive(0);
        match self.items.get(i) {
            Some(it) => it.max_component(),
            None => f64::NEG_INFINITY,
        }
    }

    /// Find and remove the first (largest) alive item that fits `bin`,
    /// where `dim` is this list's primary dimension. Exact-equivalent
    /// to a scan from the head (module docs).
    fn take_first_fit(&mut self, dim: usize, bin: &VecBin<D>) -> Option<VecItem<D>> {
        let n = self.items.len();
        let p_used = bin.used[dim];
        let p_cap = bin.cap[dim];
        let start = if p_used == 0.0 && self.req_cols[dim].first().is_none_or(|&r| r <= p_cap + EPS)
        {
            // Empty primary dimension and the largest primary demand
            // fits this bin's capacity: no item can fail the primary
            // check. (Uniform-capacity packs always land here, matching
            // Mcb8's `p_used == 0.0` fast path byte-for-byte; a
            // heterogeneous bin smaller than the cluster maximum must
            // still run the prefix search.)
            0
        } else {
            self.req_cols[dim].partition_point(|&r| p_used + r > p_cap + EPS)
        };
        let mut i = self.first_alive(start.max(self.cursor));
        'walk: while i < n {
            for s in 0..D {
                if s != dim && bin.used[s] + self.sufmin[s][i] > bin.cap[s] + EPS {
                    break 'walk;
                }
            }
            let mut ok = true;
            for s in 0..D {
                if s != dim && bin.used[s] + self.req_cols[s][i] > bin.cap[s] + EPS {
                    ok = false;
                    break;
                }
            }
            if ok {
                let item = self.items[i];
                debug_assert!(bin.fits(&item));
                self.skip[i] = i as u32 + 1;
                self.cursor = i;
                return Some(item);
            }
            i = self.first_alive(self.run[i] as usize);
        }
        self.cursor = n;
        None
    }
}

/// Reusable buffers for one [`McbVec`] invocation; hold one per
/// repeated caller (the DRF search keeps one per scheduler).
#[derive(Debug, Clone)]
pub struct VecPackScratch<const D: usize> {
    lists: Vec<ListBufs<D>>,
    /// Output: bin of the item with id `i`, `u32::MAX` while unplaced.
    bin_of: Vec<u32>,
}

impl<const D: usize> Default for VecPackScratch<D> {
    fn default() -> Self {
        VecPackScratch {
            lists: (0..D).map(|_| ListBufs::default()).collect(),
            bin_of: Vec::new(),
        }
    }
}

impl<const D: usize> VecPackScratch<D> {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        VecPackScratch::default()
    }

    /// The bin assignment left by the last successful
    /// [`McbVec::pack_runs_into`]: `bin_of()[i]` is the bin of the item
    /// with id `i`.
    pub fn bin_of(&self) -> &[u32] {
        &self.bin_of
    }
}

/// The dimension-generic MCB packer. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct McbVec<const D: usize>;

impl<const D: usize> McbVec<D> {
    /// Attempt to place every run (`(first, count)` groups of identical
    /// items with consecutive ids) into `caps.len()` bins with the
    /// given per-bin capacity vectors. Returns whether every item was
    /// placed; the assignment is left in [`VecPackScratch::bin_of`].
    pub fn pack_runs_into(
        &self,
        runs: &[(VecItem<D>, u32)],
        caps: &[[f64; D]],
        scratch: &mut VecPackScratch<D>,
    ) -> bool {
        scratch.bin_of.clear();
        if runs.is_empty() {
            return true;
        }
        let bins = caps.len();

        // Cheap necessary conditions, evaluated with the exact
        // per-item addition sequence (`mcb8.rs` documents why the
        // big-item pairwise bound is sound against the fits tolerance;
        // it needs uniform capacities, so it is gated on them).
        let uniform = caps.windows(2).all(|w| w[0] == w[1]);
        let mut max_cap = [f64::NEG_INFINITY; D];
        for cap in caps {
            for d in 0..D {
                max_cap[d] = max_cap[d].max(cap[d]);
            }
        }
        let mut n = 0usize;
        let mut sums = [0.0f64; D];
        let mut big = [0usize; D];
        for &(it, count) in runs {
            if it
                .req
                .iter()
                .zip(max_cap.iter())
                .any(|(&r, &c)| r > c + EPS)
            {
                return false;
            }
            for _ in 0..count {
                for (s, &r) in sums.iter_mut().zip(it.req.iter()) {
                    *s += r;
                }
            }
            n += count as usize;
            if uniform {
                for d in 0..D {
                    big[d] += ((it.req[d] > 0.5 * caps[0][d] + EPS) as usize) * count as usize;
                }
            }
        }
        for d in 0..D {
            // Uniform capacities use the historical `bins × cap` total
            // (exact for the unit case); heterogeneous bins sum.
            let total = if uniform {
                bins as f64 * caps[0][d]
            } else {
                caps.iter().map(|c| c[d]).sum()
            };
            if sums[d] > total + EPS {
                return false;
            }
            if uniform && big[d] > bins {
                return false;
            }
        }

        // Partition runs into the D dominance lists and build each.
        for list in scratch.lists.iter_mut() {
            list.runs.clear();
        }
        for &(it, count) in runs {
            scratch.lists[it.dominant()].runs.push((it, count));
        }
        for list in scratch.lists.iter_mut() {
            list.build();
        }

        scratch.bin_of.resize(n, u32::MAX);
        let mut placed = 0usize;

        for (b, cap) in caps.iter().enumerate() {
            if placed == n {
                break;
            }
            let mut bin = VecBin::new(*cap);
            for list in scratch.lists.iter_mut() {
                list.cursor = 0;
            }
            loop {
                // Order the lists by the bin's residual capacities,
                // freest dimension first; a free-capacity tie prefers
                // the list with the larger head, then the higher
                // dimension index (module docs: this degenerates to
                // MCB8's `prefer_mem` rule exactly).
                let mut heads = [f64::NEG_INFINITY; D];
                for (d, h) in heads.iter_mut().enumerate() {
                    *h = scratch.lists[d].head_key();
                }
                let mut order = [0usize; D];
                for (d, o) in order.iter_mut().enumerate() {
                    *o = d;
                }
                // Insertion sort with the pairwise "a before b"
                // predicate: deterministic for small fixed D.
                for i in 1..D {
                    let mut j = i;
                    while j > 0 {
                        let (a, b) = (order[j], order[j - 1]);
                        let before = if dfrs_core::approx::eq(bin.free(a), bin.free(b)) {
                            if heads[a] == heads[b] {
                                a > b
                            } else {
                                heads[a] > heads[b]
                            }
                        } else {
                            bin.free(a) > bin.free(b)
                        };
                        if before {
                            order.swap(j, j - 1);
                            j -= 1;
                        } else {
                            break;
                        }
                    }
                }

                let mut picked = None;
                for &d in order.iter() {
                    if let Some(item) = scratch.lists[d].take_first_fit(d, &bin) {
                        picked = Some(item);
                        break;
                    }
                }
                match picked {
                    Some(item) => {
                        bin.place(&item);
                        scratch.bin_of[item.id as usize] = b as u32;
                        placed += 1;
                        if placed == n {
                            break;
                        }
                    }
                    None => break, // nothing fits; open the next bin
                }
            }
        }

        placed == n
    }

    /// One-shot convenience over expanded items and uniform unit bins
    /// (tests, examples). Returns the assignment when everything fits.
    pub fn pack_unit(&self, items: &[VecItem<D>], bins: usize) -> Option<Vec<u32>> {
        let mut scratch = VecPackScratch::new();
        let caps = vec![[1.0; D]; bins];
        let mut runs: Vec<(VecItem<D>, u32)> = Vec::new();
        for it in items {
            match runs.last_mut() {
                Some((first, count)) if first.req == it.req && first.id + *count == it.id => {
                    *count += 1;
                }
                _ => runs.push((*it, 1)),
            }
        }
        self.pack_runs_into(&runs, &caps, &mut scratch)
            .then(|| scratch.bin_of.clone())
    }
}

/// Validate an assignment: every item placed exactly once, no bin over
/// capacity in any dimension (tests and debug assertions).
pub fn assignment_is_valid<const D: usize>(
    items: &[VecItem<D>],
    caps: &[[f64; D]],
    bin_of: &[u32],
) -> bool {
    if bin_of.len() != items.len() {
        return false;
    }
    let mut used = vec![[0.0f64; D]; caps.len()];
    for item in items {
        let Some(&b) = bin_of.get(item.id as usize) else {
            return false;
        };
        let b = b as usize;
        if b >= caps.len() {
            return false;
        }
        for (u, &r) in used[b].iter_mut().zip(item.req.iter()) {
            *u += r;
        }
    }
    used.iter()
        .zip(caps.iter())
        .all(|(u, c)| (0..D).all(|d| u[d] <= c[d] + EPS))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items3(reqs: &[[f64; 3]]) -> Vec<VecItem<3>> {
        reqs.iter()
            .enumerate()
            .map(|(i, &req)| VecItem { id: i as u32, req })
            .collect()
    }

    #[test]
    fn empty_input_packs_trivially() {
        assert!(McbVec::<3>.pack_unit(&[], 0).is_some());
        assert!(McbVec::<3>.pack_unit(&[], 4).is_some());
    }

    #[test]
    fn oversized_item_fails_in_any_dimension() {
        for d in 0..3 {
            let mut req = [0.1; 3];
            req[d] = 1.2;
            assert!(
                McbVec::<3>.pack_unit(&items3(&[req]), 4).is_none(),
                "dim {d}"
            );
        }
    }

    #[test]
    fn gpu_capacity_binds_even_with_free_cpu_and_memory() {
        // Three items needing 60% GPU each: two nodes can host at most
        // two, whatever their CPU/memory slack.
        let its = items3(&[[0.1, 0.1, 0.6]; 3]);
        assert!(McbVec::<3>.pack_unit(&its, 2).is_none());
        assert!(McbVec::<3>.pack_unit(&its, 3).is_some());
    }

    #[test]
    fn complementary_items_share_bins_across_three_dimensions() {
        // CPU-heavy, memory-heavy and GPU-heavy items are mutually
        // complementary: three per bin, two bins.
        let its = items3(&[
            [0.8, 0.1, 0.05],
            [0.1, 0.8, 0.05],
            [0.05, 0.1, 0.8],
            [0.8, 0.1, 0.05],
            [0.1, 0.8, 0.05],
            [0.05, 0.1, 0.8],
        ]);
        let bin_of = McbVec::<3>.pack_unit(&its, 2).unwrap();
        assert!(assignment_is_valid(&its, &[[1.0; 3]; 2], &bin_of));
    }

    #[test]
    fn heterogeneous_capacities_govern_placement() {
        // One GPU node, one CPU-only node; the GPU item must land on
        // bin 0 and the result must respect the zero GPU capacity.
        let caps = [[1.0, 1.0, 1.0], [1.0, 1.0, 0.0]];
        let its = items3(&[[0.2, 0.2, 0.9], [0.9, 0.2, 0.0]]);
        let mut scratch = VecPackScratch::new();
        let runs: Vec<_> = its.iter().map(|&it| (it, 1u32)).collect();
        assert!(McbVec::<3>.pack_runs_into(&runs, &caps, &mut scratch));
        assert!(assignment_is_valid(&its, &caps, scratch.bin_of()));
        assert_eq!(scratch.bin_of()[0], 0, "GPU item needs the GPU node");
    }

    #[test]
    fn deterministic_across_repeat_calls() {
        let its = items3(&[
            [0.5, 0.3, 0.2],
            [0.5, 0.3, 0.2],
            [0.3, 0.5, 0.1],
            [0.2, 0.1, 0.6],
        ]);
        let a = McbVec::<3>.pack_unit(&its, 2).unwrap();
        let b = McbVec::<3>.pack_unit(&its, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_gpu_degenerates_to_two_dimensional_behavior() {
        // With every GPU requirement zero, the GPU dominance list stays
        // empty and packing matches the 2-dim problem (the proptests in
        // tests/vecpack_degenerate.rs pin byte-identity against Mcb8).
        let its = items3(&[
            [0.9, 0.1, 0.0],
            [0.1, 0.9, 0.0],
            [0.9, 0.1, 0.0],
            [0.1, 0.9, 0.0],
        ]);
        let bin_of = McbVec::<3>.pack_unit(&its, 2).unwrap();
        assert!(assignment_is_valid(&its, &[[1.0; 3]; 2], &bin_of));
        assert_ne!(bin_of[0], bin_of[2], "two CPU-heavy items can't share");
    }
}
