//! Binary search for the maximized minimum yield (Section III-B).
//!
//! Fixing a yield `Y` turns every fluid CPU need into the concrete
//! requirement `need × Y`, reducing allocation to vector packing. The
//! highest feasible `Y` is located by bisection with the paper's accuracy
//! threshold of 0.01.
//!
//! Feasibility at the lower end is probed at `min_yield` (default 0.01,
//! [`dfrs_core::constants::MIN_STRETCH_PER_YIELD`]) rather than 0: an
//! allocation in which a job has yield 0 would let it hold memory forever
//! without progressing, which the paper explicitly excludes. If packing
//! fails even at `min_yield`, the instance is reported infeasible and the
//! caller (the `DYNMCB8*` schedulers) evicts the lowest-priority job and
//! retries.

use dfrs_core::ids::JobId;

use crate::item::{PackItem, VectorPacker};
use crate::scratch::SearchScratch;

/// Aggregate resource demand of one job: `tasks` identical tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobLoad {
    /// The job this load belongs to (carried through to the result).
    pub job: JobId,
    /// Number of tasks.
    pub tasks: u32,
    /// Per-task CPU need in `(0, 1]`.
    pub cpu_need: f64,
    /// Per-task memory requirement in `(0, 1]`.
    pub mem_req: f64,
}

/// Result of the yield maximization: a single uniform yield plus, for
/// every input job (same order), the node hosting each of its tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldAllocation {
    /// The maximized minimum yield, in `[min_yield, 1]`.
    pub yield_: f64,
    /// `placements[i][k]` = node of task `k` of input job `i`.
    pub placements: Vec<(JobId, Vec<u32>)>,
}

/// Expand jobs into per-job item runs at a given yield, reusing `runs`
/// storage. Item ids number tasks densely in input order, so id ranges
/// map back to jobs.
fn fill_runs_at_yield(jobs: &[JobLoad], yld: f64, runs: &mut Vec<(PackItem, u32)>) {
    runs.clear();
    let mut id = 0u32;
    for j in jobs {
        let cpu = (j.cpu_need * yld).min(1.0);
        runs.push((
            PackItem {
                id,
                cpu,
                mem: j.mem_req,
            },
            j.tasks,
        ));
        id += j.tasks;
    }
}

/// Task-level expansion at a given yield (tests, one-shot callers).
#[cfg(test)]
fn items_at_yield(jobs: &[JobLoad], yld: f64) -> Vec<PackItem> {
    let mut items = Vec::new();
    let mut id = 0u32;
    for j in jobs {
        let cpu = (j.cpu_need * yld).min(1.0);
        for _ in 0..j.tasks {
            items.push(PackItem {
                id,
                cpu,
                mem: j.mem_req,
            });
            id += 1;
        }
    }
    items
}

/// Translate a bin assignment back into per-job task placements.
fn placements_from(jobs: &[JobLoad], bin_of: &[u32]) -> Vec<(JobId, Vec<u32>)> {
    let mut out = Vec::with_capacity(jobs.len());
    let mut cursor = 0usize;
    for j in jobs {
        let nodes = bin_of[cursor..cursor + j.tasks as usize].to_vec();
        cursor += j.tasks as usize;
        out.push((j.job, nodes));
    }
    out
}

/// Maximize the minimum yield over all jobs.
///
/// * `jobs` — demands; order fixes the deterministic tie-breaking.
/// * `nodes` — cluster size.
/// * `packer` — the vector-packing heuristic (MCB8 in the paper).
/// * `accuracy` — bisection stops when the bracket is narrower than this
///   (the paper uses 0.01).
/// * `min_yield` — smallest admissible yield (see module docs).
///
/// Returns `None` when even `min_yield` cannot be packed (the caller
/// should evict a job and retry), otherwise the best allocation found.
pub fn max_min_yield(
    jobs: &[JobLoad],
    nodes: usize,
    packer: &dyn VectorPacker,
    accuracy: f64,
    min_yield: f64,
) -> Option<YieldAllocation> {
    max_min_yield_with(
        jobs,
        nodes,
        packer,
        accuracy,
        min_yield,
        &mut SearchScratch::new(),
    )
}

/// [`max_min_yield`] with caller-provided scratch buffers: repeated
/// callers (the `DynMCB8*` schedulers, once per event) pay zero
/// allocations for the probe loop. Results are identical to
/// [`max_min_yield`].
pub fn max_min_yield_with(
    jobs: &[JobLoad],
    nodes: usize,
    packer: &dyn VectorPacker,
    accuracy: f64,
    min_yield: f64,
    scratch: &mut SearchScratch,
) -> Option<YieldAllocation> {
    debug_assert!(accuracy > 0.0 && min_yield > 0.0 && min_yield <= 1.0);
    if jobs.is_empty() {
        return Some(YieldAllocation {
            yield_: 1.0,
            placements: Vec::new(),
        });
    }

    let SearchScratch {
        runs,
        pack,
        best,
        packs,
        ..
    } = scratch;
    fn probe(
        jobs: &[JobLoad],
        yld: f64,
        nodes: usize,
        packer: &dyn VectorPacker,
        runs: &mut Vec<(PackItem, u32)>,
        pack: &mut crate::scratch::PackScratch,
        packs: &mut u64,
    ) -> bool {
        fill_runs_at_yield(jobs, yld, runs);
        *packs += 1;
        packer.pack_runs_into(runs, nodes, pack)
    }

    // Fast path: everything fits at full speed.
    if probe(jobs, 1.0, nodes, packer, runs, pack, packs) {
        return Some(YieldAllocation {
            yield_: 1.0,
            placements: placements_from(jobs, pack.bin_of()),
        });
    }

    // The lower probe doubles as the memory-feasibility check.
    if !probe(jobs, min_yield, nodes, packer, runs, pack, packs) {
        return None;
    }
    best.clear();
    best.extend_from_slice(pack.bin_of());
    let mut lo = min_yield;
    let mut hi = 1.0;
    while hi - lo > accuracy {
        let mid = 0.5 * (lo + hi);
        if probe(jobs, mid, nodes, packer, runs, pack, packs) {
            best.clear();
            best.extend_from_slice(pack.bin_of());
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(YieldAllocation {
        yield_: lo,
        placements: placements_from(jobs, best),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Packing;
    use crate::mcb8::Mcb8;

    fn job(id: u32, tasks: u32, cpu: f64, mem: f64) -> JobLoad {
        JobLoad {
            job: JobId(id),
            tasks,
            cpu_need: cpu,
            mem_req: mem,
        }
    }

    fn run(jobs: &[JobLoad], nodes: usize) -> Option<YieldAllocation> {
        max_min_yield(jobs, nodes, &Mcb8, 0.01, 0.01)
    }

    #[test]
    fn empty_system_yields_one() {
        let a = run(&[], 16).unwrap();
        assert_eq!(a.yield_, 1.0);
        assert!(a.placements.is_empty());
    }

    #[test]
    fn underloaded_cluster_gives_full_yield() {
        let a = run(&[job(0, 4, 0.25, 0.1), job(1, 2, 1.0, 0.3)], 8).unwrap();
        assert_eq!(a.yield_, 1.0);
        let total_tasks: usize = a.placements.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total_tasks, 6);
    }

    #[test]
    fn two_full_cpu_jobs_on_one_node_split_the_cpu() {
        // Two single-task jobs, each needing 100% CPU and 50% memory, on a
        // 1-node cluster: both must land on the node, max load 2, yield ~0.5.
        let a = run(&[job(0, 1, 1.0, 0.5), job(1, 1, 1.0, 0.5)], 1).unwrap();
        assert!(
            a.yield_ <= 0.5 + 1e-9,
            "yield {} exceeds capacity",
            a.yield_
        );
        assert!(
            a.yield_ >= 0.5 - 0.01 - 1e-9,
            "yield {} below accuracy band",
            a.yield_
        );
    }

    #[test]
    fn memory_infeasibility_returns_none() {
        // Three 60 %-memory tasks cannot fit on two nodes at any yield.
        assert!(run(&[job(0, 3, 0.1, 0.6)], 2).is_none());
    }

    #[test]
    fn returned_yield_always_packs_validly() {
        let jobs = vec![
            job(0, 3, 0.8, 0.2),
            job(1, 5, 0.3, 0.3),
            job(2, 2, 1.0, 0.5),
            job(3, 1, 0.25, 0.4),
        ];
        let a = run(&jobs, 4).unwrap();
        let items = items_at_yield(&jobs, a.yield_);
        // Rebuild the bin assignment from placements and check capacities.
        let mut cursor = 0;
        let mut bin_of = vec![0u32; items.len()];
        for (_, nodes) in &a.placements {
            for &n in nodes {
                bin_of[cursor] = n;
                cursor += 1;
            }
        }
        let packing = Packing { bin_of };
        assert!(packing.is_valid(&items, 4));
    }

    #[test]
    fn yield_respects_min_floor() {
        // 8 single-task full-CPU tiny-memory jobs on one node: load 8 →
        // equal share would be 0.125.
        let jobs: Vec<_> = (0..8).map(|i| job(i, 1, 1.0, 0.1)).collect();
        let a = run(&jobs, 1).unwrap();
        assert!(a.yield_ >= 0.01);
        assert!(a.yield_ <= 0.125 + 1e-9);
        assert!(a.yield_ >= 0.125 - 0.01 - 1e-9);
    }

    #[test]
    fn accuracy_parameter_bounds_the_gap() {
        let jobs = vec![
            job(0, 1, 1.0, 0.3),
            job(1, 1, 1.0, 0.3),
            job(2, 1, 1.0, 0.3),
        ];
        // On one node: optimal yield = 1/3.
        let coarse = max_min_yield(&jobs, 1, &Mcb8, 0.1, 0.01).unwrap();
        let fine = max_min_yield(&jobs, 1, &Mcb8, 0.001, 0.01).unwrap();
        assert!(fine.yield_ >= coarse.yield_ - 1e-9);
        assert!((fine.yield_ - 1.0 / 3.0).abs() < 0.002);
    }

    #[test]
    fn placements_cover_every_task_exactly_once() {
        let jobs = vec![job(0, 7, 0.5, 0.1), job(1, 3, 0.2, 0.2)];
        let a = run(&jobs, 4).unwrap();
        assert_eq!(a.placements.len(), 2);
        assert_eq!(a.placements[0].1.len(), 7);
        assert_eq!(a.placements[1].1.len(), 3);
        assert!(a
            .placements
            .iter()
            .flat_map(|(_, p)| p)
            .all(|&n| (n as usize) < 4));
    }
}
