//! Binary search for the maximized minimum yield (Section III-B).
//!
//! Fixing a yield `Y` turns every fluid CPU need into the concrete
//! requirement `need × Y`, reducing allocation to vector packing. The
//! highest feasible `Y` is located by bisection with the paper's accuracy
//! threshold of 0.01.
//!
//! Feasibility at the lower end is probed at `min_yield` (default 0.01,
//! [`dfrs_core::constants::MIN_STRETCH_PER_YIELD`]) rather than 0: an
//! allocation in which a job has yield 0 would let it hold memory forever
//! without progressing, which the paper explicitly excludes. If packing
//! fails even at `min_yield`, the instance is reported infeasible and the
//! caller (the `DYNMCB8*` schedulers) evicts the lowest-priority job and
//! retries.

use dfrs_core::ids::JobId;

use crate::item::{PackItem, VectorPacker};
use crate::scratch::SearchScratch;

/// Aggregate resource demand of one job: `tasks` identical tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobLoad {
    /// The job this load belongs to (carried through to the result).
    pub job: JobId,
    /// Number of tasks.
    pub tasks: u32,
    /// Per-task CPU need in `(0, 1]`.
    pub cpu_need: f64,
    /// Per-task memory requirement in `(0, 1]`.
    pub mem_req: f64,
}

/// Result of the yield maximization: a single uniform yield plus, for
/// every input job (same order), the node hosting each of its tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldAllocation {
    /// The maximized minimum yield, in `[min_yield, 1]`.
    pub yield_: f64,
    /// `placements[i][k]` = node of task `k` of input job `i`.
    pub placements: Vec<(JobId, Vec<u32>)>,
}

/// Expand jobs into per-job item runs at a given yield, reusing `runs`
/// storage. Item ids number tasks densely in input order, so id ranges
/// map back to jobs.
fn fill_runs_at_yield(jobs: &[JobLoad], yld: f64, runs: &mut Vec<(PackItem, u32)>) {
    runs.clear();
    let mut id = 0u32;
    for j in jobs {
        let cpu = (j.cpu_need * yld).min(1.0);
        runs.push((
            PackItem {
                id,
                cpu,
                mem: j.mem_req,
            },
            j.tasks,
        ));
        id += j.tasks;
    }
}

/// Task-level expansion at a given yield (tests, one-shot callers).
#[cfg(test)]
fn items_at_yield(jobs: &[JobLoad], yld: f64) -> Vec<PackItem> {
    let mut items = Vec::new();
    let mut id = 0u32;
    for j in jobs {
        let cpu = (j.cpu_need * yld).min(1.0);
        for _ in 0..j.tasks {
            items.push(PackItem {
                id,
                cpu,
                mem: j.mem_req,
            });
            id += 1;
        }
    }
    items
}

/// Translate a bin assignment back into per-job task placements.
fn placements_from(jobs: &[JobLoad], bin_of: &[u32]) -> Vec<(JobId, Vec<u32>)> {
    let mut out = Vec::with_capacity(jobs.len());
    let mut cursor = 0usize;
    for j in jobs {
        let nodes = bin_of[cursor..cursor + j.tasks as usize].to_vec();
        cursor += j.tasks as usize;
        out.push((j.job, nodes));
    }
    out
}

/// Maximize the minimum yield over all jobs.
///
/// * `jobs` — demands; order fixes the deterministic tie-breaking.
/// * `nodes` — cluster size.
/// * `packer` — the vector-packing heuristic (MCB8 in the paper).
/// * `accuracy` — bisection stops when the bracket is narrower than this
///   (the paper uses 0.01).
/// * `min_yield` — smallest admissible yield (see module docs).
///
/// Returns `None` when even `min_yield` cannot be packed (the caller
/// should evict a job and retry), otherwise the best allocation found.
pub fn max_min_yield(
    jobs: &[JobLoad],
    nodes: usize,
    packer: &dyn VectorPacker,
    accuracy: f64,
    min_yield: f64,
) -> Option<YieldAllocation> {
    max_min_yield_with(
        jobs,
        nodes,
        packer,
        accuracy,
        min_yield,
        &mut SearchScratch::new(),
    )
}

/// [`max_min_yield`] with caller-provided scratch buffers: repeated
/// callers (the `DynMCB8*` schedulers, once per event) pay zero
/// allocations for the probe loop. Results are identical to
/// [`max_min_yield`].
pub fn max_min_yield_with(
    jobs: &[JobLoad],
    nodes: usize,
    packer: &dyn VectorPacker,
    accuracy: f64,
    min_yield: f64,
    scratch: &mut SearchScratch,
) -> Option<YieldAllocation> {
    max_min_yield_on(
        jobs,
        nodes,
        packer,
        accuracy,
        min_yield,
        scratch,
        dfrs_core::pool::global(),
    )
}

/// [`max_min_yield_with`] on an explicit worker pool (tests inject a
/// multi-worker pool to exercise the speculative path on any host; the
/// public entry points use the process-global pool).
pub(crate) fn max_min_yield_on(
    jobs: &[JobLoad],
    nodes: usize,
    packer: &dyn VectorPacker,
    accuracy: f64,
    min_yield: f64,
    scratch: &mut SearchScratch,
    pool: &dfrs_core::pool::WorkerPool,
) -> Option<YieldAllocation> {
    debug_assert!(accuracy > 0.0 && min_yield > 0.0 && min_yield <= 1.0);
    if jobs.is_empty() {
        return Some(YieldAllocation {
            yield_: 1.0,
            placements: Vec::new(),
        });
    }

    let SearchScratch {
        runs,
        pack,
        best,
        side,
        packs,
        ..
    } = scratch;
    fn probe(
        jobs: &[JobLoad],
        yld: f64,
        nodes: usize,
        packer: &dyn VectorPacker,
        runs: &mut Vec<(PackItem, u32)>,
        pack: &mut crate::scratch::PackScratch,
    ) -> bool {
        fill_runs_at_yield(jobs, yld, runs);
        packer.pack_runs_into(runs, nodes, pack)
    }

    // Fast path: everything fits at full speed.
    *packs += 1;
    if probe(jobs, 1.0, nodes, packer, runs, pack) {
        return Some(YieldAllocation {
            yield_: 1.0,
            placements: placements_from(jobs, pack.bin_of()),
        });
    }

    // The lower probe doubles as the memory-feasibility check.
    *packs += 1;
    if !probe(jobs, min_yield, nodes, packer, runs, pack) {
        return None;
    }
    best.clear();
    best.extend_from_slice(pack.bin_of());
    let mut lo = min_yield;
    let mut hi = 1.0;
    // Speculative parallel bisection: while this thread packs the
    // probe at `mid`, the worker pool packs both possible successors
    // (`left` if `mid` fails, `right` if it succeeds), advancing two
    // bisection levels per round. The probe *schedule* is fixed — the
    // successor targets are computed with the exact arithmetic the
    // sequential loop would use (`0.5 * (lo + hi)` over the updated
    // bracket) — so the accepted bracket sequence, the surviving
    // `best` assignment, and the returned yield are bit-identical to
    // the sequential search; the unused successor is discarded, and
    // `packs` counts only the probes the sequential search would have
    // made (the warm-memo accounting stays byte-stable).
    let speculate = jobs.len() >= PARALLEL_PROBE_MIN_JOBS && pool.workers() >= 2;
    while hi - lo > accuracy {
        let mid = 0.5 * (lo + hi);
        if !speculate {
            *packs += 1;
            if probe(jobs, mid, nodes, packer, runs, pack) {
                best.clear();
                best.extend_from_slice(pack.bin_of());
                lo = mid;
            } else {
                hi = mid;
            }
            continue;
        }
        let left = 0.5 * (lo + mid);
        let right = 0.5 * (mid + hi);
        let [sl, sr] = side;
        let mid_ok = pool.scope(|s| {
            s.execute(|| sl.ok = probe(jobs, left, nodes, packer, &mut sl.runs, &mut sl.pack));
            s.execute(|| sr.ok = probe(jobs, right, nodes, packer, &mut sr.runs, &mut sr.pack));
            probe(jobs, mid, nodes, packer, runs, pack)
        });
        *packs += 1;
        if mid_ok {
            best.clear();
            best.extend_from_slice(pack.bin_of());
            lo = mid;
            if hi - lo <= accuracy {
                break;
            }
            *packs += 1;
            if sr.ok {
                best.clear();
                best.extend_from_slice(sr.pack.bin_of());
                lo = right;
            } else {
                hi = right;
            }
        } else {
            hi = mid;
            if hi - lo <= accuracy {
                break;
            }
            *packs += 1;
            if sl.ok {
                best.clear();
                best.extend_from_slice(sl.pack.bin_of());
                lo = left;
            } else {
                hi = left;
            }
        }
    }
    Some(YieldAllocation {
        yield_: lo,
        placements: placements_from(jobs, best),
    })
}

/// Below this instance size a probe is cheaper than coordinating a
/// speculative round, so the search stays sequential (the verdict
/// sequence is identical either way — this is purely a cost gate).
pub(crate) const PARALLEL_PROBE_MIN_JOBS: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Packing;
    use crate::mcb8::Mcb8;

    fn job(id: u32, tasks: u32, cpu: f64, mem: f64) -> JobLoad {
        JobLoad {
            job: JobId(id),
            tasks,
            cpu_need: cpu,
            mem_req: mem,
        }
    }

    fn run(jobs: &[JobLoad], nodes: usize) -> Option<YieldAllocation> {
        max_min_yield(jobs, nodes, &Mcb8, 0.01, 0.01)
    }

    #[test]
    fn empty_system_yields_one() {
        let a = run(&[], 16).unwrap();
        assert_eq!(a.yield_, 1.0);
        assert!(a.placements.is_empty());
    }

    #[test]
    fn underloaded_cluster_gives_full_yield() {
        let a = run(&[job(0, 4, 0.25, 0.1), job(1, 2, 1.0, 0.3)], 8).unwrap();
        assert_eq!(a.yield_, 1.0);
        let total_tasks: usize = a.placements.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total_tasks, 6);
    }

    #[test]
    fn two_full_cpu_jobs_on_one_node_split_the_cpu() {
        // Two single-task jobs, each needing 100% CPU and 50% memory, on a
        // 1-node cluster: both must land on the node, max load 2, yield ~0.5.
        let a = run(&[job(0, 1, 1.0, 0.5), job(1, 1, 1.0, 0.5)], 1).unwrap();
        assert!(
            a.yield_ <= 0.5 + 1e-9,
            "yield {} exceeds capacity",
            a.yield_
        );
        assert!(
            a.yield_ >= 0.5 - 0.01 - 1e-9,
            "yield {} below accuracy band",
            a.yield_
        );
    }

    #[test]
    fn memory_infeasibility_returns_none() {
        // Three 60 %-memory tasks cannot fit on two nodes at any yield.
        assert!(run(&[job(0, 3, 0.1, 0.6)], 2).is_none());
    }

    #[test]
    fn returned_yield_always_packs_validly() {
        let jobs = vec![
            job(0, 3, 0.8, 0.2),
            job(1, 5, 0.3, 0.3),
            job(2, 2, 1.0, 0.5),
            job(3, 1, 0.25, 0.4),
        ];
        let a = run(&jobs, 4).unwrap();
        let items = items_at_yield(&jobs, a.yield_);
        // Rebuild the bin assignment from placements and check capacities.
        let mut cursor = 0;
        let mut bin_of = vec![0u32; items.len()];
        for (_, nodes) in &a.placements {
            for &n in nodes {
                bin_of[cursor] = n;
                cursor += 1;
            }
        }
        let packing = Packing { bin_of };
        assert!(packing.is_valid(&items, 4));
    }

    #[test]
    fn yield_respects_min_floor() {
        // 8 single-task full-CPU tiny-memory jobs on one node: load 8 →
        // equal share would be 0.125.
        let jobs: Vec<_> = (0..8).map(|i| job(i, 1, 1.0, 0.1)).collect();
        let a = run(&jobs, 1).unwrap();
        assert!(a.yield_ >= 0.01);
        assert!(a.yield_ <= 0.125 + 1e-9);
        assert!(a.yield_ >= 0.125 - 0.01 - 1e-9);
    }

    #[test]
    fn accuracy_parameter_bounds_the_gap() {
        let jobs = vec![
            job(0, 1, 1.0, 0.3),
            job(1, 1, 1.0, 0.3),
            job(2, 1, 1.0, 0.3),
        ];
        // On one node: optimal yield = 1/3.
        let coarse = max_min_yield(&jobs, 1, &Mcb8, 0.1, 0.01).unwrap();
        let fine = max_min_yield(&jobs, 1, &Mcb8, 0.001, 0.01).unwrap();
        assert!(fine.yield_ >= coarse.yield_ - 1e-9);
        assert!((fine.yield_ - 1.0 / 3.0).abs() < 0.002);
    }

    mod speculative_parity {
        use super::*;
        use dfrs_core::pool::WorkerPool;
        use proptest::prelude::*;

        fn search_on(
            jobs: &[JobLoad],
            nodes: usize,
            pool: &WorkerPool,
        ) -> (Option<YieldAllocation>, u64) {
            let mut scratch = SearchScratch::new();
            let out = max_min_yield_on(jobs, nodes, &Mcb8, 0.01, 0.01, &mut scratch, pool);
            (out, scratch.packs)
        }

        fn assert_parity(jobs: &[JobLoad], nodes: usize) {
            let serial = WorkerPool::new(1);
            let parallel = WorkerPool::new(4);
            assert!(serial.workers() == 0 && parallel.workers() >= 2);
            let (a, packs_a) = search_on(jobs, nodes, &serial);
            let (b, packs_b) = search_on(jobs, nodes, &parallel);
            assert_eq!(packs_a, packs_b, "pack counters diverged");
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(
                        x.yield_.to_bits(),
                        y.yield_.to_bits(),
                        "yield bits diverged"
                    );
                    assert_eq!(x.placements, y.placements, "placements diverged");
                }
                (a, b) => panic!(
                    "feasibility diverged: {:?} vs {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }

        #[test]
        fn speculative_search_is_bit_identical_to_sequential() {
            // Enough jobs to open the cost gate; mixed shapes so the
            // bisection takes both branches along the way.
            let jobs: Vec<_> = (0..96)
                .map(|i| {
                    let c = 0.15 + 0.8 * f64::from((i * 37) % 11) / 11.0;
                    let m = 0.02 + 0.3 * f64::from((i * 17) % 7) / 7.0;
                    job(i, 1 + i % 3, c, m)
                })
                .collect();
            for nodes in [7, 19, 40] {
                assert_parity(&jobs, nodes);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn prop_speculative_equals_sequential(
                raw in proptest::collection::vec(
                    (1u32..4, 0.05f64..1.0, 0.02f64..0.55),
                    PARALLEL_PROBE_MIN_JOBS..140,
                ),
                nodes in 1usize..24,
            ) {
                let jobs: Vec<JobLoad> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &(t, c, m))| job(i as u32, t, c, m))
                    .collect();
                assert_parity(&jobs, nodes);
            }
        }
    }

    #[test]
    fn placements_cover_every_task_exactly_once() {
        let jobs = vec![job(0, 7, 0.5, 0.1), job(1, 3, 0.2, 0.2)];
        let a = run(&jobs, 4).unwrap();
        assert_eq!(a.placements.len(), 2);
        assert_eq!(a.placements[0].1.len(), 7);
        assert_eq!(a.placements[1].1.len(), 3);
        assert!(a
            .placements
            .iter()
            .flat_map(|(_, p)| p)
            .all(|&n| (n as usize) < 4));
    }
}
