//! The MCB8 multi-capacity bin-packing heuristic.
//!
//! MCB8 is the two-resource instance of the *Multi-Capacity Bin packing*
//! family of Leinberger, Karypis and Kumar (ICPP 1999), in the variant
//! used by Stillwell et al. (Section III-B):
//!
//! 1. split the tasks into a CPU-dominant list (CPU requirement > memory
//!    requirement) and a memory-dominant list (the rest);
//! 2. sort each list by non-increasing *largest* requirement;
//! 3. open nodes one at a time; on the open node, repeatedly pick the
//!    first fitting task from the list that goes **against** the node's
//!    current imbalance (if free memory exceeds free CPU, prefer a
//!    memory-dominant task, and vice versa), falling back to the other
//!    list; when neither list has a fitting task, open the next node.
//!
//! The point of step 3 is to keep each node's two residual capacities in
//! balance so that neither resource is depleted while the other sits idle.
//!
//! The heuristic is deterministic: exact ties in the sort are broken by
//! item id, and the "arbitrary" initial pick on an empty node prefers the
//! list whose head has the larger requirement (big rocks first), then the
//! memory-dominant list.

use crate::item::{Bin, PackItem, Packing, VectorPacker};
use crate::scratch::PackScratch;

/// The MCB8 packer. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcb8;

/// One dominance list: items sorted by the MCB8 comparator with O(α)
/// amortized removal/successor lookup (a path-compressed skip array)
/// and two exact scan accelerators. Storage is borrowed from the
/// caller's [`PackScratch`], so repeated packs allocate nothing.
///
/// Scans stay **byte-identical** to a naive scan-from-head:
///
/// * the list is sorted (descending) by exactly its dominant
///   requirement (`cpu` for CPU-dominant items, `mem` for memory-
///   dominant ones — the max component *is* the dominant one), and the
///   primary-capacity check of [`Bin::fits`] is monotone along it, so
///   the items failing that check form a prefix that a binary search
///   with the *same arithmetic* can skip;
/// * bin capacities only shrink while a bin is open and `fits` is
///   monotone in them, so an item that failed the open bin once can
///   never fit it later — the per-bin `cursor` resumes past it.
struct AliveList<'a> {
    items: &'a [PackItem],
    /// `skip[i]` = a known lower bound on the first alive index `>= i`
    /// (path-compressed); `skip[i] == i` means alive. Slot `n` is the
    /// tail sentinel.
    skip: &'a mut Vec<u32>,
    /// Secondary requirement of each sorted item (memory for the
    /// CPU-dominant list, CPU for the memory-dominant one) — a flat
    /// array so the post-jump walk is a tight sequential scan.
    sec: &'a [f64],
    /// `sufmin[i] = min(sec[i..])` over **all** items (removed ones
    /// included, so it lower-bounds the alive suffix): when even that
    /// minimum cannot fit the remaining secondary capacity, no item
    /// ahead can, and the walk stops early.
    sufmin: &'a [f64],
    /// `run[i]` = end (exclusive) of the maximal run of items with the
    /// same `(cpu, mem)` as item `i`: identical items produce identical
    /// fit verdicts, so one failure skips the whole run (a wide job's
    /// tasks are identical and adjacent in sort order).
    run: &'a [u32],
    /// Sorted by CPU (true) or memory (false); selects the primary
    /// dimension of the prefix jump.
    primary_cpu: bool,
    /// Every alive item with index `< cursor` is already known not to
    /// fit the **current** bin. Reset via [`AliveList::open_bin`].
    cursor: usize,
}

impl<'a> AliveList<'a> {
    /// Sort `runs` with the MCB8 comparator and expand into the sorted
    /// task-item arrays, (re)building the skip array and the
    /// secondary-requirement column.
    ///
    /// Sorting happens at **run** level — one entry per maximal group
    /// of identical items with consecutive ids (a job's tasks) — which
    /// is exactly equivalent to sorting the expanded tasks: within a
    /// run the comparator ties break by ascending id (the expansion
    /// order), and runs with equal keys cannot interleave because their
    /// id ranges are disjoint, so the run-level id tie-break orders
    /// whole blocks just as the task-level one would.
    #[allow(clippy::too_many_arguments)]
    fn build(
        runs: &mut [(PackItem, u32)],
        items: &'a mut Vec<PackItem>,
        skip: &'a mut Vec<u32>,
        sec: &'a mut Vec<f64>,
        sufmin: &'a mut Vec<f64>,
        run: &'a mut Vec<u32>,
        primary_cpu: bool,
    ) -> Self {
        // The comparator is a total order (first ids are unique), so
        // the unstable sort is deterministic.
        runs.sort_unstable_by(|a, b| {
            b.0.max_component()
                .total_cmp(&a.0.max_component())
                .then(a.0.id.cmp(&b.0.id))
        });
        items.clear();
        sec.clear();
        for &(it, count) in runs.iter() {
            for k in 0..count {
                items.push(PackItem {
                    id: it.id + k,
                    cpu: it.cpu,
                    mem: it.mem,
                });
                sec.push(if primary_cpu { it.mem } else { it.cpu });
            }
        }
        skip.clear();
        skip.extend(0..=items.len() as u32);
        let n = items.len();
        sufmin.clear();
        sufmin.resize(n, f64::INFINITY);
        run.clear();
        run.resize(n, 0);
        let mut acc = f64::INFINITY;
        for i in (0..n).rev() {
            acc = acc.min(sec[i]);
            sufmin[i] = acc;
            let same_as_next =
                i + 1 < n && items[i].cpu == items[i + 1].cpu && items[i].mem == items[i + 1].mem;
            run[i] = if same_as_next {
                run[i + 1]
            } else {
                i as u32 + 1
            };
        }
        AliveList {
            items,
            skip,
            sec,
            sufmin,
            run,
            primary_cpu,
            cursor: 0,
        }
    }

    /// Forget the failed-item prefix of the previous bin.
    fn open_bin(&mut self) {
        self.cursor = 0;
    }

    /// First alive index `>= i` (the sentinel index for an empty tail),
    /// halving lookup paths as it goes.
    fn first_alive(&mut self, mut i: usize) -> usize {
        loop {
            let p = self.skip[i] as usize;
            if p == i {
                return i;
            }
            let gp = self.skip[p];
            self.skip[i] = gp;
            i = gp as usize;
        }
    }

    /// Largest alive item, if any.
    fn head(&mut self) -> Option<&PackItem> {
        let i = self.first_alive(0);
        self.items.get(i)
    }

    /// Find and remove the first (largest) alive item that fits in
    /// `bin`. Exact-equivalent to a scan from the head (see type docs).
    fn take_first_fit(&mut self, bin: &Bin) -> Option<PackItem> {
        let n = self.items.len();
        // Jump the prefix failing the primary-capacity check, using the
        // same `used + req <= 1 + EPS` arithmetic as `Bin::fits`.
        let (p_used, s_used) = if self.primary_cpu {
            (bin.cpu_used, bin.mem_used)
        } else {
            (bin.mem_used, bin.cpu_used)
        };
        let primary_cpu = self.primary_cpu;
        let start = if p_used == 0.0 {
            // Empty primary dimension: no item can fail it (oversized
            // items were rejected up front), so the prefix is empty.
            0
        } else {
            self.items.partition_point(|it| {
                let req = if primary_cpu { it.cpu } else { it.mem };
                p_used + req > 1.0 + dfrs_core::approx::EPS
            })
        };
        // Every item at `>= start` passes the primary check while this
        // bin's capacities hold, so the walk only tests the secondary
        // dimension (same arithmetic as `Bin::fits`) from the flat
        // column, jumping removed runs through the skip links.
        let mut i = self.first_alive(start.max(self.cursor));
        while i < n {
            // If even the smallest secondary requirement ahead cannot
            // fit, no item ahead can — stop (sound: the suffix minimum
            // only underestimates the alive suffix's minimum).
            if s_used + self.sufmin[i] > 1.0 + dfrs_core::approx::EPS {
                break;
            }
            if s_used + self.sec[i] <= 1.0 + dfrs_core::approx::EPS {
                let item = self.items[i];
                debug_assert!(bin.fits(&item));
                self.skip[i] = i as u32 + 1;
                self.cursor = i;
                return Some(item);
            }
            // Identical items fail identically: skip the whole run.
            i = self.first_alive(self.run[i] as usize);
        }
        self.cursor = n;
        None
    }
}

impl VectorPacker for Mcb8 {
    fn name(&self) -> &'static str {
        "mcb8"
    }

    fn pack(&self, items: &[PackItem], bins: usize) -> Option<Packing> {
        let mut scratch = PackScratch::new();
        self.pack_into(items, bins, &mut scratch).then(|| {
            let packing = Packing {
                bin_of: std::mem::take(&mut scratch.bin_of),
            };
            debug_assert!(packing.is_valid(items, bins));
            packing
        })
    }

    fn pack_into(&self, items: &[PackItem], bins: usize, scratch: &mut PackScratch) -> bool {
        debug_assert!(
            {
                let n = items.len();
                let mut seen = vec![false; n];
                items.iter().all(|i| {
                    let ok = (i.id as usize) < n && !seen[i.id as usize];
                    if ok {
                        seen[i.id as usize] = true;
                    }
                    ok
                })
            },
            "item ids must be dense 0..n and unique"
        );
        // Compress consecutive identical items into runs and delegate;
        // hot-path callers (the searches) build runs directly.
        let mut runs = std::mem::take(&mut scratch.input_runs);
        runs.clear();
        for it in items {
            match runs.last_mut() {
                Some((first, count))
                    if first.cpu == it.cpu && first.mem == it.mem && first.id + *count == it.id =>
                {
                    *count += 1;
                }
                _ => runs.push((*it, 1)),
            }
        }
        let ok = self.pack_runs_into(&runs, bins, scratch);
        scratch.input_runs = runs;
        ok
    }

    fn pack_runs_into(
        &self,
        runs: &[(PackItem, u32)],
        bins: usize,
        scratch: &mut PackScratch,
    ) -> bool {
        scratch.bin_of.clear();
        if runs.is_empty() {
            return true;
        }

        // Cheap necessary conditions before the O(n·m) work, evaluated
        // with the exact per-item addition sequence (items within a run
        // are identical, so the repeated adds match an item-level
        // loop). The big-item counts are a pairwise-conflict bound made
        // sound against the `fits` tolerance: two items above `1/2 +
        // EPS` in the same dimension sum past `1 + EPS`, so each needs
        // its own bin and exceeding `bins` of them forces failure —
        // rejecting early returns exactly what the full loop would.
        let mut n = 0usize;
        let (mut cpu_sum, mut mem_sum) = (0.0, 0.0);
        let (mut big_cpu, mut big_mem) = (0usize, 0usize);
        for &(it, count) in runs {
            if it.cpu > 1.0 + dfrs_core::approx::EPS || it.mem > 1.0 + dfrs_core::approx::EPS {
                return false;
            }
            for _ in 0..count {
                cpu_sum += it.cpu;
                mem_sum += it.mem;
            }
            n += count as usize;
            big_cpu += ((it.cpu > 0.5 + dfrs_core::approx::EPS) as usize) * count as usize;
            big_mem += ((it.mem > 0.5 + dfrs_core::approx::EPS) as usize) * count as usize;
        }
        let cap = bins as f64 + dfrs_core::approx::EPS;
        if cpu_sum > cap || mem_sum > cap || big_cpu > bins || big_mem > bins {
            return false;
        }

        let PackScratch {
            cpu_dom,
            mem_dom,
            skip_cpu,
            skip_mem,
            sec_cpu,
            sec_mem,
            sufmin_cpu,
            sufmin_mem,
            run_cpu,
            run_mem,
            cpu_runs,
            mem_runs,
            bin_of,
            ..
        } = scratch;
        // Partition the runs into the two dominance lists — the sort
        // then costs O(runs log runs) (one run per job), not
        // O(tasks log tasks).
        cpu_runs.clear();
        mem_runs.clear();
        for &(it, count) in runs {
            if it.cpu_dominant() {
                cpu_runs.push((it, count));
            } else {
                mem_runs.push((it, count));
            }
        }
        let mut list_cpu = AliveList::build(
            cpu_runs, cpu_dom, skip_cpu, sec_cpu, sufmin_cpu, run_cpu, true,
        );
        let mut list_mem = AliveList::build(
            mem_runs, mem_dom, skip_mem, sec_mem, sufmin_mem, run_mem, false,
        );

        bin_of.resize(n, u32::MAX); // cleared above, so all-MAX
        let mut placed = 0usize;
        for b in 0..bins {
            if placed == n {
                break;
            }
            let mut bin = Bin::empty();
            list_cpu.open_bin();
            list_mem.open_bin();
            loop {
                // Prefer the list that counteracts the bin's imbalance.
                let prefer_mem = if dfrs_core::approx::eq(bin.mem_free(), bin.cpu_free()) {
                    // Balanced (e.g. empty) bin: take the list with the
                    // larger head so big items are placed early.
                    match (list_cpu.head(), list_mem.head()) {
                        (Some(c), Some(m)) => m.max_component() >= c.max_component(),
                        (None, _) => true,
                        (_, None) => false,
                    }
                } else {
                    bin.mem_free() > bin.cpu_free()
                };

                let (first, second) = if prefer_mem {
                    (&mut list_mem, &mut list_cpu)
                } else {
                    (&mut list_cpu, &mut list_mem)
                };

                let picked = first
                    .take_first_fit(&bin)
                    .or_else(|| second.take_first_fit(&bin));

                match picked {
                    Some(item) => {
                        bin.place(&item);
                        bin_of[item.id as usize] = b as u32;
                        placed += 1;
                        if placed == n {
                            break;
                        }
                    }
                    None => break, // nothing fits; open the next bin
                }
            }
        }
        placed == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(reqs: &[(f64, f64)]) -> Vec<PackItem> {
        reqs.iter()
            .enumerate()
            .map(|(i, &(cpu, mem))| PackItem {
                id: i as u32,
                cpu,
                mem,
            })
            .collect()
    }

    #[test]
    fn empty_input_packs_trivially() {
        assert!(Mcb8.pack(&[], 0).is_some());
        assert!(Mcb8.pack(&[], 4).is_some());
    }

    #[test]
    fn single_item_fills_one_bin() {
        let its = items(&[(1.0, 1.0)]);
        let p = Mcb8.pack(&its, 1).unwrap();
        assert_eq!(p.bin_of, vec![0]);
    }

    #[test]
    fn oversized_item_fails() {
        assert!(Mcb8.pack(&items(&[(1.2, 0.1)]), 4).is_none());
        assert!(Mcb8.pack(&items(&[(0.1, 1.2)]), 4).is_none());
    }

    #[test]
    fn total_demand_exceeding_capacity_fails_fast() {
        let its = items(&[(0.9, 0.1), (0.9, 0.1), (0.9, 0.1)]);
        assert!(Mcb8.pack(&its, 2).is_none());
    }

    #[test]
    fn complementary_items_share_a_bin() {
        // One CPU-heavy and one memory-heavy item fit together; two of the
        // same kind would not. MCB8's balance steering must pair them.
        let its = items(&[(0.9, 0.1), (0.1, 0.9), (0.9, 0.1), (0.1, 0.9)]);
        let p = Mcb8.pack(&its, 2).unwrap();
        assert!(p.is_valid(&its, 2));
        // Each bin must hold exactly one of each kind.
        assert_ne!(p.bin_of[0], p.bin_of[2], "two CPU-heavy items can't share");
        assert_ne!(
            p.bin_of[1], p.bin_of[3],
            "two memory-heavy items can't share"
        );
    }

    #[test]
    fn balance_steering_beats_naive_order() {
        // Four CPU-heavy small-mem + four mem-heavy small-cpu items on 4
        // bins, where any same-kind pairing overflows.
        let its = items(&[
            (0.8, 0.15),
            (0.8, 0.15),
            (0.8, 0.15),
            (0.8, 0.15),
            (0.15, 0.8),
            (0.15, 0.8),
            (0.15, 0.8),
            (0.15, 0.8),
        ]);
        let p = Mcb8.pack(&its, 4).unwrap();
        assert!(p.is_valid(&its, 4));
    }

    #[test]
    fn uses_exactly_enough_bins_for_unit_items() {
        let its = items(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        assert!(Mcb8.pack(&its, 3).is_some());
        assert!(Mcb8.pack(&its, 2).is_none());
    }

    #[test]
    fn many_small_items_fill_densely() {
        // 40 items of (0.1, 0.1) pack into 4 bins exactly.
        let its = items(&[(0.1, 0.1); 40]);
        let p = Mcb8.pack(&its, 4).unwrap();
        assert!(p.is_valid(&its, 4));
        assert!(Mcb8.pack(&its, 3).is_none(), "needs 4 full bins");
    }

    #[test]
    fn zero_cpu_items_pack_by_memory_only() {
        // Yield 0 turns CPU requirements to 0; packing degenerates to 1-D
        // memory packing.
        let its = items(&[(0.0, 0.5); 6]);
        assert!(Mcb8.pack(&its, 3).is_some());
        assert!(Mcb8.pack(&its, 2).is_none());
    }

    #[test]
    fn deterministic_across_input_permutations_of_equal_items() {
        let a = items(&[(0.5, 0.3), (0.5, 0.3), (0.3, 0.5), (0.3, 0.5)]);
        let p1 = Mcb8.pack(&a, 2).unwrap();
        let p2 = Mcb8.pack(&a, 2).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn respects_memory_even_with_free_cpu() {
        // CPU requirements are 0 but memory binds: 5 half-memory items
        // need 3 bins.
        let its = items(&[(0.0, 0.5); 5]);
        let p = Mcb8.pack(&its, 3).unwrap();
        assert!(p.is_valid(&its, 3));
    }
}
